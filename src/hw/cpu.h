// A simulated physical CPU.
//
// The CPU carries only *hardware* state; what the hypervisor is doing on it
// (current vCPU, hypercall in flight, IRQ nesting) lives in the hypervisor's
// per-CPU structures (hv/percpu.h), mirroring the real split between
// architectural state and Xen's per-CPU data.
#pragma once

#include <cstdint>

#include "forensics/record.h"
#include "hw/registers.h"
#include "sim/time.h"

namespace nlh::hw {

using CpuId = int;

// The hypervisor stack of a CPU. Microreset "discards the execution thread
// by resetting the stack pointer" (Section III-C); we model the stack as a
// depth counter plus the top-of-stack pointer so that discarding is exactly
// a pointer reset.
struct HvStack {
  std::uint64_t base = 0;   // initial stack pointer value
  std::uint64_t top = 0;    // current stack pointer
  int frames = 0;           // pushed frames (nested entries)

  void Reset() {
    top = base;
    frames = 0;
  }
  bool Clean() const { return top == base && frames == 0; }
};

class Cpu {
 public:
  explicit Cpu(CpuId id) : id_(id) {
    // Give each CPU a distinct, recognizable hypervisor stack base.
    stack_.base = 0xffff800000000000ULL + static_cast<std::uint64_t>(id) * 0x10000;
    stack_.Reset();
  }

  CpuId id() const { return id_; }

  RegisterFile& regs() { return regs_; }
  const RegisterFile& regs() const { return regs_; }

  HvStack& hv_stack() { return stack_; }
  const HvStack& hv_stack() const { return stack_; }

  // --- Interrupt flag -------------------------------------------------
  bool interrupts_enabled() const { return interrupts_enabled_; }
  void set_interrupts_enabled(bool on) { interrupts_enabled_ = on; }

  // --- Execution states ------------------------------------------------
  // halted: parked (e.g. non-recovering CPUs during ReHype recovery).
  // hung:   stuck making no progress (spinning on a dead lock, corrupt
  //         list walk); only an NMI-based detector can notice.
  bool halted() const { return halted_; }
  void set_halted(bool h) { halted_ = h; }
  bool hung() const { return hung_; }
  void set_hung(bool h) {
    if (h && !hung_) NLH_RECORD(forensics::EventKind::kCpuHung, id_);
    hung_ = h;
  }

  bool online() const { return online_; }
  void set_online(bool o) { online_ = o; }

  // --- Counters ---------------------------------------------------------
  // Retired-instruction count while executing hypervisor code; the fault
  // injector's second-level trigger counts these (Section VI-C).
  std::uint64_t hv_instructions() const { return hv_instructions_; }
  void RetireHvInstructions(std::uint64_t n) { hv_instructions_ += n; }

  // Unhalted cycles spent executing hypervisor code; used for the Figure 3
  // hypervisor-processing-overhead measurement.
  std::uint64_t hv_cycles() const { return hv_cycles_; }
  void AccumulateHvCycles(std::uint64_t c) { hv_cycles_ += c; }
  std::uint64_t total_cycles() const { return total_cycles_; }
  void AccumulateTotalCycles(std::uint64_t c) { total_cycles_ += c; }

  // --- Resume bookkeeping ------------------------------------------------
  // True while a run-slice event for this CPU is pending in the event queue;
  // prevents interrupt delivery from flooding the queue with wakeups.
  bool resume_pending() const { return resume_pending_; }
  void set_resume_pending(bool p) { resume_pending_ = p; }

 private:
  CpuId id_;
  RegisterFile regs_;
  HvStack stack_;
  bool interrupts_enabled_ = true;
  bool halted_ = false;
  bool hung_ = false;
  bool online_ = true;
  bool resume_pending_ = false;
  std::uint64_t hv_instructions_ = 0;
  std::uint64_t hv_cycles_ = 0;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace nlh::hw
