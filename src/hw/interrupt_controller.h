// Simulated interrupt controller with x86 local-APIC accept/EOI semantics.
//
// Each CPU has an IRR (pending vectors) and an ISR (in-service vectors).
// A pending vector is deliverable only if its priority class (vector >> 4)
// exceeds the highest in-service priority. Vectors left in-service across a
// hypervisor failure therefore block further delivery — which is why both
// ReHype and NiLiHype must "acknowledge all pending and in-service
// interrupts" during recovery (Section III-B).
#pragma once

#include <bitset>
#include <cstdint>
#include <functional>
#include <vector>

#include "forensics/record.h"
#include "hw/cpu.h"

namespace nlh::hw {

using Vector = int;

// Vector assignments (priority class = vector >> 4, higher is stronger).
namespace vec {
inline constexpr Vector kTimer = 0xf0;      // local APIC timer
inline constexpr Vector kIpiCall = 0xfb;    // cross-CPU function call
inline constexpr Vector kIpiRecovery = 0xfc;  // recovery freeze IPI
inline constexpr Vector kNet = 0x40;        // network device (PrivVM backend)
inline constexpr Vector kBlk = 0x41;        // block device (PrivVM backend)
inline constexpr Vector kEventCheck = 0x50;  // event-channel upcall poke
}  // namespace vec

inline constexpr int kNumVectors = 256;

class InterruptController {
 public:
  explicit InterruptController(int num_cpus) : percpu_(num_cpus) {}

  // Invoked whenever a vector becomes pending on a CPU, so the platform can
  // wake an idle CPU. May be empty during early bring-up.
  void SetWakeHandler(std::function<void(CpuId)> wake) { wake_ = std::move(wake); }

  // NMIs bypass IRR/ISR and the interrupt flag entirely.
  void SetNmiHandler(std::function<void(CpuId)> handler) {
    nmi_handler_ = std::move(handler);
  }

  void Raise(CpuId cpu, Vector v) {
    NLH_RECORD(forensics::EventKind::kIrqRaise, cpu,
               static_cast<std::uint64_t>(v));
    percpu_[cpu].irr.set(static_cast<std::size_t>(v));
    if (wake_) wake_(cpu);
  }

  void DeliverNmi(CpuId cpu) {
    if (nmi_handler_) nmi_handler_(cpu);
  }

  bool Pending(CpuId cpu, Vector v) const {
    return percpu_[cpu].irr.test(static_cast<std::size_t>(v));
  }
  bool InService(CpuId cpu, Vector v) const {
    return percpu_[cpu].isr.test(static_cast<std::size_t>(v));
  }
  bool AnyPending(CpuId cpu) const { return percpu_[cpu].irr.any(); }
  bool AnyInService(CpuId cpu) const { return percpu_[cpu].isr.any(); }

  // Highest-priority deliverable pending vector, or -1 if none (masked by
  // in-service priority or IRR empty). Ignores the CPU interrupt flag; the
  // hypervisor checks that separately.
  Vector NextDeliverable(CpuId cpu) const {
    const PerCpu& s = percpu_[cpu];
    const int isr_prio = HighestPriority(s.isr);
    for (int v = kNumVectors - 1; v >= 0; --v) {
      if (!s.irr.test(static_cast<std::size_t>(v))) continue;
      if ((v >> 4) > isr_prio) return v;
      return -1;  // highest pending vector is masked; nothing deliverable
    }
    return -1;
  }

  // Accepts `v`: IRR -> ISR. Caller must have obtained v from
  // NextDeliverable.
  void Accept(CpuId cpu, Vector v) {
    percpu_[cpu].irr.reset(static_cast<std::size_t>(v));
    percpu_[cpu].isr.set(static_cast<std::size_t>(v));
  }

  // End-of-interrupt: retires the highest-priority in-service vector.
  void Eoi(CpuId cpu) {
    PerCpu& s = percpu_[cpu];
    for (int v = kNumVectors - 1; v >= 0; --v) {
      if (s.isr.test(static_cast<std::size_t>(v))) {
        s.isr.reset(static_cast<std::size_t>(v));
        return;
      }
    }
  }

  // Recovery enhancement: acknowledge (clear) everything pending and
  // in-service on a CPU.
  void AckAll(CpuId cpu) {
    percpu_[cpu].irr.reset();
    percpu_[cpu].isr.reset();
  }

  // Full reset of controller state (performed by ReHype's hardware
  // re-initialization).
  void ResetAll() {
    for (PerCpu& s : percpu_) {
      s.irr.reset();
      s.isr.reset();
    }
  }

 private:
  struct PerCpu {
    std::bitset<kNumVectors> irr;
    std::bitset<kNumVectors> isr;
  };

  static int HighestPriority(const std::bitset<kNumVectors>& set) {
    for (int v = kNumVectors - 1; v >= 0; --v) {
      if (set.test(static_cast<std::size_t>(v))) return v >> 4;
    }
    return -1;
  }

  std::vector<PerCpu> percpu_;
  std::function<void(CpuId)> wake_;
  std::function<void(CpuId)> nmi_handler_;
};

}  // namespace nlh::hw
