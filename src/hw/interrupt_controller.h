// Simulated interrupt controller with x86 local-APIC accept/EOI semantics.
//
// Each CPU has an IRR (pending vectors) and an ISR (in-service vectors).
// A pending vector is deliverable only if its priority class (vector >> 4)
// exceeds the highest in-service priority. Vectors left in-service across a
// hypervisor failure therefore block further delivery — which is why both
// ReHype and NiLiHype must "acknowledge all pending and in-service
// interrupts" during recovery (Section III-B).
#pragma once

#include <bit>
#include <cstdint>
#include <functional>
#include <vector>

#include "forensics/record.h"
#include "hw/cpu.h"

namespace nlh::hw {

using Vector = int;

// Vector assignments (priority class = vector >> 4, higher is stronger).
namespace vec {
inline constexpr Vector kTimer = 0xf0;      // local APIC timer
inline constexpr Vector kIpiCall = 0xfb;    // cross-CPU function call
inline constexpr Vector kIpiRecovery = 0xfc;  // recovery freeze IPI
inline constexpr Vector kNet = 0x40;        // network device (PrivVM backend)
inline constexpr Vector kBlk = 0x41;        // block device (PrivVM backend)
inline constexpr Vector kEventCheck = 0x50;  // event-channel upcall poke
}  // namespace vec

inline constexpr int kNumVectors = 256;

class InterruptController {
 public:
  explicit InterruptController(int num_cpus) : percpu_(num_cpus) {}

  // Invoked whenever a vector becomes pending on a CPU, so the platform can
  // wake an idle CPU. May be empty during early bring-up.
  void SetWakeHandler(std::function<void(CpuId)> wake) { wake_ = std::move(wake); }

  // NMIs bypass IRR/ISR and the interrupt flag entirely.
  void SetNmiHandler(std::function<void(CpuId)> handler) {
    nmi_handler_ = std::move(handler);
  }

  void Raise(CpuId cpu, Vector v) {
    NLH_RECORD(forensics::EventKind::kIrqRaise, cpu,
               static_cast<std::uint64_t>(v));
    percpu_[cpu].irr.set(v);
    if (wake_) wake_(cpu);
  }

  void DeliverNmi(CpuId cpu) {
    if (nmi_handler_) nmi_handler_(cpu);
  }

  bool Pending(CpuId cpu, Vector v) const { return percpu_[cpu].irr.test(v); }
  bool InService(CpuId cpu, Vector v) const {
    return percpu_[cpu].isr.test(v);
  }
  bool AnyPending(CpuId cpu) const { return percpu_[cpu].irr.any(); }
  bool AnyInService(CpuId cpu) const { return percpu_[cpu].isr.any(); }

  // Highest-priority deliverable pending vector, or -1 if none (masked by
  // in-service priority or IRR empty). Ignores the CPU interrupt flag; the
  // hypervisor checks that separately.
  Vector NextDeliverable(CpuId cpu) const {
    const PerCpu& s = percpu_[cpu];
    const int top = s.irr.highest();  // the common case (empty IRR) is 4 loads
    if (top < 0) return -1;
    if ((top >> 4) > HighestPriority(s.isr)) return top;
    return -1;  // highest pending vector is masked; nothing deliverable
  }

  // Accepts `v`: IRR -> ISR. Caller must have obtained v from
  // NextDeliverable.
  void Accept(CpuId cpu, Vector v) {
    percpu_[cpu].irr.reset(v);
    percpu_[cpu].isr.set(v);
  }

  // End-of-interrupt: retires the highest-priority in-service vector.
  void Eoi(CpuId cpu) {
    PerCpu& s = percpu_[cpu];
    const int v = s.isr.highest();
    if (v >= 0) s.isr.reset(v);
  }

  // Recovery enhancement: acknowledge (clear) everything pending and
  // in-service on a CPU.
  void AckAll(CpuId cpu) {
    percpu_[cpu].irr.reset_all();
    percpu_[cpu].isr.reset_all();
  }

  // Full reset of controller state (performed by ReHype's hardware
  // re-initialization).
  void ResetAll() {
    for (PerCpu& s : percpu_) {
      s.irr.reset_all();
      s.isr.reset_all();
    }
  }

 private:
  // 256-bit vector bitmap scanned word-wise: NextDeliverable sits on the
  // per-slice hot path and is almost always looking at an empty IRR, which
  // a std::bitset would answer with a 256-iteration bit scan.
  struct VectorSet {
    std::uint64_t w[kNumVectors / 64] = {};

    void set(Vector v) { w[v >> 6] |= 1ULL << (v & 63); }
    void reset(Vector v) { w[v >> 6] &= ~(1ULL << (v & 63)); }
    bool test(Vector v) const { return (w[v >> 6] >> (v & 63)) & 1ULL; }
    bool any() const { return (w[0] | w[1] | w[2] | w[3]) != 0; }
    void reset_all() { w[0] = w[1] = w[2] = w[3] = 0; }
    // Highest set vector, or -1 if empty.
    int highest() const {
      for (int i = kNumVectors / 64 - 1; i >= 0; --i) {
        if (w[i] != 0) return (i << 6) | (63 - std::countl_zero(w[i]));
      }
      return -1;
    }
  };

  struct PerCpu {
    VectorSet irr;
    VectorSet isr;
  };

  static int HighestPriority(const VectorSet& set) {
    const int v = set.highest();
    return v < 0 ? -1 : v >> 4;
  }

  std::vector<PerCpu> percpu_;
  std::function<void(CpuId)> wake_;
  std::function<void(CpuId)> nmi_handler_;
};

}  // namespace nlh::hw
