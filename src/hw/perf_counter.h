// Per-CPU performance-counter NMI source for the hang detector.
//
// Xen's hang detector (Section VI-B) programs a hardware performance counter
// to raise an NMI every 100 ms of unhalted cycles; the NMI handler checks a
// counter incremented by a recurring software timer event. We model the
// counter overflow as a recurring simulated event per CPU. NMIs are not
// maskable and are delivered even when the CPU is spinning (hung), which is
// precisely what makes hang detection possible.
#pragma once

#include <functional>
#include <vector>

#include "hw/cpu.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace nlh::hw {

class PerfCounterNmiSource {
 public:
  PerfCounterNmiSource(sim::EventQueue& queue, int num_cpus,
                       sim::Duration period, std::function<void(CpuId)> deliver)
      : queue_(queue),
        period_(period),
        deliver_(std::move(deliver)),
        running_(num_cpus, false) {}

  sim::Duration period() const { return period_; }

  void Start(CpuId cpu) {
    if (running_[cpu]) return;
    running_[cpu] = true;
    // CPUs start their counters as they come online, so the overflow NMIs
    // are naturally staggered across CPUs rather than phase-aligned.
    const sim::Duration offset =
        period_ * (cpu + 1) / (static_cast<int>(running_.size()) + 1);
    queue_.ScheduleAfter(offset, [this, cpu] {
      if (running_[cpu]) Arm(cpu);
    });
  }

  void Stop(CpuId cpu) { running_[cpu] = false; }

  void StartAll() {
    for (CpuId c = 0; c < static_cast<CpuId>(running_.size()); ++c) Start(c);
  }

 private:
  void Arm(CpuId cpu) {
    queue_.ScheduleAfter(period_, [this, cpu] {
      if (!running_[cpu]) return;
      deliver_(cpu);
      Arm(cpu);
    });
  }

  sim::EventQueue& queue_;
  sim::Duration period_;
  std::function<void(CpuId)> deliver_;
  std::vector<bool> running_;
};

}  // namespace nlh::hw
