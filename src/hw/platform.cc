#include "hw/platform.h"

namespace nlh::hw {

Platform::Platform(const PlatformConfig& config, std::uint64_t seed)
    : config_(config),
      rng_(seed),
      intc_(config.num_cpus),
      memory_(PhysicalMemory::FromGiB(config.memory_gib)),
      watchdog_nmi_(queue_, config.num_cpus, config.watchdog_nmi_period,
                    [this](CpuId c) { intc_.DeliverNmi(c); }) {
  cpus_.reserve(static_cast<std::size_t>(config.num_cpus));
  apics_.reserve(static_cast<std::size_t>(config.num_cpus));
  for (CpuId id = 0; id < config.num_cpus; ++id) {
    cpus_.push_back(std::make_unique<Cpu>(id));
    // An expiring APIC timer raises the timer vector on its own CPU.
    apics_.push_back(std::make_unique<ApicTimer>(
        queue_, id, [this](CpuId c) { intc_.Raise(c, vec::kTimer); }));
  }
}

}  // namespace nlh::hw
