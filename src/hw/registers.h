// Architectural register file of a simulated x86-64 CPU.
//
// Only the state the paper's fault model and recovery mechanisms touch is
// modeled: the 16 general-purpose registers, stack pointer, flags, program
// counter, and the FS/GS segment bases (whose loss motivated the "Save
// FS/GS" ReHype enhancement, Section IV).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace nlh::hw {

enum class Reg : int {
  kRax = 0, kRbx, kRcx, kRdx, kRsi, kRdi, kRbp, kR8,
  kR9, kR10, kR11, kR12, kR13, kR14, kR15, kRsp,
  kRflags, kRip,
  kCount,
};

inline constexpr int kNumRegs = static_cast<int>(Reg::kCount);

// Registers eligible for random bit-flip injection: the paper injects into
// "the 16 general-purpose registers, the stack pointer, the flag register,
// and the program counter" (Section VI-C). kRsp..kRip are included.
inline constexpr int kNumInjectableRegs = kNumRegs;

std::string_view RegName(Reg r);

class RegisterFile {
 public:
  std::uint64_t Get(Reg r) const { return values_[static_cast<int>(r)]; }
  void Set(Reg r, std::uint64_t v) { values_[static_cast<int>(r)] = v; }

  std::uint64_t fs_base = 0;
  std::uint64_t gs_base = 0;

  // Snapshot/restore used when entering/leaving the hypervisor and by the
  // "Save FS/GS" enhancement.
  std::array<std::uint64_t, kNumRegs> Snapshot() const { return values_; }
  void Restore(const std::array<std::uint64_t, kNumRegs>& snap) {
    values_ = snap;
  }

 private:
  std::array<std::uint64_t, kNumRegs> values_{};
};

}  // namespace nlh::hw
