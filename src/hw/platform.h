// The simulated machine: CPUs + memory + APIC timers + interrupt controller
// + perf-counter NMI source, all driven by one discrete-event queue.
//
// The platform is passive hardware; the hypervisor (hv/hypervisor.h)
// registers handlers for interrupts, NMIs and CPU wakeups, and drives
// execution. The fault injector hooks instruction retirement via
// SetHvStepHook to implement its instruction-counting trigger.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "forensics/record.h"
#include "hw/apic.h"
#include "hw/cpu.h"
#include "hw/interrupt_controller.h"
#include "hw/memory.h"
#include "hw/perf_counter.h"
#include "sim/event_queue.h"
#include "sim/log.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace nlh::hw {

struct PlatformConfig {
  int num_cpus = 8;            // paper: 8-core Nehalem hosts
  std::uint64_t memory_gib = 8;  // paper: 8 GB (Section VII-B)
  // Simulated execution speed: simulated-ns of CPU time per retired
  // hypervisor instruction. 2.5 GHz, ~1 IPC.
  double ns_per_instruction = 0.4;
  sim::Duration watchdog_nmi_period = sim::Milliseconds(100);
};

class Platform {
 public:
  explicit Platform(const PlatformConfig& config, std::uint64_t seed = 1);

  Platform(const Platform&) = delete;
  Platform& operator=(const Platform&) = delete;

  const PlatformConfig& config() const { return config_; }

  sim::EventQueue& queue() { return queue_; }
  sim::Rng& rng() { return rng_; }
  sim::Logger& log() { return log_; }
  sim::Time Now() const { return queue_.Now(); }

  int num_cpus() const { return static_cast<int>(cpus_.size()); }
  Cpu& cpu(CpuId id) { return *cpus_[static_cast<std::size_t>(id)]; }
  const Cpu& cpu(CpuId id) const { return *cpus_[static_cast<std::size_t>(id)]; }

  InterruptController& intc() { return intc_; }
  ApicTimer& apic(CpuId id) { return *apics_[static_cast<std::size_t>(id)]; }
  PhysicalMemory& memory() { return memory_; }
  PerfCounterNmiSource& watchdog_nmi() { return watchdog_nmi_; }

  sim::Duration DurationForInstructions(std::uint64_t n) const {
    return static_cast<sim::Duration>(
        static_cast<double>(n) * config_.ns_per_instruction);
  }
  std::uint64_t CyclesForDuration(sim::Duration d) const {
    return static_cast<std::uint64_t>(static_cast<double>(d) /
                                      config_.ns_per_instruction);
  }

  // --- Hooks -------------------------------------------------------------
  // Invoked after each hypervisor execution step retires on a CPU; the fault
  // injector uses this to count instructions and fire (it may throw a
  // simulated fault/panic, which unwinds the current handler).
  using HvStepHook = std::function<void(Cpu&, std::uint64_t /*instructions*/)>;
  void SetHvStepHook(HvStepHook hook) { hv_step_hook_ = std::move(hook); }
  void ClearHvStepHook() { hv_step_hook_ = nullptr; }

  void OnHvStep(Cpu& cpu, std::uint64_t instructions) {
    if (hv_step_hook_) hv_step_hook_(cpu, instructions);
  }

  // Sends an inter-processor interrupt.
  void SendIpi(CpuId target, Vector v) {
    NLH_RECORD(forensics::EventKind::kIpi, target,
               static_cast<std::uint64_t>(v));
    intc_.Raise(target, v);
  }

 private:
  PlatformConfig config_;
  sim::EventQueue queue_;
  sim::Rng rng_;
  sim::Logger log_;
  std::vector<std::unique_ptr<Cpu>> cpus_;
  std::vector<std::unique_ptr<ApicTimer>> apics_;
  InterruptController intc_;
  PhysicalMemory memory_;
  PerfCounterNmiSource watchdog_nmi_;
  HvStepHook hv_step_hook_;
};

}  // namespace nlh::hw
