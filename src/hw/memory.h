// Physical memory geometry.
//
// The hypervisor's frame table (hv/frame_table.h) holds one descriptor per
// frame; the NiLiHype recovery step that dominates its 22 ms latency
// (Table III) is a scan over all of these descriptors, so total memory size
// directly determines recovery latency.
#pragma once

#include <cstdint>

namespace nlh::hw {

inline constexpr std::uint64_t kFrameSize = 4096;

class PhysicalMemory {
 public:
  explicit PhysicalMemory(std::uint64_t bytes) : bytes_(bytes) {}

  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t num_frames() const { return bytes_ / kFrameSize; }

  static PhysicalMemory FromGiB(std::uint64_t gib) {
    return PhysicalMemory(gib << 30);
  }

 private:
  std::uint64_t bytes_;
};

}  // namespace nlh::hw
