// Per-CPU local APIC timer, modeled as a one-shot timer.
//
// Xen programs the APIC timer for the deadline of the top node of its
// software timer heap; after the timer fires it stays silent until
// reprogrammed. The window between "fired" and "reprogrammed" is exactly the
// vulnerability that the NiLiHype "Reprogram hardware timer" enhancement
// closes (Section V-A): a fault in that window without the enhancement
// leaves the CPU without timer interrupts forever.
#pragma once

#include <functional>

#include "forensics/record.h"
#include "hw/cpu.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace nlh::hw {

class ApicTimer {
 public:
  // `on_fire` is invoked (from the event queue) when the timer expires;
  // the platform routes it to the interrupt controller as the timer vector.
  ApicTimer(sim::EventQueue& queue, CpuId cpu, std::function<void(CpuId)> on_fire)
      : queue_(queue), cpu_(cpu), on_fire_(std::move(on_fire)) {}

  ApicTimer(const ApicTimer&) = delete;
  ApicTimer& operator=(const ApicTimer&) = delete;

  // One-shot: arms the timer for the absolute simulated time `deadline`.
  // Reprogramming while armed replaces the previous deadline.
  void Program(sim::Time deadline) {
    queue_.Cancel(pending_);
    armed_ = true;
    deadline_ = deadline;
    pending_ = queue_.ScheduleAt(deadline, [this] { Fire(); });
  }

  // Disarms without firing (used during recovery halt).
  void Stop() {
    queue_.Cancel(pending_);
    pending_ = sim::kInvalidEvent;
    armed_ = false;
  }

  bool armed() const { return armed_; }
  sim::Time deadline() const { return deadline_; }

  // Number of times the timer has fired; used by tests.
  std::uint64_t fire_count() const { return fire_count_; }

 private:
  void Fire() {
    NLH_RECORD(forensics::EventKind::kApicFire, cpu_,
               static_cast<std::uint64_t>(deadline_));
    pending_ = sim::kInvalidEvent;
    armed_ = false;  // one-shot: silent until reprogrammed
    ++fire_count_;
    on_fire_(cpu_);
  }

  sim::EventQueue& queue_;
  CpuId cpu_;
  std::function<void(CpuId)> on_fire_;
  sim::EventId pending_ = sim::kInvalidEvent;
  bool armed_ = false;
  sim::Time deadline_ = 0;
  std::uint64_t fire_count_ = 0;
};

}  // namespace nlh::hw
