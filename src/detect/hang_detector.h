// The hang detector (Section VI-B).
//
// Mirrors Xen's watchdog: a recurring software timer event increments a
// per-CPU counter every 100 ms (hv: PerCpuData::watchdog_soft_count, driven
// by the "watchdog_tick" recurring timer); a per-CPU performance counter
// raises an NMI every 100 ms of unhalted cycles, whose handler compares the
// counter against its last sample. Three consecutive unchanged samples
// declare a hang. This is the only detector that can catch a CPU spinning
// on a dead lock or a livelocked walk of a corrupted structure, because
// NMIs bypass the interrupt flag.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/hypervisor.h"

namespace nlh::detect {

class HangDetector {
 public:
  explicit HangDetector(hv::Hypervisor& hv, int misses_to_hang = 3)
      : hv_(hv),
        misses_to_hang_(misses_to_hang),
        last_count_(static_cast<std::size_t>(hv.platform().num_cpus()), 0),
        misses_(static_cast<std::size_t>(hv.platform().num_cpus()), 0) {}

  // Installs this detector as the hypervisor's NMI hook.
  void Install() {
    hv_.SetNmiHook([this](hw::CpuId c) { OnNmi(c); });
  }

  // The perf-counter NMI handler body.
  void OnNmi(hw::CpuId cpu) {
    const std::size_t i = static_cast<std::size_t>(cpu);
    const std::uint64_t count = hv_.percpu(cpu).watchdog_soft_count;
    NLH_RECORD(forensics::EventKind::kNmi, cpu, count,
               static_cast<std::uint64_t>(misses_[i]));
    if (count != last_count_[i]) {
      last_count_[i] = count;
      misses_[i] = 0;
      return;
    }
    if (++misses_[i] < misses_to_hang_) return;
    misses_[i] = 0;
    ++hangs_detected_;
    hv::DetectionEvent ev;
    ev.cpu = cpu;
    ev.kind = hv::DetectionKind::kHang;
    ev.code = hv::FailureCode::kWatchdogStall;
    ev.when = hv_.Now();
    ev.detail =
        "watchdog: soft counter stalled on cpu" + std::to_string(cpu);
    hv_.ReportError(std::move(ev));
  }

  // Recovery clears detector history so a frozen interval does not count.
  void ResetAll() {
    for (std::size_t i = 0; i < misses_.size(); ++i) {
      misses_[i] = 0;
      last_count_[i] = hv_.percpu(static_cast<int>(i)).watchdog_soft_count;
    }
  }

  std::uint64_t hangs_detected() const { return hangs_detected_; }

 private:
  hv::Hypervisor& hv_;
  int misses_to_hang_;
  std::vector<std::uint64_t> last_count_;
  std::vector<int> misses_;
  std::uint64_t hangs_detected_ = 0;
};

}  // namespace nlh::detect
