// Virtual hardware devices hosted by the PrivVM, and the external network
// peer used by NetBench.
//
// Devices are "hardware": they live on the event queue, raise interrupt
// vectors, and keep running while the hypervisor is frozen (completions and
// packets latch or drop, exactly like a real NIC during the recovery
// window). The NetPeer runs on a separate physical host (Section VI-A), so
// it also measures the service interruption the paper uses for its
// recovery-latency numbers (Section VII-B).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "hw/interrupt_controller.h"
#include "hw/platform.h"
#include "sim/time.h"

namespace nlh::guest {

// A disk with fixed access latency. The backend submits an operation and
// gets an interrupt when it completes.
class VirtualDisk {
 public:
  VirtualDisk(hw::Platform& platform, hw::CpuId irq_cpu,
              sim::Duration access_latency = sim::Microseconds(80))
      : platform_(platform), irq_cpu_(irq_cpu), latency_(access_latency) {}

  // Submits the operation identified by `tag`; after the access latency the
  // tag is placed on the completion queue and the block IRQ is raised.
  void Submit(std::uint64_t tag) {
    ++in_flight_;
    platform_.queue().ScheduleAfter(latency_, [this, tag] {
      --in_flight_;
      completed_.push_back(tag);
      platform_.intc().Raise(irq_cpu_, hw::vec::kBlk);
      ArmReassert();
    });
  }

  bool PopCompletion(std::uint64_t* tag) {
    if (completed_.empty()) return false;
    *tag = completed_.front();
    completed_.pop_front();
    return true;
  }

  // The interrupt line is level-triggered: while completions sit unserviced
  // the device keeps asserting, so an interrupt "acknowledged away" during
  // hypervisor recovery is re-raised rather than lost.
  void ArmReassert() {
    if (reassert_armed_) return;
    reassert_armed_ = true;
    platform_.queue().ScheduleAfter(sim::Milliseconds(1), [this] {
      reassert_armed_ = false;
      if (!completed_.empty()) {
        platform_.intc().Raise(irq_cpu_, hw::vec::kBlk);
        ArmReassert();
      }
    });
  }

  int in_flight() const { return in_flight_; }
  sim::Duration latency() const { return latency_; }

 private:
  hw::Platform& platform_;
  hw::CpuId irq_cpu_;
  sim::Duration latency_;
  std::deque<std::uint64_t> completed_;
  int in_flight_ = 0;
  bool reassert_armed_ = false;
};

// The NIC: receives frames from the external peer into a bounded RX queue
// (overflow drops, as on real hardware) and transmits frames back onto the
// wire with a fixed propagation delay.
class VirtualNic {
 public:
  VirtualNic(hw::Platform& platform, hw::CpuId irq_cpu,
             sim::Duration wire_latency = sim::Microseconds(50))
      : platform_(platform), irq_cpu_(irq_cpu), wire_latency_(wire_latency) {}

  void SetPeerReceive(std::function<void(std::uint64_t seq, sim::Time sent_at)> fn) {
    peer_receive_ = std::move(fn);
  }

  // Wire -> host.
  void DeliverFromWire(std::uint64_t seq, sim::Time sent_at) {
    if (rx_queue_.size() >= kRxDepth) {
      ++rx_dropped_;
      return;
    }
    rx_queue_.push_back({seq, sent_at});
    platform_.intc().Raise(irq_cpu_, hw::vec::kNet);
    ArmReassert();
  }

  // Level-triggered semantics (see VirtualDisk::ArmReassert).
  void ArmReassert() {
    if (reassert_armed_) return;
    reassert_armed_ = true;
    platform_.queue().ScheduleAfter(sim::Milliseconds(1), [this] {
      reassert_armed_ = false;
      if (!rx_queue_.empty()) {
        platform_.intc().Raise(irq_cpu_, hw::vec::kNet);
        ArmReassert();
      }
    });
  }

  bool PopRx(std::uint64_t* seq, sim::Time* sent_at) {
    if (rx_queue_.empty()) return false;
    *seq = rx_queue_.front().first;
    *sent_at = rx_queue_.front().second;
    rx_queue_.pop_front();
    return true;
  }

  // Host -> wire.
  void Transmit(std::uint64_t seq, sim::Time sent_at) {
    platform_.queue().ScheduleAfter(wire_latency_, [this, seq, sent_at] {
      if (peer_receive_) peer_receive_(seq, sent_at);
    });
  }

  std::uint64_t rx_dropped() const { return rx_dropped_; }

 private:
  static constexpr std::size_t kRxDepth = 256;
  hw::Platform& platform_;
  hw::CpuId irq_cpu_;
  sim::Duration wire_latency_;
  std::deque<std::pair<std::uint64_t, sim::Time>> rx_queue_;
  std::function<void(std::uint64_t, sim::Time)> peer_receive_;
  std::uint64_t rx_dropped_ = 0;
  bool reassert_armed_ = false;
};

// The NetBench sender on a separate physical host (Section VI-A): sends a
// UDP packet every millisecond and records when the reply to each arrives.
class NetPeer {
 public:
  NetPeer(hw::Platform& platform, VirtualNic& nic,
          sim::Duration period = sim::Milliseconds(1))
      : platform_(platform), nic_(nic), period_(period) {
    nic_.SetPeerReceive([this](std::uint64_t seq, sim::Time sent_at) {
      OnReply(seq, sent_at);
    });
  }

  void Start(sim::Time until) {
    stop_at_ = until;
    SendNext();
  }

  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  sim::Duration period() const { return period_; }
  sim::Time stop_at() const { return stop_at_; }
  const std::vector<sim::Time>& reply_times() const { return reply_times_; }

  // Longest interval between consecutive replies — the paper's
  // service-interruption measurement (Section VII-B).
  sim::Duration MaxGap() const {
    sim::Duration max_gap = 0;
    for (std::size_t i = 1; i < reply_times_.size(); ++i) {
      max_gap = std::max(max_gap, reply_times_[i] - reply_times_[i - 1]);
    }
    return max_gap;
  }

  // NetBench failure criterion (Section VI-A): the reception rate in some
  // one-second window dropped more than 10% below the nominal rate.
  // `exclude_from`/`exclude_to` optionally excludes the recovery window
  // (service interruption is reported separately as latency).
  bool RateDropped(double threshold = 0.10, sim::Time exclude_from = -1,
                   sim::Time exclude_to = -1) const;

 private:
  void SendNext() {
    if (platform_.Now() >= stop_at_) return;
    ++sent_;
    nic_.DeliverFromWire(sent_, platform_.Now());
    platform_.queue().ScheduleAfter(period_, [this] { SendNext(); });
  }

  void OnReply(std::uint64_t seq, sim::Time sent_at) {
    (void)seq;
    (void)sent_at;
    ++received_;
    reply_times_.push_back(platform_.Now());
  }

  hw::Platform& platform_;
  VirtualNic& nic_;
  sim::Duration period_;
  sim::Time stop_at_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::vector<sim::Time> reply_times_;
};

}  // namespace nlh::guest
