// Base class for simulated paravirtual guest kernels.
//
// Guests are explicit state machines driven by the hypervisor scheduler
// through RunSlice. The Hcall/Syscall helpers make hypercall issue points
// resumable: a simulated fault unwinds straight through RunSlice, and after
// recovery the abandoned call is either re-executed by the hypervisor
// (completion arrives via OnHypercallResult/OnSyscallResult), treated as
// committed (OnResumedAfterRecovery), or lost (OnHypercallLost) — in which
// case the kernel reacts the way a PV Linux call site would: tolerate,
// record an I/O or syscall failure, or BUG out.
#pragma once

#include <cstdint>
#include <string>

#include "hv/guest_iface.h"
#include "hv/hypervisor.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace nlh::guest {

class GuestKernel : public hv::GuestInterface {
 public:
  GuestKernel(hv::Hypervisor& hv, std::string name, std::uint64_t seed)
      : hv_(hv), name_(std::move(name)), rng_(seed) {}

  // Associates the kernel with its domain/vCPU (after domain creation).
  void Bind(hv::DomainId dom, hv::VcpuId vcpu) {
    domain_ = dom;
    vcpu_ = vcpu;
  }

  hv::DomainId domain() const { return domain_; }
  hv::VcpuId vcpu_id() const { return vcpu_; }
  const std::string& name() const { return name_; }

  // --- Failure-state accessors (run outcome classification) ----------------
  bool crashed() const { return crashed_; }
  const std::string& crash_reason() const { return crash_reason_; }
  bool memory_corrupted() const { return memory_corrupted_; }
  int syscall_failures() const { return syscall_failures_; }
  int io_errors() const { return io_errors_; }
  bool process_failed() const { return process_failed_; }
  // Number of RunSlice invocations (diagnostics).
  std::uint64_t run_slices() const { return run_slices_; }

  // The paper's per-benchmark failure criteria fold into this:
  // VM affected = kernel crash, corrupted output, failed syscalls, or a
  // failed user process.
  bool Affected() const {
    return crashed_ || memory_corrupted_ || syscall_failures_ > 0 ||
           io_errors_ > 0 || process_failed_;
  }

  // --- hv::GuestInterface ---------------------------------------------------
  hv::GuestRunResult RunSlice(hv::VcpuId vcpu, sim::Duration budget) final;
  void OnHypercallResult(hv::VcpuId vcpu, hv::HypercallCode code,
                         std::uint64_t ret) final;
  void OnSyscallResult(hv::VcpuId vcpu) final;
  void OnHypercallLost(hv::VcpuId vcpu, hv::HypercallCode code,
                       bool was_syscall) final;
  void OnFsGsLost(hv::VcpuId vcpu) final;
  void OnMemoryCorrupted(hv::VcpuId vcpu) final;
  void OnShutdown(hv::VcpuId vcpu) override;
  void OnResumedAfterRecovery(hv::VcpuId vcpu) final;

 protected:
  // Advance the workload. Called with the remaining slice budget; use
  // Compute()/Hcall()/Syscall()/Block() and return when out of budget, out
  // of work, or blocked.
  virtual void OnRun(sim::Duration budget) = 0;
  // Pending event-channel bits were consumed (bit 0 = timer virq).
  virtual void OnEvents(std::uint64_t bits) { (void)bits; }

  // --- Resumable trap helpers -------------------------------------------------
  // Issues a hypercall. Returns true when the call has completed (fresh or
  // via a recovery retry) and stores the return value; returns false when
  // the caller must back off and re-attempt at the same state-machine point
  // on a later slice. May throw (the fault unwinds the world).
  bool Hcall(hv::HypercallCode code, const hv::HypercallArgs& args,
             std::uint64_t* ret = nullptr);
  bool Hcall0(hv::HypercallCode code, std::uint64_t* ret = nullptr) {
    return Hcall(code, hv::HypercallArgs{}, ret);
  }
  bool Hcall1(hv::HypercallCode code, std::uint64_t a0,
              std::uint64_t* ret = nullptr) {
    hv::HypercallArgs a;
    a.arg0 = a0;
    return Hcall(code, a, ret);
  }
  bool Hcall2(hv::HypercallCode code, std::uint64_t a0, std::uint64_t a1,
              std::uint64_t* ret = nullptr) {
    hv::HypercallArgs a;
    a.arg0 = a0;
    a.arg1 = a1;
    return Hcall(code, a, ret);
  }

  // Issues a forwarded system call (x86-64 PV path). Same contract.
  bool Syscall(std::uint64_t sysno);

  // HVM: takes a hardware VM exit into the hypervisor. Same contract.
  bool TakeVmExit(hv::VmExitReason reason, std::uint64_t arg);

  // Requests blocking until an event arrives. Returns true if the vCPU
  // actually blocked (the caller should return from OnRun).
  bool Block();

  // Burns guest-mode CPU time within the current slice.
  void Compute(sim::Duration d) { slice_used_ += d; }
  sim::Duration SliceUsed() const { return slice_used_; }
  bool BudgetLeft() const { return slice_used_ < slice_budget_; }

  void CrashKernel(const std::string& why);
  void RecordSyscallFailure() { ++syscall_failures_; }
  void RecordIoError() { ++io_errors_; }
  void FailProcess() { process_failed_ = true; }

  hv::Domain& dom() { return *hv_.FindDomain(domain_); }

  hv::Hypervisor& hv_;
  std::string name_;
  sim::Rng rng_;

 private:
  hv::DomainId domain_ = hv::kInvalidDomain;
  hv::VcpuId vcpu_ = hv::kInvalidVcpu;

  // In-flight trap bookkeeping (the guest-side mirror of InFlightRequest).
  bool awaiting_ = false;
  bool awaiting_syscall_ = false;
  hv::HypercallCode awaiting_code_ = hv::HypercallCode::kXenVersion;
  bool pending_done_ = false;
  std::uint64_t pending_ret_ = 0;

  sim::Duration slice_budget_ = 0;
  sim::Duration slice_used_ = 0;
  bool block_requested_ = false;

  std::uint64_t run_slices_ = 0;
  bool crashed_ = false;
  std::string crash_reason_;
  bool memory_corrupted_ = false;
  bool process_failed_ = false;
  int syscall_failures_ = 0;
  int io_errors_ = 0;
};

}  // namespace nlh::guest
