#include "guest/privvm.h"

namespace nlh::guest {

void PrivVmKernel::ConnectBlkFrontend(hv::DomainId frontend, BlkRing* ring,
                                      hv::EventPort notify_port) {
  blk_conns_.push_back(BlkConn{frontend, ring, notify_port});
}

void PrivVmKernel::ConnectNetFrontend(hv::DomainId frontend, NetRxRing* rx,
                                      NetTxRing* tx, hv::EventPort notify_port,
                                      hv::GrantRef rx_gref,
                                      hv::GrantRef tx_gref) {
  net_conns_.push_back(NetConn{frontend, rx, tx, notify_port, rx_gref, tx_gref});
}

void PrivVmKernel::RequestCreateVm(hw::CpuId pin_cpu, std::uint64_t frames,
                                   std::function<void(hv::DomainId)> done) {
  create_.active = true;
  create_.phase = 0;
  create_.pin_cpu = pin_cpu;
  create_.frames = frames;
  create_.done = std::move(done);
  hv_.KickCpu(hv_.vcpu(vcpu_id()).pinned_cpu);
  hv_.WakeVcpu(vcpu_id());
}

void PrivVmKernel::OnEvents(std::uint64_t bits) {
  (void)bits;  // work is polled from the rings/devices in OnRun
}

// ---------------------------------------------------------------------------

bool PrivVmKernel::AdvanceBlkOp() {
  BlkOp& op = blk_op_;
  const BlkConn& conn = blk_conns_[static_cast<std::size_t>(op.conn)];
  switch (op.phase) {
    case 0:  // map the frontend's grant
      if (!Hcall2(hv::HypercallCode::kGrantMap,
                  static_cast<std::uint64_t>(conn.frontend),
                  static_cast<std::uint64_t>(op.req.gref))) {
        return false;
      }
      op.disk_tag = next_disk_tag_++;
      op.disk_done = false;
      if (disk_ != nullptr) disk_->Submit(op.disk_tag);
      op.phase = 1;
      return true;
    case 1: {  // wait for the disk
      std::uint64_t tag;
      while (disk_ != nullptr && disk_->PopCompletion(&tag)) {
        if (tag == op.disk_tag) op.disk_done = true;
      }
      if (!op.disk_done) return true;  // keep waiting (block upstream)
      op.phase = 2;
      return true;
    }
    case 2:  // move the data (hypervisor-mediated copy)
      if (!Hcall2(hv::HypercallCode::kGrantCopy,
                  static_cast<std::uint64_t>(conn.frontend),
                  static_cast<std::uint64_t>(op.req.gref))) {
        return false;
      }
      Compute(sim::Microseconds(3));
      op.phase = 3;
      return true;
    case 3:  // unmap
      if (!Hcall2(hv::HypercallCode::kGrantUnmap,
                  static_cast<std::uint64_t>(conn.frontend),
                  static_cast<std::uint64_t>(op.req.gref))) {
        return false;
      }
      op.phase = 4;
      return true;
    case 4: {  // push the response
      BlkResponse resp;
      resp.id = op.req.id;
      resp.ok = true;
      if (!conn.ring->PushResponse(resp)) return true;  // retry later
      op.phase = 5;
      return true;
    }
    case 5:  // kick the frontend
      if (!Hcall1(hv::HypercallCode::kEventChannelSend,
                  static_cast<std::uint64_t>(conn.notify_port))) {
        return false;
      }
      ++ios_served_;
      ++ops_since_rebalance_;
      op.active = false;
      return true;
    default:
      op.active = false;
      return true;
  }
}

bool PrivVmKernel::AdvanceNetRxOp() {
  NetOp& op = net_rx_op_;
  const NetConn& conn = net_conns_[static_cast<std::size_t>(op.conn)];
  switch (op.phase) {
    case 0:  // copy into the frontend's pre-granted RX buffer
      if (!Hcall2(hv::HypercallCode::kGrantCopy,
                  static_cast<std::uint64_t>(conn.frontend),
                  static_cast<std::uint64_t>(conn.rx_gref))) {
        return false;
      }
      op.phase = 1;
      return true;
    case 1:
      if (!conn.rx->PushRequest(op.pkt)) {
        // Frontend RX ring full: hold the packet and retry when the
        // frontend drains (its reply kicks wake us). Sustained
        // backpressure eventually overflows the NIC queue instead —
        // exactly where a real netback pushes the loss.
        ++rx_ring_backpressure_;
        return true;  // op stays active at this phase
      }
      op.phase = 2;
      return true;
    case 2:
      if (!Hcall1(hv::HypercallCode::kEventChannelSend,
                  static_cast<std::uint64_t>(conn.notify_port))) {
        return false;
      }
      ++packets_forwarded_;
      ++ops_since_rebalance_;
      op.active = false;
      return true;
    default:
      op.active = false;
      return true;
  }
}

bool PrivVmKernel::AdvanceNetTxOp() {
  NetOp& op = net_tx_op_;
  const NetConn& conn = net_conns_[static_cast<std::size_t>(op.conn)];
  switch (op.phase) {
    case 0:
      if (!Hcall2(hv::HypercallCode::kGrantCopy,
                  static_cast<std::uint64_t>(conn.frontend),
                  static_cast<std::uint64_t>(conn.tx_gref))) {
        return false;
      }
      op.phase = 1;
      return true;
    case 1:
      if (nic_ != nullptr) nic_->Transmit(op.pkt.seq, op.pkt.sent_at);
      ++packets_forwarded_;
      op.active = false;
      return true;
    default:
      op.active = false;
      return true;
  }
}

bool PrivVmKernel::AdvanceCreateOp() {
  CreateOp& op = create_;
  switch (op.phase) {
    case 0: {
      std::uint64_t domid = 0;
      if (!Hcall2(hv::HypercallCode::kDomctlCreate,
                  static_cast<std::uint64_t>(op.pin_cpu), op.frames, &domid)) {
        return false;
      }
      op.created = static_cast<hv::DomainId>(domid);
      Compute(sim::Microseconds(200));  // toolstack user-space work
      op.phase = 1;
      return true;
    }
    case 1:
      if (vm_factory_) vm_factory_(op.created);
      op.phase = 2;
      return true;
    case 2:
      if (!Hcall1(hv::HypercallCode::kDomctlUnpause,
                  static_cast<std::uint64_t>(op.created))) {
        return false;
      }
      op.phase = 3;
      return true;
    case 3:
      op.active = false;
      if (op.done) op.done(op.created);
      return true;
    default:
      op.active = false;
      return true;
  }
}

bool PrivVmKernel::PickWork() {
  // Starts new work if a pipeline slot is free; returns whether anything
  // new was started. Disk completions are consumed by the in-flight blk op.
  if (!blk_op_.active) {
    for (std::size_t i = 0; i < blk_conns_.size(); ++i) {
      BlkRequest req;
      if (blk_conns_[i].ring != nullptr && blk_conns_[i].ring->PopRequest(&req)) {
        blk_op_.active = true;
        blk_op_.conn = static_cast<int>(i);
        blk_op_.req = req;
        blk_op_.phase = 0;
        return true;
      }
    }
  }
  bool started = false;
  if (!net_tx_op_.active) {
    // TX from frontends.
    for (std::size_t i = 0; i < net_conns_.size(); ++i) {
      NetPacket pkt;
      if (net_conns_[i].tx != nullptr && net_conns_[i].tx->PopRequest(&pkt)) {
        net_tx_op_.active = true;
        net_tx_op_.conn = static_cast<int>(i);
        net_tx_op_.pkt = pkt;
        net_tx_op_.phase = 0;
        started = true;
        break;
      }
    }
  }
  if (!net_rx_op_.active && nic_ != nullptr && !net_conns_.empty()) {
    // RX from the NIC (deliver to the first net frontend).
    std::uint64_t seq;
    sim::Time sent_at;
    if (nic_->PopRx(&seq, &sent_at)) {
      net_rx_op_.active = true;
      net_rx_op_.conn = 0;
      net_rx_op_.pkt = NetPacket{seq, sent_at};
      net_rx_op_.phase = 0;
      started = true;
    }
  }
  return started;
}

void PrivVmKernel::OnRun(sim::Duration budget) {
  (void)budget;
  if (kernel_state_corrupted_) {
    // The wild write hit something the PrivVM kernel dereferences early in
    // its event loop: Dom0 crashes (Section VII-A failure reason 2).
    CrashKernel("PrivVM kernel state corrupted by wild hypervisor write");
    return;
  }
  int guard = 256;
  while (BudgetLeft() && guard-- > 0 && !crashed()) {
    // Occasional IRQ rebalance (the rarely-used non-enhanced physdev path).
    if (ops_since_rebalance_ >= 512) {
      ops_since_rebalance_ = 0;
      rebalance_pending_ = true;
    }
    if (rebalance_pending_) {
      if (!Hcall0(hv::HypercallCode::kPhysdevOp)) return;
      rebalance_pending_ = false;
      continue;
    }
    if (create_.active) {
      if (!AdvanceCreateOp()) return;
      continue;
    }

    bool progress = false;
    if (blk_op_.active) {
      const int before_phase = blk_op_.phase;
      if (!AdvanceBlkOp()) return;
      progress |= !blk_op_.active || blk_op_.phase != before_phase;
    }
    if (net_tx_op_.active) {
      const int before_phase = net_tx_op_.phase;
      if (!AdvanceNetTxOp()) return;
      progress |= !net_tx_op_.active || net_tx_op_.phase != before_phase;
    }
    if (net_rx_op_.active) {
      const int before_phase = net_rx_op_.phase;
      if (!AdvanceNetRxOp()) return;
      progress |= !net_rx_op_.active || net_rx_op_.phase != before_phase;
    }
    progress |= PickWork();
    if (!progress) {
      // Nothing to do (or only waiting on the disk): block until an event.
      if (Block()) return;
      return;  // events already pending; yield and re-run
    }
    Compute(sim::Microseconds(2));
  }
}

}  // namespace nlh::guest
