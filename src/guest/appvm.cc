#include "guest/appvm.h"

namespace nlh::guest {

namespace {
// Fake syscall numbers (the forwarding path only needs distinct values).
constexpr std::uint64_t kSysMmap = 9;
constexpr std::uint64_t kSysMunmap = 11;
constexpr std::uint64_t kSysFork = 57;
constexpr std::uint64_t kSysWrite = 1;
constexpr std::uint64_t kSysRead = 0;

constexpr int kBlkIosPerFile = 4;        // write burst per file
constexpr std::uint64_t kMapRegion = 32;  // frames used for map/unmap churn
constexpr std::uint64_t kPinRegion = 16;  // frames used for pin/unpin churn
constexpr std::size_t kMaxPinned = 6;
}  // namespace

const char* BenchmarkName(BenchmarkKind k) {
  switch (k) {
    case BenchmarkKind::kUnixBench: return "UnixBench";
    case BenchmarkKind::kBlkBench: return "BlkBench";
    case BenchmarkKind::kNetBench: return "NetBench";
  }
  return "?";
}

void AppVmKernel::OnRun(sim::Duration budget) {
  (void)budget;
  if (BenchmarkDone()) {
    // Finished: the guest sits blocked in its idle loop from here on.
    Block();
    return;
  }
  switch (kind_) {
    case BenchmarkKind::kUnixBench:
      if (mode_ == VirtMode::kHVM) {
        RunUnixBenchHvm();
      } else {
        RunUnixBench();
      }
      return;
    case BenchmarkKind::kBlkBench:
      RunBlkBench();
      return;
    case BenchmarkKind::kNetBench:
      RunNetBench();
      return;
  }
}

void AppVmKernel::OnEvents(std::uint64_t bits) {
  (void)bits;
  // Work is picked up by polling the rings in OnRun; events only wake us.
}

// ---------------------------------------------------------------------------
// UnixBench
// ---------------------------------------------------------------------------

void AppVmKernel::RunUnixBench() {
  while (BudgetLeft() && !BenchmarkDone() && !crashed()) {
    switch (phase_) {
      case 0:
        Compute(sim::Microseconds(32));
        phase_ = 1;
        break;
      case 1:
        if (!Syscall(kSysMmap)) return;
        phase_ = 2;
        break;
      case 2: {
        // mmap backing: batched PTE installs.
        hv::HypercallArgs a;
        for (int k = 0; k < 4; ++k) {
          hv::MulticallEntry e;
          e.code = hv::HypercallCode::kMmuUpdate;
          e.arg0 = (map_cursor_ + static_cast<std::uint64_t>(k)) % kMapRegion;
          e.arg1 = 1;  // map
          a.batch.push_back(e);
        }
        if (!Hcall(hv::HypercallCode::kMulticall, a)) return;
        phase_ = 3;
        break;
      }
      case 3:
        Compute(sim::Microseconds(16));
        if (!Syscall(kSysFork)) return;
        phase_ = 13;
        break;
      case 13:
        // fork/exec churn makes the guest yield back to the hypervisor
        // scheduler regularly.
        if (iterations_done_ % 3 == 1) {
          if (!Hcall0(hv::HypercallCode::kSchedOpYield)) return;
        }
        phase_ = 4;
        break;
      case 4: {
        // New process page tables: pin a fresh page-table page.
        const std::uint64_t frame =
            kMapRegion + (pin_cursor_ % kPinRegion);
        if (!Hcall1(hv::HypercallCode::kPageTablePin, frame)) return;
        pinned_.push_back(frame);
        ++pin_cursor_;
        phase_ = 5;
        break;
      }
      case 5:
        if (pinned_.size() > kMaxPinned) {
          const std::uint64_t frame = pinned_.front();
          if (!Hcall1(hv::HypercallCode::kPageTableUnpin, frame)) return;
          pinned_.pop_front();
        }
        phase_ = 6;
        break;
      case 6:
        Compute(sim::Microseconds(16));
        if (!Syscall(kSysMunmap)) return;
        phase_ = 7;
        break;
      case 7: {
        // munmap: batched PTE removals, balancing phase 2.
        hv::HypercallArgs a;
        for (int k = 0; k < 4; ++k) {
          hv::MulticallEntry e;
          e.code = hv::HypercallCode::kMmuUpdate;
          e.arg0 = (map_cursor_ + static_cast<std::uint64_t>(k)) % kMapRegion;
          e.arg1 = 0;  // unmap
          a.batch.push_back(e);
        }
        if (!Hcall(hv::HypercallCode::kMulticall, a)) return;
        map_cursor_ += 4;
        phase_ = 8;
        break;
      }
      case 8:
        // Occasional lighter calls.
        if (iterations_done_ % 16 == 5) {
          if (!Hcall2(hv::HypercallCode::kUpdateVaMapping,
                      map_cursor_ % kMapRegion, 1)) {
            return;
          }
          phase_ = 9;
          break;
        }
        phase_ = 10;
        break;
      case 9:
        if (!Hcall2(hv::HypercallCode::kUpdateVaMapping,
                    map_cursor_ % kMapRegion, 0)) {
          return;
        }
        phase_ = 10;
        break;
      case 10:
        if (iterations_done_ % 32 == 11) {
          if (!Hcall1(hv::HypercallCode::kMemoryOpIncrease, 2)) return;
          phase_ = 11;
          break;
        }
        phase_ = 12;
        break;
      case 11:
        if (!Hcall1(hv::HypercallCode::kMemoryOpDecrease, 2)) return;
        phase_ = 12;
        break;
      case 12:
        if (iterations_done_ % 64 == 23) {
          if (!Hcall0(hv::HypercallCode::kConsoleIo)) return;
        }
        phase_ = 14;
        break;
      case 14:
        // Pipe/IPC-style blocking: arm a short timer and sleep on it. This
        // is where UnixBench's scheduler pressure comes from.
        if (iterations_done_ % 4 == 2) {
          if (!Hcall1(hv::HypercallCode::kSetTimerOp,
                      static_cast<std::uint64_t>(
                          hv_.Now() + sim::Microseconds(200)))) {
            return;
          }
          phase_ = 15;
          break;
        }
        phase_ = 16;
        break;
      case 15:
        if (Block()) {
          phase_ = 16;
          return;
        }
        phase_ = 16;
        break;
      case 16:
        ++iterations_done_;
        phase_ = 0;
        break;
      default:
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// UnixBench, HVM variant
// ---------------------------------------------------------------------------
//
// Same workload shape, but the guest runs under hardware virtualization:
// system calls stay inside the guest (no forwarding), and memory management
// reaches the hypervisor as EPT violations / reclaims instead of PV
// hypercalls. Event channels, timers and scheduling still use the PV-driver
// interfaces, as in a real HVM-with-PV-drivers guest.

void AppVmKernel::RunUnixBenchHvm() {
  while (BudgetLeft() && !BenchmarkDone() && !crashed()) {
    switch (phase_) {
      case 0:
        // Syscalls are handled inside the guest kernel: pure guest time.
        Compute(sim::Microseconds(36));
        sub_ = 0;
        phase_ = 1;
        break;
      case 1:
        // mmap backing: the first touches of the new pages fault into the
        // hypervisor as EPT violations.
        if (sub_ < 4) {
          if (!TakeVmExit(hv::VmExitReason::kEptViolation,
                          (map_cursor_ + static_cast<std::uint64_t>(sub_)) %
                              kMapRegion)) {
            return;
          }
          ++sub_;
          break;
        }
        phase_ = 2;
        break;
      case 2:
        Compute(sim::Microseconds(18));
        if (iterations_done_ % 3 == 1) {
          if (!Hcall0(hv::HypercallCode::kSchedOpYield)) return;
        }
        phase_ = 3;
        break;
      case 3: {
        // Fresh process address space: fault in a page, reclaim the oldest
        // once the working set exceeds its bound (balances refcounts).
        const std::uint64_t frame = kMapRegion + (pin_cursor_ % kPinRegion);
        if (!TakeVmExit(hv::VmExitReason::kEptViolation, frame)) return;
        pinned_.push_back(frame);
        ++pin_cursor_;
        phase_ = 4;
        break;
      }
      case 4:
        if (pinned_.size() > kMaxPinned) {
          if (!TakeVmExit(hv::VmExitReason::kEptReclaim, pinned_.front())) {
            return;
          }
          pinned_.pop_front();
        }
        phase_ = 5;
        break;
      case 5:
        Compute(sim::Microseconds(18));
        sub_ = 0;
        phase_ = 6;
        break;
      case 6:
        // munmap: the pages are reclaimed from the EPT.
        if (sub_ < 4) {
          if (!TakeVmExit(hv::VmExitReason::kEptReclaim,
                          (map_cursor_ + static_cast<std::uint64_t>(sub_)) %
                              kMapRegion)) {
            return;
          }
          ++sub_;
          break;
        }
        map_cursor_ += 4;
        phase_ = 7;
        break;
      case 7:
        // Occasional emulated instructions and PV-driver calls.
        if (iterations_done_ % 16 == 5) {
          if (!TakeVmExit(hv::VmExitReason::kCpuid, 0)) return;
        }
        if (iterations_done_ % 32 == 11) {
          if (!Hcall1(hv::HypercallCode::kMemoryOpIncrease, 2)) return;
          phase_ = 8;
          break;
        }
        phase_ = 9;
        break;
      case 8:
        if (!Hcall1(hv::HypercallCode::kMemoryOpDecrease, 2)) return;
        phase_ = 9;
        break;
      case 9:
        // Pipe/IPC-style blocking through the PV event interface.
        if (iterations_done_ % 4 == 2) {
          if (!Hcall1(hv::HypercallCode::kSetTimerOp,
                      static_cast<std::uint64_t>(
                          hv_.Now() + sim::Microseconds(200)))) {
            return;
          }
          phase_ = 10;
          break;
        }
        phase_ = 11;
        break;
      case 10:
        if (Block()) {
          phase_ = 11;
          return;
        }
        phase_ = 11;
        break;
      case 11:
        ++iterations_done_;
        phase_ = 0;
        break;
      default:
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// BlkBench
// ---------------------------------------------------------------------------

bool AppVmKernel::SubmitBlkIo(bool write) {
  // Grant a data frame to the backend and push a ring request.
  const std::uint64_t frame_index =
      kMapRegion + kPinRegion + (blk_frame_cursor_++ % 8);
  hv::Domain& d = dom();
  const hv::FrameNumber frame = d.first_frame + (frame_index % d.num_frames);
  const hv::GrantRef gref = d.grants.TryGrant(hv::kPrivVmId, frame);
  if (gref == hv::kInvalidGrant) {
    // Grant table exhausted (leaked entries): the frontend driver BUG()s.
    CrashKernel("grant table exhausted");
    return false;
  }
  BlkRequest req;
  req.id = next_io_id_++;
  req.write = write;
  req.gref = gref;
  req.frame_index = frame_index;
  if (!blk_ring_->PushRequest(req)) {
    d.grants.Revoke(gref);
    return false;  // ring full; try again later
  }
  blk_outstanding_.push_back({req.id, gref});
  return true;
}

void AppVmKernel::DrainBlkResponses() {
  BlkResponse resp;
  while (blk_ring_ != nullptr && blk_ring_->PopResponse(&resp)) {
    for (std::size_t i = 0; i < blk_outstanding_.size(); ++i) {
      if (blk_outstanding_[i].id != resp.id) continue;
      const hv::GrantRef gref = blk_outstanding_[i].gref;
      hv::GrantEntry& e = dom().grants.At(gref);
      if (!resp.ok) {
        RecordIoError();
      } else if (e.xfer_count != 1) {
        // Duplicated (or missing) transfer through this grant: a retried
        // non-enhanced grant_copy re-ran against our buffer.
        RecordIoError();
      }
      if (e.map_count == 0) {
        dom().grants.Revoke(gref);
      }
      // else: backend still holds a mapping (leak); skip the revoke.
      blk_outstanding_.erase(blk_outstanding_.begin() +
                             static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
}

void AppVmKernel::RunBlkBench() {
  while (BudgetLeft() && !BenchmarkDone() && !crashed()) {
    DrainBlkResponses();
    switch (phase_) {
      case 0:  // generate 1 MB of file content
        Compute(sim::Microseconds(45));
        sub_ = 0;
        phase_ = 1;
        break;
      case 1:  // write burst
        if (sub_ < kBlkIosPerFile) {
          if (!Syscall(kSysWrite)) return;
          if (!SubmitBlkIo(/*write=*/true)) {
            if (crashed()) return;
            // ring full: kick backend and wait
            phase_ = 2;
            break;
          }
          ++sub_;
          break;
        }
        phase_ = 2;
        break;
      case 2:  // kick the backend
        if (!Hcall1(hv::HypercallCode::kEventChannelSend,
                    static_cast<std::uint64_t>(blk_kick_port_))) {
          return;
        }
        phase_ = 3;
        break;
      case 3:  // wait for the write burst to complete
        DrainBlkResponses();
        if (!blk_outstanding_.empty()) {
          if (Block()) return;
          break;
        }
        sub_ = 0;
        phase_ = 4;
        break;
      case 4:  // read back & verify against the golden copy
        if (sub_ < kBlkIosPerFile) {
          if (!Syscall(kSysRead)) return;
          if (!SubmitBlkIo(/*write=*/false)) {
            if (crashed()) return;
            phase_ = 5;
            break;
          }
          ++sub_;
          break;
        }
        phase_ = 5;
        break;
      case 5:
        if (!Hcall1(hv::HypercallCode::kEventChannelSend,
                    static_cast<std::uint64_t>(blk_kick_port_))) {
          return;
        }
        phase_ = 6;
        break;
      case 6:
        DrainBlkResponses();
        if (!blk_outstanding_.empty()) {
          if (Block()) return;
          break;
        }
        // Golden-copy comparison of the read-back data (memory corruption
        // or I/O errors recorded along the way fail it).
        Compute(sim::Microseconds(45));
        ++iterations_done_;
        phase_ = 0;
        break;
      default:
        phase_ = 0;
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// NetBench
// ---------------------------------------------------------------------------

void AppVmKernel::RunNetBench() {
  while (BudgetLeft() && !crashed()) {
    if (net_reply_pending_) {
      // Finish sending the reply (kick may have been abandoned/retried).
      if (!net_tx_->PushRequest(net_reply_)) {
        if (Block()) return;  // TX ring full; wait for backend drain
        continue;
      }
      net_reply_pending_ = false;
      if (!Hcall1(hv::HypercallCode::kEventChannelSend,
                  static_cast<std::uint64_t>(net_kick_port_))) {
        return;
      }
      continue;
    }
    NetPacket pkt;
    if (net_rx_ != nullptr && net_rx_->PopRequest(&pkt)) {
      Compute(sim::Microseconds(5));  // user-level receive + reply
      ++packets_handled_;
      net_reply_ = pkt;
      net_reply_pending_ = true;
      continue;
    }
    if (Block()) return;
    return;  // events pending; give the slice back and re-run
  }
}

}  // namespace nlh::guest
