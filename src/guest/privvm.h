// The privileged VM (Dom0): PV block/net backends and the toolstack.
//
// The PrivVM hosts the device drivers (Section III-A): it maps frontend
// grants, drives the virtual disk and NIC, and pushes responses back
// through the shared rings. It also runs the toolstack, which creates new
// domains via domctl hypercalls — the post-recovery VM-creation check of
// the 3AppVM setup goes through this exact path.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "guest/devices.h"
#include "guest/guest_kernel.h"
#include "guest/io_rings.h"

namespace nlh::guest {

class PrivVmKernel : public GuestKernel {
 public:
  PrivVmKernel(hv::Hypervisor& hv, std::uint64_t seed)
      : GuestKernel(hv, "PrivVM", seed) {}

  void AttachDisk(VirtualDisk* disk) { disk_ = disk; }
  void AttachNic(VirtualNic* nic) { nic_ = nic; }

  // Connects a frontend's block ring. `notify_port` is the PrivVM-local
  // event port used to kick the frontend with responses.
  void ConnectBlkFrontend(hv::DomainId frontend, BlkRing* ring,
                          hv::EventPort notify_port);
  // `rx_gref`/`tx_gref` are the frontend's pre-granted packet buffers the
  // backend grant-copies through.
  void ConnectNetFrontend(hv::DomainId frontend, NetRxRing* rx, NetTxRing* tx,
                          hv::EventPort notify_port, hv::GrantRef rx_gref,
                          hv::GrantRef tx_gref);

  // --- Toolstack -----------------------------------------------------------
  // Factory invoked after domctl_create returns, to build and attach the
  // new VM's guest kernel (owned by the caller/core layer).
  using VmFactory = std::function<void(hv::DomainId)>;
  void SetVmFactory(VmFactory factory) { vm_factory_ = std::move(factory); }
  // Asks the toolstack to create a VM; `done` fires after unpause.
  void RequestCreateVm(hw::CpuId pin_cpu, std::uint64_t frames,
                       std::function<void(hv::DomainId)> done);
  bool create_in_progress() const { return create_.active; }

  // Fault-injection surface: a wild hypervisor write into PrivVM state
  // crashes the PrivVM kernel the next time it runs.
  void CorruptKernelState() { kernel_state_corrupted_ = true; }

  std::uint64_t ios_served() const { return ios_served_; }
  std::uint64_t packets_forwarded() const { return packets_forwarded_; }
  // Times an RX push hit a full frontend ring and had to be retried.
  std::uint64_t rx_ring_backpressure() const { return rx_ring_backpressure_; }

 protected:
  void OnRun(sim::Duration budget) override;
  void OnEvents(std::uint64_t bits) override;

 private:
  struct BlkConn {
    hv::DomainId frontend = hv::kInvalidDomain;
    BlkRing* ring = nullptr;
    hv::EventPort notify_port = hv::kInvalidPort;
  };
  struct NetConn {
    hv::DomainId frontend = hv::kInvalidDomain;
    NetRxRing* rx = nullptr;
    NetTxRing* tx = nullptr;
    hv::EventPort notify_port = hv::kInvalidPort;
    hv::GrantRef rx_gref = hv::kInvalidGrant;
    hv::GrantRef tx_gref = hv::kInvalidGrant;
  };

  // One in-flight backend operation (sequential pipeline).
  struct BlkOp {
    bool active = false;
    int conn = -1;
    BlkRequest req;
    int phase = 0;  // 0 map, 1 wait disk, 2 copy, 3 unmap, 4 respond, 5 kick
    std::uint64_t disk_tag = 0;
    bool disk_done = false;
  };
  // Independent RX and TX pipelines, as in real netback: RX backpressure
  // must not stop TX draining (the frontend may be blocked on exactly that).
  struct NetOp {
    bool active = false;
    int conn = -1;
    NetPacket pkt;
    int phase = 0;  // rx: 0 copy, 1 push, 2 kick; tx: 0 copy, 1 transmit
  };
  struct CreateOp {
    bool active = false;
    int phase = 0;  // 0 create, 1 attach, 2 unpause, 3 done
    hw::CpuId pin_cpu = 0;
    std::uint64_t frames = 64;
    hv::DomainId created = hv::kInvalidDomain;
    std::function<void(hv::DomainId)> done;
  };

  bool AdvanceBlkOp();   // returns false when it must back off (trap pending)
  bool AdvanceNetRxOp();
  bool AdvanceNetTxOp();
  bool AdvanceCreateOp();
  bool PickWork();

  VirtualDisk* disk_ = nullptr;
  VirtualNic* nic_ = nullptr;
  std::vector<BlkConn> blk_conns_;
  std::vector<NetConn> net_conns_;
  VmFactory vm_factory_;

  BlkOp blk_op_;
  NetOp net_rx_op_;
  NetOp net_tx_op_;
  CreateOp create_;
  std::uint64_t next_disk_tag_ = 1;
  std::uint64_t ios_served_ = 0;
  std::uint64_t packets_forwarded_ = 0;
  std::uint64_t ops_since_rebalance_ = 0;
  std::uint64_t rx_ring_backpressure_ = 0;
  bool rebalance_pending_ = false;
  bool kernel_state_corrupted_ = false;
};

}  // namespace nlh::guest
