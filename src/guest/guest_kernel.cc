#include "guest/guest_kernel.h"

namespace nlh::guest {

hv::GuestRunResult GuestKernel::RunSlice(hv::VcpuId vcpu,
                                         sim::Duration budget) {
  (void)vcpu;
  ++run_slices_;
  hv::GuestRunResult r;
  if (crashed_) {
    r.action = hv::GuestRunResult::Action::kIdle;
    return r;
  }
  slice_budget_ = budget;
  slice_used_ = 0;
  block_requested_ = false;

  const std::uint64_t events = hv_.ConsumePendingEvents(vcpu_);
  if (events != 0) OnEvents(events);

  OnRun(budget);

  r.used = slice_used_;
  if (crashed_) {
    r.action = hv::GuestRunResult::Action::kIdle;
  } else if (block_requested_) {
    r.action = hv::GuestRunResult::Action::kBlock;
  } else if (slice_used_ == 0) {
    // No forward progress and no block request: nothing to do until an
    // event arrives (or a recovery retry completes) — do not busy-spin.
    r.action = hv::GuestRunResult::Action::kIdle;
  } else {
    r.action = hv::GuestRunResult::Action::kContinue;
  }
  return r;
}

bool GuestKernel::Hcall(hv::HypercallCode code, const hv::HypercallArgs& args,
                        std::uint64_t* ret) {
  if (pending_done_) {
    // A recovery-retried (or committed-at-boundary) call completed.
    pending_done_ = false;
    if (awaiting_code_ == code) {
      if (ret != nullptr) *ret = pending_ret_;
      return true;
    }
    // Stale completion for a different site; drop it and issue fresh.
  }
  if (awaiting_) return false;  // retry still pending; back off

  awaiting_ = true;
  awaiting_syscall_ = false;
  awaiting_code_ = code;
  const std::uint64_t r = hv_.Hypercall(vcpu_, code, args);  // may throw
  awaiting_ = false;
  if (ret != nullptr) *ret = r;
  return true;
}

bool GuestKernel::Syscall(std::uint64_t sysno) {
  if (pending_done_) {
    pending_done_ = false;
    return true;
  }
  if (awaiting_) return false;

  awaiting_ = true;
  awaiting_syscall_ = true;
  hv_.ForwardedSyscall(vcpu_, sysno);  // may throw
  awaiting_ = false;
  return true;
}

bool GuestKernel::TakeVmExit(hv::VmExitReason reason, std::uint64_t arg) {
  if (pending_done_) {
    pending_done_ = false;
    return true;
  }
  if (awaiting_) return false;

  awaiting_ = true;
  awaiting_syscall_ = false;
  hv_.VmExit(vcpu_, reason, arg);  // may throw
  awaiting_ = false;
  return true;
}

bool GuestKernel::Block() {
  std::uint64_t ret = 1;
  if (!Hcall0(hv::HypercallCode::kSchedOpBlock, &ret)) return false;
  if (ret == 0) {
    block_requested_ = true;
    return true;
  }
  return false;  // events already pending; keep running
}

void GuestKernel::CrashKernel(const std::string& why) {
  if (crashed_) return;
  crashed_ = true;
  crash_reason_ = why;
}

void GuestKernel::OnHypercallResult(hv::VcpuId vcpu, hv::HypercallCode code,
                                    std::uint64_t ret) {
  (void)vcpu;
  awaiting_ = false;
  awaiting_code_ = code;
  pending_done_ = true;
  pending_ret_ = ret;
}

void GuestKernel::OnSyscallResult(hv::VcpuId vcpu) {
  (void)vcpu;
  awaiting_ = false;
  pending_done_ = true;
  pending_ret_ = 0;
}

void GuestKernel::OnHypercallLost(hv::VcpuId vcpu, hv::HypercallCode code,
                                  bool was_syscall) {
  (void)vcpu;
  awaiting_ = false;

  if (was_syscall) {
    // The user process sees a failed system call (the benchmarks log these;
    // a logged syscall failure fails the benchmark, Section VI-A).
    RecordSyscallFailure();
    pending_done_ = true;
    pending_ret_ = ~0ULL;
    return;
  }

  const hv::HypercallTraits& traits = hv::TraitsOf(code);
  if (rng_.Chance(traits.lost_tolerated)) {
    // The call site tolerates the loss (guest-level retry or benign error
    // path); resume as if it returned.
    pending_done_ = true;
    pending_ret_ = 0;
    return;
  }
  switch (code) {
    case hv::HypercallCode::kMmuUpdate:
    case hv::HypercallCode::kPageTablePin:
    case hv::HypercallCode::kPageTableUnpin:
    case hv::HypercallCode::kUpdateVaMapping:
    case hv::HypercallCode::kMemoryOpIncrease:
    case hv::HypercallCode::kMemoryOpDecrease:
    case hv::HypercallCode::kMulticall:
      // PV Linux BUG()s when its page-table view diverges from Xen's.
      CrashKernel("lost " + std::string(hv::HypercallName(code)) +
                  " left page tables inconsistent");
      break;
    case hv::HypercallCode::kGrantMap:
    case hv::HypercallCode::kGrantUnmap:
    case hv::HypercallCode::kGrantCopy:
    case hv::HypercallCode::kEventChannelSend:
      RecordIoError();
      pending_done_ = true;
      pending_ret_ = ~0ULL;
      break;
    case hv::HypercallCode::kDomctlCreate:
    case hv::HypercallCode::kDomctlDestroy:
    case hv::HypercallCode::kDomctlUnpause:
    case hv::HypercallCode::kPhysdevOp:
      // Toolstack wedged: the call never completes from its point of view.
      FailProcess();
      pending_done_ = true;
      pending_ret_ = ~0ULL;
      break;
    default:
      pending_done_ = true;
      pending_ret_ = 0;
      break;
  }
}

void GuestKernel::OnFsGsLost(hv::VcpuId vcpu) {
  (void)vcpu;
  // Clobbered FS/GS breaks user-level TLS; whether the active process dies
  // depends on what it was doing at the instant of the fault (kernel
  // context and TLS-free stretches survive).
  if (rng_.Chance(0.5)) {
    FailProcess();
  }
}

void GuestKernel::OnMemoryCorrupted(hv::VcpuId vcpu) {
  (void)vcpu;
  memory_corrupted_ = true;
}

void GuestKernel::OnShutdown(hv::VcpuId vcpu) {
  (void)vcpu;
  crashed_ = true;
  crash_reason_ = "domain shut down";
}

void GuestKernel::OnResumedAfterRecovery(hv::VcpuId vcpu) {
  if (!awaiting_) return;
  // If the hypervisor will retry our call, completion arrives later.
  const hv::InFlightRequest& req = hv_.vcpu(vcpu).inflight;
  if (req.needs_retry || req.lost) return;
  // The call committed right at the abandonment boundary: we resume after
  // the trap instruction with a garbage return value.
  awaiting_ = false;
  pending_done_ = true;
  pending_ret_ = 0;
  if (awaiting_syscall_) pending_ret_ = 0;
}

}  // namespace nlh::guest
