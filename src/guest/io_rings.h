// Shared-memory I/O rings between frontends (AppVMs) and backends (PrivVM).
//
// Models the Xen PV split-driver protocol: the frontend pushes requests
// carrying grant references, kicks the backend through an event channel,
// and the backend pushes responses back. The ring itself is shared guest
// memory, so it survives hypervisor recovery untouched — which is exactly
// why retried/duplicated backend hypercalls are detectable by sequence
// mismatches at this layer.
#pragma once

#include <cstdint>
#include <deque>

#include "hv/types.h"
#include "sim/time.h"

namespace nlh::guest {

struct BlkRequest {
  std::uint64_t id = 0;
  bool write = false;
  hv::GrantRef gref = hv::kInvalidGrant;
  std::uint64_t frame_index = 0;  // frontend-relative frame
};

struct BlkResponse {
  std::uint64_t id = 0;
  bool ok = true;
};

struct NetPacket {
  std::uint64_t seq = 0;
  sim::Time sent_at = 0;
};

// A simple bidirectional ring. Depth-bounded like real rings; a full ring
// makes the producer wait (frontends block, devices drop).
template <typename Req, typename Resp>
struct SharedRing {
  static constexpr std::size_t kDepth = 32;

  std::deque<Req> requests;
  std::deque<Resp> responses;
  std::uint64_t req_produced = 0;
  std::uint64_t resp_produced = 0;

  bool PushRequest(const Req& r) {
    if (requests.size() >= kDepth) return false;
    requests.push_back(r);
    ++req_produced;
    return true;
  }
  bool PopRequest(Req* out) {
    if (requests.empty()) return false;
    *out = requests.front();
    requests.pop_front();
    return true;
  }
  bool PushResponse(const Resp& r) {
    if (responses.size() >= kDepth) return false;
    responses.push_back(r);
    ++resp_produced;
    return true;
  }
  bool PopResponse(Resp* out) {
    if (responses.empty()) return false;
    *out = responses.front();
    responses.pop_front();
    return true;
  }
};

using BlkRing = SharedRing<BlkRequest, BlkResponse>;
using NetRxRing = SharedRing<NetPacket, NetPacket>;  // responses unused
using NetTxRing = SharedRing<NetPacket, NetPacket>;

}  // namespace nlh::guest
