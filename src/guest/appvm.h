// AppVM guest kernels running the paper's synthetic benchmarks
// (Section VI-A):
//
//   UnixBench — hypercall-heavy programs stressing virtual-memory
//     management: multicall-batched mmu_updates, page-table pin/unpin,
//     forwarded syscalls.
//   BlkBench  — creates/copies/reads/removes files through the PV block
//     frontend with guest caching off, so every operation reaches the
//     PrivVM backend (grants + event channels + disk).
//   NetBench  — a user-level UDP ping receiver; an external sender
//     (guest/devices.h NetPeer) sends a packet every 1 ms and measures the
//     reply stream.
//
// Benchmarks are fixed-work: they complete a configured number of
// iterations and then report done (the runner checks completion against a
// deadline and output integrity against the golden copy).
#pragma once

#include <deque>
#include <vector>

#include "guest/guest_kernel.h"
#include "guest/io_rings.h"

namespace nlh::guest {

enum class BenchmarkKind { kUnixBench, kBlkBench, kNetBench };

// Virtualization mode of an AppVM. PV guests issue explicit hypercalls
// (and their x86-64 syscalls are forwarded through the hypervisor);
// HVM guests run under hardware virtualization and enter the hypervisor
// through VM exits instead (Section VI-A notes that injection results with
// HVM AppVMs closely match PV ones).
enum class VirtMode { kPV, kHVM };

const char* BenchmarkName(BenchmarkKind k);

class AppVmKernel : public GuestKernel {
 public:
  AppVmKernel(hv::Hypervisor& hv, std::string name, std::uint64_t seed,
              BenchmarkKind kind, int iterations,
              VirtMode mode = VirtMode::kPV)
      : GuestKernel(hv, std::move(name), seed),
        kind_(kind),
        mode_(mode),
        iterations_target_(iterations) {}

  // Wires the PV block frontend: the shared ring, and the local event port
  // this frontend kicks the backend through.
  void ConnectBlk(BlkRing* ring, hv::EventPort kick_port) {
    blk_ring_ = ring;
    blk_kick_port_ = kick_port;
  }
  // Wires the PV net frontend.
  void ConnectNet(NetRxRing* rx, NetTxRing* tx, hv::EventPort kick_port) {
    net_rx_ = rx;
    net_tx_ = tx;
    net_kick_port_ = kick_port;
  }

  BenchmarkKind kind() const { return kind_; }
  VirtMode mode() const { return mode_; }
  bool BenchmarkDone() const { return iterations_done_ >= iterations_target_; }
  int iterations_done() const { return iterations_done_; }
  int iterations_target() const { return iterations_target_; }
  std::uint64_t packets_handled() const { return packets_handled_; }

 protected:
  void OnRun(sim::Duration budget) override;
  void OnEvents(std::uint64_t bits) override;

 private:
  void RunUnixBench();
  void RunUnixBenchHvm();
  void RunBlkBench();
  void RunNetBench();
  void DrainBlkResponses();
  bool SubmitBlkIo(bool write);

  BenchmarkKind kind_;
  VirtMode mode_ = VirtMode::kPV;
  int iterations_target_;
  int iterations_done_ = 0;
  int phase_ = 0;
  int sub_ = 0;  // sub-step within a phase (e.g. I/O index within a file)

  // UnixBench state.
  std::deque<std::uint64_t> pinned_;
  std::uint64_t map_cursor_ = 0;
  std::uint64_t pin_cursor_ = 32;

  // BlkBench state.
  BlkRing* blk_ring_ = nullptr;
  hv::EventPort blk_kick_port_ = hv::kInvalidPort;
  struct OutstandingIo {
    std::uint64_t id;
    hv::GrantRef gref;
  };
  std::vector<OutstandingIo> blk_outstanding_;
  std::uint64_t next_io_id_ = 1;
  std::uint64_t blk_frame_cursor_ = 0;

  // NetBench state.
  NetRxRing* net_rx_ = nullptr;
  NetTxRing* net_tx_ = nullptr;
  hv::EventPort net_kick_port_ = hv::kInvalidPort;
  std::uint64_t packets_handled_ = 0;
  bool net_reply_pending_ = false;
  NetPacket net_reply_{};
};

}  // namespace nlh::guest
