#include "guest/devices.h"

#include <algorithm>

namespace nlh::guest {

bool NetPeer::RateDropped(double threshold, sim::Time exclude_from,
                          sim::Time exclude_to) const {
  if (reply_times_.empty()) return sent_ > 0;
  const double nominal_per_sec =
      static_cast<double>(sim::kSecond) / static_cast<double>(period_);

  const sim::Time start = reply_times_.front();
  const sim::Time end = reply_times_.back();
  for (sim::Time w = start; w + sim::kSecond <= end; w += sim::kSecond / 4) {
    const sim::Time w_end = w + sim::kSecond;
    if (exclude_from >= 0 && w < exclude_to && w_end > exclude_from) {
      continue;  // window overlaps the excluded recovery interval
    }
    const auto lo = std::lower_bound(reply_times_.begin(), reply_times_.end(), w);
    const auto hi = std::lower_bound(reply_times_.begin(), reply_times_.end(), w_end);
    const double got = static_cast<double>(hi - lo);
    if (got < nominal_per_sec * (1.0 - threshold)) return true;
  }
  return false;
}

}  // namespace nlh::guest
