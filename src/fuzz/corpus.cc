#include "fuzz/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "forensics/dossier.h"

namespace nlh::fuzz {

std::string ReproducerJson(const Scenario& s, const OracleOutcome& o,
                           const core::RunResult results[kNumPolicies]) {
  std::string out = "{";
  out += "\"schema\":" + sim::JsonStr(kReproSchema);
  out += ",\"divergence\":{";
  out += "\"kind\":" + sim::JsonStr(DivergenceKindName(o.divergence));
  out += ",\"detail\":" + sim::JsonStr(o.detail);
  out += ",\"signature\":" + sim::JsonStr(HexU64(o.divergence_signature));
  out += "}";
  out += ",\"plan_elements\":" + std::to_string(s.PlanElementCount());
  out += ",\"scenario\":" + s.ToJson();
  out += ",\"expected\":[";
  for (int i = 0; i < kNumPolicies; ++i) {
    if (i) out += ",";
    out += o.verdicts[static_cast<std::size_t>(i)].ToJson();
  }
  out += "]";
  // Dossier-compatible replay section: the same building blocks
  // forensics::ReplayRun assembles, one entry per policy.
  out += ",\"replay\":{\"schema\":\"nlh-dossier-v1\",\"runs\":[";
  const std::array<core::RunConfig, kNumPolicies> cfgs = OracleConfigs(s);
  for (int i = 0; i < kNumPolicies; ++i) {
    if (i) out += ",";
    out += "{\"config\":" + forensics::ConfigJson(cfgs[static_cast<std::size_t>(i)]);
    out += ",\"result\":" + forensics::ResultJson(results[i]);
    out += ",\"injection\":" + forensics::InjectionJson(results[i]);
    out += ",\"detection\":" + forensics::DetectionJson(results[i]);
    out += ",\"audit_findings\":" + results[i].audit_report.ToJson();
    out += "}";
  }
  out += "]}}";
  return out;
}

std::string WriteReproducer(const std::string& dir, const Scenario& s,
                            const OracleOutcome& o,
                            const core::RunResult results[kNumPolicies]) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  char name[48];
  std::snprintf(name, sizeof(name), "repro_%016llx.json",
                static_cast<unsigned long long>(s.Fingerprint()));
  const std::string path = (std::filesystem::path(dir) / name).string();
  const std::string json = ReproducerJson(s, o, results);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return "";
  const std::size_t n = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = (n == json.size()) && (std::fclose(f) == 0);
  return ok ? path : "";
}

bool LoadReproducer(const std::string& path, LoadedReproducer* out,
                    std::string* error) {
  const auto fail = [error](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return fail("unreadable: " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  sim::JsonValue doc;
  if (!sim::ParseJson(text, &doc)) return fail("invalid JSON: " + path);
  const sim::JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || schema->str != kReproSchema) {
    return fail("not an " + std::string(kReproSchema) + " bundle: " + path);
  }
  const sim::JsonValue* divergence = doc.Find("divergence");
  const sim::JsonValue* kind =
      divergence != nullptr ? divergence->Find("kind") : nullptr;
  LoadedReproducer rep;
  if (kind == nullptr ||
      !DivergenceKindFromName(kind->str, &rep.divergence)) {
    return fail("missing/unknown divergence kind: " + path);
  }
  const sim::JsonValue* scenario = doc.Find("scenario");
  if (scenario == nullptr || !Scenario::FromJson(*scenario, &rep.scenario)) {
    return fail("malformed scenario: " + path);
  }
  const sim::JsonValue* expected = doc.Find("expected");
  if (expected == nullptr || !expected->IsArray() ||
      expected->items.size() != kNumPolicies) {
    return fail("malformed expected verdicts: " + path);
  }
  for (const sim::JsonValue& v : expected->items) {
    rep.expected_verdicts.push_back(sim::WriteJson(v));
  }
  *out = std::move(rep);
  return true;
}

std::vector<std::string> ListCorpus(const std::string& dir) {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string p = entry.path().string();
    if (p.size() >= 5 && p.compare(p.size() - 5, 5, ".json") == 0) {
      paths.push_back(p);
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

}  // namespace nlh::fuzz
