// The fuzzing engine: deterministic, coverage-guided search over scenarios
// with a differential oracle and automatic shrinking.
//
// Determinism contract: a campaign is a pure function of FuzzOptions
// (master_seed, iterations, batch, shrink budget). All rng draws happen on
// the coordinating thread in batch order; worker threads only execute runs
// (core::RunMany is thread-count-invariant), so the scenario stream, the
// coverage map, the divergence list, and every shrunk reproducer are
// byte-identical at any thread count — the property test_fuzz locks in.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/coverage.h"
#include "fuzz/oracle.h"

namespace nlh::fuzz {

struct FuzzOptions {
  std::uint64_t master_seed = 1;
  int iterations = 200;      // scenarios to evaluate (3 runs each)
  int threads = 0;           // forwarded to core::RunMany (0 = hw threads)
  int batch = 16;            // scenarios evaluated per RunMany batch
  int max_shrink_evals = 64;  // oracle-eval budget per flagged scenario
  int max_corpus = 16;       // reproducers emitted per campaign
  std::string corpus_dir;    // "" = keep reproducers in memory only
  // Optional progress lines (batch summaries, shrink results).
  std::function<void(const std::string&)> on_progress;
};

struct FuzzReproducer {
  Scenario scenario;  // shrunk
  DivergenceKind kind = DivergenceKind::kNone;
  std::string detail;
  std::uint64_t divergence_signature = 0;
  int plan_elements = 0;
  int shrink_evals = 0;
  std::string path;  // written file, "" when corpus_dir unset or write failed
};

struct FuzzStats {
  int scenarios = 0;
  int divergent = 0;         // scenarios flagged by the oracle
  int unique_divergent = 0;  // distinct divergence signatures
  int shrink_evals = 0;
  std::size_t coverage = 0;          // distinct coverage signatures
  std::uint64_t coverage_hash = 0;   // canonical digest of the coverage map
  std::vector<FuzzReproducer> reproducers;
};

FuzzStats Fuzz(const FuzzOptions& options);

}  // namespace nlh::fuzz
