// A Scenario is the fuzzer's unit of search: a fully serializable seed +
// plan that pins down one deterministic experiment — guest workload mix,
// injection target/class/trigger placement, planted latent corruptions —
// with *no* hidden randomness. Everything the classic campaign draws from
// its run rng (injection time inside the window, the level-2 instruction
// count) is explicit here, so a scenario replays bit-identically from its
// JSON form and delta-debugging over the plan is well-defined: dropping a
// plan element cannot silently shift any other element.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"
#include "sim/json.h"

namespace nlh::fuzz {

inline constexpr const char* kScenarioSchema = "nlh-scenario-v1";

// --- Stable hashing (FNV-1a) ------------------------------------------------
// Shared by scenario fingerprints and oracle coverage signatures; must stay
// platform-independent because corpus filenames and recorded signatures are
// committed to the repository.
inline constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

inline std::uint64_t FnvMix(std::uint64_t h, const char* data, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t FnvMix(std::uint64_t h, const std::string& s) {
  return FnvMix(h, s.data(), s.size());
}

inline std::uint64_t FnvMix(std::uint64_t h, std::uint64_t v) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  return FnvMix(h, bytes, sizeof(bytes));
}

struct Scenario {
  std::uint64_t seed = 1;

  // --- Guest workload mix ---------------------------------------------------
  core::Setup setup = core::Setup::k1AppVM;
  guest::BenchmarkKind bench = guest::BenchmarkKind::kUnixBench;  // 1AppVM only
  int unixbench_iterations = 20000;
  int blkbench_files = 2000;
  int netbench_ms = 1500;
  bool vm3_at_start = false;  // 3AppVM only (Figure 3 variant)
  bool share_cpu = false;
  bool hvm = false;

  // --- Injection plan -------------------------------------------------------
  bool inject = true;
  inject::FaultType fault = inject::FaultType::kFailstop;
  std::int64_t inject_at_ns = 400000000;  // exact level-1 trigger time
  std::int64_t second_trigger = 0;        // exact level-2 instruction count
  inject::TriggerSpec trigger;            // optional event condition
  std::vector<inject::PlantSpec> plants;  // silent latent corruptions

  // Expands the scenario into a concrete RunConfig for one recovery policy.
  // The injection window collapses to [inject_at_ns, inject_at_ns] and the
  // level-2 count is pinned, so the run rng's draw *order* is identical to a
  // classic campaign run while the drawn values are scenario-controlled.
  core::RunConfig ToRunConfig(core::Mechanism mechanism) const;

  // Number of "plan elements" — the size metric the shrinker minimizes and
  // the acceptance criterion for minimal reproducers: initial AppVMs, each
  // enabled option (vm3-at-start, shared CPU, HVM), the fault itself, a
  // nontrivial trigger condition, and each planted corruption.
  int PlanElementCount() const;

  std::string ToJson() const;
  // Strict parse of a ToJson() document (schema checked). Unknown fields are
  // rejected so corpus files cannot silently rot.
  static bool FromJson(const sim::JsonValue& v, Scenario* out);

  // FNV-1a over the canonical JSON form; names corpus files.
  std::uint64_t Fingerprint() const { return FnvMix(kFnvOffset, ToJson()); }
};

// Formats a 64-bit value the way scenario/reproducer JSON stores it: as a
// hex string ("0x0123456789abcdef"), because raw u64 values do not survive
// the double-typed JSON number path.
std::string HexU64(std::uint64_t v);
bool ParseHexU64(const std::string& s, std::uint64_t* out);

}  // namespace nlh::fuzz
