#include "fuzz/shrinker.h"

#include <vector>

namespace nlh::fuzz {

namespace {

// Candidate simplifications of `s`, most aggressive first. Regenerated
// after every accepted transform (accepting one changes what is droppable).
std::vector<Scenario> Candidates(const Scenario& s) {
  std::vector<Scenario> out;
  const auto push = [&out](Scenario c) { out.push_back(std::move(c)); };

  // Drop plants, last first: plant rng streams are keyed by index, so
  // dropping the last one leaves every surviving plant bit-identical.
  // (Dropping an earlier plant renumbers the rest — legal, but acceptance
  // then depends on the re-evaluation, so try the cheap direction first.)
  for (std::size_t i = s.plants.size(); i-- > 0;) {
    Scenario c = s;
    c.plants.erase(c.plants.begin() + static_cast<std::ptrdiff_t>(i));
    push(std::move(c));
  }
  // Collapse the workload.
  if (s.setup == core::Setup::k3AppVM) {
    for (const guest::BenchmarkKind b :
         {guest::BenchmarkKind::kUnixBench, guest::BenchmarkKind::kBlkBench,
          guest::BenchmarkKind::kNetBench}) {
      Scenario c = s;
      c.setup = core::Setup::k1AppVM;
      c.bench = b;
      c.vm3_at_start = false;
      push(std::move(c));
    }
  }
  if (s.vm3_at_start) {
    Scenario c = s;
    c.vm3_at_start = false;
    push(std::move(c));
  }
  if (s.share_cpu) {
    Scenario c = s;
    c.share_cpu = false;
    push(std::move(c));
  }
  if (s.hvm) {
    Scenario c = s;
    c.hvm = false;
    push(std::move(c));
  }
  // Drop the fault entirely when plants could carry the divergence alone.
  if (s.inject && !s.plants.empty()) {
    Scenario c = s;
    c.inject = false;
    push(std::move(c));
  }
  // Detrivialize the trigger condition.
  if (s.trigger.kind != inject::TriggerKind::kTime) {
    Scenario c = s;
    c.trigger.kind = inject::TriggerKind::kTime;
    c.trigger.skip = 0;
    push(std::move(c));
  } else if (s.trigger.skip != 0) {
    Scenario c = s;
    c.trigger.skip = 0;
    push(std::move(c));
  }
  // Simplify the fault class toward the most deterministic one.
  if (s.inject && s.fault != inject::FaultType::kFailstop) {
    Scenario c = s;
    c.fault = inject::FaultType::kFailstop;
    push(std::move(c));
  }
  // Halve workloads (floors keep the run long enough to inject into).
  if (s.unixbench_iterations > 4000) {
    Scenario c = s;
    c.unixbench_iterations = s.unixbench_iterations / 2;
    push(std::move(c));
  }
  if (s.blkbench_files > 400) {
    Scenario c = s;
    c.blkbench_files = s.blkbench_files / 2;
    push(std::move(c));
  }
  if (s.netbench_ms > 500) {
    Scenario c = s;
    c.netbench_ms = s.netbench_ms / 2;
    push(std::move(c));
  }
  // Coarsen timings.
  if (s.inject_at_ns % 1000000 != 0) {
    Scenario c = s;
    c.inject_at_ns = s.inject_at_ns - s.inject_at_ns % 1000000;
    push(std::move(c));
  }
  if (s.second_trigger != 0) {
    Scenario c = s;
    c.second_trigger = 0;
    push(std::move(c));
  }
  // Pin the seed last — it rerolls every downstream draw, so it only
  // survives when the divergence is robust to the workload's randomness.
  if (s.seed != 1) {
    Scenario c = s;
    c.seed = 1;
    push(std::move(c));
  }
  return out;
}

}  // namespace

ShrinkResult ShrinkScenario(const Scenario& start, DivergenceKind keep,
                            const ScenarioEval& eval, int max_evals) {
  ShrinkResult r;
  r.scenario = start;
  bool progressed = true;
  while (progressed && r.evals < max_evals) {
    progressed = false;
    for (const Scenario& cand : Candidates(r.scenario)) {
      if (r.evals >= max_evals) break;
      ++r.evals;
      if (eval(cand).divergence == keep) {
        r.scenario = cand;
        ++r.accepted;
        progressed = true;
        break;  // restart from the new, smaller scenario
      }
    }
  }
  return r;
}

}  // namespace nlh::fuzz
