#include "fuzz/oracle.h"

#include <algorithm>
#include <set>

#include "hv/failure.h"

namespace nlh::fuzz {

const char* DivergenceKindName(DivergenceKind k) {
  switch (k) {
    case DivergenceKind::kNone: return "none";
    case DivergenceKind::kOutcomeSplit: return "outcome_split";
    case DivergenceKind::kRecoveryGap: return "recovery_gap";
    case DivergenceKind::kAuditSplit: return "audit_split";
    case DivergenceKind::kAuditSlugs: return "audit_slugs";
    case DivergenceKind::kVmVerdictSplit: return "vm_verdict_split";
    case DivergenceKind::kCount: break;
  }
  return "?";
}

bool DivergenceKindFromName(const std::string& name, DivergenceKind* out) {
  for (int i = 0; i < static_cast<int>(DivergenceKind::kCount); ++i) {
    const auto k = static_cast<DivergenceKind>(i);
    if (name == DivergenceKindName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

PolicyVerdict MakeVerdict(core::Mechanism mechanism,
                          const core::RunResult& r) {
  PolicyVerdict v;
  v.mechanism = mechanism;
  v.outcome = r.outcome;
  v.detected = r.detected;
  v.recoveries = r.recoveries;
  v.success = r.success;
  v.no_vm_failures = r.no_vm_failures;
  v.failure_reason = r.failure_reason;
  v.system_dead = r.system_dead;
  v.vm3_attempted = r.vm3_attempted;
  v.vm3_ok = r.vm3_ok;
  v.affected_vms = r.AffectedVmCount();
  v.audit_clean = r.audit_clean;
  v.latent_corruption = r.latent_corruption;
  std::set<std::string> findings, subsystems;
  for (const audit::AuditFinding& f : r.audit_report.findings) {
    if (f.severity == audit::AuditSeverity::kInfo) continue;
    findings.insert(f.invariant);
    subsystems.insert(audit::AuditSubsystemName(f.subsystem));
  }
  v.latent_findings.assign(findings.begin(), findings.end());
  v.latent_subsystems.assign(subsystems.begin(), subsystems.end());
  v.detection_latency_ns = r.detection_latency >= 0 ? r.detection_latency : -1;
  v.first_recovery_latency_ns =
      r.recoveries > 0 ? r.first_recovery_latency : -1;
  return v;
}

namespace {

std::string StrArrayJson(const std::vector<std::string>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i) out += ",";
    out += sim::JsonStr(xs[i]);
  }
  return out + "]";
}

// Power-of-two bucket of a cycle count: coarse enough to be stable under
// small perturbations, fine enough that a recovery path that doubles
// hypervisor work counts as new coverage.
int CycleBucket(std::uint64_t cycles) {
  int b = 0;
  while (cycles > 1) {
    cycles >>= 1;
    ++b;
  }
  return b;
}

std::uint64_t MixVerdict(std::uint64_t h, const PolicyVerdict& v) {
  h = FnvMix(h, std::string(core::MechanismName(v.mechanism)));
  h = FnvMix(h, std::string(core::OutcomeClassName(v.outcome)));
  h = FnvMix(h, static_cast<std::uint64_t>(v.success ? 1 : 0));
  h = FnvMix(h, static_cast<std::uint64_t>(v.no_vm_failures ? 1 : 0));
  h = FnvMix(h, std::string(hv::FailureReasonName(v.failure_reason)));
  h = FnvMix(h, static_cast<std::uint64_t>(v.affected_vms));
  h = FnvMix(h, static_cast<std::uint64_t>(v.audit_clean ? 1 : 0));
  for (const std::string& s : v.latent_findings) h = FnvMix(h, s);
  return h;
}

}  // namespace

std::string PolicyVerdict::ToJson() const {
  // Integer-valued numbers only (bools as 0/1): parse -> sim::WriteJson must
  // be a fixed point for the corpus runner's byte-for-byte comparison.
  const auto b = [](bool x) { return std::string(x ? "1" : "0"); };
  std::string out = "{";
  out += "\"mechanism\":" + sim::JsonStr(core::MechanismName(mechanism));
  out += ",\"outcome\":" + sim::JsonStr(core::OutcomeClassName(outcome));
  out += ",\"detected\":" + b(detected);
  out += ",\"recoveries\":" + std::to_string(recoveries);
  out += ",\"success\":" + b(success);
  out += ",\"no_vm_failures\":" + b(no_vm_failures);
  out += ",\"failure_reason\":" +
         sim::JsonStr(hv::FailureReasonName(failure_reason));
  out += ",\"system_dead\":" + b(system_dead);
  out += ",\"vm3_attempted\":" + b(vm3_attempted);
  out += ",\"vm3_ok\":" + b(vm3_ok);
  out += ",\"affected_vms\":" + std::to_string(affected_vms);
  out += ",\"audit_clean\":" + b(audit_clean);
  out += ",\"latent_corruption\":" + b(latent_corruption);
  out += ",\"latent_findings\":" + StrArrayJson(latent_findings);
  out += ",\"latent_subsystems\":" + StrArrayJson(latent_subsystems);
  out += ",\"detection_latency_ns\":" + std::to_string(detection_latency_ns);
  out += ",\"first_recovery_latency_ns\":" +
         std::to_string(first_recovery_latency_ns);
  out += "}";
  return out;
}

std::array<core::RunConfig, kNumPolicies> OracleConfigs(const Scenario& s) {
  std::array<core::RunConfig, kNumPolicies> cfgs;
  for (int i = 0; i < kNumPolicies; ++i) {
    cfgs[static_cast<std::size_t>(i)] = s.ToRunConfig(kPolicies[i]);
  }
  return cfgs;
}

OracleOutcome Judge(const Scenario& s,
                    const core::RunResult results[kNumPolicies]) {
  OracleOutcome o;
  for (int i = 0; i < kNumPolicies; ++i) {
    o.verdicts[static_cast<std::size_t>(i)] =
        MakeVerdict(kPolicies[i], results[i]);
  }
  const PolicyVerdict& nili = o.verdicts[0];
  const PolicyVerdict& rehype = o.verdicts[1];
  const PolicyVerdict& base = o.verdicts[2];

  if (nili.outcome != rehype.outcome || nili.outcome != base.outcome) {
    o.divergence = DivergenceKind::kOutcomeSplit;
    o.detail = std::string("outcome ") + core::OutcomeClassName(nili.outcome) +
               " (NiLiHype) vs " + core::OutcomeClassName(rehype.outcome) +
               " (ReHype) vs " + core::OutcomeClassName(base.outcome) +
               " (baseline)";
  } else if (nili.success != rehype.success) {
    o.divergence = DivergenceKind::kRecoveryGap;
    o.detail = std::string(nili.success ? "NiLiHype" : "ReHype") +
               " recovers, " + (nili.success ? "ReHype" : "NiLiHype") +
               " fails (" +
               hv::FailureReasonName(nili.success ? rehype.failure_reason
                                                  : nili.failure_reason) +
               ")";
  } else if (nili.success && rehype.success &&
             nili.audit_clean != rehype.audit_clean) {
    o.divergence = DivergenceKind::kAuditSplit;
    const PolicyVerdict& dirty = nili.audit_clean ? rehype : nili;
    o.detail = std::string(nili.audit_clean ? "ReHype" : "NiLiHype") +
               " recovers with latent corruption (" +
               (dirty.latent_findings.empty() ? "?"
                                              : dirty.latent_findings[0]) +
               "), the other is audit-clean";
  } else if (nili.latent_corruption && rehype.latent_corruption &&
             nili.latent_findings != rehype.latent_findings) {
    o.divergence = DivergenceKind::kAuditSlugs;
    o.detail = "both mechanisms leave latent corruption, different findings";
  } else if (nili.affected_vms != rehype.affected_vms ||
             nili.vm3_attempted != rehype.vm3_attempted ||
             nili.vm3_ok != rehype.vm3_ok) {
    o.divergence = DivergenceKind::kVmVerdictSplit;
    o.detail = "per-VM damage differs: " + std::to_string(nili.affected_vms) +
               " affected VMs (NiLiHype) vs " +
               std::to_string(rehype.affected_vms) + " (ReHype)";
  }

  std::uint64_t cov = kFnvOffset;
  for (int i = 0; i < kNumPolicies; ++i) {
    cov = MixVerdict(cov, o.verdicts[static_cast<std::size_t>(i)]);
    cov = FnvMix(cov,
                 static_cast<std::uint64_t>(CycleBucket(results[i].hv_cycles)));
  }
  cov = FnvMix(cov, std::string(DivergenceKindName(o.divergence)));
  o.coverage_signature = cov;

  if (o.divergence != DivergenceKind::kNone) {
    std::uint64_t sig = kFnvOffset;
    sig = FnvMix(sig, std::string(DivergenceKindName(o.divergence)));
    for (const PolicyVerdict& v : o.verdicts) sig = MixVerdict(sig, v);
    o.divergence_signature = sig;
  }
  (void)s;
  return o;
}

OracleOutcome EvaluateScenario(const Scenario& s, int threads) {
  const std::array<core::RunConfig, kNumPolicies> cfgs = OracleConfigs(s);
  const std::vector<core::RunResult> results =
      core::RunMany({cfgs.begin(), cfgs.end()}, threads);
  return Judge(s, results.data());
}

}  // namespace nlh::fuzz
