// Scenario generation and mutation. Both are pure functions of the rng
// stream passed in — no wall clock, no global state — so a fuzzing campaign
// is fully determined by its master seed. The mutators concentrate on the
// dimensions where recovery bugs hide: injection timing against in-flight
// hypercalls, multicall batch boundaries, timer-heap churn, and
// grant/event-channel traffic (the paper's retry/reactivation surface),
// plus planted latent corruptions that only the differential audit can see.
#pragma once

#include "fuzz/scenario.h"
#include "sim/rng.h"

namespace nlh::fuzz {

// Hard caps keeping scenarios shrinkable and runs bounded.
inline constexpr int kMaxPlants = 3;
inline constexpr std::int64_t kMinInjectAtNs = 50LL * 1000 * 1000;   // 50 ms
inline constexpr std::int64_t kMaxInjectAtNs = 2500LL * 1000 * 1000;  // 2.5 s

Scenario GenerateScenario(sim::Rng& rng);

// One mutated copy of `base` (1..3 elementary mutations).
Scenario MutateScenario(const Scenario& base, sim::Rng& rng);

}  // namespace nlh::fuzz
