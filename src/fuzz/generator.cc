#include "fuzz/generator.h"

#include <algorithm>

namespace nlh::fuzz {

namespace {

std::int64_t ClampInjectAt(std::int64_t t) {
  return std::clamp(t, kMinInjectAtNs, kMaxInjectAtNs);
}

inject::PlantSpec RandomPlant(sim::Rng& rng) {
  inject::PlantSpec p;
  p.target = static_cast<inject::CorruptionTarget>(
      rng.Index(static_cast<std::size_t>(inject::CorruptionTarget::kCount)));
  p.at = sim::Milliseconds(100 + rng.Range(0, 1500));
  return p;
}

inject::TriggerKind RandomEventTrigger(sim::Rng& rng) {
  // Any kind except kTime: index 1..kCount-1.
  return static_cast<inject::TriggerKind>(
      1 + rng.Range(0, static_cast<std::int64_t>(inject::TriggerKind::kCount) -
                           2));
}

// A scenario with neither a fault nor a plant runs three identical healthy
// triples — legal but useless. Keep the search away from that corner.
void EnsureNonTrivial(Scenario& s, sim::Rng& rng) {
  if (!s.inject && s.plants.empty()) {
    if (rng.Chance(0.5)) {
      s.inject = true;
    } else {
      s.plants.push_back(RandomPlant(rng));
    }
  }
}

}  // namespace

Scenario GenerateScenario(sim::Rng& rng) {
  Scenario s;
  s.seed = rng.U64();
  s.setup = rng.Chance(0.35) ? core::Setup::k3AppVM : core::Setup::k1AppVM;
  s.bench = static_cast<guest::BenchmarkKind>(rng.Index(3));
  s.unixbench_iterations = static_cast<int>(8000 + rng.Range(0, 24000));
  s.blkbench_files = static_cast<int>(500 + rng.Range(0, 2000));
  s.netbench_ms = static_cast<int>(800 + rng.Range(0, 2200));
  s.vm3_at_start = s.setup == core::Setup::k3AppVM && rng.Chance(0.3);
  s.share_cpu = rng.Chance(0.2);
  s.hvm = rng.Chance(0.2);

  s.inject = rng.Chance(0.85);
  s.fault = static_cast<inject::FaultType>(rng.Index(4));
  // Sub-millisecond jitter matters: it shifts which hypercall is in flight
  // when the level-1 timer lands.
  s.inject_at_ns =
      ClampInjectAt(sim::Milliseconds(150 + rng.Range(0, 1050)) +
                    rng.Range(0, 999999));
  s.second_trigger = rng.Range(0, 20000);
  if (rng.Chance(0.4)) {
    s.trigger.kind = RandomEventTrigger(rng);
    s.trigger.skip = static_cast<int>(rng.Range(0, 3));
  }
  const int nplants =
      rng.Chance(0.5) ? 0 : static_cast<int>(rng.Range(1, kMaxPlants - 1));
  for (int i = 0; i < nplants; ++i) s.plants.push_back(RandomPlant(rng));
  EnsureNonTrivial(s, rng);
  return s;
}

Scenario MutateScenario(const Scenario& base, sim::Rng& rng) {
  Scenario s = base;
  const int mutations = 1 + static_cast<int>(rng.Index(3));
  for (int m = 0; m < mutations; ++m) {
    switch (rng.Index(14)) {
      case 0:
        s.seed = rng.U64();
        break;
      case 1:  // nudge injection time; ±50 ms reaches across benchmark phases
        s.inject_at_ns = ClampInjectAt(
            s.inject_at_ns + rng.Range(-50000000, 50000000));
        break;
      case 2:  // fine nudge: slide along the in-flight hypercall stream
        s.inject_at_ns =
            ClampInjectAt(s.inject_at_ns + rng.Range(-50000, 50000));
        break;
      case 3:
        s.second_trigger = rng.Range(0, 20000);
        break;
      case 4:
        s.trigger.kind = rng.Chance(0.25) ? inject::TriggerKind::kTime
                                          : RandomEventTrigger(rng);
        break;
      case 5:
        s.trigger.skip = static_cast<int>(rng.Range(0, 5));
        break;
      case 6:
        s.fault = static_cast<inject::FaultType>(rng.Index(4));
        break;
      case 7:
        s.inject = !s.inject;
        break;
      case 8:
        if (s.plants.size() < kMaxPlants) s.plants.push_back(RandomPlant(rng));
        break;
      case 9:
        if (!s.plants.empty()) {
          s.plants.erase(s.plants.begin() +
                         static_cast<std::ptrdiff_t>(
                             rng.Index(s.plants.size())));
        }
        break;
      case 10:
        if (!s.plants.empty()) {
          inject::PlantSpec& p = s.plants[rng.Index(s.plants.size())];
          p.at = std::max<sim::Time>(
              sim::Milliseconds(50), p.at + rng.Range(-200000000, 200000000));
        }
        break;
      case 11:
        if (s.setup == core::Setup::k1AppVM) {
          s.setup = core::Setup::k3AppVM;
        } else {
          s.setup = core::Setup::k1AppVM;
          s.bench = static_cast<guest::BenchmarkKind>(rng.Index(3));
        }
        break;
      case 12:
        switch (rng.Index(3)) {
          case 0: s.vm3_at_start = !s.vm3_at_start; break;
          case 1: s.share_cpu = !s.share_cpu; break;
          default: s.hvm = !s.hvm; break;
        }
        break;
      default:
        s.unixbench_iterations =
            static_cast<int>(8000 + rng.Range(0, 24000));
        s.blkbench_files = static_cast<int>(500 + rng.Range(0, 2000));
        s.netbench_ms = static_cast<int>(800 + rng.Range(0, 2200));
        break;
    }
  }
  EnsureNonTrivial(s, rng);
  return s;
}

}  // namespace nlh::fuzz
