#include "fuzz/scenario.h"

#include <cstdio>
#include <cstdlib>

namespace nlh::fuzz {

namespace {

const char* SetupName(core::Setup s) {
  return s == core::Setup::k1AppVM ? "1AppVM" : "3AppVM";
}

bool SetupFromName(const std::string& name, core::Setup* out) {
  if (name == "1AppVM") { *out = core::Setup::k1AppVM; return true; }
  if (name == "3AppVM") { *out = core::Setup::k3AppVM; return true; }
  return false;
}

bool BenchFromName(const std::string& name, guest::BenchmarkKind* out) {
  for (const guest::BenchmarkKind k :
       {guest::BenchmarkKind::kUnixBench, guest::BenchmarkKind::kBlkBench,
        guest::BenchmarkKind::kNetBench}) {
    if (name == guest::BenchmarkName(k)) { *out = k; return true; }
  }
  return false;
}

bool FaultFromName(const std::string& name, inject::FaultType* out) {
  for (const inject::FaultType t :
       {inject::FaultType::kFailstop, inject::FaultType::kRegister,
        inject::FaultType::kCode, inject::FaultType::kMemory}) {
    if (name == inject::FaultTypeName(t)) { *out = t; return true; }
  }
  return false;
}

bool TargetFromName(const std::string& name, inject::CorruptionTarget* out) {
  for (int i = 0; i < static_cast<int>(inject::CorruptionTarget::kCount); ++i) {
    const auto t = static_cast<inject::CorruptionTarget>(i);
    if (name == inject::CorruptionTargetName(t)) { *out = t; return true; }
  }
  return false;
}

bool TriggerFromName(const std::string& name, inject::TriggerKind* out) {
  for (int i = 0; i < static_cast<int>(inject::TriggerKind::kCount); ++i) {
    const auto k = static_cast<inject::TriggerKind>(i);
    if (name == inject::TriggerKindName(k)) { *out = k; return true; }
  }
  return false;
}

// Typed field extraction; every getter fails loudly so corpus files with
// drifted schemas are rejected instead of half-parsed.
bool GetI64(const sim::JsonValue& obj, const char* key, std::int64_t* out) {
  const sim::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != sim::JsonValue::Type::kNumber) return false;
  *out = static_cast<std::int64_t>(v->number);
  return true;
}

bool GetBool(const sim::JsonValue& obj, const char* key, bool* out) {
  const sim::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != sim::JsonValue::Type::kBool) return false;
  *out = v->boolean;
  return true;
}

bool GetStr(const sim::JsonValue& obj, const char* key, std::string* out) {
  const sim::JsonValue* v = obj.Find(key);
  if (v == nullptr || v->type != sim::JsonValue::Type::kString) return false;
  *out = v->str;
  return true;
}

}  // namespace

std::string HexU64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(const std::string& s, std::uint64_t* out) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str() + 2, &end, 16);
  return end != nullptr && *end == '\0';
}

core::RunConfig Scenario::ToRunConfig(core::Mechanism mechanism) const {
  core::RunConfig cfg = setup == core::Setup::k1AppVM
                            ? core::RunConfig::OneAppVm(bench)
                            : core::RunConfig{};
  cfg.mechanism = mechanism;
  cfg.seed = seed;
  cfg.audit = true;  // the oracle always needs the latent-corruption split
  cfg.vm3_at_start = setup == core::Setup::k3AppVM && vm3_at_start;
  cfg.share_cpu = share_cpu;
  cfg.appvm_mode = hvm ? guest::VirtMode::kHVM : guest::VirtMode::kPV;
  cfg.unixbench_iterations = unixbench_iterations;
  cfg.blkbench_files = blkbench_files;
  cfg.netbench_duration = sim::Milliseconds(netbench_ms);
  cfg.inject = inject;
  cfg.fault = fault;
  // Collapse the injection window to one point: Range(t, t) still consumes
  // exactly one run-rng draw, so downstream draw order matches a classic
  // campaign run while the injection time is scenario-controlled.
  cfg.inject_window_start = inject_at_ns;
  cfg.inject_window_end = inject_at_ns;
  cfg.inject_second_trigger = second_trigger;
  cfg.inject_trigger = trigger;
  cfg.inject_plants = plants;
  return cfg;
}

int Scenario::PlanElementCount() const {
  int n = setup == core::Setup::k3AppVM ? 2 : 1;  // initial AppVMs
  if (setup == core::Setup::k3AppVM && vm3_at_start) ++n;
  if (share_cpu) ++n;
  if (hvm) ++n;
  if (inject) ++n;
  if (trigger.kind != inject::TriggerKind::kTime || trigger.skip != 0) ++n;
  n += static_cast<int>(plants.size());
  return n;
}

std::string Scenario::ToJson() const {
  std::string out = "{";
  out += "\"schema\":" + sim::JsonStr(kScenarioSchema);
  out += ",\"seed\":" + sim::JsonStr(HexU64(seed));
  out += ",\"setup\":" + sim::JsonStr(SetupName(setup));
  out += ",\"bench\":" + sim::JsonStr(guest::BenchmarkName(bench));
  out += ",\"unixbench_iterations\":" + std::to_string(unixbench_iterations);
  out += ",\"blkbench_files\":" + std::to_string(blkbench_files);
  out += ",\"netbench_ms\":" + std::to_string(netbench_ms);
  out += ",\"vm3_at_start\":" + std::string(vm3_at_start ? "true" : "false");
  out += ",\"share_cpu\":" + std::string(share_cpu ? "true" : "false");
  out += ",\"hvm\":" + std::string(hvm ? "true" : "false");
  out += ",\"inject\":" + std::string(inject ? "true" : "false");
  out += ",\"fault\":" + sim::JsonStr(inject::FaultTypeName(fault));
  out += ",\"inject_at_ns\":" + std::to_string(inject_at_ns);
  out += ",\"second_trigger\":" + std::to_string(second_trigger);
  out += ",\"trigger\":" + sim::JsonStr(inject::TriggerKindName(trigger.kind));
  out += ",\"trigger_skip\":" + std::to_string(trigger.skip);
  out += ",\"plants\":[";
  for (std::size_t i = 0; i < plants.size(); ++i) {
    if (i) out += ",";
    out += "{\"target\":" +
           sim::JsonStr(inject::CorruptionTargetName(plants[i].target)) +
           ",\"at_ns\":" + std::to_string(plants[i].at) + "}";
  }
  out += "]}";
  return out;
}

bool Scenario::FromJson(const sim::JsonValue& v, Scenario* out) {
  if (!v.IsObject()) return false;
  std::string schema;
  if (!GetStr(v, "schema", &schema) || schema != kScenarioSchema) return false;

  Scenario s;
  std::string seed_hex, setup_name, bench_name, fault_name, trigger_name;
  std::int64_t unixbench = 0, blkfiles = 0, netms = 0, skip = 0;
  if (!GetStr(v, "seed", &seed_hex) || !ParseHexU64(seed_hex, &s.seed)) {
    return false;
  }
  if (!GetStr(v, "setup", &setup_name) || !SetupFromName(setup_name, &s.setup))
    return false;
  if (!GetStr(v, "bench", &bench_name) || !BenchFromName(bench_name, &s.bench))
    return false;
  if (!GetI64(v, "unixbench_iterations", &unixbench) ||
      !GetI64(v, "blkbench_files", &blkfiles) ||
      !GetI64(v, "netbench_ms", &netms)) {
    return false;
  }
  s.unixbench_iterations = static_cast<int>(unixbench);
  s.blkbench_files = static_cast<int>(blkfiles);
  s.netbench_ms = static_cast<int>(netms);
  if (!GetBool(v, "vm3_at_start", &s.vm3_at_start) ||
      !GetBool(v, "share_cpu", &s.share_cpu) || !GetBool(v, "hvm", &s.hvm) ||
      !GetBool(v, "inject", &s.inject)) {
    return false;
  }
  if (!GetStr(v, "fault", &fault_name) || !FaultFromName(fault_name, &s.fault))
    return false;
  if (!GetI64(v, "inject_at_ns", &s.inject_at_ns) ||
      !GetI64(v, "second_trigger", &s.second_trigger)) {
    return false;
  }
  if (!GetStr(v, "trigger", &trigger_name) ||
      !TriggerFromName(trigger_name, &s.trigger.kind)) {
    return false;
  }
  if (!GetI64(v, "trigger_skip", &skip)) return false;
  s.trigger.skip = static_cast<int>(skip);

  const sim::JsonValue* plants = v.Find("plants");
  if (plants == nullptr || !plants->IsArray()) return false;
  for (const sim::JsonValue& p : plants->items) {
    if (!p.IsObject()) return false;
    inject::PlantSpec spec;
    std::string target_name;
    std::int64_t at = 0;
    if (!GetStr(p, "target", &target_name) ||
        !TargetFromName(target_name, &spec.target) ||
        !GetI64(p, "at_ns", &at)) {
      return false;
    }
    spec.at = at;
    s.plants.push_back(spec);
  }
  *out = std::move(s);
  return true;
}

}  // namespace nlh::fuzz
