// Minimal-reproducer shrinking: greedy delta debugging over a scenario's
// plan. Each pass tries a fixed-order list of simplifying transforms (drop
// a plant, collapse 3AppVM to 1AppVM, clear options, detrivialize the
// trigger, halve workloads, coarsen timings, pin the seed); a transform is
// kept iff the re-evaluated scenario still exhibits the *same* divergence
// kind. Fixed candidate order + deterministic evaluation make the shrink
// itself reproducible: the same flagged scenario always shrinks to the same
// minimal reproducer.
#pragma once

#include <functional>

#include "fuzz/oracle.h"
#include "fuzz/scenario.h"

namespace nlh::fuzz {

using ScenarioEval = std::function<OracleOutcome(const Scenario&)>;

struct ShrinkResult {
  Scenario scenario;   // smallest form still showing the divergence
  int evals = 0;       // oracle evaluations spent
  int accepted = 0;    // transforms that survived re-evaluation
};

// Requires: eval(start).divergence == keep (the caller just observed it).
// `max_evals` bounds the oracle budget; the best-so-far scenario is
// returned when it runs out.
ShrinkResult ShrinkScenario(const Scenario& start, DivergenceKind keep,
                            const ScenarioEval& eval, int max_evals);

}  // namespace nlh::fuzz
