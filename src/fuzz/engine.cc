#include "fuzz/engine.h"

#include <algorithm>
#include <set>
#include <utility>

#include "fuzz/generator.h"
#include "fuzz/shrinker.h"
#include "sim/rng.h"

namespace nlh::fuzz {

namespace {

// Mutation pool cap: enough diversity to steer, small enough that admission
// stays cheap.
constexpr std::size_t kPoolCap = 256;

}  // namespace

FuzzStats Fuzz(const FuzzOptions& options) {
  FuzzStats stats;
  sim::Rng rng(options.master_seed);
  CoverageMap coverage;
  std::vector<Scenario> pool;
  std::vector<std::pair<Scenario, OracleOutcome>> flagged;
  std::set<std::uint64_t> seen_divergences;

  const auto progress = [&options](const std::string& line) {
    if (options.on_progress) options.on_progress(line);
  };

  int done = 0;
  while (done < options.iterations) {
    const int b = std::min(options.batch > 0 ? options.batch : 1,
                           options.iterations - done);
    // Generation/mutation happens here, on the coordinating thread, in
    // batch order — the only rng consumer. Workers below never draw.
    std::vector<Scenario> batch;
    batch.reserve(static_cast<std::size_t>(b));
    for (int i = 0; i < b; ++i) {
      if (pool.empty() || rng.Chance(0.35)) {
        batch.push_back(GenerateScenario(rng));
      } else {
        batch.push_back(MutateScenario(pool[rng.Index(pool.size())], rng));
      }
    }
    std::vector<core::RunConfig> configs;
    configs.reserve(static_cast<std::size_t>(b) * kNumPolicies);
    for (const Scenario& s : batch) {
      const std::array<core::RunConfig, kNumPolicies> triple =
          OracleConfigs(s);
      configs.insert(configs.end(), triple.begin(), triple.end());
    }
    const std::vector<core::RunResult> results =
        core::RunMany(configs, options.threads);

    int fresh = 0;
    for (int i = 0; i < b; ++i) {
      const OracleOutcome o =
          Judge(batch[static_cast<std::size_t>(i)],
                &results[static_cast<std::size_t>(i) * kNumPolicies]);
      ++stats.scenarios;
      if (coverage.Add(o.coverage_signature)) {
        ++fresh;
        if (pool.size() < kPoolCap) {
          pool.push_back(batch[static_cast<std::size_t>(i)]);
        } else {
          pool[rng.Index(pool.size())] = batch[static_cast<std::size_t>(i)];
        }
      }
      if (o.divergence != DivergenceKind::kNone) {
        ++stats.divergent;
        if (seen_divergences.insert(o.divergence_signature).second) {
          ++stats.unique_divergent;
          flagged.emplace_back(batch[static_cast<std::size_t>(i)], o);
          progress("divergence: " +
                   std::string(DivergenceKindName(o.divergence)) + " — " +
                   o.detail);
        }
      }
    }
    done += b;
    progress("batch done: " + std::to_string(done) + "/" +
             std::to_string(options.iterations) + " scenarios, coverage " +
             std::to_string(coverage.size()) + " (+" + std::to_string(fresh) +
             "), " + std::to_string(stats.unique_divergent) +
             " unique divergences");
  }

  // Shrink phase: sequential over flagged scenarios in discovery order.
  for (const auto& [scenario, outcome] : flagged) {
    if (static_cast<int>(stats.reproducers.size()) >= options.max_corpus) {
      progress("corpus cap reached; " +
               std::to_string(flagged.size() - stats.reproducers.size()) +
               " flagged scenario(s) not shrunk");
      break;
    }
    const ScenarioEval eval = [&options](const Scenario& s) {
      return EvaluateScenario(s, options.threads);
    };
    const ShrinkResult shrunk = ShrinkScenario(
        scenario, outcome.divergence, eval, options.max_shrink_evals);
    stats.shrink_evals += shrunk.evals;

    // Final evaluation of the minimal form: its verdicts (not the original
    // scenario's) are what the reproducer records and the corpus runner
    // re-asserts.
    const std::array<core::RunConfig, kNumPolicies> cfgs =
        OracleConfigs(shrunk.scenario);
    const std::vector<core::RunResult> results =
        core::RunMany({cfgs.begin(), cfgs.end()}, options.threads);
    const OracleOutcome final_outcome = Judge(shrunk.scenario, results.data());

    FuzzReproducer rep;
    rep.scenario = shrunk.scenario;
    rep.kind = final_outcome.divergence;
    rep.detail = final_outcome.detail;
    rep.divergence_signature = final_outcome.divergence_signature;
    rep.plan_elements = shrunk.scenario.PlanElementCount();
    rep.shrink_evals = shrunk.evals;
    if (!options.corpus_dir.empty()) {
      rep.path = WriteReproducer(options.corpus_dir, shrunk.scenario,
                                 final_outcome, results.data());
    }
    progress("shrunk " + std::string(DivergenceKindName(rep.kind)) + " to " +
             std::to_string(rep.plan_elements) + " plan element(s) in " +
             std::to_string(shrunk.evals) + " eval(s)" +
             (rep.path.empty() ? "" : " -> " + rep.path));
    stats.reproducers.push_back(std::move(rep));
  }

  stats.coverage = coverage.size();
  stats.coverage_hash = coverage.Hash();
  return stats;
}

}  // namespace nlh::fuzz
