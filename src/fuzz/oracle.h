// Differential recovery oracle: runs one scenario under the two recovery
// mechanisms (NiLiHype, ReHype) plus the no-recovery baseline and compares
// the per-policy verdicts. The simulator guarantees execution is identical
// across the three until the first detection (same seed, same injection),
// so any divergence is attributable to the recovery path itself — exactly
// the bug surface Sections IV/V of the paper spend their enhancement
// catalogue on.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/outcome.h"
#include "fuzz/scenario.h"

namespace nlh::fuzz {

// Mechanisms a scenario is evaluated under, in fixed order. Index 2 is the
// full-reboot-equivalent baseline: no in-place recovery mechanism at all,
// which stands in for "lose everything and start over" — the paper's point
// of comparison for both mechanisms.
inline constexpr int kNumPolicies = 3;
inline constexpr core::Mechanism kPolicies[kNumPolicies] = {
    core::Mechanism::kNiLiHype, core::Mechanism::kReHype,
    core::Mechanism::kNone};

enum class DivergenceKind {
  kNone = 0,
  kOutcomeSplit,    // outcome class differs somewhere in the triple
  kRecoveryGap,     // NiLiHype and ReHype disagree on recovery success
  kAuditSplit,      // both recovered, but only one is audit-clean
  kAuditSlugs,      // both carry latent corruption with different findings
  kVmVerdictSplit,  // same top-level fate, different per-VM damage
  kCount,
};

const char* DivergenceKindName(DivergenceKind k);
bool DivergenceKindFromName(const std::string& name, DivergenceKind* out);

// Everything the oracle compares (and the corpus runner re-asserts) about
// one policy's run, reduced to stable slugs and integers. ToJson() emits
// integer-valued numbers only, so parse -> sim::WriteJson is byte-stable —
// the property the corpus regression runner's byte-for-byte check rests on.
struct PolicyVerdict {
  core::Mechanism mechanism = core::Mechanism::kNone;
  core::OutcomeClass outcome = core::OutcomeClass::kNonManifested;
  bool detected = false;
  int recoveries = 0;
  bool success = false;
  bool no_vm_failures = false;
  core::FailureReason failure_reason = core::FailureReason::kNone;
  bool system_dead = false;
  bool vm3_attempted = false;
  bool vm3_ok = false;
  int affected_vms = 0;
  bool audit_clean = false;
  bool latent_corruption = false;
  // Sorted, deduplicated invariant slugs / subsystem slugs of findings with
  // severity above info.
  std::vector<std::string> latent_findings;
  std::vector<std::string> latent_subsystems;
  std::int64_t detection_latency_ns = -1;       // -1 when not applicable
  std::int64_t first_recovery_latency_ns = -1;  // -1 when never recovered

  std::string ToJson() const;
};

PolicyVerdict MakeVerdict(core::Mechanism mechanism, const core::RunResult& r);

struct OracleOutcome {
  std::array<PolicyVerdict, kNumPolicies> verdicts;
  DivergenceKind divergence = DivergenceKind::kNone;
  std::string detail;  // human-readable one-liner for the reproducer bundle
  // Coverage signature: hashes the behavior triple plus bucketed hypervisor
  // cycle counts — the generator's feedback signal. Fine-grained on purpose.
  std::uint64_t coverage_signature = 0;
  // Divergence identity: hashes only the divergence-relevant behavior, so
  // re-discoveries of the same split dedupe. 0 when divergence == kNone.
  std::uint64_t divergence_signature = 0;
};

// The three RunConfigs a scenario expands to, in kPolicies order.
std::array<core::RunConfig, kNumPolicies> OracleConfigs(const Scenario& s);

// Compares the three finished runs (in kPolicies order).
OracleOutcome Judge(const Scenario& s,
                    const core::RunResult results[kNumPolicies]);

// Convenience: expand, run (via core::RunMany with `threads`), judge.
OracleOutcome EvaluateScenario(const Scenario& s, int threads = 1);

}  // namespace nlh::fuzz
