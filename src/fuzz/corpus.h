// Reproducer bundles and corpus management. A reproducer ("nlh-repro-v1")
// records a shrunk scenario together with the divergence that flagged it
// and the full per-policy verdicts; the corpus regression runner replays
// the scenario and asserts the recomputed verdicts byte-for-byte. Each
// bundle also embeds an nlh-dossier-v1-compatible replay section (the same
// config/result/injection/detection JSON the forensics dossiers use) so
// existing dossier tooling can read fuzz reproducers directly.
#pragma once

#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/scenario.h"

namespace nlh::fuzz {

inline constexpr const char* kReproSchema = "nlh-repro-v1";

// Serializes one reproducer bundle. `results` are the three finished runs
// in kPolicies order (they feed the dossier-compatible replay section).
std::string ReproducerJson(const Scenario& s, const OracleOutcome& o,
                           const core::RunResult results[kNumPolicies]);

// Writes `dir/repro_<fingerprint>.json` (creating `dir` if needed).
// Returns the written path, or "" on I/O failure.
std::string WriteReproducer(const std::string& dir, const Scenario& s,
                            const OracleOutcome& o,
                            const core::RunResult results[kNumPolicies]);

// Parsed reproducer, ready to re-run.
struct LoadedReproducer {
  Scenario scenario;
  DivergenceKind divergence = DivergenceKind::kNone;
  // Expected verdict JSON per policy, canonicalized via sim::WriteJson.
  std::vector<std::string> expected_verdicts;
};

// Reads and validates one reproducer file. Returns false (with a message in
// *error) on unreadable files, schema mismatches, or malformed scenarios.
bool LoadReproducer(const std::string& path, LoadedReproducer* out,
                    std::string* error);

// All "*.json" files directly inside `dir`, lexicographically sorted.
// Empty when the directory is missing or unreadable.
std::vector<std::string> ListCorpus(const std::string& dir);

}  // namespace nlh::fuzz
