// Coverage map: the set of behavior signatures observed so far. A fresh
// signature is the generator's feedback — the scenario that produced it is
// admitted to the mutation pool. Kept as an ordered set so the end-of-run
// coverage hash folds signatures in a canonical order regardless of the
// (thread-count-invariant, but batch-ordered) discovery sequence.
#pragma once

#include <cstdint>
#include <set>

#include "fuzz/scenario.h"

namespace nlh::fuzz {

class CoverageMap {
 public:
  // Returns true when the signature is new coverage.
  bool Add(std::uint64_t signature) { return sigs_.insert(signature).second; }
  bool Contains(std::uint64_t signature) const {
    return sigs_.count(signature) != 0;
  }
  std::size_t size() const { return sigs_.size(); }

  // Order-canonical digest of the whole map (equal maps -> equal hash, any
  // insertion order).
  std::uint64_t Hash() const {
    std::uint64_t h = kFnvOffset;
    for (const std::uint64_t s : sigs_) h = FnvMix(h, s);
    return h;
  }

 private:
  std::set<std::uint64_t> sigs_;
};

}  // namespace nlh::fuzz
