// Campaign runner: many independent fault-injection runs, aggregated with
// confidence intervals — the simulator-world equivalent of the paper's
// Campaign Agent (Section VI-C, Figure 1).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/outcome.h"

namespace nlh::core {

struct Proportion {
  int numer = 0;
  int denom = 0;
  double Value() const {
    return denom == 0 ? 0.0 : static_cast<double>(numer) / denom;
  }
  // Normal-approximation 95% half-width, as the paper reports (+/-).
  double HalfWidth95() const;
  std::string ToString() const;  // "95.0% ± 1.4%"
  std::string ToJson() const;    // {"numer":..,"denom":..,"value":..,"hw95":..}
};

// Aggregated latency of one recovery phase across the campaign's detected
// runs (a Table 3 row, with distribution info).
struct PhaseAggregate {
  std::string phase;   // stable slug (recovery::RecoveryPhaseName)
  int samples = 0;
  double mean_ms = 0.0;
  double p99_ms = 0.0;
};

// Injection→detection latency distribution for one fault class
// (inject::ManifestationName slug), across runs where the fault fired and a
// detector responded.
struct DetectionLatencyAggregate {
  std::string fault_class;
  int samples = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct CampaignResult {
  int runs = 0;
  int non_manifested = 0;
  int sdc = 0;
  int detected = 0;

  // Among detected runs:
  Proportion success;        // successful recovery rate (Figure 2)
  Proportion no_vm_failures;  // noVMF (Figure 2)

  // Audit-refined split of `success` (populated when RunConfig::audit):
  // every successful recovery is either audit-clean or carries latent
  // corruption the behavioral classification cannot see. Denominator is
  // the audited successful runs; audit_clean + latent_corruption == it.
  Proportion audit_clean;
  Proportion latent_corruption;
  // Corruption findings (severity above info) across all audited runs,
  // tallied by subsystem slug in lexicographic order.
  std::vector<std::pair<std::string, int>> audit_findings_by_subsystem;

  // Failure-reason tally (recovery-failure analysis, Section VII-A), keyed
  // by the typed reason so aggregation cannot drift on message wording.
  std::vector<std::pair<FailureReason, int>> failure_reasons;

  // Per-phase recovery latency breakdown (Table 3), in first-observed order.
  std::vector<PhaseAggregate> phase_latency;
  // Total recovery latency across detected runs that recovered.
  PhaseAggregate total_latency;  // phase == "total"

  // Root-cause correlation (forensics/correlator.h): how each run's
  // detection relates to its injected ground truth. `prompt + late +
  // misdetected + silent` covers every run where the correlator had
  // something to say (runs classified kNotApplicable are not counted).
  int detected_prompt = 0;
  int detected_late = 0;
  int misdetected = 0;
  int silent = 0;
  // Detection-latency histograms per fault class (ManifestationName slug,
  // lexicographic order).
  std::vector<DetectionLatencyAggregate> detection_latency_by_class;

  // Serializes rates, proportions, failure tally, and phase breakdown.
  std::string ToJson() const;

  double NonManifestedRate() const {
    return runs == 0 ? 0 : static_cast<double>(non_manifested) / runs;
  }
  double SdcRate() const {
    return runs == 0 ? 0 : static_cast<double>(sdc) / runs;
  }
  double DetectedRate() const {
    return runs == 0 ? 0 : static_cast<double>(detected) / runs;
  }
};

struct CampaignOptions {
  int runs = 500;
  std::uint64_t seed0 = 1000;
  int threads = 0;  // 0 = hardware concurrency
  // Optional per-run callback (e.g. progress display); called under a lock.
  std::function<void(int /*index*/, const RunResult&)> on_run;
};

// Runs every config in `configs` once, in parallel (atomic work-stealing
// index, one RunArena per worker), and returns results indexed like the
// input. The result vector is bit-identical regardless of thread count —
// this is the primitive the scenario fuzzer's differential oracle batches
// heterogeneous configs through, and RunCampaign delegates to it.
std::vector<RunResult> RunMany(
    const std::vector<RunConfig>& configs, int threads,
    const std::function<void(int, const RunResult&)>& on_run = {});

// Runs `options.runs` independent runs of `config` (seeds seed0, seed0+1,
// ...) in parallel and aggregates.
CampaignResult RunCampaign(const RunConfig& config,
                           const CampaignOptions& options);

}  // namespace nlh::core
