// Run timeline: a structured record of what happened during a run, for
// debugging campaigns and for human-readable run reports.
//
// Campaigns keep this off (zero overhead); single-run tools (quickstart,
// campaign_tool --verbose, replayed failures) enable it to see the exact
// sequence: injection -> manifestation -> detection -> recovery steps ->
// resume -> benchmark verdicts.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.h"

namespace nlh::core {

struct TimelineEvent {
  sim::Time at = 0;
  std::string category;  // "inject", "detect", "recover", "vm", "system"
  std::string text;
};

class Timeline {
 public:
  void Enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  // Prefer the NLH_TIMELINE_ADD macro at call sites: Add still re-checks
  // enabled_, but by the time Add is called its string arguments have
  // already been constructed. The macro defers argument evaluation behind
  // the check so a disabled timeline costs one branch and zero allocations.
  void Add(sim::Time at, std::string category, std::string text) {
    if (!enabled_) return;
    events_.push_back({at, std::move(category), std::move(text)});
  }

  const std::vector<TimelineEvent>& events() const { return events_; }

  void Print(std::FILE* out = stdout) const {
    for (const TimelineEvent& e : events_) {
      std::fprintf(out, "  [%10.3f ms] %-8s %s\n", sim::ToMillisF(e.at),
                   e.category.c_str(), e.text.c_str());
    }
  }

 private:
  bool enabled_ = false;
  std::vector<TimelineEvent> events_;
};

}  // namespace nlh::core

// Records a timeline event without evaluating the category/text expressions
// (typically string concatenations) unless the timeline is enabled.
#define NLH_TIMELINE_ADD(timeline, at, category, text)       \
  do {                                                       \
    ::nlh::core::Timeline& nlh_tl_ = (timeline);             \
    if (nlh_tl_.enabled()) nlh_tl_.Add((at), (category), (text)); \
  } while (0)
