#include "core/target_system.h"

#include <algorithm>

#include "audit/state_auditor.h"
#include "recovery/nilihype.h"
#include "recovery/rehype.h"

namespace nlh::core {

const char* MechanismName(Mechanism m) {
  switch (m) {
    case Mechanism::kNone: return "None";
    case Mechanism::kNiLiHype: return "NiLiHype";
    case Mechanism::kReHype: return "ReHype";
  }
  return "?";
}

const char* OutcomeClassName(OutcomeClass c) {
  switch (c) {
    case OutcomeClass::kNonManifested: return "non-manifested";
    case OutcomeClass::kSdc: return "SDC";
    case OutcomeClass::kDetected: return "detected";
  }
  return "?";
}

TargetSystem::TargetSystem(const RunConfig& config)
    : TargetSystem(config, nullptr) {}

TargetSystem::TargetSystem(const RunConfig& config, RunArena* arena)
    : config_(config), arena_(arena), run_rng_(config.seed ^ 0xa5a5a5a5ULL) {
  Build();
}

TargetSystem::~TargetSystem() {
  // Hand the event queue's buffers back to the worker's arena so the next
  // run starts with warmed capacity instead of growing from zero.
  if (arena_ != nullptr && platform_ != nullptr) {
    arena_->queue = platform_->queue().ReleaseStorage();
  }
}

void TargetSystem::Build() {
  platform_ = std::make_unique<hw::Platform>(config_.platform, config_.seed);
  // Adopt recycled buffers before anything is scheduled (Platform's
  // constructor schedules nothing; timers start later, during Boot()).
  if (arena_ != nullptr) {
    platform_->queue().AdoptStorage(std::move(arena_->queue));
  }
  hv_ = std::make_unique<hv::Hypervisor>(*platform_, config_.MakeHvConfig());
  hv_->Boot();

  // Detection + recovery.
  hang_ = std::make_unique<detect::HangDetector>(*hv_);
  hang_->Install();
  std::unique_ptr<recovery::RecoveryMechanism> mech;
  switch (config_.mechanism) {
    case Mechanism::kNiLiHype:
      mech = std::make_unique<recovery::NiLiHype>(*hv_, config_.enhancements,
                                                  config_.latency_model);
      break;
    case Mechanism::kReHype:
      mech = std::make_unique<recovery::ReHype>(*hv_, config_.enhancements,
                                                config_.latency_model);
      break;
    case Mechanism::kNone:
      break;
  }
  manager_ = std::make_unique<recovery::RecoveryManager>(*hv_, std::move(mech),
                                                         hang_.get());
  manager_->Install();

  // PrivVM (Dom0) on CPU 0 with the device backends.
  const hv::DomainId priv_id =
      hv_->CreateDomainDirect("PrivVM", /*privileged=*/true, /*cpu=*/0,
                              /*frames=*/128);
  privvm_ = std::make_unique<guest::PrivVmKernel>(*hv_, config_.seed ^ 0x111);
  privvm_->Bind(priv_id, hv_->FindDomain(priv_id)->vcpus.front());
  hv_->AttachGuest(priv_id, privvm_.get());

  disk_ = std::make_unique<guest::VirtualDisk>(*platform_, /*irq_cpu=*/0);
  privvm_->AttachDisk(disk_.get());
  // Block device IRQ -> PrivVM event port.
  {
    hv::Domain* priv = hv_->FindDomain(priv_id);
    const hv::EventPort p =
        priv->evtchn.AllocUnbound(priv_id, priv->vcpus.front());
    hv_->BindDeviceVector(hw::vec::kBlk, priv_id, p);
  }

  // The toolstack factory builds BlkBench VMs created at runtime (VM3).
  privvm_->SetVmFactory([this](hv::DomainId created) {
    auto vm = std::make_unique<guest::AppVmKernel>(
        *hv_, "BlkBench-VM3", config_.seed ^ 0x333,
        guest::BenchmarkKind::kBlkBench, config_.vm3_blkbench_files);
    vm->Bind(created, hv_->FindDomain(created)->vcpus.front());
    hv_->AttachGuest(created, vm.get());
    WireBlk(vm.get());
    vm3_ = vm.get();
    vm3_created_ = true;
    appvms_.push_back(std::move(vm));
  });

  // Initial AppVMs.
  if (config_.setup == Setup::k1AppVM) {
    const int iters = (config_.bench_1appvm == guest::BenchmarkKind::kBlkBench)
                          ? config_.blkbench_files
                          : config_.unixbench_iterations;
    AddAppVm(config_.bench_1appvm, iters, /*cpu=*/1, /*via_toolstack=*/false);
    initial_appvm_count_ = 1;
  } else {
    AddAppVm(guest::BenchmarkKind::kUnixBench, config_.unixbench_iterations,
             /*cpu=*/1, /*via_toolstack=*/false);
    AddAppVm(guest::BenchmarkKind::kNetBench, /*iterations=*/1 << 30,
             /*cpu=*/config_.share_cpu ? 1 : 2, /*via_toolstack=*/false);
    initial_appvm_count_ = 2;
    if (config_.vm3_at_start) {
      AddAppVm(guest::BenchmarkKind::kBlkBench, config_.blkbench_files,
               /*cpu=*/3, /*via_toolstack=*/false);
      initial_appvm_count_ = 3;
      vm3_attempted_ = true;  // no post-recovery creation in this variant
    }
  }

  hv_->StartDomain(priv_id);
  for (auto& vm : appvms_) hv_->StartDomain(vm->domain());

  if (peer_ != nullptr) {
    // Let the system settle briefly, then ping for the configured duration.
    platform_->queue().ScheduleAt(sim::Milliseconds(50), [this] {
      peer_->Start(platform_->Now() + config_.netbench_duration);
    });
  }

  // Golden snapshot of the healthy platform, captured before the injection
  // can fire (differential audit baseline).
  if (config_.audit) golden_ = audit::GoldenSnapshot::Capture(*hv_);

  if (config_.inject || !config_.inject_plants.empty()) ArmInjection();

  // Campaign-agent-style watcher: once the first recovery has resumed,
  // create the post-recovery BlkBench VM (3AppVM setup, Section VI-A).
  if (config_.setup == Setup::k3AppVM) {
    struct Watcher {
      TargetSystem* sys;
      void operator()() const {
        TargetSystem* s = sys;
        if (!s->vm3_attempted_ && s->manager_ != nullptr &&
            !s->manager_->reports().empty()) {
          const auto& rep = s->manager_->reports().front();
          if (!rep.gave_up &&
              s->platform_->Now() >= rep.resumed_at + sim::Milliseconds(100)) {
            s->TriggerVm3Creation();
            return;  // done watching
          }
        }
        if (s->hv_->dead()) return;
        s->platform_->queue().ScheduleAfter(sim::Milliseconds(50), Watcher{s});
      }
    };
    platform_->queue().ScheduleAfter(sim::Milliseconds(50), Watcher{this});
  }
}

guest::AppVmKernel* TargetSystem::AddAppVm(guest::BenchmarkKind kind,
                                           int iterations, hw::CpuId cpu,
                                           bool via_toolstack,
                                           hv::DomainId precreated) {
  (void)via_toolstack;
  hv::DomainId id = precreated;
  if (id == hv::kInvalidDomain) {
    id = hv_->CreateDomainDirect(std::string(guest::BenchmarkName(kind)),
                                 /*privileged=*/false, cpu, /*frames=*/64);
  }
  auto vm = std::make_unique<guest::AppVmKernel>(
      *hv_, guest::BenchmarkName(kind),
      config_.seed ^ (0x1000ULL + static_cast<std::uint64_t>(id)), kind,
      iterations, config_.appvm_mode);
  vm->Bind(id, hv_->FindDomain(id)->vcpus.front());
  hv_->AttachGuest(id, vm.get());
  if (kind == guest::BenchmarkKind::kBlkBench) WireBlk(vm.get());
  if (kind == guest::BenchmarkKind::kNetBench) WireNet(vm.get());
  guest::AppVmKernel* raw = vm.get();
  appvms_.push_back(std::move(vm));
  return raw;
}

std::pair<hv::EventPort, hv::EventPort> TargetSystem::BindPorts(
    hv::DomainId app) {
  hv::Domain* ad = hv_->FindDomain(app);
  hv::Domain* pd = hv_->FindDomain(hv::kPrivVmId);
  const hv::EventPort p_app =
      ad->evtchn.AllocUnbound(hv::kPrivVmId, ad->vcpus.front());
  const hv::EventPort p_priv = pd->evtchn.AllocUnbound(app, pd->vcpus.front());
  ad->evtchn.BindInterdomain(p_app, hv::kPrivVmId, p_priv);
  pd->evtchn.BindInterdomain(p_priv, app, p_app);
  return {p_app, p_priv};
}

void TargetSystem::WireBlk(guest::AppVmKernel* vm) {
  BlkWiring w;
  w.ring = std::make_unique<guest::BlkRing>();
  const auto [p_app, p_priv] = BindPorts(vm->domain());
  vm->ConnectBlk(w.ring.get(), p_app);
  privvm_->ConnectBlkFrontend(vm->domain(), w.ring.get(), p_priv);
  blk_wirings_.push_back(std::move(w));
}

void TargetSystem::WireNet(guest::AppVmKernel* vm) {
  if (nic_ == nullptr) {
    nic_ = std::make_unique<guest::VirtualNic>(*platform_, /*irq_cpu=*/0);
    privvm_->AttachNic(nic_.get());
    peer_ = std::make_unique<guest::NetPeer>(*platform_, *nic_);
    hv::Domain* priv = hv_->FindDomain(hv::kPrivVmId);
    const hv::EventPort p =
        priv->evtchn.AllocUnbound(hv::kPrivVmId, priv->vcpus.front());
    hv_->BindDeviceVector(hw::vec::kNet, hv::kPrivVmId, p);
  }
  NetWiring w;
  w.rx = std::make_unique<guest::NetRxRing>();
  w.tx = std::make_unique<guest::NetTxRing>();
  const auto [p_app, p_priv] = BindPorts(vm->domain());
  vm->ConnectNet(w.rx.get(), w.tx.get(), p_app);
  // Pre-grant the packet buffer frames the backend copies through.
  hv::Domain* ad = hv_->FindDomain(vm->domain());
  const hv::GrantRef rx_gref =
      ad->grants.TryGrant(hv::kPrivVmId, ad->first_frame + 60);
  const hv::GrantRef tx_gref =
      ad->grants.TryGrant(hv::kPrivVmId, ad->first_frame + 61);
  privvm_->ConnectNetFrontend(vm->domain(), w.rx.get(), w.tx.get(), p_priv,
                              rx_gref, tx_gref);
  net_wirings_.push_back(std::move(w));
}

void TargetSystem::ArmInjection() {
  inject::CorruptionHooks hooks;
  hooks.corrupt_privvm = [this] { privvm_->CorruptKernelState(); };
  hooks.corrupt_random_appvm_memory = [this] {
    std::vector<guest::AppVmKernel*> alive;
    for (auto& vm : appvms_) {
      if (!vm->crashed()) alive.push_back(vm.get());
    }
    if (alive.empty()) return;
    guest::AppVmKernel* victim = alive[run_rng_.Index(alive.size())];
    victim->OnMemoryCorrupted(victim->vcpu_id());
  };
  injector_ = std::make_unique<inject::FaultInjector>(*hv_, std::move(hooks),
                                                      config_.seed ^ 0x777);
  inject::InjectionPlan plan;
  plan.type = config_.fault;
  plan.fault_enabled = config_.inject;
  plan.trigger = config_.inject_trigger;
  plan.plants = config_.inject_plants;
  plan.first_trigger = config_.inject_window_start +
                       run_rng_.Range(0, config_.inject_window_end -
                                             config_.inject_window_start);
  plan.second_trigger_instructions =
      config_.inject_second_trigger >= 0
          ? static_cast<std::uint64_t>(config_.inject_second_trigger)
          : static_cast<std::uint64_t>(run_rng_.Range(0, 20000));
  injector_->Arm(plan);
}

void TargetSystem::TriggerVm3Creation() {
  if (vm3_attempted_) return;
  vm3_attempted_ = true;
  privvm_->RequestCreateVm(/*pin_cpu=*/3, /*frames=*/64,
                           [](hv::DomainId) {});
}

void TargetSystem::RunUntil(sim::Time t) { platform_->queue().RunUntil(t); }

void TargetSystem::EnableFlightRecorder(std::size_t per_cpu_capacity) {
  hv_->flight_recorder().Enable(platform_->num_cpus(), per_cpu_capacity);
  // Fold log lines that pass the logger's filtering into the event stream
  // (the recorder captures them even when the sink/stderr output is off,
  // as long as the level allows the line through).
  platform_->log().SetEventHook(
      [this](sim::LogLevel level, sim::Time /*now*/,
             const std::string& component, const std::string& message) {
        hv_->flight_recorder().Record(
            forensics::EventKind::kLogLine, -1,
            static_cast<std::uint64_t>(level), 0, component + ": " + message);
      });
}

RunResult TargetSystem::Run() {
  auto& queue = platform_->queue();
  std::uint64_t n = 0;
  while (!queue.Empty() && queue.NextTime() <= config_.run_deadline) {
    queue.RunOne();
    if ((++n & 0x3fff) == 0 && hv_->dead()) {
      // Nothing else can change once the platform is dead, except pending
      // timers; stop early.
      break;
    }
  }
  return Classify();
}

RunResult TargetSystem::Classify() {
  RunResult r;
  r.detected = hv_->stats().detections > 0;
  r.recoveries =
      manager_ != nullptr ? static_cast<int>(manager_->reports().size()) : 0;
  r.system_dead = hv_->dead();
  r.death_code = hv_->death_code();
  r.death_reason = hv_->death_reason();
  if (r.recoveries > 0) {
    const recovery::RecoveryReport& first = manager_->reports().front();
    r.first_recovery_latency = first.total();
    for (const recovery::StepLatency& s : first.steps) {
      r.recovery_phases.push_back(
          {recovery::RecoveryPhaseName(s.phase), s.name, s.latency});
    }
  }
  r.privvm_ok = !privvm_->crashed();

  // Recovery window (for the NetBench rate criterion).
  sim::Time rec_from = -1;
  sim::Time rec_to = -1;
  if (config_.netbench_exclude_recovery_window && r.recoveries > 0) {
    rec_from = std::max<sim::Time>(
        0, manager_->reports().front().detected_at - sim::Milliseconds(400));
    rec_to = manager_->reports().front().resumed_at + sim::Milliseconds(400);
  }

  // Per-VM verdicts for the initial AppVMs.
  for (int i = 0; i < initial_appvm_count_; ++i) {
    const guest::AppVmKernel& vm = *appvms_[static_cast<std::size_t>(i)];
    VmVerdict v;
    v.name = vm.name();
    if (vm.crashed()) {
      v.affected = true;
      v.why = "kernel crash: " + vm.crash_reason();
    } else if (vm.memory_corrupted()) {
      v.affected = true;
      v.why = "output differs from golden copy";
    } else if (vm.syscall_failures() > 0) {
      v.affected = true;
      v.why = "failed system calls logged";
    } else if (vm.io_errors() > 0) {
      v.affected = true;
      v.why = "I/O errors";
    } else if (vm.process_failed()) {
      v.affected = true;
      v.why = "benchmark process failed";
    } else if (vm.kind() == guest::BenchmarkKind::kNetBench) {
      if (peer_ != nullptr) {
        r.net_max_gap = peer_->MaxGap();
        const double period = static_cast<double>(peer_->period());
        const double window_loss =
            (rec_from >= 0)
                ? static_cast<double>(rec_to - rec_from) / period
                : 0.0;
        const double expected =
            static_cast<double>(peer_->sent()) - window_loss;
        r.net_rate_dropped =
            peer_->RateDropped(0.10, rec_from, rec_to) ||
            static_cast<double>(peer_->received()) < expected * 0.90;
        if (r.net_rate_dropped) {
          v.affected = true;
          v.why = "packet reception rate dropped >10%";
        }
      }
    } else if (!vm.BenchmarkDone()) {
      v.affected = true;
      v.why = "benchmark did not complete (" +
              std::to_string(vm.iterations_done()) + "/" +
              std::to_string(vm.iterations_target()) + ")";
    }
    r.vms.push_back(std::move(v));
  }

  // VM3 (3AppVM hypervisor-operational check).
  r.vm3_attempted = vm3_attempted_;
  r.vm3_ok = vm3_created_ && vm3_ != nullptr && vm3_->BenchmarkDone() &&
             !vm3_->Affected();

  // Cycle accounting (Figure 3 measurements use inject=false runs).
  for (int c = 0; c < platform_->num_cpus(); ++c) {
    r.hv_cycles += platform_->cpu(c).hv_instructions();
    r.total_cycles += platform_->cpu(c).total_cycles();
  }

  // Outcome class.
  const bool any_affected = r.AffectedVmCount() > 0 || !r.privvm_ok;
  if (r.detected) {
    r.outcome = OutcomeClass::kDetected;
  } else {
    r.outcome = any_affected ? OutcomeClass::kSdc : OutcomeClass::kNonManifested;
  }

  // Success metrics (Section VII-A definitions).
  if (r.detected) {
    if (config_.setup == Setup::k3AppVM) {
      r.success = !r.system_dead && r.privvm_ok && r.AffectedVmCount() <= 1 &&
                  r.vm3_ok;
      r.no_vm_failures = r.success && r.AffectedVmCount() == 0;
    } else {
      r.success = !r.system_dead && r.privvm_ok && r.AffectedVmCount() == 0;
      r.no_vm_failures = r.success;
    }
    if (!r.success) {
      if (r.system_dead) {
        r.failure_reason = r.death_code != FailureReason::kNone
                               ? r.death_code
                               : FailureReason::kSystemDead;
        r.failure_detail = "system dead: " + r.death_reason;
      } else if (!r.privvm_ok) {
        r.failure_reason = FailureReason::kPrivVmFailed;
        r.failure_detail = "PrivVM failed";
      } else if (config_.setup == Setup::k3AppVM && !r.vm3_ok) {
        r.failure_reason = vm3_attempted_ ? FailureReason::kVm3Failed
                                          : FailureReason::kVm3NotAttempted;
        r.failure_detail = vm3_attempted_
                               ? "post-recovery VM creation/BlkBench failed"
                               : "VM3 never attempted";
      } else {
        r.failure_reason = FailureReason::kTooManyVmsAffected;
        r.failure_detail = "too many AppVMs affected";
        for (const VmVerdict& v : r.vms) {
          if (v.affected) r.failure_detail += "; " + v.name + ": " + v.why;
        }
      }
    }
  }
  // Forensics: join injection ground truth with the first detection.
  if (injector_ != nullptr) {
    const inject::InjectionRecord& rec = injector_->record();
    // Plants apply regardless of whether the two-level trigger ever fired.
    for (const inject::CorruptionTarget t : rec.planted) {
      r.planted_corruptions.emplace_back(inject::CorruptionTargetName(t));
    }
    if (rec.fired) {
      r.injection_fired = true;
      r.injected_at = rec.fired_at;
      r.injection_cpu = rec.cpu;
      r.manifestation = rec.manifestation;
      for (const inject::CorruptionTarget t : rec.corruptions) {
        r.injection_corruptions.emplace_back(inject::CorruptionTargetName(t));
      }
    }
  }
  if (const hv::DetectionEvent* first = hv_->first_detection()) {
    r.detection = *first;
    if (r.injection_fired && first->when >= r.injected_at) {
      r.detection_latency = first->when - r.injected_at;
    }
  }
  r.detection_class = forensics::ClassifyDetection(
      r.injection_fired, r.manifestation, r.detected, r.detection.kind,
      r.detection_latency);

  // State audit: a run that passed the behavioral classification can still
  // carry latent corruption inside the hypervisor. The sweep runs on the
  // quiescent end-of-run platform (even a dead one — every walk is bounded).
  if (config_.audit) {
    audit::StateAuditor auditor(*hv_);
    r.audited = true;
    r.audit_report = golden_.captured ? auditor.Audit(golden_) : auditor.Audit();
    r.audit_clean = r.audit_report.CorruptionCount() == 0;
    r.latent_corruption = r.success && !r.audit_clean;
  }

  BuildTimeline(r);
  return r;
}

void TargetSystem::BuildTimeline(const RunResult& r) {
  if (!timeline_.enabled()) return;
  // NLH_TIMELINE_ADD re-checks enabled() before evaluating its arguments,
  // so the string formatting below costs nothing if this early return is
  // ever removed or a call site moves onto a hot path.
  NLH_TIMELINE_ADD(timeline_, 0, "system",
                   std::string("boot: ") + MechanismName(config_.mechanism) +
                       ", seed " + std::to_string(config_.seed));
  if (injector_ != nullptr && injector_->record().fired) {
    const inject::InjectionRecord& rec = injector_->record();
    std::string what = std::string(inject::FaultTypeName(config_.fault)) +
                       " fault fired on cpu" + std::to_string(rec.cpu);
    switch (rec.manifestation) {
      case inject::Manifestation::kNone: what += " (never manifested)"; break;
      case inject::Manifestation::kSdc: what += " (silent corruption)"; break;
      case inject::Manifestation::kImmediatePanic: what += " (immediate panic)"; break;
      case inject::Manifestation::kDelayedPanic:
        what += " (" + std::to_string(rec.corruptions.size()) +
                " corruptions, delayed detection)";
        break;
      case inject::Manifestation::kHang: what += " (livelock)"; break;
    }
    NLH_TIMELINE_ADD(timeline_, rec.fired_at, "inject", what);
  }
  if (manager_ != nullptr) {
    for (const recovery::RecoveryReport& rep : manager_->reports()) {
      NLH_TIMELINE_ADD(timeline_, rep.detected_at, "detect",
                       rep.kind == hv::DetectionKind::kPanic
                           ? "panic detected"
                           : "hang detected");
      for (const recovery::StepLatency& step : rep.steps) {
        NLH_TIMELINE_ADD(timeline_, rep.detected_at, "recover",
                         step.name + " (" +
                             std::to_string(sim::ToMicros(step.latency)) +
                             " us)");
      }
      if (rep.gave_up) {
        NLH_TIMELINE_ADD(timeline_, rep.detected_at, "recover",
                         "GAVE UP: " + rep.give_up_reason);
      } else {
        NLH_TIMELINE_ADD(timeline_, rep.resumed_at, "recover",
                         "system resumed");
      }
    }
  }
  for (const VmVerdict& v : r.vms) {
    NLH_TIMELINE_ADD(timeline_, platform_->Now(), "vm",
                     v.name + ": " +
                         (v.affected ? "AFFECTED — " + v.why : "ok"));
  }
  if (r.vm3_attempted) {
    NLH_TIMELINE_ADD(timeline_, platform_->Now(), "vm",
                     std::string("post-recovery VM creation check: ") +
                         (r.vm3_ok ? "passed" : "FAILED"));
  }
  if (r.audited) {
    std::string what = r.audit_clean
                           ? "state audit clean"
                           : "state audit found " +
                                 std::to_string(r.audit_report.CorruptionCount()) +
                                 " corruption finding(s)";
    if (r.latent_corruption) what += " (latent: run classified successful)";
    NLH_TIMELINE_ADD(timeline_, platform_->Now(), "audit", what);
  }
  if (r.system_dead) {
    NLH_TIMELINE_ADD(timeline_, platform_->Now(), "system",
                     "platform dead: " + r.death_reason);
  }
}

}  // namespace nlh::core
