// Per-worker scratch buffers recycled across campaign runs.
//
// A campaign constructs and destroys one full TargetSystem per run; most of
// that cost is re-growing the event queue's slab and heap from zero every
// time. A worker thread keeps one RunArena alive across its runs and hands
// it to each TargetSystem, which adopts the buffers at build time (before
// anything is scheduled) and returns them at teardown. No logical state
// crosses runs — only vector capacity — so results are bit-identical with
// or without an arena.
#pragma once

#include "sim/event_queue.h"

namespace nlh::core {

struct RunArena {
  sim::EventQueue::Storage queue;
};

}  // namespace nlh::core
