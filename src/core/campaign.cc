#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "core/target_system.h"
#include "sim/json.h"
#include "sim/metrics.h"

namespace nlh::core {

double Proportion::HalfWidth95() const {
  if (denom == 0) return 0.0;
  const double p = Value();
  return 1.96 * std::sqrt(p * (1.0 - p) / denom);
}

std::string Proportion::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%% ± %.1f%%", Value() * 100.0,
                HalfWidth95() * 100.0);
  return buf;
}

std::string Proportion::ToJson() const {
  std::string out = "{\"numer\":" + std::to_string(numer) +
                    ",\"denom\":" + std::to_string(denom) +
                    ",\"value\":" + sim::JsonNum(Value(), 6) +
                    ",\"hw95\":" + sim::JsonNum(HalfWidth95(), 6) + "}";
  return out;
}

namespace {

// Folds the samples into a sim::Histogram so every campaign aggregate uses
// the same interpolated quantile definition as the metrics registry.
sim::Histogram HistogramOf(const std::vector<double>& samples) {
  sim::Histogram h;
  for (double s : samples) h.Observe(s);
  return h;
}

PhaseAggregate Aggregate(const std::string& phase,
                         const std::vector<double>& samples) {
  PhaseAggregate agg;
  agg.phase = phase;
  agg.samples = static_cast<int>(samples.size());
  const sim::Histogram h = HistogramOf(samples);
  agg.mean_ms = h.Mean();
  agg.p99_ms = h.Quantile(0.99);
  return agg;
}

DetectionLatencyAggregate AggregateDetectionLatency(
    const std::string& fault_class, const std::vector<double>& samples) {
  DetectionLatencyAggregate agg;
  agg.fault_class = fault_class;
  agg.samples = static_cast<int>(samples.size());
  const sim::Histogram h = HistogramOf(samples);
  agg.mean_ms = h.Mean();
  agg.p50_ms = h.Quantile(0.50);
  agg.p99_ms = h.Quantile(0.99);
  agg.max_ms = h.max();
  return agg;
}

std::string PhaseAggToJson(const PhaseAggregate& a) {
  return "{\"phase\":" + sim::JsonStr(a.phase) +
         ",\"samples\":" + std::to_string(a.samples) +
         ",\"mean_ms\":" + sim::JsonNum(a.mean_ms, 6) +
         ",\"p99_ms\":" + sim::JsonNum(a.p99_ms, 6) + "}";
}

}  // namespace

std::string CampaignResult::ToJson() const {
  std::string out = "{";
  out += "\"runs\":" + std::to_string(runs);
  out += ",\"non_manifested\":" + std::to_string(non_manifested);
  out += ",\"sdc\":" + std::to_string(sdc);
  out += ",\"detected\":" + std::to_string(detected);
  out += ",\"success\":" + success.ToJson();
  out += ",\"no_vm_failures\":" + no_vm_failures.ToJson();
  out += ",\"audit_clean\":" + audit_clean.ToJson();
  out += ",\"latent_corruption\":" + latent_corruption.ToJson();
  out += ",\"audit_findings_by_subsystem\":{";
  for (std::size_t i = 0; i < audit_findings_by_subsystem.size(); ++i) {
    if (i) out += ",";
    out += sim::JsonStr(audit_findings_by_subsystem[i].first);
    out += ":" + std::to_string(audit_findings_by_subsystem[i].second);
  }
  out += "},\"failure_reasons\":{";
  for (std::size_t i = 0; i < failure_reasons.size(); ++i) {
    if (i) out += ",";
    out += sim::JsonStr(hv::FailureReasonName(failure_reasons[i].first));
    out += ":" + std::to_string(failure_reasons[i].second);
  }
  out += "},\"phase_latency\":[";
  for (std::size_t i = 0; i < phase_latency.size(); ++i) {
    if (i) out += ",";
    out += PhaseAggToJson(phase_latency[i]);
  }
  out += "],\"total_latency\":" + PhaseAggToJson(total_latency);
  out += ",\"detection\":{";
  out += "\"prompt\":" + std::to_string(detected_prompt);
  out += ",\"late\":" + std::to_string(detected_late);
  out += ",\"misdetected\":" + std::to_string(misdetected);
  out += ",\"silent\":" + std::to_string(silent);
  out += ",\"latency_by_class\":{";
  for (std::size_t i = 0; i < detection_latency_by_class.size(); ++i) {
    const DetectionLatencyAggregate& a = detection_latency_by_class[i];
    if (i) out += ",";
    out += sim::JsonStr(a.fault_class) +
           ":{\"samples\":" + std::to_string(a.samples) +
           ",\"mean_ms\":" + sim::JsonNum(a.mean_ms, 6) +
           ",\"p50_ms\":" + sim::JsonNum(a.p50_ms, 6) +
           ",\"p99_ms\":" + sim::JsonNum(a.p99_ms, 6) +
           ",\"max_ms\":" + sim::JsonNum(a.max_ms, 6) + "}";
  }
  out += "}}";
  out += "}";
  return out;
}

std::vector<RunResult> RunMany(
    const std::vector<RunConfig>& configs, int threads,
    const std::function<void(int, const RunResult&)>& on_run) {
  const int total = static_cast<int>(configs.size());
  // Workers only *collect* per-run results, each into its own slot; all
  // aggregation happens after the join, in index order. This makes every
  // consumer — campaign aggregates, fuzz coverage maps — bit-identical
  // regardless of thread count or scheduling.
  std::vector<RunResult> run_results(static_cast<std::size_t>(total));
  std::mutex mu;  // serializes on_run only
  std::atomic<int> next{0};

  int nthreads = threads > 0
                     ? threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (nthreads <= 0) nthreads = 4;
  nthreads = std::min(nthreads, total);

  auto worker = [&] {
    // One arena per worker: event-queue buffers are recycled across this
    // worker's runs (capacity only — no logical state crosses runs).
    RunArena arena;
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= total) return;
      TargetSystem sys(configs[static_cast<std::size_t>(i)], &arena);
      run_results[static_cast<std::size_t>(i)] = sys.Run();
      if (on_run) {
        std::lock_guard<std::mutex> lock(mu);
        on_run(i, run_results[static_cast<std::size_t>(i)]);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(std::max(nthreads, 0)));
  for (int t = 0; t < nthreads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return run_results;
}

CampaignResult RunCampaign(const RunConfig& config,
                           const CampaignOptions& options) {
  CampaignResult result;
  result.runs = options.runs;

  std::vector<RunConfig> configs(
      static_cast<std::size_t>(std::max(options.runs, 0)), config);
  for (int i = 0; i < options.runs; ++i) {
    configs[static_cast<std::size_t>(i)].seed =
        options.seed0 + static_cast<std::uint64_t>(i);
  }
  const std::vector<RunResult> run_results =
      RunMany(configs, options.threads, options.on_run);

  std::map<FailureReason, int> reasons;
  // Phase samples in first-observed order (matches step execution order;
  // deterministic because aggregation walks runs in index order).
  std::vector<std::string> phase_order;
  std::map<std::string, std::vector<double>> phase_samples;
  std::vector<double> total_samples;
  std::map<std::string, int> audit_findings;
  // Detection-latency samples keyed by fault class (lexicographic).
  std::map<std::string, std::vector<double>> det_latency;

  for (const RunResult& r : run_results) {
    // Detection classification is orthogonal to the outcome switch below:
    // an SDC run with a fired fault counts as silent.
    switch (r.detection_class) {
      case forensics::DetectionClass::kPrompt: ++result.detected_prompt; break;
      case forensics::DetectionClass::kDetectedLate:
        ++result.detected_late;
        break;
      case forensics::DetectionClass::kMisdetected: ++result.misdetected; break;
      case forensics::DetectionClass::kSilent: ++result.silent; break;
      case forensics::DetectionClass::kNotApplicable: break;
    }
    if (r.injection_fired && r.detected && r.detection_latency >= 0) {
      det_latency[inject::ManifestationName(r.manifestation)].push_back(
          sim::ToMillisF(r.detection_latency));
    }
    switch (r.outcome) {
      case OutcomeClass::kNonManifested:
        ++result.non_manifested;
        break;
      case OutcomeClass::kSdc:
        ++result.sdc;
        break;
      case OutcomeClass::kDetected:
        ++result.detected;
        ++result.success.denom;
        ++result.no_vm_failures.denom;
        if (r.success) ++result.success.numer;
        if (r.no_vm_failures) ++result.no_vm_failures.numer;
        if (!r.success) ++reasons[r.failure_reason];
        if (r.audited && r.success) {
          ++result.audit_clean.denom;
          ++result.latent_corruption.denom;
          if (r.audit_clean) ++result.audit_clean.numer;
          if (r.latent_corruption) ++result.latent_corruption.numer;
        }
        if (!r.recovery_phases.empty()) {
          double total_ms = 0.0;
          for (const PhaseLatency& p : r.recovery_phases) {
            auto it = phase_samples.find(p.phase);
            if (it == phase_samples.end()) {
              phase_order.push_back(p.phase);
              it = phase_samples.emplace(p.phase, std::vector<double>{}).first;
            }
            const double ms = sim::ToMillisF(p.latency);
            it->second.push_back(ms);
            total_ms += ms;
          }
          total_samples.push_back(total_ms);
        }
        break;
    }
    if (r.audited) {
      for (const audit::AuditFinding& f : r.audit_report.findings) {
        if (f.severity != audit::AuditSeverity::kInfo) {
          ++audit_findings[audit::AuditSubsystemName(f.subsystem)];
        }
      }
    }
  }

  result.failure_reasons.assign(reasons.begin(), reasons.end());
  std::sort(result.failure_reasons.begin(), result.failure_reasons.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  result.audit_findings_by_subsystem.assign(audit_findings.begin(),
                                            audit_findings.end());
  for (const std::string& phase : phase_order) {
    result.phase_latency.push_back(Aggregate(phase, phase_samples[phase]));
  }
  result.total_latency = Aggregate("total", total_samples);
  for (const auto& [fault_class, samples] : det_latency) {
    result.detection_latency_by_class.push_back(
        AggregateDetectionLatency(fault_class, samples));
  }
  return result;
}

}  // namespace nlh::core
