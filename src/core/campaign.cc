#include "core/campaign.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "core/target_system.h"

namespace nlh::core {

double Proportion::HalfWidth95() const {
  if (denom == 0) return 0.0;
  const double p = Value();
  return 1.96 * std::sqrt(p * (1.0 - p) / denom);
}

std::string Proportion::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%% ± %.1f%%", Value() * 100.0,
                HalfWidth95() * 100.0);
  return buf;
}

CampaignResult RunCampaign(const RunConfig& config,
                           const CampaignOptions& options) {
  CampaignResult result;
  result.runs = options.runs;

  std::mutex mu;
  std::map<std::string, int> reasons;
  std::atomic<int> next{0};

  int nthreads = options.threads > 0
                     ? options.threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  if (nthreads <= 0) nthreads = 4;
  nthreads = std::min(nthreads, options.runs);

  auto worker = [&] {
    while (true) {
      const int i = next.fetch_add(1);
      if (i >= options.runs) return;
      RunConfig cfg = config;
      cfg.seed = options.seed0 + static_cast<std::uint64_t>(i);
      TargetSystem sys(cfg);
      const RunResult r = sys.Run();

      std::lock_guard<std::mutex> lock(mu);
      switch (r.outcome) {
        case OutcomeClass::kNonManifested:
          ++result.non_manifested;
          break;
        case OutcomeClass::kSdc:
          ++result.sdc;
          break;
        case OutcomeClass::kDetected:
          ++result.detected;
          ++result.success.denom;
          ++result.no_vm_failures.denom;
          if (r.success) ++result.success.numer;
          if (r.no_vm_failures) ++result.no_vm_failures.numer;
          if (!r.success) {
            // Key by the first clause of the reason to keep the tally
            // readable.
            std::string key = r.failure_reason.substr(
                0, r.failure_reason.find_first_of(";("));
            ++reasons[key];
          }
          break;
      }
      if (options.on_run) options.on_run(i, r);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int t = 0; t < nthreads; ++t) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  result.failure_reasons.assign(reasons.begin(), reasons.end());
  std::sort(result.failure_reasons.begin(), result.failure_reasons.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return result;
}

}  // namespace nlh::core
