// Top-level run configuration: everything that defines one experiment run.
//
// Defaults reproduce the paper's target systems (Section VI-A) at reduced
// time scale: the simulated benchmarks are fixed-work and sized to run for
// a few simulated seconds instead of 10/24 s, which preserves every ratio
// that matters (injection lands uniformly over hypervisor execution; the
// recovery latencies are unchanged absolute values) while keeping
// thousand-run campaigns tractable.
#pragma once

#include <cstdint>
#include <vector>

#include "guest/appvm.h"
#include "hv/hypervisor.h"
#include "hw/platform.h"
#include "inject/corruption.h"
#include "inject/injector.h"
#include "recovery/enhancements.h"
#include "recovery/latency_model.h"
#include "sim/time.h"

namespace nlh::core {

enum class Mechanism { kNone, kNiLiHype, kReHype };
const char* MechanismName(Mechanism m);

enum class Setup {
  k1AppVM,  // PrivVM + one AppVM (Section VI-A)
  k3AppVM,  // PrivVM + UnixBench + NetBench; BlkBench VM created after
            // recovery to verify the hypervisor still works
};

struct RunConfig {
  // --- Platform -----------------------------------------------------------
  hw::PlatformConfig platform;  // 8 CPUs, 8 GiB (paper defaults)

  // --- Mechanism under test -------------------------------------------------
  Mechanism mechanism = Mechanism::kNiLiHype;
  recovery::EnhancementSet enhancements = recovery::EnhancementSet::Full();
  recovery::LatencyModel latency_model;  // Tables II/III calibration

  // --- Workload ---------------------------------------------------------
  Setup setup = Setup::k3AppVM;
  guest::BenchmarkKind bench_1appvm = guest::BenchmarkKind::kUnixBench;
  // Fixed work per benchmark (iterations); see guest/appvm.h.
  int unixbench_iterations = 42000;   // ~2.9 s at ~70 us/iter
  int blkbench_files = 2000;          // ~1.5 s at ~0.73 ms/file
  int vm3_blkbench_files = 800;       // ~0.5 s post-recovery check
  sim::Duration netbench_duration = sim::Seconds(3);
  sim::Duration run_deadline = sim::Seconds(6);
  // Figure 3 variant of the 3AppVM setup (Section VII-C): create all three
  // AppVMs at the start instead of creating BlkBench after recovery.
  bool vm3_at_start = false;
  // Extension (Section IX future work): pin multiple vCPUs to the same
  // physical CPU — both initial AppVMs share CPU 1 and time-slice through
  // the scheduler instead of owning a core each.
  bool share_cpu = false;
  // Virtualization mode of the AppVMs (Section VI-A: HVM results closely
  // match PV). HVM applies to the UnixBench workload, which has a
  // hardware-virtualized variant; I/O-driver paths stay paravirtual.
  guest::VirtMode appvm_mode = guest::VirtMode::kPV;

  // --- Fault injection ------------------------------------------------------
  bool inject = true;
  inject::FaultType fault = inject::FaultType::kFailstop;
  sim::Time inject_window_start = sim::Milliseconds(300);
  sim::Time inject_window_end = sim::Milliseconds(1200);
  // Scenario hooks (src/fuzz/): an optional trigger-event condition ("fire
  // on the Nth grant op after the window position"), an exact level-2
  // instruction count (-1 keeps the classic uniform 0..20000 draw), and
  // silently planted latent corruptions. Defaults reproduce the paper's
  // campaign behavior exactly.
  inject::TriggerSpec inject_trigger;
  std::int64_t inject_second_trigger = -1;
  std::vector<inject::PlantSpec> inject_plants;

  std::uint64_t seed = 1;

  // --- State audit ----------------------------------------------------------
  // Capture a golden snapshot of the hypervisor state before injection and
  // run a full state audit (audit/state_auditor.h) at the end of the run.
  // Splits "successful recovery" into audit-clean vs latent-corruption.
  bool audit = false;

  // NetBench evaluation: exclude the detection+recovery interval from the
  // 10%-rate-drop criterion (the interruption itself is reported as
  // recovery latency, Section VII-B). See EXPERIMENTS.md for discussion.
  bool netbench_exclude_recovery_window = true;

  // Derived: hypervisor runtime options follow the enhancement set — the
  // undo-log and batch-completion logging only exist in the image when the
  // corresponding mitigation is part of the build (Section IV).
  hv::HvConfig MakeHvConfig() const {
    hv::HvConfig cfg;
    cfg.runtime.undo_logging = enhancements.nonidem_mitigation;
    cfg.runtime.batch_completion_logging = enhancements.batched_retry_fine;
    cfg.runtime.rehype_ioapic_shadow = (mechanism == Mechanism::kReHype);
    return cfg;
  }

  static RunConfig OneAppVm(guest::BenchmarkKind bench) {
    RunConfig c;
    c.setup = Setup::k1AppVM;
    c.bench_1appvm = bench;
    c.unixbench_iterations = 20000;  // ~1.4 s
    c.blkbench_files = 2000;
    c.netbench_duration = sim::Milliseconds(1500);
    c.inject_window_start = sim::Milliseconds(150);
    c.inject_window_end = sim::Milliseconds(1000);
    c.run_deadline = sim::Seconds(4);
    return c;
  }
};

}  // namespace nlh::core
