// TargetSystem: builds and runs one complete simulated virtualized host —
// platform, hypervisor, PrivVM with backends, AppVMs with benchmarks,
// detectors, a recovery mechanism, and optionally one injected fault — and
// classifies the outcome per the paper's criteria.
//
// This is the library's main entry point:
//
//   core::RunConfig cfg;                    // 3AppVM, NiLiHype, failstop
//   cfg.seed = 42;
//   core::TargetSystem sys(cfg);
//   core::RunResult r = sys.Run();
//
#pragma once

#include <memory>
#include <vector>

#include "audit/snapshot.h"
#include "core/config.h"
#include "core/outcome.h"
#include "core/timeline.h"
#include "detect/hang_detector.h"
#include "guest/appvm.h"
#include "guest/devices.h"
#include "guest/privvm.h"
#include "hv/hypervisor.h"
#include "hw/platform.h"
#include "inject/injector.h"
#include "core/run_arena.h"
#include "recovery/manager.h"

namespace nlh::core {

class TargetSystem {
 public:
  explicit TargetSystem(const RunConfig& config);
  // Arena flavor: adopts the arena's recycled buffers during Build() and
  // returns them (with any grown capacity) at destruction. The arena must
  // outlive this object. Purely a reuse of vector capacity across runs;
  // results are identical with arena == nullptr.
  TargetSystem(const RunConfig& config, RunArena* arena);
  ~TargetSystem();

  TargetSystem(const TargetSystem&) = delete;
  TargetSystem& operator=(const TargetSystem&) = delete;

  // Runs the configured scenario to its deadline and classifies the result.
  RunResult Run();

  // Enables run-timeline recording (off by default; see core/timeline.h).
  void EnableTimeline() { timeline_.Enable(); }
  const Timeline& timeline() const { return timeline_; }

  // Enables trace-span recording on the hypervisor (off by default; see
  // sim/trace.h). Call before Run(); export with hv().tracer().ToChromeJson().
  void EnableTracing(std::size_t capacity = 1 << 16) {
    hv_->tracer().Enable(capacity);
  }

  // Enables the flight recorder (off by default; see
  // forensics/flight_recorder.h) and routes platform log lines into it.
  // Call before Run(); export with hv().flight_recorder().ToJson().
  void EnableFlightRecorder(
      std::size_t per_cpu_capacity = forensics::FlightRecorder::kDefaultCapacity);

  // --- Component access (tests, examples, benches) --------------------------
  hw::Platform& platform() { return *platform_; }
  hv::Hypervisor& hv() { return *hv_; }
  guest::PrivVmKernel& privvm() { return *privvm_; }
  recovery::RecoveryManager* recovery_manager() { return manager_.get(); }
  const std::vector<std::unique_ptr<guest::AppVmKernel>>& appvms() const {
    return appvms_;
  }
  guest::NetPeer* net_peer() { return peer_.get(); }
  // The pre-injection golden snapshot (captured only when config.audit).
  const audit::GoldenSnapshot& golden_snapshot() const { return golden_; }
  const inject::InjectionRecord* injection() const {
    return injector_ ? &injector_->record() : nullptr;
  }

  // Runs the event queue up to `t` without classifying (tests/examples).
  void RunUntil(sim::Time t);

  // Issues the post-recovery VM-creation check manually (normally triggered
  // automatically at first recovery resume in the 3AppVM setup).
  void TriggerVm3Creation();

 private:
  struct BlkWiring {
    std::unique_ptr<guest::BlkRing> ring;
  };
  struct NetWiring {
    std::unique_ptr<guest::NetRxRing> rx;
    std::unique_ptr<guest::NetTxRing> tx;
  };

  void Build();
  guest::AppVmKernel* AddAppVm(guest::BenchmarkKind kind, int iterations,
                               hw::CpuId cpu, bool via_toolstack,
                               hv::DomainId precreated = hv::kInvalidDomain);
  void WireBlk(guest::AppVmKernel* vm);
  void WireNet(guest::AppVmKernel* vm);
  // Creates a pair of bound interdomain event ports; returns {app_port,
  // priv_port}.
  std::pair<hv::EventPort, hv::EventPort> BindPorts(hv::DomainId app);
  void ArmInjection();
  RunResult Classify();
  void BuildTimeline(const RunResult& r);

  RunConfig config_;
  RunArena* arena_ = nullptr;  // not owned; may be null
  std::unique_ptr<hw::Platform> platform_;
  std::unique_ptr<hv::Hypervisor> hv_;
  std::unique_ptr<detect::HangDetector> hang_;
  std::unique_ptr<recovery::RecoveryManager> manager_;
  std::unique_ptr<guest::VirtualDisk> disk_;
  std::unique_ptr<guest::VirtualNic> nic_;
  std::unique_ptr<guest::NetPeer> peer_;
  std::unique_ptr<guest::PrivVmKernel> privvm_;
  std::vector<std::unique_ptr<guest::AppVmKernel>> appvms_;
  std::vector<BlkWiring> blk_wirings_;
  std::vector<NetWiring> net_wirings_;
  std::unique_ptr<inject::FaultInjector> injector_;
  sim::Rng run_rng_;

  Timeline timeline_;
  audit::GoldenSnapshot golden_;
  guest::AppVmKernel* vm3_ = nullptr;
  bool vm3_attempted_ = false;
  bool vm3_created_ = false;
  int initial_appvm_count_ = 0;
};

}  // namespace nlh::core
