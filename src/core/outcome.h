// Classification of a single fault-injection run (Section VII-A).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/finding.h"
#include "forensics/correlator.h"
#include "hv/failure.h"
#include "inject/corruption.h"
#include "sim/time.h"

namespace nlh::core {

// Re-exported so campaign-level code can tally failures without pulling in
// the whole hypervisor header.
using FailureReason = hv::FailureReason;

// One recovery step with its simulated latency (a Table III row), copied
// from the first RecoveryReport of the run.
struct PhaseLatency {
  std::string phase;   // stable slug (recovery::RecoveryPhaseName)
  std::string label;   // human-readable step label
  sim::Duration latency = 0;
};

// Top-level fate of the injected fault.
enum class OutcomeClass {
  kNonManifested,  // benchmarks finished correctly, nothing detected
  kSdc,            // silent data corruption: wrong output, no detection
  kDetected,       // a detector fired and recovery was attempted
};

const char* OutcomeClassName(OutcomeClass c);

struct VmVerdict {
  std::string name;
  bool affected = false;   // failure criteria of Section VI-A
  std::string why;
};

struct RunResult {
  OutcomeClass outcome = OutcomeClass::kNonManifested;

  // Detection / recovery.
  bool detected = false;
  int recoveries = 0;
  bool system_dead = false;
  FailureReason death_code = FailureReason::kNone;
  std::string death_reason;
  sim::Duration first_recovery_latency = 0;
  // Per-phase latency breakdown of the first recovery (Table 3 rows).
  std::vector<PhaseLatency> recovery_phases;

  // Per-VM verdicts (initial AppVMs only; VM3 reported separately).
  std::vector<VmVerdict> vms;
  bool privvm_ok = true;

  // 3AppVM: post-recovery VM creation check (hypervisor operational).
  bool vm3_attempted = false;
  bool vm3_ok = false;

  // The paper's success metrics (meaningful when detected):
  bool success = false;           // <=1 AppVM affected && hv operational
  bool no_vm_failures = false;    // noVMF: no AppVM affected at all
  FailureReason failure_reason = FailureReason::kNone;
  std::string failure_detail;

  // State audit (RunConfig::audit): full end-of-run sweep, differential
  // against the pre-injection golden snapshot. `audit_clean` means no
  // finding above info severity; a *successful* recovery that is not clean
  // carries latent corruption — the residual-failure class the behavioral
  // classification above cannot see.
  bool audited = false;
  audit::AuditReport audit_report;
  bool audit_clean = false;
  bool latent_corruption = false;  // success && !audit_clean

  // Forensics: injection ground truth joined against what the detectors
  // reported (forensics/correlator.h). Populated by TargetSystem::Classify.
  bool injection_fired = false;
  sim::Time injected_at = 0;
  int injection_cpu = -1;
  inject::Manifestation manifestation = inject::Manifestation::kNone;
  std::vector<std::string> injection_corruptions;  // CorruptionTargetName
  // Planted (silent) corruptions applied via InjectionPlan::plants; these
  // fire independently of the two-level trigger and are recorded even when
  // the fault itself never manifests.
  std::vector<std::string> planted_corruptions;
  hv::DetectionEvent detection;                    // first detection, if any
  sim::Duration detection_latency = -1;            // injection→detection; -1 n/a
  forensics::DetectionClass detection_class =
      forensics::DetectionClass::kNotApplicable;

  // NetBench service measurement (when a NetBench VM is present).
  sim::Duration net_max_gap = 0;
  bool net_rate_dropped = false;

  // Hypervisor processing measurement (Figure 3).
  std::uint64_t hv_cycles = 0;
  std::uint64_t total_cycles = 0;

  int AffectedVmCount() const {
    int n = 0;
    for (const VmVerdict& v : vms) n += v.affected ? 1 : 0;
    return n;
  }
};

}  // namespace nlh::core
