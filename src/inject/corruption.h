// Fault manifestation and corruption model — THE calibrated component.
//
// Everything downstream of this file is mechanical: corruptions are real
// mutations of live simulator structures, and recovery succeeds or fails
// depending on whether the exercised mechanisms actually repair them. What
// IS calibrated here (against the paper's own measurements) is:
//
//  1. The outcome mix per fault type — fit to Section VII-A:
//       Register: 74.8% non-manifested, 5.6% SDC, 19.6% detected
//       Code:     35.0% non-manifested, 12.1% SDC, 52.9% detected
//       Failstop: 100% detected (PC := 0)
//  2. How a detected fault manifests (immediate fatal exception, delayed
//     panic after propagation, or livelock/hang) — fit to the paper's
//     observations that Code faults have longer detection latency and the
//     most state corruption (Section VII-A), and to the recovery-failure
//     cause analysis (top-3: recovery routine not invocable, PrivVM
//     failure, corrupted hypervisor data structure).
//  3. The corruption-target mix — weights chosen so the per-mechanism
//     repairability (reboot re-initializes static data / heap free lists /
//     timer heaps; microreset reuses them) reproduces the ReHype-vs-
//     NiLiHype recovery-rate gap of Figure 2.
#pragma once

#include <cstdint>

namespace nlh::inject {

// kMemory is an extension beyond the paper's three types (Section IX
// future work: "evaluate NiLiHype's effectiveness under additional fault
// types"): a bit flip directly in hypervisor data memory. It never faults
// at the flipped instruction (no register/PC involvement), so it skews
// toward silent corruption and delayed detection.
enum class FaultType { kFailstop, kRegister, kCode, kMemory };

const char* FaultTypeName(FaultType t);

// How an injected fault manifests.
enum class Manifestation {
  kNone,           // flipped bit never used
  kSdc,            // silent corruption of guest-visible data
  kImmediatePanic,  // wild pointer / bad PC -> fatal exception right away
  kDelayedPanic,   // corrupts state, propagates, detected later
  kHang,           // livelock (only the NMI watchdog can catch it)
};

inline const char* ManifestationName(Manifestation m) {
  switch (m) {
    case Manifestation::kNone: return "none";
    case Manifestation::kSdc: return "sdc";
    case Manifestation::kImmediatePanic: return "immediate_panic";
    case Manifestation::kDelayedPanic: return "delayed_panic";
    case Manifestation::kHang: return "hang";
  }
  return "?";
}

// What state a corrupting fault damages (real mutations; see
// FaultInjector::ApplyCorruption).
enum class CorruptionTarget {
  kFrameDescriptor,  // validated-bit / use-counter damage    (scan repairs)
  kSchedMetadata,    // curr/running_on/runqueue damage       (repair enh.)
  kStaticVar,        // static segment scalar                 (reboot only*)
  kHeapFreeList,     // heap linkage                          (reboot only)
  kTimerHeapEntry,   // soft timer deadline                   (reboot only)
  kVcpuStruct,       // stray write into a vCPU heap object   (neither)
  kDomainStruct,     // stray write into a domain heap object (neither)
  kPrivVmState,      // wild write into Dom0                  (neither)
  kRecoveryPath,     // state the recovery routine needs      (neither)
  kGuestMemory,      // AppVM page (affects one VM only)
  kCount,
};

inline const char* CorruptionTargetName(CorruptionTarget t) {
  switch (t) {
    case CorruptionTarget::kFrameDescriptor: return "frame_descriptor";
    case CorruptionTarget::kSchedMetadata: return "sched_metadata";
    case CorruptionTarget::kStaticVar: return "static_var";
    case CorruptionTarget::kHeapFreeList: return "heap_free_list";
    case CorruptionTarget::kTimerHeapEntry: return "timer_heap_entry";
    case CorruptionTarget::kVcpuStruct: return "vcpu_struct";
    case CorruptionTarget::kDomainStruct: return "domain_struct";
    case CorruptionTarget::kPrivVmState: return "priv_vm_state";
    case CorruptionTarget::kRecoveryPath: return "recovery_path";
    case CorruptionTarget::kGuestMemory: return "guest_memory";
    case CorruptionTarget::kCount: break;
  }
  return "?";
}

struct OutcomeMix {
  double p_nonmanifested;
  double p_sdc;
  // Conditional on detected:
  double p_immediate;  // of detected
  double p_delayed;    // of detected
  double p_hang;       // of detected (remainder)
  int corruptions_min;  // corruption actions applied by a delayed fault
  int corruptions_max;
  std::uint64_t delay_instr_min;  // extra hv instructions before detection
  std::uint64_t delay_instr_max;
};

// Calibration point (1) and (2).
inline OutcomeMix MixFor(FaultType t) {
  switch (t) {
    case FaultType::kFailstop:
      return {0.0, 0.0, 1.0, 0.0, 0.0, 0, 0, 0, 0};
    case FaultType::kRegister:
      return {0.748, 0.056, 0.66, 0.20, 0.14, 1, 1, 2000, 60000};
    case FaultType::kCode:
      return {0.350, 0.121, 0.48, 0.36, 0.16, 1, 2, 10000, 250000};
    case FaultType::kMemory:
      // Extension (not in the paper): most flips land in cold data
      // (non-manifested) or guest-visible data (SDC); detected ones are
      // almost always delayed (the corrupt value must be consumed first).
      return {0.55, 0.15, 0.10, 0.70, 0.20, 1, 2, 20000, 400000};
  }
  return {};
}

// Calibration point (3): relative weights of corruption targets for a
// delayed-panic fault. kGuestMemory affects only the owning VM; kStaticVar
// is repaired by reboot for the 8-of-12 non-preserved variables.
struct TargetWeights {
  double w[static_cast<int>(CorruptionTarget::kCount)];
};

inline TargetWeights CorruptionWeights() {
  TargetWeights tw{};
  auto set = [&tw](CorruptionTarget t, double w) {
    tw.w[static_cast<int>(t)] = w;
  };
  set(CorruptionTarget::kFrameDescriptor, 0.33);
  set(CorruptionTarget::kSchedMetadata, 0.20);
  set(CorruptionTarget::kStaticVar, 0.07);
  set(CorruptionTarget::kHeapFreeList, 0.03);
  set(CorruptionTarget::kTimerHeapEntry, 0.03);
  set(CorruptionTarget::kVcpuStruct, 0.045);
  set(CorruptionTarget::kDomainStruct, 0.045);
  set(CorruptionTarget::kPrivVmState, 0.065);
  set(CorruptionTarget::kRecoveryPath, 0.035);
  set(CorruptionTarget::kGuestMemory, 0.18);
  return tw;
}

}  // namespace nlh::inject
