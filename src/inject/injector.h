// The fault injector — our re-implementation of the Gigan setup
// (Section VI-C) for the simulated platform.
//
// Faults are injected through a two-level chained trigger: a timer fires at
// a configured point in the run, arming an instruction counter; after a
// random 0..20000 further instructions retired *in hypervisor code* (the
// platform's per-step hook), the fault fires on whichever CPU is executing.
// Firing happens between two real mutation steps of whatever handler is
// running, so abandonment leaves authentic partial state.
//
// In the paper the injector runs outside the target (in the "outside"
// hypervisor of a nested-virtualization setup); here it runs outside the
// simulated world, hooked into the simulated hardware — the same vantage
// point.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hv/hypervisor.h"
#include "inject/corruption.h"
#include "sim/rng.h"

namespace nlh::inject {

// Access the injector needs into the guest layer for corruption targets the
// hypervisor cannot name (provided by core::TargetSystem).
struct CorruptionHooks {
  std::function<void()> corrupt_privvm;             // wild write into Dom0
  std::function<void()> corrupt_random_appvm_memory;  // SDC / guest damage
};

struct InjectionPlan {
  FaultType type = FaultType::kFailstop;
  sim::Time first_trigger = 0;               // timer (level 1)
  std::uint64_t second_trigger_instructions = 0;  // 0..20000 (level 2)
};

struct InjectionRecord {
  bool fired = false;
  sim::Time fired_at = 0;
  hw::CpuId cpu = -1;
  Manifestation manifestation = Manifestation::kNone;
  std::vector<CorruptionTarget> corruptions;
};

// Applies one corruption of `target` to the hypervisor — the mutation step
// the injector performs, exposed as a free function so tests can plant an
// exact corruption class and assert the audit engine reports it. Targets
// that damage guest-side state use `hooks` (pass a default-constructed
// CorruptionHooks to limit effects to the hypervisor).
void ApplyCorruptionTo(hv::Hypervisor& hv, CorruptionTarget target,
                       sim::Rng& rng, const CorruptionHooks& hooks);

class FaultInjector {
 public:
  FaultInjector(hv::Hypervisor& hv, CorruptionHooks hooks, std::uint64_t seed)
      : hv_(hv), hooks_(std::move(hooks)), rng_(seed) {}

  // Arms the two-level trigger.
  void Arm(const InjectionPlan& plan);

  const InjectionRecord& record() const { return record_; }

 private:
  void OnHvStep(hw::Cpu& cpu, std::uint64_t instructions);
  void Fire(hw::Cpu& cpu);
  [[noreturn]] void RaiseDetected(Manifestation m);
  void ApplyCorruption(CorruptionTarget target);
  CorruptionTarget PickTarget();

  hv::Hypervisor& hv_;
  CorruptionHooks hooks_;
  sim::Rng rng_;
  InjectionPlan plan_;
  bool counting_ = false;
  bool fired_ = false;
  std::uint64_t remaining_ = 0;
  // Delayed-detection countdown (propagation window).
  bool delayed_armed_ = false;
  std::uint64_t delay_remaining_ = 0;
  Manifestation delayed_kind_ = Manifestation::kDelayedPanic;
  InjectionRecord record_;
};

}  // namespace nlh::inject
