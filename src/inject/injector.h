// The fault injector — our re-implementation of the Gigan setup
// (Section VI-C) for the simulated platform.
//
// Faults are injected through a two-level chained trigger: a timer fires at
// a configured point in the run, arming an instruction counter; after a
// random 0..20000 further instructions retired *in hypervisor code* (the
// platform's per-step hook), the fault fires on whichever CPU is executing.
// Firing happens between two real mutation steps of whatever handler is
// running, so abandonment leaves authentic partial state.
//
// In the paper the injector runs outside the target (in the "outside"
// hypervisor of a nested-virtualization setup); here it runs outside the
// simulated world, hooked into the simulated hardware — the same vantage
// point.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "hv/hypervisor.h"
#include "inject/corruption.h"
#include "sim/rng.h"

namespace nlh::inject {

// Access the injector needs into the guest layer for corruption targets the
// hypervisor cannot name (provided by core::TargetSystem).
struct CorruptionHooks {
  std::function<void()> corrupt_privvm;             // wild write into Dom0
  std::function<void()> corrupt_random_appvm_memory;  // SDC / guest damage
};

// Trigger-event injection condition: instead of arming the instruction
// counter the moment the level-1 timer fires, wait until the Nth matching
// hypervisor operation *after* that moment. This lets a scenario land the
// fault against a specific kind of in-flight work — a grant op, an event
// channel op, a multicall batch boundary, the timer softirq — which is
// where retry/reactivation bugs hide (Section IV/V).
enum class TriggerKind {
  kTime = 0,           // classic: arm immediately at first_trigger
  kAnyHypercall,       // Nth hypercall of any code
  kGrantOp,            // Nth grant_map/grant_unmap/grant_copy
  kEvtchnOp,           // Nth event-channel hypercall
  kMulticallBoundary,  // Nth multicall batch-component boundary
  kTimerSoftirq,       // Nth timer softirq entry
  kCount,
};

const char* TriggerKindName(TriggerKind k);
// Inverse of TriggerKindName; returns kTime for unknown names.
TriggerKind TriggerKindFromName(const std::string& name);

struct TriggerSpec {
  TriggerKind kind = TriggerKind::kTime;
  int skip = 0;  // fire on the (skip+1)-th matching event
};

// A planted corruption: applies one corruption action at an absolute time,
// silently — no manifestation, no detection. Plants create exactly the
// latent-corruption surface the behavioral classification cannot see; the
// scenario fuzzer's differential oracle exists to expose them.
struct PlantSpec {
  CorruptionTarget target = CorruptionTarget::kStaticVar;
  sim::Time at = 0;
};

struct InjectionPlan {
  FaultType type = FaultType::kFailstop;
  bool fault_enabled = true;                 // arm the two-level trigger?
  sim::Time first_trigger = 0;               // timer (level 1)
  std::uint64_t second_trigger_instructions = 0;  // 0..20000 (level 2)
  TriggerSpec trigger;                       // optional level-1.5 condition
  std::vector<PlantSpec> plants;             // silent latent corruptions
};

struct InjectionRecord {
  bool fired = false;
  sim::Time fired_at = 0;
  hw::CpuId cpu = -1;
  Manifestation manifestation = Manifestation::kNone;
  std::vector<CorruptionTarget> corruptions;
  std::vector<CorruptionTarget> planted;  // applied PlantSpecs, in time order
};

// Applies one corruption of `target` to the hypervisor — the mutation step
// the injector performs, exposed as a free function so tests can plant an
// exact corruption class and assert the audit engine reports it. Targets
// that damage guest-side state use `hooks` (pass a default-constructed
// CorruptionHooks to limit effects to the hypervisor).
void ApplyCorruptionTo(hv::Hypervisor& hv, CorruptionTarget target,
                       sim::Rng& rng, const CorruptionHooks& hooks);

class FaultInjector {
 public:
  FaultInjector(hv::Hypervisor& hv, CorruptionHooks hooks, std::uint64_t seed)
      : hv_(hv), hooks_(std::move(hooks)), rng_(seed), seed_(seed) {}

  ~FaultInjector() { hv_.ClearOpObserver(); }

  // Arms the two-level trigger (and schedules any planted corruptions).
  void Arm(const InjectionPlan& plan);

  const InjectionRecord& record() const { return record_; }

 private:
  void OnHvStep(hw::Cpu& cpu, std::uint64_t instructions);
  void OnOpEvent(hv::Hypervisor::OpEventKind kind, hv::HypercallCode code);
  void ApplyPlant(std::size_t index);
  void Fire(hw::Cpu& cpu);
  [[noreturn]] void RaiseDetected(Manifestation m);
  void ApplyCorruption(CorruptionTarget target);
  CorruptionTarget PickTarget();

  hv::Hypervisor& hv_;
  CorruptionHooks hooks_;
  sim::Rng rng_;
  std::uint64_t seed_;  // plant streams derive from this, not from rng_
  InjectionPlan plan_;
  bool counting_ = false;
  bool fired_ = false;
  bool awaiting_event_ = false;  // trigger-event condition armed, not yet met
  int events_to_skip_ = 0;
  std::uint64_t remaining_ = 0;
  // Delayed-detection countdown (propagation window).
  bool delayed_armed_ = false;
  std::uint64_t delay_remaining_ = 0;
  Manifestation delayed_kind_ = Manifestation::kDelayedPanic;
  InjectionRecord record_;
};

}  // namespace nlh::inject
