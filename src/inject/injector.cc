#include "inject/injector.h"

#include "forensics/record.h"
#include "hv/panic.h"

namespace nlh::inject {

const char* FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kFailstop: return "Failstop";
    case FaultType::kRegister: return "Register";
    case FaultType::kCode: return "Code";
    case FaultType::kMemory: return "Memory";
  }
  return "?";
}

const char* TriggerKindName(TriggerKind k) {
  switch (k) {
    case TriggerKind::kTime: return "time";
    case TriggerKind::kAnyHypercall: return "hypercall";
    case TriggerKind::kGrantOp: return "grant_op";
    case TriggerKind::kEvtchnOp: return "evtchn_op";
    case TriggerKind::kMulticallBoundary: return "multicall_boundary";
    case TriggerKind::kTimerSoftirq: return "timer_softirq";
    case TriggerKind::kCount: break;
  }
  return "?";
}

TriggerKind TriggerKindFromName(const std::string& name) {
  for (int i = 0; i < static_cast<int>(TriggerKind::kCount); ++i) {
    const auto k = static_cast<TriggerKind>(i);
    if (name == TriggerKindName(k)) return k;
  }
  return TriggerKind::kTime;
}

namespace {

bool TriggerMatches(TriggerKind want, hv::Hypervisor::OpEventKind kind,
                    hv::HypercallCode code) {
  using OpEventKind = hv::Hypervisor::OpEventKind;
  switch (want) {
    case TriggerKind::kAnyHypercall:
      return kind == OpEventKind::kHypercall;
    case TriggerKind::kGrantOp:
      return kind == OpEventKind::kHypercall &&
             (code == hv::HypercallCode::kGrantMap ||
              code == hv::HypercallCode::kGrantUnmap ||
              code == hv::HypercallCode::kGrantCopy);
    case TriggerKind::kEvtchnOp:
      return kind == OpEventKind::kHypercall &&
             (code == hv::HypercallCode::kEventChannelSend ||
              code == hv::HypercallCode::kEventChannelAllocUnbound ||
              code == hv::HypercallCode::kEventChannelBindInterdomain ||
              code == hv::HypercallCode::kEventChannelClose);
    case TriggerKind::kMulticallBoundary:
      return kind == OpEventKind::kMulticallComponent;
    case TriggerKind::kTimerSoftirq:
      return kind == OpEventKind::kTimerSoftirq;
    case TriggerKind::kTime:
    case TriggerKind::kCount:
      break;
  }
  return false;
}

}  // namespace

void FaultInjector::Arm(const InjectionPlan& plan) {
  plan_ = plan;
  // Plants fire unconditionally at their absolute times, independent of the
  // fault trigger (a scenario may consist of plants alone).
  for (std::size_t i = 0; i < plan_.plants.size(); ++i) {
    hv_.platform().queue().ScheduleAt(plan_.plants[i].at,
                                      [this, i] { ApplyPlant(i); });
  }
  if (!plan_.fault_enabled) return;
  hv_.platform().queue().ScheduleAt(plan_.first_trigger, [this] {
    if (plan_.trigger.kind == TriggerKind::kTime) {
      counting_ = true;
      remaining_ = plan_.second_trigger_instructions;
    } else {
      awaiting_event_ = true;
      events_to_skip_ = plan_.trigger.skip;
    }
  });
  hv_.platform().SetHvStepHook(
      [this](hw::Cpu& cpu, std::uint64_t n) { OnHvStep(cpu, n); });
  if (plan_.trigger.kind != TriggerKind::kTime) {
    hv_.SetOpObserver([this](hv::Hypervisor::OpEventKind kind,
                             hv::HypercallCode code,
                             hw::CpuId /*cpu*/) { OnOpEvent(kind, code); });
  }
}

void FaultInjector::OnOpEvent(hv::Hypervisor::OpEventKind kind,
                              hv::HypercallCode code) {
  if (!awaiting_event_ || fired_) return;
  if (!TriggerMatches(plan_.trigger.kind, kind, code)) return;
  if (events_to_skip_-- > 0) return;
  // Condition met: arm the instruction countdown. The fault itself still
  // fires from the per-step hook, i.e. between two real mutation steps of
  // the matched (or a later) in-flight operation.
  awaiting_event_ = false;
  counting_ = true;
  remaining_ = plan_.second_trigger_instructions;
  hv_.ClearOpObserver();
}

void FaultInjector::ApplyPlant(std::size_t index) {
  const PlantSpec& plant = plan_.plants[index];
  if (hv_.dead()) return;
  record_.planted.push_back(plant.target);
  NLH_RECORD(forensics::EventKind::kCorruptionApplied, -1,
             static_cast<std::uint64_t>(plant.target), 1,
             "planted:" + std::string(CorruptionTargetName(plant.target)));
  hv_.platform().log().Log(
      sim::LogLevel::kDebug, hv_.Now(), "inject",
      "planted latent corruption: " +
          std::string(CorruptionTargetName(plant.target)));
  // Each plant draws from its own stream, derived from the injector seed —
  // never from rng_, whose draw order the fault trigger owns. Dropping or
  // reordering plants during shrinking therefore perturbs neither the other
  // plants nor the fault's manifestation roll.
  sim::Rng plant_rng(seed_ ^ (0xc2b2ae3d27d4eb4fULL * (index + 1)));
  ApplyCorruptionTo(hv_, plant.target, plant_rng, hooks_);
}

void FaultInjector::OnHvStep(hw::Cpu& cpu, std::uint64_t instructions) {
  if (delayed_armed_) {
    if (instructions >= delay_remaining_) {
      delayed_armed_ = false;
      hv_.platform().ClearHvStepHook();
      RaiseDetected(delayed_kind_);
    }
    delay_remaining_ -= instructions;
    return;
  }
  if (!counting_ || fired_) return;
  if (instructions < remaining_) {
    remaining_ -= instructions;
    return;
  }
  Fire(cpu);
}

void FaultInjector::Fire(hw::Cpu& cpu) {
  fired_ = true;
  counting_ = false;
  record_.fired = true;
  record_.fired_at = hv_.Now();
  record_.cpu = cpu.id();
  NLH_RECORD(forensics::EventKind::kInjectionFired, cpu.id(),
             static_cast<std::uint64_t>(plan_.type), 0,
             std::string(FaultTypeName(plan_.type)));
  hv_.platform().log().Log(
      sim::LogLevel::kDebug, hv_.Now(), "inject",
      std::string(FaultTypeName(plan_.type)) + " fault fired on cpu" +
          std::to_string(cpu.id()));

  const OutcomeMix mix = MixFor(plan_.type);
  const double roll = rng_.Uniform();

  if (roll < mix.p_nonmanifested) {
    record_.manifestation = Manifestation::kNone;
    hv_.platform().ClearHvStepHook();
    return;
  }
  if (roll < mix.p_nonmanifested + mix.p_sdc) {
    record_.manifestation = Manifestation::kSdc;
    ApplyCorruption(CorruptionTarget::kGuestMemory);
    hv_.platform().ClearHvStepHook();
    return;
  }

  // Detected.
  const double det = rng_.Uniform();
  if (det < mix.p_immediate) {
    record_.manifestation = Manifestation::kImmediatePanic;
    hv_.platform().ClearHvStepHook();
    RaiseDetected(Manifestation::kImmediatePanic);
  }
  if (det < mix.p_immediate + mix.p_delayed) {
    // Corrupt state now; detection after a propagation window.
    record_.manifestation = Manifestation::kDelayedPanic;
    const int n = static_cast<int>(
        rng_.Range(mix.corruptions_min, mix.corruptions_max));
    for (int i = 0; i < n; ++i) ApplyCorruption(PickTarget());
    delayed_armed_ = true;
    delayed_kind_ = Manifestation::kDelayedPanic;
    delay_remaining_ = static_cast<std::uint64_t>(rng_.Range(
        static_cast<std::int64_t>(mix.delay_instr_min),
        static_cast<std::int64_t>(mix.delay_instr_max)));
    return;  // hook stays armed for the countdown
  }
  record_.manifestation = Manifestation::kHang;
  hv_.platform().ClearHvStepHook();
  RaiseDetected(Manifestation::kHang);
}

void FaultInjector::RaiseDetected(Manifestation m) {
  switch (m) {
    case Manifestation::kImmediatePanic:
      if (plan_.type == FaultType::kFailstop) {
        throw hv::HvPanic("failstop fault: PC set to 0 (fatal fetch)");
      }
      throw hv::HvPanic("fatal exception from injected " +
                        std::string(FaultTypeName(plan_.type)) + " fault");
    case Manifestation::kDelayedPanic:
      throw hv::HvPanic("assertion failure after error propagation (" +
                        std::string(FaultTypeName(plan_.type)) + " fault)");
    case Manifestation::kHang:
    default:
      throw hv::HvHang("livelock from injected " +
                       std::string(FaultTypeName(plan_.type)) + " fault");
  }
}

CorruptionTarget FaultInjector::PickTarget() {
  const TargetWeights tw = CorruptionWeights();
  double total = 0;
  for (double w : tw.w) total += w;
  double roll = rng_.Uniform() * total;
  for (int i = 0; i < static_cast<int>(CorruptionTarget::kCount); ++i) {
    roll -= tw.w[i];
    if (roll <= 0) return static_cast<CorruptionTarget>(i);
  }
  return CorruptionTarget::kFrameDescriptor;
}

void FaultInjector::ApplyCorruption(CorruptionTarget target) {
  record_.corruptions.push_back(target);
  NLH_RECORD(forensics::EventKind::kCorruptionApplied, -1,
             static_cast<std::uint64_t>(target), 0,
             std::string(CorruptionTargetName(target)));
  ApplyCorruptionTo(hv_, target, rng_, hooks_);
}

void ApplyCorruptionTo(hv::Hypervisor& hv, CorruptionTarget target,
                       sim::Rng& rng, const CorruptionHooks& hooks) {
  switch (target) {
    case CorruptionTarget::kFrameDescriptor: {
      const hv::FrameNumber f = hv.frames().PickAllocatedFrame(rng);
      if (f == hv::kInvalidFrame) return;
      hv::PageFrameDescriptor& d = hv.frames().mutable_desc(f);
      switch (rng.Index(3)) {
        case 0: d.validated = !d.validated; break;
        case 1: d.use_count += static_cast<std::int32_t>(rng.Range(1, 3)); break;
        default: d.use_count -= static_cast<std::int32_t>(rng.Range(1, 3)); break;
      }
      return;
    }
    case CorruptionTarget::kSchedMetadata: {
      auto& vcpus = hv.vcpus();
      if (vcpus.empty()) return;
      hv::Vcpu& vc = vcpus[rng.Index(vcpus.size())];
      switch (rng.Index(4)) {
        case 0:
          vc.running_on = static_cast<hw::CpuId>(
              rng.Index(static_cast<std::size_t>(hv.platform().num_cpus())));
          break;
        case 1:
          vc.is_current = !vc.is_current;
          break;
        case 2:
          vc.state = static_cast<hv::VcpuState>(rng.Index(4));
          break;
        default: {
          hv::PerCpuData& pc = hv.percpu(static_cast<int>(
              rng.Index(static_cast<std::size_t>(hv.platform().num_cpus()))));
          pc.curr = static_cast<hv::VcpuId>(rng.Index(vcpus.size()));
          break;
        }
      }
      return;
    }
    case CorruptionTarget::kStaticVar: {
      const auto v = static_cast<hv::StaticVar>(
          rng.Index(static_cast<std::size_t>(hv::kNumStaticVars)));
      hv.statics().Corrupt(v);
      return;
    }
    case CorruptionTarget::kHeapFreeList:
      hv.heap().CorruptFreeList(/*fatal=*/rng.Chance(0.5));
      return;
    case CorruptionTarget::kTimerHeapEntry: {
      const int cpu = static_cast<int>(
          rng.Index(static_cast<std::size_t>(hv.platform().num_cpus())));
      hv.timers(cpu).CorruptEntry(rng.Index(16), rng.Chance(0.5));
      return;
    }
    case CorruptionTarget::kVcpuStruct: {
      auto& vcpus = hv.vcpus();
      if (vcpus.empty()) return;
      vcpus[rng.Index(vcpus.size())].struct_corrupted = true;
      return;
    }
    case CorruptionTarget::kDomainStruct: {
      auto& domains = hv.domains();
      if (domains.empty()) return;
      // Index in id order: identical pick to the old advance(begin, k) over
      // the id-sorted map, so injection plans stay seed-deterministic.
      domains.at_index(rng.Index(domains.size())).struct_corrupted = true;
      return;
    }
    case CorruptionTarget::kPrivVmState:
      if (hooks.corrupt_privvm) hooks.corrupt_privvm();
      return;
    case CorruptionTarget::kRecoveryPath:
      hv.CorruptRecoveryPath();
      return;
    case CorruptionTarget::kGuestMemory:
      if (hooks.corrupt_random_appvm_memory) {
        hooks.corrupt_random_appvm_memory();
      }
      return;
    case CorruptionTarget::kCount:
      return;
  }
}

}  // namespace nlh::inject
