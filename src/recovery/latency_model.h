// Recovery-step latency model, calibrated against Tables II and III.
//
// Fixed costs (hardware bring-up waits, IPI round trips) are taken directly
// from the paper's measurements on an 8-core Nehalem host with 8 GB RAM.
// Memory-proportional costs are expressed per frame and charged for every
// frame of the CONFIGURED physical memory (the mechanically simulated frame
// table is a smaller window; see hv/frame_table.h). At the paper's 8 GB
// calibration point the per-frame costs reproduce the paper's milliseconds
// exactly; Table III's "latency is proportional to the size of host memory"
// observation (Section VII-B) then falls out for other sizes.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace nlh::recovery {

struct LatencyModel {
  // --- Shared -----------------------------------------------------------
  // Detection -> all CPUs frozen (IPI delivery + interrupt disable).
  sim::Duration freeze = sim::Microseconds(120);
  // Delay from freeze to the interrupt-ack step. APIC one-shots that fire
  // inside this window are consumed by the ack; anything firing after it
  // stays latched in the IRR and is redelivered at resume. This window is
  // what makes the "Reprogram hardware timer" enhancement matter.
  sim::Duration ack_delay = sim::Microseconds(400);
  // Per-descriptor cost of the page-frame consistency scan:
  // 21 ms / (8 GiB / 4 KiB frames) ~= 10 ns (Tables II and III).
  double frame_scan_ns_per_frame = 10.014;
  // Section VII-B latency mitigation: "the problem could be mitigated by
  // exploiting parallelism... use multiple cores to perform the operation."
  // 1 = the paper's sequential scan.
  int frame_scan_parallelism = 1;

  // --- NiLiHype (Table III: total 22 ms = 21 ms scan + 1 ms others) -------
  sim::Duration nl_discard_threads = sim::Microseconds(40);
  sim::Duration nl_clear_irq = sim::Microseconds(30);
  sim::Duration nl_release_locks = sim::Microseconds(90);
  sim::Duration nl_sched_repair = sim::Microseconds(180);
  sim::Duration nl_retry_setup = sim::Microseconds(110);
  sim::Duration nl_reactivate = sim::Microseconds(60);
  sim::Duration nl_reprogram = sim::Microseconds(50);
  sim::Duration nl_resume = sim::Microseconds(90);

  // --- ReHype (Table II: total 713 ms at 8 GB) ------------------------------
  // Hardware initialization: 412 ms.
  sim::Duration rh_early_boot = sim::Milliseconds(12);
  sim::Duration rh_cpus_online = sim::Milliseconds(150);
  sim::Duration rh_apic_setup = sim::Milliseconds(200);
  sim::Duration rh_tsc_calibrate = sim::Milliseconds(50);
  // Memory initialization: 266 ms at 8 GB, all memory-proportional.
  double rh_record_heap_ns_per_frame = 10.014;   // 21 ms @ 8 GB
  // (frame scan shares frame_scan_ns_per_frame: 21 ms @ 8 GB)
  double rh_reinit_desc_ns_per_frame = 6.199;    // 13 ms @ 8 GB
  double rh_recreate_heap_ns_per_frame = 100.62;  // 211 ms @ 8 GB
  // Misc: 35 ms.
  sim::Duration rh_smp_init = sim::Milliseconds(20);
  sim::Duration rh_relocate = sim::Milliseconds(2);
  sim::Duration rh_misc_others = sim::Milliseconds(13);

  sim::Duration FrameScan(std::uint64_t configured_frames) const {
    const int par = frame_scan_parallelism > 0 ? frame_scan_parallelism : 1;
    return static_cast<sim::Duration>(frame_scan_ns_per_frame *
                                      static_cast<double>(configured_frames) /
                                      par);
  }
  sim::Duration PerFrame(double ns_per_frame,
                         std::uint64_t configured_frames) const {
    return static_cast<sim::Duration>(ns_per_frame *
                                      static_cast<double>(configured_frames));
  }
};

}  // namespace nlh::recovery
