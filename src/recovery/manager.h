// RecoveryManager: glues detection to a recovery mechanism and records
// every recovery event for later analysis (latency benches, campaign
// outcome classification).
#pragma once

#include <memory>
#include <vector>

#include "detect/hang_detector.h"
#include "recovery/recovery_common.h"

namespace nlh::recovery {

class RecoveryManager {
 public:
  RecoveryManager(hv::Hypervisor& hv, std::unique_ptr<RecoveryMechanism> mech,
                  detect::HangDetector* hang_detector)
      : hv_(hv), mech_(std::move(mech)), hang_detector_(hang_detector) {}

  // Installs the manager as the hypervisor's error handler.
  void Install() {
    hv_.SetErrorHandler([this](const hv::DetectionEvent& ev) { OnError(ev); });
  }

  void OnError(const hv::DetectionEvent& ev) {
    last_detection_ = ev;
    if (mech_ == nullptr) {
      hv_.MarkDead(hv::FailureReason::kNoMechanism, ev.detail);
      return;
    }
    if (hv_.recovery_attempts() >= max_attempts_) {
      hv_.MarkDead(hv::FailureReason::kAttemptLimitReached, ev.detail);
      return;
    }
    RecoveryReport report = mech_->Recover(ev);
    hv_.platform().log().Log(
        sim::LogLevel::kInfo, hv_.Now(), "recover",
        mech_->Name() + (report.gave_up ? " gave up: " + report.give_up_reason
                                        : " completed in " +
                                              std::to_string(sim::ToMillisF(
                                                  report.total())) +
                                              "ms"));
    if (!report.gave_up && hang_detector_ != nullptr) {
      // Reset the watchdog history when the system resumes so the frozen
      // interval is not mistaken for a hang.
      hv_.platform().queue().ScheduleAt(
          report.resumed_at, [this] { hang_detector_->ResetAll(); });
    }
    reports_.push_back(std::move(report));
  }

  const std::vector<RecoveryReport>& reports() const { return reports_; }
  const hv::DetectionEvent& last_detection() const { return last_detection_; }
  const std::string& last_detection_reason() const {
    return last_detection_.detail;
  }
  RecoveryMechanism* mechanism() { return mech_.get(); }
  void set_max_attempts(int n) { max_attempts_ = n; }

 private:
  hv::Hypervisor& hv_;
  std::unique_ptr<RecoveryMechanism> mech_;
  detect::HangDetector* hang_detector_;
  std::vector<RecoveryReport> reports_;
  hv::DetectionEvent last_detection_;
  int max_attempts_ = 3;
};

}  // namespace nlh::recovery
