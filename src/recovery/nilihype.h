// NiLiHype: microreset-based hypervisor recovery (Sections III-C, V).
//
// On detection: freeze every CPU, discard all hypervisor execution threads
// (reset the stacks), roll the hypervisor state forward to a consistent
// quiescent state via the Section V-A enhancements, set abandoned requests
// up for retry, and resume — no reboot, so total latency is dominated by
// the page-frame descriptor consistency scan (Table III: 21 of 22 ms).
#pragma once

#include <functional>

#include "recovery/recovery_common.h"

namespace nlh::recovery {

class NiLiHype : public RecoveryMechanism {
 public:
  NiLiHype(hv::Hypervisor& hv, const EnhancementSet& enh,
           const LatencyModel& model = LatencyModel{})
      : hv_(hv), enh_(enh), model_(model) {}

  std::string Name() const override { return "NiLiHype"; }

  RecoveryReport Recover(const hv::DetectionEvent& event) override;
  using RecoveryMechanism::Recover;

  // Invoked (from an event) right after the system resumes; the manager
  // uses it to reset the hang detector.
  void SetResumeHook(std::function<void()> hook) { resume_hook_ = std::move(hook); }

  const EnhancementSet& enhancements() const { return enh_; }

 private:
  hv::Hypervisor& hv_;
  EnhancementSet enh_;
  LatencyModel model_;
  std::function<void()> resume_hook_;
};

}  // namespace nlh::recovery
