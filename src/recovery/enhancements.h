// Recovery enhancement switches.
//
// Each flag corresponds to a mechanism from the paper; the presets encode
// the incremental configurations of Table I (NiLiHype) and the Section IV
// porting narrative (ReHype). All flags on = the evaluated systems.
#pragma once

namespace nlh::recovery {

struct EnhancementSet {
  // --- ReHype-inherited mechanisms (Sections III-B and IV), used by both --
  bool hypercall_retry = true;   // retry partially-executed hypercalls
  bool syscall_retry = true;     // retry forwarded x86-64 syscalls (Sec IV)
  bool batched_retry_fine = true;  // skip completed multicall components
  bool save_fs_gs = true;        // capture FS/GS at detection (Sec IV)
  bool nonidem_mitigation = true;  // replay undo logs before retry (Sec IV)
  bool release_heap_locks = true;  // force-release locks stored in the heap
  bool ack_interrupts = true;    // ack pending + in-service interrupts
  bool frame_table_scan = true;  // page-frame descriptor consistency scan

  // --- NiLiHype-specific (Section V-A) ------------------------------------
  bool clear_irq_count = true;
  bool sched_metadata_repair = true;
  bool reprogram_apic = true;
  bool unlock_static_locks = true;
  bool reactivate_recurring = true;

  // --- Presets -------------------------------------------------------------
  static EnhancementSet Full() { return EnhancementSet{}; }

  static EnhancementSet None() {
    EnhancementSet e;
    e.hypercall_retry = e.syscall_retry = e.batched_retry_fine = false;
    e.save_fs_gs = e.nonidem_mitigation = e.release_heap_locks = false;
    e.ack_interrupts = e.frame_table_scan = false;
    e.clear_irq_count = e.sched_metadata_repair = e.reprogram_apic = false;
    e.unlock_static_locks = e.reactivate_recurring = false;
    return e;
  }

  // Table I rows (cumulative), in paper order.
  static EnhancementSet TableISimple(int row) {
    EnhancementSet e = None();
    if (row >= 1) {  // + Clear IRQ count
      e.clear_irq_count = true;
    }
    if (row >= 2) {  // + Enhanced with ReHype mechanisms
      e.hypercall_retry = e.syscall_retry = e.batched_retry_fine = true;
      e.save_fs_gs = e.nonidem_mitigation = e.release_heap_locks = true;
      e.ack_interrupts = e.frame_table_scan = true;
    }
    if (row >= 3) e.sched_metadata_repair = true;
    if (row >= 4) e.reprogram_apic = true;
    if (row >= 5) e.unlock_static_locks = true;
    if (row >= 6) e.reactivate_recurring = true;
    return e;
  }

  // Section IV ReHype porting stages: 0 = initial port (65%),
  // 1 = +syscall retry +batched retry +FS/GS (84%),
  // 2 = +non-idempotent mitigation (96%).
  static EnhancementSet ReHypeStage(int stage) {
    EnhancementSet e;  // base ReHype mechanisms always on
    e.syscall_retry = stage >= 1;
    e.batched_retry_fine = stage >= 1;
    e.save_fs_gs = stage >= 1;
    e.nonidem_mitigation = stage >= 2;
    // NiLiHype-specific flags are meaningless for ReHype (the reboot
    // subsumes them); left at defaults.
    return e;
  }
};

}  // namespace nlh::recovery
