// Building blocks shared by the ReHype and NiLiHype mechanisms, plus the
// RecoveryMechanism interface and the report structure the latency benches
// (Tables II and III) print.
#pragma once

#include <string>
#include <vector>

#include "hv/hypervisor.h"
#include "recovery/enhancements.h"
#include "recovery/latency_model.h"

namespace nlh::recovery {

// Stable identity of a recovery step (a Table II / III row). Campaign
// aggregation and the trace exporter key on this enum — never on the
// human-readable step label, which carries run-specific counts.
enum class RecoveryPhase {
  // Shared.
  kFreeze = 0,
  kDiscardThreads,
  kAckInterrupts,
  kResume,
  kRetrySetup,
  kFrameTableScan,
  // NiLiHype roll-forward repairs (Section V-A).
  kClearIrqCount,
  kReleaseLocks,
  kSchedMetadataRepair,
  kReactivateTimers,
  kReprogramApic,
  // ReHype reboot steps (Table II).
  kPreserveStatics,
  kEarlyBoot,
  kCpusOnline,
  kApicSetup,
  kTscCalibrate,
  kRecordOldHeap,
  kReinitFrameDescriptors,
  kRecreateHeap,
  kSmpInit,
  kRelocateModules,
  kMiscOthers,
};

// Stable machine-readable slug (metric names, JSON artifacts, trace spans).
const char* RecoveryPhaseName(RecoveryPhase p);

// One recovery step and its modeled latency (a Table II / III row).
struct StepLatency {
  RecoveryPhase phase = RecoveryPhase::kFreeze;
  std::string name;  // human-readable label, may carry run-specific counts
  sim::Duration latency = 0;
};

struct RecoveryReport {
  sim::Time detected_at = 0;
  sim::Time resumed_at = 0;
  hv::DetectionKind kind = hv::DetectionKind::kPanic;
  std::vector<StepLatency> steps;
  bool gave_up = false;  // the recovery routine itself failed
  hv::FailureReason give_up_code = hv::FailureReason::kNone;
  std::string give_up_reason;

  sim::Duration total() const {
    sim::Duration t = 0;
    for (const StepLatency& s : steps) t += s.latency;
    return t;
  }
};

class RecoveryMechanism {
 public:
  virtual ~RecoveryMechanism() = default;
  virtual std::string Name() const = 0;
  // Performs recovery for the detected error described by `event`. Runs
  // synchronously at detection time; schedules the system resume at
  // detection + total latency. Returns the report.
  virtual RecoveryReport Recover(const hv::DetectionEvent& event) = 0;

  // Convenience for callers (tests, benches) that only know cpu + kind.
  RecoveryReport Recover(hw::CpuId cpu, hv::DetectionKind kind) {
    hv::DetectionEvent ev;
    ev.cpu = cpu;
    ev.kind = kind;
    ev.code = kind == hv::DetectionKind::kPanic
                  ? hv::FailureCode::kAssertFailure
                  : hv::FailureCode::kWatchdogStall;
    return Recover(ev);
  }
};

namespace steps {

// Per-vCPU outcome of the retry-setup pass.
struct RetrySetupStats {
  int hypercalls_retried = 0;
  int syscalls_retried = 0;
  int requests_lost = 0;
  int undo_records_replayed = 0;
};

// Capture which vCPUs were running when the error was detected (read before
// any repair mutates percpu.curr).
std::vector<hv::VcpuId> RunningVcpus(hv::Hypervisor& hv);

// "Save FS/GS" (Section IV): mark the context of every running vCPU as
// carrying valid FS/GS.
void SaveFsGs(hv::Hypervisor& hv, const std::vector<hv::VcpuId>& running);

// Sets up retry/lost state for every in-flight request (Sections III-B/IV).
RetrySetupStats SetupRequestRetries(hv::Hypervisor& hv,
                                    const EnhancementSet& enh);

// Post-resume notifications: deliver OnHypercallLost / OnFsGsLost to guests
// whose requests could not be retried or whose FS/GS were clobbered, then
// clear the flags. Called from an event scheduled at resume time.
void NotifyGuestsAfterResume(hv::Hypervisor& hv,
                             const std::vector<hv::VcpuId>& was_running);

// Shared step recorder: appends the step to the report, mirrors it as a
// trace span ([cursor, cursor+latency], child of the innermost open span)
// and a per-phase latency histogram sample, and advances the cursor.
class StepRecorder {
 public:
  StepRecorder(hv::Hypervisor& hv, RecoveryReport& report, hw::CpuId cpu)
      : hv_(hv), report_(report), cpu_(cpu), cursor_(report.detected_at) {}

  void Add(RecoveryPhase phase, std::string name, sim::Duration latency) {
    const char* slug = RecoveryPhaseName(phase);
    hv_.tracer().Span(std::string("phase:") + slug, cpu_, cursor_,
                      cursor_ + latency);
    hv_.metrics()
        .GetHistogram(std::string("recovery.phase_ms.") + slug)
        .Observe(sim::ToMillisF(latency));
    NLH_RECORD(forensics::EventKind::kRecoveryPhase, cpu_,
               static_cast<std::uint64_t>(phase),
               static_cast<std::uint64_t>(latency), std::string(slug));
    report_.steps.push_back({phase, std::move(name), latency});
    cursor_ += latency;
  }

  sim::Time cursor() const { return cursor_; }

 private:
  hv::Hypervisor& hv_;
  RecoveryReport& report_;
  hw::CpuId cpu_;
  sim::Time cursor_;
};

}  // namespace steps

}  // namespace nlh::recovery
