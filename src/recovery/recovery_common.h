// Building blocks shared by the ReHype and NiLiHype mechanisms, plus the
// RecoveryMechanism interface and the report structure the latency benches
// (Tables II and III) print.
#pragma once

#include <string>
#include <vector>

#include "hv/hypervisor.h"
#include "recovery/enhancements.h"
#include "recovery/latency_model.h"

namespace nlh::recovery {

// One recovery step and its modeled latency (a Table II / III row).
struct StepLatency {
  std::string name;
  sim::Duration latency = 0;
};

struct RecoveryReport {
  sim::Time detected_at = 0;
  sim::Time resumed_at = 0;
  hv::DetectionKind kind = hv::DetectionKind::kPanic;
  std::vector<StepLatency> steps;
  bool gave_up = false;  // the recovery routine itself failed
  std::string give_up_reason;

  sim::Duration total() const {
    sim::Duration t = 0;
    for (const StepLatency& s : steps) t += s.latency;
    return t;
  }
};

class RecoveryMechanism {
 public:
  virtual ~RecoveryMechanism() = default;
  virtual std::string Name() const = 0;
  // Performs recovery for an error detected on `cpu`. Runs synchronously at
  // detection time; schedules the system resume at detection + total
  // latency. Returns the report (also retained; see last_report()).
  virtual RecoveryReport Recover(hw::CpuId cpu, hv::DetectionKind kind) = 0;
};

namespace steps {

// Per-vCPU outcome of the retry-setup pass.
struct RetrySetupStats {
  int hypercalls_retried = 0;
  int syscalls_retried = 0;
  int requests_lost = 0;
  int undo_records_replayed = 0;
};

// Capture which vCPUs were running when the error was detected (read before
// any repair mutates percpu.curr).
std::vector<hv::VcpuId> RunningVcpus(hv::Hypervisor& hv);

// "Save FS/GS" (Section IV): mark the context of every running vCPU as
// carrying valid FS/GS.
void SaveFsGs(hv::Hypervisor& hv, const std::vector<hv::VcpuId>& running);

// Sets up retry/lost state for every in-flight request (Sections III-B/IV).
RetrySetupStats SetupRequestRetries(hv::Hypervisor& hv,
                                    const EnhancementSet& enh);

// Post-resume notifications: deliver OnHypercallLost / OnFsGsLost to guests
// whose requests could not be retried or whose FS/GS were clobbered, then
// clear the flags. Called from an event scheduled at resume time.
void NotifyGuestsAfterResume(hv::Hypervisor& hv,
                             const std::vector<hv::VcpuId>& was_running);

}  // namespace steps

}  // namespace nlh::recovery
