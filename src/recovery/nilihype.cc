#include "recovery/nilihype.h"

namespace nlh::recovery {

RecoveryReport NiLiHype::Recover(const hv::DetectionEvent& event) {
  RecoveryReport report;
  report.detected_at = hv_.Now();
  report.kind = event.kind;

  sim::Tracer& tracer = hv_.tracer();
  const std::uint32_t root =
      tracer.Begin("recover:NiLiHype", event.cpu, report.detected_at);
  steps::StepRecorder rec(hv_, report, event.cpu);

  // The recovery routine itself depends on hypervisor state (IDT entries,
  // the recovery handler's own data); if the fault corrupted that state the
  // routine never gets to run (Section VII-A failure reason 1).
  if (!hv_.recovery_path_ok()) {
    report.gave_up = true;
    report.give_up_code = hv::FailureReason::kRecoveryPathCorrupted;
    report.give_up_reason = "recovery routine could not be invoked";
    hv_.MarkDead(report.give_up_code, report.give_up_reason);
    tracer.End(root, report.detected_at);
    return report;
  }

  // 1. Freeze: disable interrupts on this CPU, IPI all others (their entry
  //    increments the interrupt nesting count), park them in busy waits.
  hv_.FreezeForRecovery(event.cpu);
  rec.Add(RecoveryPhase::kFreeze, "freeze CPUs (IPIs, disable interrupts)",
          model_.freeze);

  // Capture who was running before any repair touches the metadata.
  const std::vector<hv::VcpuId> running = steps::RunningVcpus(hv_);
  if (enh_.save_fs_gs) steps::SaveFsGs(hv_, running);

  // 2. Microreset core: discard every execution thread.
  hv_.DiscardAllHvStacks();
  rec.Add(RecoveryPhase::kDiscardThreads,
          "discard hypervisor execution threads", model_.nl_discard_threads);

  // 3. Roll-forward enhancements (Section V-A).
  if (enh_.clear_irq_count) {
    for (hv::PerCpuData& pc : hv_.percpu()) pc.local_irq_count = 0;
    rec.Add(RecoveryPhase::kClearIrqCount, "clear IRQ count",
            model_.nl_clear_irq);
  }
  if (enh_.release_heap_locks || enh_.unlock_static_locks) {
    int released = 0;
    if (enh_.release_heap_locks) released += hv_.heap().ReleaseAllLocks();
    if (enh_.unlock_static_locks) {
      released += hv_.static_locks().ForceReleaseAll();
    }
    rec.Add(RecoveryPhase::kReleaseLocks,
            "release locks (" + std::to_string(released) + " held)",
            model_.nl_release_locks);
  }
  if (enh_.sched_metadata_repair) {
    const int repaired = hv::RepairSchedMetadata(hv_.percpu(), hv_.vcpus());
    rec.Add(RecoveryPhase::kSchedMetadataRepair,
            "scheduling metadata consistency (" + std::to_string(repaired) +
                " fields)",
            model_.nl_sched_repair);
  }
  if (enh_.hypercall_retry || enh_.syscall_retry) {
    const steps::RetrySetupStats st = steps::SetupRequestRetries(hv_, enh_);
    rec.Add(RecoveryPhase::kRetrySetup,
            "set up hypercall/syscall retry (" +
                std::to_string(st.hypercalls_retried + st.syscalls_retried) +
                " retried, " + std::to_string(st.requests_lost) + " lost)",
            model_.nl_retry_setup);
  } else {
    steps::SetupRequestRetries(hv_, enh_);  // marks everything lost
  }
  if (enh_.frame_table_scan) {
    hv_.frames().ScanAndRepair();
    rec.Add(RecoveryPhase::kFrameTableScan,
            "restore page-frame descriptor consistency",
            model_.FrameScan(hv_.platform().memory().num_frames()));
  }
  if (enh_.reactivate_recurring) {
    const int reinserted = hv_.ReactivateRecurringEvents();
    hv_.RearmVcpuTimers();
    rec.Add(RecoveryPhase::kReactivateTimers,
            "reactivate recurring timer events (" +
                std::to_string(reinserted) + " missing)",
            model_.nl_reactivate);
  }

  // 4. Ack pending and in-service interrupts shortly after the freeze. An
  //    APIC one-shot that fires before this point is consumed; one firing
  //    later stays latched and is redelivered at resume.
  if (enh_.ack_interrupts) {
    hv_.platform().queue().ScheduleAt(report.detected_at + model_.ack_delay,
                                      [this] { hv_.AckAllInterrupts(); });
    rec.Add(RecoveryPhase::kAckInterrupts,
            "acknowledge pending/in-service interrupts",
            sim::Microseconds(20));
  }

  if (enh_.reprogram_apic) {
    rec.Add(RecoveryPhase::kReprogramApic, "reprogram hardware (APIC) timers",
            model_.nl_reprogram);
  }
  rec.Add(RecoveryPhase::kResume, "resume (exit busy waits)",
          model_.nl_resume);

  // 5. Resume at detection + total latency.
  report.resumed_at = report.detected_at + report.total();
  tracer.End(root, report.resumed_at);
  hv_.metrics()
      .GetHistogram("recovery.total_ms")
      .Observe(sim::ToMillisF(report.total()));
  hv_.ResumeAfterRecovery(report.resumed_at, enh_.reprogram_apic);
  hv_.platform().queue().ScheduleAt(
      report.resumed_at, [this, running] {
        steps::NotifyGuestsAfterResume(hv_, running);
        if (resume_hook_) resume_hook_();
      });
  return report;
}

}  // namespace nlh::recovery
