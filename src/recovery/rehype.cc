#include "recovery/rehype.h"

namespace nlh::recovery {

RecoveryReport ReHype::Recover(const hv::DetectionEvent& event) {
  RecoveryReport report;
  report.detected_at = hv_.Now();
  report.kind = event.kind;
  const std::uint64_t mem_frames = hv_.platform().memory().num_frames();

  sim::Tracer& tracer = hv_.tracer();
  const std::uint32_t root =
      tracer.Begin("recover:ReHype", event.cpu, report.detected_at);
  steps::StepRecorder rec(hv_, report, event.cpu);

  if (!hv_.recovery_path_ok()) {
    report.gave_up = true;
    report.give_up_code = hv::FailureReason::kRecoveryPathCorrupted;
    report.give_up_reason = "recovery routine could not be invoked";
    hv_.MarkDead(report.give_up_code, report.give_up_reason);
    tracer.End(root, report.detected_at);
    return report;
  }

  // 1. Freeze; all CPUs except the recovering one halt until SMP re-init.
  hv_.FreezeForRecovery(event.cpu);
  for (int c = 0; c < hv_.platform().num_cpus(); ++c) {
    if (c != event.cpu) hv_.platform().cpu(c).set_halted(true);
  }
  rec.Add(RecoveryPhase::kFreeze, "freeze and halt other CPUs", model_.freeze);

  const std::vector<hv::VcpuId> running = steps::RunningVcpus(hv_);
  if (enh_.save_fs_gs) steps::SaveFsGs(hv_, running);

  // The reboot gives every CPU a fresh hypervisor stack; any spinning
  // execution thread is gone with the old instance.
  hv_.DiscardAllHvStacks();

  // 2. Preserve static data (copy to a safe location), then boot. The boot
  //    re-initializes the whole static segment; the preserved subset is
  //    copied back over it — exactly StaticDataSegment::RebootRestore.
  rec.Add(RecoveryPhase::kPreserveStatics, "preserve static data segments",
          sim::Milliseconds(1));

  // --- Hardware initialization (Table II: 412 ms) --------------------------
  hv_.statics().RebootRestore();
  rec.Add(RecoveryPhase::kEarlyBoot, "early initialization of the boot CPU",
          model_.rh_early_boot);
  rec.Add(RecoveryPhase::kCpusOnline,
          "initialize and wait for other CPUs to come online",
          model_.rh_cpus_online);
  hv_.platform().intc().ResetAll();
  rec.Add(RecoveryPhase::kApicSetup,
          "verify, connect and set up local APIC / IO-APIC",
          model_.rh_apic_setup);
  rec.Add(RecoveryPhase::kTscCalibrate, "initialize and calibrate TSC timer",
          model_.rh_tsc_calibrate);

  // --- Memory initialization (Table II: 266 ms at 8 GB) ----------------------
  rec.Add(RecoveryPhase::kRecordOldHeap, "record allocated pages of old heap",
          model_.PerFrame(model_.rh_record_heap_ns_per_frame, mem_frames));
  if (enh_.frame_table_scan) {
    hv_.frames().ScanAndRepair();
    rec.Add(RecoveryPhase::kFrameTableScan,
            "restore and check consistency of page frame entries",
            model_.FrameScan(mem_frames));
  }
  rec.Add(RecoveryPhase::kReinitFrameDescriptors,
          "re-initialize page frame descriptors for un-preserved pages",
          model_.PerFrame(model_.rh_reinit_desc_ns_per_frame, mem_frames));
  hv_.heap().RecreateFreeList();
  rec.Add(RecoveryPhase::kRecreateHeap, "recreate the new heap",
          model_.PerFrame(model_.rh_recreate_heap_ns_per_frame, mem_frames));

  // --- State re-integration / reset --------------------------------------
  // A fresh instance has: zero IRQ nesting, unlocked locks, fresh scheduler
  // and timer subsystem. The reused domain/vCPU state is re-integrated by
  // rebuilding the scheduling metadata around it.
  for (hv::PerCpuData& pc : hv_.percpu()) {
    pc.local_irq_count = 0;
    pc.curr = hv::kInvalidVcpu;  // nothing is running on a fresh instance
    pc.fs_gs_saved = false;
  }
  hv_.heap().ReleaseAllLocks();
  hv_.static_locks().ForceReleaseAll();
  hv::RepairSchedMetadata(hv_.percpu(), hv_.vcpus());
  hv_.RebuildTimerSubsystem();
  hv_.AckAllInterrupts();

  if (enh_.hypercall_retry || enh_.syscall_retry) {
    const steps::RetrySetupStats st = steps::SetupRequestRetries(hv_, enh_);
    (void)st;
  } else {
    steps::SetupRequestRetries(hv_, enh_);
  }

  // --- Misc (Table II: 35 ms) ------------------------------------------------
  rec.Add(RecoveryPhase::kSmpInit, "SMP initialization", model_.rh_smp_init);
  rec.Add(RecoveryPhase::kRelocateModules,
          "identify valid page frames, relocate boot modules",
          model_.rh_relocate);
  rec.Add(RecoveryPhase::kMiscOthers,
          "others (retry setup, lock release, scheduler re-integration)",
          model_.rh_misc_others);

  // 3. Resume: the boot reprogrammed every APIC timer.
  report.resumed_at = report.detected_at + report.total();
  tracer.End(root, report.resumed_at);
  hv_.metrics()
      .GetHistogram("recovery.total_ms")
      .Observe(sim::ToMillisF(report.total()));
  hv_.ResumeAfterRecovery(report.resumed_at, /*reprogram_apics=*/true);
  hv_.platform().queue().ScheduleAt(
      report.resumed_at, [this, running] {
        steps::NotifyGuestsAfterResume(hv_, running);
        if (resume_hook_) resume_hook_();
      });
  return report;
}

}  // namespace nlh::recovery
