// ReHype: microreboot-based hypervisor recovery (Section III-B), our
// re-implementation of the enhanced port described in Section IV.
//
// On detection: halt all CPUs but one, preserve the static-data subset and
// the allocated heap pages, boot a fresh hypervisor instance (simulated
// hardware bring-up with the measured latencies of Table II), re-integrate
// the preserved state, and resume with the same retry setup NiLiHype uses.
// The reboot re-initializes everything not explicitly preserved — which is
// the mechanical source of its small recovery-rate edge on corrupting
// fault types (Figure 2) and of its 713 ms latency (Table II).
#pragma once

#include <functional>

#include "recovery/recovery_common.h"

namespace nlh::recovery {

class ReHype : public RecoveryMechanism {
 public:
  ReHype(hv::Hypervisor& hv, const EnhancementSet& enh,
         const LatencyModel& model = LatencyModel{})
      : hv_(hv), enh_(enh), model_(model) {}

  std::string Name() const override { return "ReHype"; }

  RecoveryReport Recover(const hv::DetectionEvent& event) override;
  using RecoveryMechanism::Recover;

  void SetResumeHook(std::function<void()> hook) { resume_hook_ = std::move(hook); }

  const EnhancementSet& enhancements() const { return enh_; }

 private:
  hv::Hypervisor& hv_;
  EnhancementSet enh_;
  LatencyModel model_;
  std::function<void()> resume_hook_;
};

}  // namespace nlh::recovery
