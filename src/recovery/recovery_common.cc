#include "recovery/recovery_common.h"

namespace nlh::recovery {

const char* RecoveryPhaseName(RecoveryPhase p) {
  switch (p) {
    case RecoveryPhase::kFreeze: return "freeze";
    case RecoveryPhase::kDiscardThreads: return "discard_threads";
    case RecoveryPhase::kAckInterrupts: return "ack_interrupts";
    case RecoveryPhase::kResume: return "resume";
    case RecoveryPhase::kRetrySetup: return "retry_setup";
    case RecoveryPhase::kFrameTableScan: return "frame_table_scan";
    case RecoveryPhase::kClearIrqCount: return "clear_irq_count";
    case RecoveryPhase::kReleaseLocks: return "release_locks";
    case RecoveryPhase::kSchedMetadataRepair: return "sched_metadata_repair";
    case RecoveryPhase::kReactivateTimers: return "reactivate_timers";
    case RecoveryPhase::kReprogramApic: return "reprogram_apic";
    case RecoveryPhase::kPreserveStatics: return "preserve_statics";
    case RecoveryPhase::kEarlyBoot: return "early_boot";
    case RecoveryPhase::kCpusOnline: return "cpus_online";
    case RecoveryPhase::kApicSetup: return "apic_setup";
    case RecoveryPhase::kTscCalibrate: return "tsc_calibrate";
    case RecoveryPhase::kRecordOldHeap: return "record_old_heap";
    case RecoveryPhase::kReinitFrameDescriptors: return "reinit_frame_descriptors";
    case RecoveryPhase::kRecreateHeap: return "recreate_heap";
    case RecoveryPhase::kSmpInit: return "smp_init";
    case RecoveryPhase::kRelocateModules: return "relocate_modules";
    case RecoveryPhase::kMiscOthers: return "misc_others";
  }
  return "?";
}

}  // namespace nlh::recovery

namespace nlh::recovery::steps {

std::vector<hv::VcpuId> RunningVcpus(hv::Hypervisor& hv) {
  std::vector<hv::VcpuId> running;
  for (const hv::PerCpuData& pc : hv.percpu()) {
    if (pc.curr != hv::kInvalidVcpu &&
        pc.curr < static_cast<hv::VcpuId>(hv.vcpus().size())) {
      running.push_back(pc.curr);
    }
  }
  return running;
}

void SaveFsGs(hv::Hypervisor& hv, const std::vector<hv::VcpuId>& running) {
  for (hv::VcpuId v : running) {
    hv::Vcpu& vc = hv.vcpu(v);
    vc.ctx.fs_gs_valid = true;
  }
}

RetrySetupStats SetupRequestRetries(hv::Hypervisor& hv,
                                    const EnhancementSet& enh) {
  RetrySetupStats stats;
  for (hv::Vcpu& vc : hv.vcpus()) {
    hv::InFlightRequest& req = vc.inflight;
    if (!req.active) continue;
    req.active = false;

    if (req.is_vmexit) {
      // HVM: the exit is re-delivered architecturally regardless of the
      // retry enhancement; the undo log still needs the mitigation flag.
      if (enh.nonidem_mitigation) {
        stats.undo_records_replayed += static_cast<int>(req.undo.size());
        req.undo.UnwindAll();
      } else {
        req.undo.Clear();
      }
      req.needs_retry = true;
      ++stats.hypercalls_retried;
      continue;
    }

    if (req.is_syscall) {
      if (enh.syscall_retry) {
        req.needs_retry = true;
        ++stats.syscalls_retried;
      } else {
        req.lost = true;
        ++stats.requests_lost;
      }
      continue;
    }

    if (!enh.hypercall_retry) {
      req.lost = true;
      req.undo.Clear();
      ++stats.requests_lost;
      continue;
    }
    if (enh.nonidem_mitigation) {
      stats.undo_records_replayed += static_cast<int>(req.undo.size());
      req.undo.UnwindAll();  // restore logged critical variables
    } else {
      req.undo.Clear();  // partial mutations stay; retry double-applies
    }
    if (!enh.batched_retry_fine) {
      // Without per-component completion logging the whole batch re-runs.
      req.multicall_progress = 0;
    }
    req.needs_retry = true;
    ++stats.hypercalls_retried;
  }
  return stats;
}

void NotifyGuestsAfterResume(hv::Hypervisor& hv,
                             const std::vector<hv::VcpuId>& was_running) {
  // Lost requests: the guest sees a garbage return value.
  for (hv::Vcpu& vc : hv.vcpus()) {
    if (!vc.inflight.lost) continue;
    vc.inflight.lost = false;
    hv::Domain* dom = hv.FindDomain(vc.domain);
    if (dom != nullptr && dom->guest != nullptr) {
      dom->guest->OnHypercallLost(vc.id, vc.inflight.code,
                                  vc.inflight.is_syscall);
    }
  }
  // FS/GS loss: vCPUs that were running at detection resume with clobbered
  // segment bases unless recovery saved them.
  for (hv::VcpuId v : was_running) {
    hv::Vcpu& vc = hv.vcpu(v);
    if (vc.ctx.fs_gs_valid) {
      vc.ctx.fs_gs_valid = false;  // consumed
      continue;
    }
    hv::Domain* dom = hv.FindDomain(vc.domain);
    if (dom != nullptr && dom->guest != nullptr) {
      dom->guest->OnFsGsLost(v);
    }
  }
  // Generic resume notification (e.g. a hypercall that committed at the
  // abandonment boundary looks returned-with-garbage to its guest).
  for (hv::Vcpu& vc : hv.vcpus()) {
    hv::Domain* dom = hv.FindDomain(vc.domain);
    if (dom != nullptr && dom->guest != nullptr && dom->alive()) {
      dom->guest->OnResumedAfterRecovery(vc.id);
    }
  }
}

}  // namespace nlh::recovery::steps
