// A request-processing component that is NOT a kernel or hypervisor: an
// in-memory key-value service with worker threads, a hash index, a
// write-ahead journal and internal locks.
//
// This addresses the paper's closing question (Section IX): "the extent to
// which [microreset] is applicable to components other than OS kernels and
// hypervisors... is part of our future work." The service has the
// properties Section II-B says microreset needs — it is large-ish,
// processes requests from the rest of the system, and serves them with
// multiple execution threads — so both CLR flavors apply:
//
//   - restart (microreboot analogue): rebuild the index by replaying the
//     journal; latency proportional to the journal length;
//   - microreset: abandon all worker threads, then roll forward — release
//     locks, repair index linkage, requeue abandoned requests.
//
// As in the hypervisor, requests mutate real structures step by step, so
// abandonment leaves genuine partial state and non-idempotent hazards.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"

namespace nlh::clr {

// Thrown when a worker hits corrupted state (the component's "panic").
class ServicePanic : public std::runtime_error {
 public:
  explicit ServicePanic(const std::string& what) : std::runtime_error(what) {}
};

enum class RequestKind { kPut, kGet, kDelete };

struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::kPut;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

struct Response {
  std::uint64_t id = 0;
  bool ok = false;
  std::uint64_t value = 0;
};

// Journal record (durable; survives both recovery flavors).
struct JournalRecord {
  RequestKind kind;
  std::uint64_t key;
  std::uint64_t value;
};

class KvService {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kWorkers = 4;
  static constexpr int kLockWatchdogTicks = 400;
  static constexpr std::int64_t kNullEntry = -1;

  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
    std::int64_t next = kNullEntry;  // bucket chain (corruptible linkage)
    bool live = false;
  };

  // A worker's in-flight request context, step-driven like a hypercall
  // handler. Abandonment between steps leaves partial mutations.
  struct Worker {
    bool busy = false;
    Request req;
    int phase = 0;
    bool lock_held = false;
    int locked_bucket = -1;
    int lock_waits = 0;       // ticks spent spinning on a bucket lock
    bool journaled = false;   // the non-idempotent boundary
  };

  explicit KvService(sim::EventQueue& queue, std::uint64_t seed)
      : queue_(queue), rng_(seed), buckets_(kBuckets, kNullEntry) {}

  // --- Client interface ------------------------------------------------------
  void Submit(const Request& r) { pending_.push_back(r); }
  bool PopResponse(Response* out) {
    if (responses_.empty()) return false;
    *out = responses_.front();
    responses_.pop_front();
    return true;
  }

  // Advances every idle worker by one request / every busy worker by one
  // step. The step hook (if set) is the injection point. Throws
  // ServicePanic when a worker trips over corrupted state.
  void Tick();

  // --- Fault surface -----------------------------------------------------------
  using StepHook = std::function<void()>;
  void SetStepHook(StepHook hook) { step_hook_ = std::move(hook); }
  void CorruptBucketChain(std::size_t bucket);
  // Corrupts the VALUE of a live entry (silent data damage): a journal
  // replay reconstructs the truth, an in-place repair cannot tell.
  bool CorruptEntryValue(std::size_t index);
  void StrandWorkerLock(int worker, int bucket);

  // --- Integrity / state access -------------------------------------------------
  // True if every bucket chain is walkable and every live entry is indexed
  // under the right bucket.
  bool IndexIntact() const;
  // Rebuilds the index from the journal (restart recovery's core step).
  void RebuildIndexFromJournal();
  // Scans and repairs index linkage in place (microreset roll-forward).
  int RepairIndexLinkage();
  // Releases every bucket lock and the stats lock.
  int ReleaseAllLocks();
  // Re-queues the in-flight request of every abandoned worker. Requests
  // whose journal record was already appended are NOT re-run (that is the
  // component's non-idempotent boundary): they are acknowledged, and — when
  // `journal_replayed` is false (microreset, which does not replay) — their
  // record is rolled forward into the index here.
  int RequeueAbandoned(bool journal_replayed);
  // Abandons all worker threads (microreset core).
  void AbandonAllWorkers();

  // Copies this service's journal into another instance (modeling shared
  // durable storage, for golden-copy comparison).
  void CopyJournalTo(KvService* other) const { other->journal_ = journal_; }

  bool BucketLocked(int b) const { return bucket_locked_[static_cast<std::size_t>(b)]; }
  std::size_t journal_size() const { return journal_.size(); }
  std::size_t pending() const { return pending_.size(); }
  std::uint64_t acked() const { return acked_; }
  const std::vector<Worker>& workers() const { return workers_; }
  bool dead() const { return dead_; }
  void MarkDead() { dead_ = true; }

 private:
  void Step(const char* what);
  void StepWorker(Worker& w);
  std::int64_t AllocEntry();
  int BucketOf(std::uint64_t key) const { return static_cast<int>(key % kBuckets); }
  bool TryLockBucket(Worker& w, int b);
  void UnlockBucket(Worker& w);

  sim::EventQueue& queue_;
  sim::Rng rng_;
  std::vector<std::int64_t> buckets_;
  std::vector<Entry> entries_;
  std::vector<std::int64_t> free_entries_;
  bool bucket_locked_[kBuckets] = {};
  std::vector<Worker> workers_{kWorkers};
  std::deque<Request> pending_;
  std::deque<Response> responses_;
  std::vector<JournalRecord> journal_;
  std::uint64_t acked_ = 0;
  bool dead_ = false;
  StepHook step_hook_;
};

}  // namespace nlh::clr
