#include "clr/kv_service.h"

namespace nlh::clr {

void KvService::Step(const char* what) {
  (void)what;
  if (step_hook_) step_hook_();  // may throw (injected fault)
}

bool KvService::TryLockBucket(Worker& w, int b) {
  if (bucket_locked_[static_cast<std::size_t>(b)]) {
    // Ordinary contention spins; a lock stranded by an abandoned worker
    // never releases, and the component watchdog eventually fires.
    if (++w.lock_waits > kLockWatchdogTicks) {
      throw ServicePanic("deadlock on bucket lock " + std::to_string(b));
    }
    return false;
  }
  w.lock_waits = 0;
  bucket_locked_[static_cast<std::size_t>(b)] = true;
  w.lock_held = true;
  w.locked_bucket = b;
  return true;
}

void KvService::UnlockBucket(Worker& w) {
  if (w.lock_held && w.locked_bucket >= 0) {
    bucket_locked_[static_cast<std::size_t>(w.locked_bucket)] = false;
  }
  w.lock_held = false;
  w.locked_bucket = -1;
}

std::int64_t KvService::AllocEntry() {
  if (!free_entries_.empty()) {
    const std::int64_t e = free_entries_.back();
    free_entries_.pop_back();
    return e;
  }
  entries_.push_back(Entry{});
  return static_cast<std::int64_t>(entries_.size() - 1);
}

void KvService::Tick() {
  if (dead_) return;
  for (Worker& w : workers_) {
    if (!w.busy) {
      if (pending_.empty()) continue;
      w.busy = true;
      w.req = pending_.front();
      pending_.pop_front();
      w.phase = 0;
      w.journaled = false;
    }
    StepWorker(w);
  }
}

void KvService::StepWorker(Worker& w) {
  const int bucket = BucketOf(w.req.key);
  switch (w.phase) {
    case 0:  // validate + lock (spins under contention)
      Step("validate");
      if (!TryLockBucket(w, bucket)) return;
      w.phase = 1;
      return;
    case 1: {  // index walk
      Step("walk");
      w.phase = 2;
      return;
    }
    case 2: {  // journal append (the non-idempotent commit boundary)
      Step("journal");
      if (w.req.kind != RequestKind::kGet) {
        journal_.push_back({w.req.kind, w.req.key, w.req.value});
        w.journaled = true;
      }
      w.phase = 3;
      return;
    }
    case 3: {  // apply to the index
      Step("apply");
      std::int64_t* link = &buckets_[static_cast<std::size_t>(bucket)];
      int walked = 0;
      std::int64_t found = kNullEntry;
      while (*link != kNullEntry) {
        if (*link < 0 || *link >= static_cast<std::int64_t>(entries_.size())) {
          throw ServicePanic("index chain corrupt in bucket " +
                             std::to_string(bucket));
        }
        if (++walked > 4096) {
          throw ServicePanic("index chain cycle in bucket " +
                             std::to_string(bucket));
        }
        Entry& e = entries_[static_cast<std::size_t>(*link)];
        if (e.live && e.key == w.req.key) {
          found = *link;
          break;
        }
        link = &e.next;
      }
      Response resp;
      resp.id = w.req.id;
      switch (w.req.kind) {
        case RequestKind::kPut:
          if (found != kNullEntry) {
            entries_[static_cast<std::size_t>(found)].value = w.req.value;
          } else {
            const std::int64_t ni = AllocEntry();
            Entry& e = entries_[static_cast<std::size_t>(ni)];
            e.key = w.req.key;
            e.value = w.req.value;
            e.live = true;
            e.next = buckets_[static_cast<std::size_t>(bucket)];
            buckets_[static_cast<std::size_t>(bucket)] = ni;
          }
          resp.ok = true;
          break;
        case RequestKind::kGet:
          resp.ok = (found != kNullEntry);
          if (resp.ok) resp.value = entries_[static_cast<std::size_t>(found)].value;
          break;
        case RequestKind::kDelete:
          if (found != kNullEntry) {
            entries_[static_cast<std::size_t>(found)].live = false;
          }
          resp.ok = true;
          break;
      }
      w.phase = 4;
      responses_.push_back(resp);
      return;
    }
    case 4:  // unlock + done
      Step("done");
      UnlockBucket(w);
      ++acked_;
      w.busy = false;
      return;
    default:
      w.busy = false;
      return;
  }
}

void KvService::CorruptBucketChain(std::size_t bucket) {
  buckets_[bucket % kBuckets] = 0x00dead00;  // wild link
}

bool KvService::CorruptEntryValue(std::size_t index) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[(index + i) % entries_.size()];
    if (e.live) {
      e.value ^= 0x8000000000000001ULL;
      return true;
    }
  }
  return false;
}

void KvService::StrandWorkerLock(int worker, int bucket) {
  Worker& w = workers_[static_cast<std::size_t>(worker)];
  bucket_locked_[static_cast<std::size_t>(bucket)] = true;
  w.lock_held = true;
  w.locked_bucket = bucket;
}

bool KvService::IndexIntact() const {
  for (int b = 0; b < kBuckets; ++b) {
    std::int64_t link = buckets_[static_cast<std::size_t>(b)];
    int walked = 0;
    while (link != kNullEntry) {
      if (link < 0 || link >= static_cast<std::int64_t>(entries_.size())) {
        return false;
      }
      if (++walked > 4096) return false;
      const Entry& e = entries_[static_cast<std::size_t>(link)];
      if (e.live && BucketOf(e.key) != b) return false;
      link = e.next;
    }
  }
  return true;
}

void KvService::RebuildIndexFromJournal() {
  // The restart path: throw the whole index away and replay the journal.
  entries_.clear();
  free_entries_.clear();
  buckets_.assign(kBuckets, kNullEntry);
  for (const JournalRecord& rec : journal_) {
    const int b = BucketOf(rec.key);
    // Find existing.
    std::int64_t link = buckets_[static_cast<std::size_t>(b)];
    std::int64_t found = kNullEntry;
    while (link != kNullEntry) {
      Entry& e = entries_[static_cast<std::size_t>(link)];
      if (e.live && e.key == rec.key) {
        found = link;
        break;
      }
      link = e.next;
    }
    if (rec.kind == RequestKind::kPut) {
      if (found != kNullEntry) {
        entries_[static_cast<std::size_t>(found)].value = rec.value;
      } else {
        entries_.push_back(Entry{rec.key, rec.value,
                                 buckets_[static_cast<std::size_t>(b)], true});
        buckets_[static_cast<std::size_t>(b)] =
            static_cast<std::int64_t>(entries_.size() - 1);
      }
    } else if (rec.kind == RequestKind::kDelete && found != kNullEntry) {
      entries_[static_cast<std::size_t>(found)].live = false;
    }
  }
}

int KvService::RepairIndexLinkage() {
  // Microreset roll-forward: keep the entries (they are trusted storage)
  // and rebuild only the bucket linkage from them — the analogue of the
  // hypervisor's frame-descriptor scan.
  int repaired = 0;
  for (int b = 0; b < kBuckets; ++b) {
    if (buckets_[static_cast<std::size_t>(b)] != kNullEntry) ++repaired;
    buckets_[static_cast<std::size_t>(b)] = kNullEntry;
  }
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    Entry& e = entries_[i];
    e.next = kNullEntry;
    if (!e.live) continue;
    const int b = BucketOf(e.key);
    e.next = buckets_[static_cast<std::size_t>(b)];
    buckets_[static_cast<std::size_t>(b)] = static_cast<std::int64_t>(i);
  }
  return repaired;
}

int KvService::ReleaseAllLocks() {
  int released = 0;
  for (bool& l : bucket_locked_) {
    released += l ? 1 : 0;
    l = false;
  }
  return released;
}

int KvService::RequeueAbandoned(bool journal_replayed) {
  int requeued = 0;
  for (Worker& w : workers_) {
    if (!w.busy) continue;
    if (w.journaled) {
      // The journal append is final: re-running would double-apply it.
      if (!journal_replayed) {
        // Microreset roll-forward: make the index reflect the journaled
        // operation that never got applied.
        const int b = BucketOf(w.req.key);
        std::int64_t link = buckets_[static_cast<std::size_t>(b)];
        std::int64_t found = kNullEntry;
        while (link != kNullEntry) {
          Entry& e = entries_[static_cast<std::size_t>(link)];
          if (e.live && e.key == w.req.key) { found = link; break; }
          link = e.next;
        }
        if (w.req.kind == RequestKind::kPut) {
          if (found != kNullEntry) {
            entries_[static_cast<std::size_t>(found)].value = w.req.value;
          } else {
            const std::int64_t ni = AllocEntry();
            Entry& e = entries_[static_cast<std::size_t>(ni)];
            e.key = w.req.key;
            e.value = w.req.value;
            e.live = true;
            e.next = buckets_[static_cast<std::size_t>(b)];
            buckets_[static_cast<std::size_t>(b)] = ni;
          }
        } else if (w.req.kind == RequestKind::kDelete && found != kNullEntry) {
          entries_[static_cast<std::size_t>(found)].live = false;
        }
      }
      Response resp;
      resp.id = w.req.id;
      resp.ok = true;
      responses_.push_back(resp);
      ++acked_;
    } else {
      pending_.push_front(w.req);
      ++requeued;
    }
    w.busy = false;
    w.lock_held = false;
    w.locked_bucket = -1;
    w.lock_waits = 0;
  }
  return requeued;
}

void KvService::AbandonAllWorkers() {
  for (Worker& w : workers_) {
    // The thread is gone; its lock state in the shared structures remains
    // (released separately), but the thread-local view is discarded.
    w.phase = 0;
  }
}

}  // namespace nlh::clr
