// CLR mechanisms for the KV service: restart (microreboot analogue) and
// microreset, mirroring the structure of the hypervisor mechanisms.
#pragma once

#include "clr/kv_service.h"
#include "sim/time.h"

namespace nlh::clr {

struct KvRecoveryReport {
  sim::Duration latency = 0;
  int locks_released = 0;
  int requests_requeued = 0;
};

// Restart: throw away all volatile state and rebuild the index by replaying
// the durable journal. Latency grows with the journal (the component-level
// analogue of ReHype's reboot + state re-integration).
class KvRestart {
 public:
  static KvRecoveryReport Recover(KvService& svc) {
    KvRecoveryReport rep;
    rep.locks_released = svc.ReleaseAllLocks();  // fresh process: all clear
    svc.RebuildIndexFromJournal();
    rep.requests_requeued = svc.RequeueAbandoned(/*journal_replayed=*/true);
    // Process restart + replay cost: ~40 ms base + 2 us per journal record.
    rep.latency = sim::Milliseconds(40) +
                  sim::Microseconds(2) *
                      static_cast<std::int64_t>(svc.journal_size());
    return rep;
  }
};

// Microreset: abandon all worker threads in place, then roll forward —
// release locks, repair index linkage, requeue/acknowledge abandoned
// requests. Latency is a small constant plus a linkage scan.
class KvMicroreset {
 public:
  static KvRecoveryReport Recover(KvService& svc) {
    KvRecoveryReport rep;
    svc.AbandonAllWorkers();
    rep.locks_released = svc.ReleaseAllLocks();
    svc.RepairIndexLinkage();
    rep.requests_requeued = svc.RequeueAbandoned(/*journal_replayed=*/false);
    rep.latency = sim::Microseconds(300);
    return rep;
  }
};

}  // namespace nlh::clr
