// The hypervisor's static data segment, modeled as a set of named globals.
//
// This is the state that distinguishes microreboot from microreset at the
// mechanism level (Section II-B): ReHype's reboot re-initializes the static
// segment and then copies back only a *selected preserved subset* from the
// failed instance, while NiLiHype reuses the whole segment in place. A
// fault that corrupts a non-preserved static variable is therefore repaired
// by ReHype's reboot but survives NiLiHype's microreset — the mechanical
// source of ReHype's small recovery-rate advantage on Register/Code faults
// (Figure 2) and of the paper's observation that failstop faults (which
// corrupt nothing) show identical rates.
//
// Each variable corresponds to real Xen state and is "used" (integrity-
// checked) at the code paths that would dereference it; a corrupted value
// manifests as a panic or hang at its real use site, not at injection time.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "hv/panic.h"

namespace nlh::hv {

enum class StaticVar : int {
  kDomainListHead = 0,  // head of the global domain list
  kM2PTableBase,        // machine-to-physical translation table base
  kFrameTableBase,      // frame_table base pointer
  kTscKhz,              // TSC calibration (recomputed by reboot)
  kIrqDescTable,        // interrupt descriptor/routing table
  kIoApicRoute,         // IO-APIC routing registers' shadow
  kSchedOpsPtr,         // scheduler ops vtable pointer
  kTimerSubsysState,    // timer subsystem bookkeeping
  kConsoleState,        // console ring state (benign)
  kPerCpuOffsets,       // per-CPU area offsets
  kHeapMetadataPtr,     // heap zone descriptors pointer
  kEvtchnBucketPtr,     // event-channel bucket pointer
  kCount,
};

inline constexpr int kNumStaticVars = static_cast<int>(StaticVar::kCount);

std::string_view StaticVarName(StaticVar v);

class StaticDataSegment {
 public:
  StaticDataSegment() { ResetAll(); }

  // Marks a variable corrupted (fault effect). Real value semantics are not
  // needed: what matters mechanically is *whether* the value is wrong and
  // which recovery mechanism can restore it.
  void Corrupt(StaticVar v) { entries_[Idx(v)].corrupted = true; }
  bool corrupted(StaticVar v) const { return entries_[Idx(v)].corrupted; }

  int CorruptedCount() const {
    int n = 0;
    for (const Entry& e : entries_) n += e.corrupted ? 1 : 0;
    return n;
  }

  // A use site: hypervisor code calls this where Xen would dereference the
  // variable. A corrupted pointer-like variable manifests as a fatal page
  // fault (panic); corrupted bookkeeping manifests as a hang.
  void Use(StaticVar v) const {
    const Entry& e = entries_[Idx(v)];
    if (!e.corrupted) return;
    if (e.benign) return;  // wrong value without functional impact
    if (e.hangs_on_use) {
      throw HvHang(std::string("corrupted static '") +
                   std::string(StaticVarName(v)) + "' caused livelock");
    }
    throw HvPanic(std::string("fatal fault dereferencing static '") +
                  std::string(StaticVarName(v)) + "'");
  }

  // ReHype reboot: every variable is re-initialized by the fresh boot; the
  // preserved subset is then overwritten from the failed instance's saved
  // copy (Section III-B). Preserved-and-corrupted variables therefore stay
  // corrupted; the rest are repaired.
  void RebootRestore() {
    for (Entry& e : entries_) {
      if (!e.preserved_by_rehype) e.corrupted = false;
    }
  }

  // Fresh boot (initial bring-up): everything valid.
  void ResetAll();

  // Whether ReHype's reboot would repair a corruption of `v`.
  bool RebootRepairs(StaticVar v) const {
    return !entries_[Idx(v)].preserved_by_rehype;
  }
  bool benign(StaticVar v) const { return entries_[Idx(v)].benign; }

 private:
  struct Entry {
    bool corrupted = false;
    // True if ReHype must carry this state over from the failed instance
    // (it encodes information about live VMs that a fresh boot cannot
    // reconstruct), so the reboot cannot repair it.
    bool preserved_by_rehype = false;
    bool benign = false;        // corruption has no functional consequence
    bool hangs_on_use = false;  // manifests as livelock rather than panic
  };

  static std::size_t Idx(StaticVar v) { return static_cast<std::size_t>(v); }

  std::array<Entry, kNumStaticVars> entries_;
};

}  // namespace nlh::hv
