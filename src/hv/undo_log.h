// Write-ahead undo log for non-idempotent hypercall mitigation (Section IV).
//
// Each record captures the OLD value of a critical variable before the
// handler mutates it. During recovery, before a partially-executed
// hypercall is set up for retry, its log is replayed in reverse, restoring
// every logged variable — restoring an old value is idempotent, so it is
// safe whether or not the guarded mutation actually executed before the
// thread was abandoned.
#pragma once

#include <functional>
#include <vector>

namespace nlh::hv {

class UndoLog {
 public:
  void Record(std::function<void()> restore_old_value) {
    records_.push_back(std::move(restore_old_value));
  }

  // Replays records newest-first and clears the log.
  void UnwindAll() {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) (*it)();
    records_.clear();
  }

  // Hypercall completed: its effects are final.
  void Clear() { records_.clear(); }

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

 private:
  std::vector<std::function<void()>> records_;
};

}  // namespace nlh::hv
