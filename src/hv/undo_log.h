// Write-ahead undo log for non-idempotent hypercall mitigation (Section IV).
//
// Each record captures the OLD value of a critical variable before the
// handler mutates it. During recovery, before a partially-executed
// hypercall is set up for retry, its log is replayed in reverse, restoring
// every logged variable — restoring an old value is idempotent, so it is
// safe whether or not the guarded mutation actually executed before the
// thread was abandoned.
//
// Records are sim::SmallFn, not std::function: every mmu_update logs one
// or two records, and the restore lambdas capture a couple of pointers
// plus an old value — inside SmallFn's inline buffer, so the hypercall
// hot path never allocates for undo logging (the record vector's capacity
// is retained across hypercalls by Clear()).
#pragma once

#include <utility>
#include <vector>

#include "sim/small_fn.h"

namespace nlh::hv {

class UndoLog {
 public:
  template <typename F>
  void Record(F&& restore_old_value) {
    records_.emplace_back(std::forward<F>(restore_old_value));
  }

  // Replays records newest-first and clears the log.
  void UnwindAll() {
    for (auto it = records_.rbegin(); it != records_.rend(); ++it) (*it)();
    records_.clear();
  }

  // Hypercall completed: its effects are final.
  void Clear() { records_.clear(); }

  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

 private:
  std::vector<sim::SmallFn> records_;
};

}  // namespace nlh::hv
