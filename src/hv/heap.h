// The hypervisor heap (Xen's xenheap), backed by page frames.
//
// Two properties matter for the recovery mechanisms:
//  1. The free list is a real linked structure. A fault that corrupts its
//     linkage makes the next allocation walk off into garbage (panic) or
//     around a cycle (hang). ReHype *recreates* the heap during reboot
//     (Table II: 211 ms), which repairs free-list corruption; NiLiHype
//     reuses the heap in place and cannot (one mechanical source of
//     ReHype's recovery-rate edge, Section VII-A reason 3).
//  2. Locks embedded in heap-allocated objects are tracked here so that the
//     ReHype-inherited "release all locks stored in the heap" recovery step
//     (Section V-A) can iterate them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hv/frame_table.h"
#include "hv/panic.h"
#include "hv/spinlock.h"
#include "hv/types.h"

namespace nlh::hv {

using HeapObjectId = std::uint64_t;
inline constexpr HeapObjectId kInvalidHeapObject = 0;

struct HeapObject {
  HeapObjectId id = kInvalidHeapObject;
  std::string tag;           // e.g. "domain", "vcpu", "evtchn_bucket"
  FrameNumber first_frame = kInvalidFrame;
  std::uint64_t pages = 0;
  std::unique_ptr<SpinLock> lock;  // embedded lock, if any
};

class HvHeap {
 public:
  explicit HvHeap(FrameTable& frames) : frames_(frames) {}

  HvHeap(const HvHeap&) = delete;
  HvHeap& operator=(const HvHeap&) = delete;

  // Seeds the heap with `pages` frames taken from the frame table.
  void Init(std::uint64_t pages);

  // Allocates an object of `pages` pages. If `with_lock`, the object embeds
  // a spinlock registered for recovery-time release. Walks the free list —
  // the walk is where free-list corruption manifests.
  HeapObjectId Alloc(const std::string& tag, std::uint64_t pages,
                     bool with_lock = false);

  void Free(HeapObjectId id);

  HeapObject* Find(HeapObjectId id);
  SpinLock* LockOf(HeapObjectId id);

  std::uint64_t allocated_pages() const { return allocated_pages_; }
  std::uint64_t free_pages() const { return free_pages_; }
  std::uint64_t num_objects() const { return objects_.size(); }
  std::uint64_t total_pages() const { return total_pages_; }
  FrameNumber heap_base() const { return heap_base_; }

  // Read-only view of the live objects, id-ascending (audit / census
  // walkers depend on this order for deterministic output). Ids are
  // assigned monotonically, so allocation appends and the vector stays
  // sorted; Free erases in place.
  const std::vector<HeapObject>& objects() const { return objects_; }

  // Safe, non-throwing free-list walk for the audit engine: returns the
  // (first_frame, pages) extent of every reachable free chunk, or an empty
  // vector if the linkage is corrupt (wild pointer or cycle).
  std::vector<std::pair<FrameNumber, std::uint64_t>> FreeChunkExtents() const;

  // --- Recovery operations -------------------------------------------------

  // ReHype-inherited: force-release every lock embedded in a live object.
  int ReleaseAllLocks();
  int HeldLockCount() const;

  // ReHype reboot step "recreate the new heap": rebuild the free list from
  // scratch around the preserved allocated objects. Repairs any free-list
  // corruption. Returns the number of free chunks rebuilt.
  std::uint64_t RecreateFreeList();

  // --- Fault injection surface ----------------------------------------------

  // Corrupts the linkage of a random free-list node. The `fatal` flavor
  // points the link at garbage (panic on walk); otherwise it creates a
  // cycle (hang on walk).
  void CorruptFreeList(bool fatal);

  // Corrupts a live object's recorded extent (stray write into its header):
  // shifts first_frame up by one page, so the extent now overlaps whatever
  // extent follows it in the heap layout.
  void CorruptObjectExtent(HeapObjectId id);

  // Corrupts the page-accounting counters (stray write): the allocated
  // count no longer matches the object census.
  void CorruptAccounting() { ++allocated_pages_; }
  bool free_list_corrupted() const { return corrupted_; }

  // Integrity check used by tests and post-run validation.
  bool CheckFreeListIntegrity() const;

 private:
  struct Chunk {
    std::uint64_t pages = 0;
    FrameNumber first_frame = kInvalidFrame;
    std::int64_t next = kNullChunk;  // index into chunks_, or kNullChunk
    bool live = false;               // slot in use (free-list node)
  };
  static constexpr std::int64_t kNullChunk = -1;
  static constexpr std::int64_t kPoisonChunk = 0x00dead00;

  std::int64_t AllocChunkSlot();
  void WalkCheck(std::int64_t idx, int steps) const;
  std::vector<HeapObject>::iterator LowerBound(HeapObjectId id);

  FrameTable& frames_;
  std::vector<Chunk> chunks_;
  std::int64_t free_head_ = kNullChunk;
  // Flat, id-sorted (ids are monotonic, so Alloc is push_back). HeapObject
  // moves on erase, but the embedded lock is behind a unique_ptr, so lock
  // addresses handed out by LockOf stay stable.
  std::vector<HeapObject> objects_;
  HeapObjectId next_id_ = 1;
  FrameNumber heap_base_ = kInvalidFrame;
  std::uint64_t total_pages_ = 0;
  std::uint64_t allocated_pages_ = 0;
  std::uint64_t free_pages_ = 0;
  bool corrupted_ = false;
};

}  // namespace nlh::hv
