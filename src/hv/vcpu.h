// Virtual CPU state, including the redundant scheduling metadata whose
// inconsistency after recovery the "Ensure consistency within scheduling
// metadata" enhancement repairs (Section V-A).
#pragma once

#include <array>
#include <cstdint>

#include "hv/hypercall_defs.h"
#include "hv/types.h"
#include "hv/undo_log.h"
#include "hw/registers.h"
#include "sim/time.h"

namespace nlh::hv {

enum class VcpuState : std::uint8_t {
  kOffline = 0,
  kRunnable,
  kRunning,
  kBlocked,
};

// Saved guest register context (filled on hypervisor entry, restored when
// the vCPU is scheduled). On x86-64, Xen does NOT save FS/GS on entry —
// they stay live in hardware — which is why recovery must capture them
// explicitly ("Save FS/GS", Section IV).
struct GuestContext {
  std::array<std::uint64_t, hw::kNumRegs> regs{};
  std::uint64_t fs_base = 0;
  std::uint64_t gs_base = 0;
  bool fs_gs_valid = false;  // true only after an explicit recovery-time save
};

// Bookkeeping for the request a vCPU currently has inside the hypervisor;
// the basis for hypercall/syscall retry after recovery.
struct InFlightRequest {
  bool active = false;
  bool is_syscall = false;  // x86-64 forwarded system call (Section IV)
  // HVM extension: the request is a hardware VM exit rather than a PV
  // hypercall. VM exits are architecturally restartable (the guest
  // instruction re-faults on resume), so recovery retries them even
  // without the hypercall-retry enhancement.
  bool is_vmexit = false;
  int vmexit_reason = 0;  // hv::VmExitReason
  std::uint64_t vmexit_arg = 0;
  HypercallCode code = HypercallCode::kXenVersion;
  HypercallArgs args;
  // Fine-granularity batched retry (Section IV): index of the first
  // not-yet-completed component of a multicall. The hypervisor logs each
  // component's completion as it finishes; a retry skips [0, progress).
  int multicall_progress = 0;
  bool progress_logged = false;  // logging enabled when the fine-grained
                                 // batched-retry enhancement is on
  // Set by recovery: re-execute this request when the vCPU next runs.
  bool needs_retry = false;
  // Set by recovery when retry was impossible (enhancement off): deliver a
  // garbage return to the guest instead.
  bool lost = false;
  // Write-ahead undo records for this request's critical-variable mutations
  // (Section IV); replayed by recovery before retry.
  UndoLog undo;
};

struct Vcpu {
  VcpuId id = kInvalidVcpu;
  DomainId domain = kInvalidDomain;
  hw::CpuId pinned_cpu = -1;

  // --- Scheduling metadata (three redundant locations, as in Xen) -------
  VcpuState state = VcpuState::kOffline;  // per-vCPU location 1
  hw::CpuId running_on = -1;              // per-vCPU location 2
  bool is_current = false;                // per-vCPU location 2b
  // (the per-CPU location is PerCpuData::curr)

  // Intrusive runqueue links (indices into the vCPU array).
  VcpuId rq_prev = kInvalidVcpu;
  VcpuId rq_next = kInvalidVcpu;
  bool rq_queued = false;

  GuestContext ctx;
  InFlightRequest inflight;

  // Pending event-channel ports (bitmap over the domain's ports).
  std::uint64_t pending_events = 0;

  // Armed singleshot timer (set_timer_op), 0 = none. Lives in the per-vCPU
  // structure (as in Xen), so it is part of the state ReHype preserves and
  // re-integrates when it rebuilds the timer subsystem.
  sim::Time vtimer_deadline = 0;

  // Struct corruption (models a stray write into this heap object); checked
  // at use sites in the scheduler and event paths.
  bool struct_corrupted = false;

  bool has_pending_events() const { return pending_events != 0; }
};

}  // namespace nlh::hv
