#include "hv/hypervisor.h"

#include <algorithm>
#include <limits>

#include "forensics/record.h"
#include "hv/panic.h"
#include "sim/json.h"

namespace nlh::hv {

namespace {

constexpr EventPort kVirqTimerPort = 0;  // bit 0 of the pending bitmap

// Machine-state snapshot taken at the moment of first detection, rendered
// straight to JSON so the forensics layer stays independent of hw/hv
// headers: registers of the detecting CPU plus every CPU's hypervisor-side
// state. Capture must be cheap and exception-free — it runs inside
// ReportError before recovery touches anything.
std::string DetectionSnapshotJson(Hypervisor& hv, const DetectionEvent& ev) {
  auto hex = [](std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "\"0x%llx\"",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  std::string out = "{\"cpu\":" + std::to_string(ev.cpu) +
                    ",\"kind\":" + sim::JsonStr(DetectionKindName(ev.kind)) +
                    ",\"code\":" + sim::JsonStr(FailureCodeName(ev.code)) +
                    ",\"detail\":" + sim::JsonStr(ev.detail);
  const int ncpus = hv.platform().num_cpus();
  if (ev.cpu >= 0 && ev.cpu < ncpus) {
    const hw::RegisterFile& rf = hv.platform().cpu(ev.cpu).regs();
    out += ",\"regs\":{";
    const auto snap = rf.Snapshot();
    for (int r = 0; r < hw::kNumRegs; ++r) {
      if (r != 0) out += ",";
      out += sim::JsonStr(std::string(RegName(static_cast<hw::Reg>(r)))) +
             ":" + hex(snap[static_cast<std::size_t>(r)]);
    }
    out += ",\"fs_base\":" + hex(rf.fs_base) +
           ",\"gs_base\":" + hex(rf.gs_base) + "}";
  }
  out += ",\"per_cpu\":[";
  for (int c = 0; c < ncpus; ++c) {
    const hw::Cpu& cp = hv.platform().cpu(c);
    const PerCpuData& pc = hv.percpu(c);
    if (c != 0) out += ",";
    out += "{\"cpu\":" + std::to_string(c) +
           ",\"local_irq_count\":" + std::to_string(pc.local_irq_count) +
           ",\"curr\":" + std::to_string(pc.curr) +
           ",\"rq_len\":" + std::to_string(pc.rq_len) +
           ",\"watchdog_soft_count\":" +
           std::to_string(pc.watchdog_soft_count) +
           ",\"sched_lock_held\":" + (pc.sched_lock.held() ? "true" : "false") +
           ",\"stack_frames\":" + std::to_string(cp.hv_stack().frames) +
           ",\"stack_top\":" + hex(cp.hv_stack().top) +
           ",\"interrupts_enabled\":" +
           (cp.interrupts_enabled() ? "true" : "false") +
           ",\"halted\":" + (cp.halted() ? "true" : "false") +
           ",\"hung\":" + (cp.hung() ? "true" : "false") + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

// Traces a scope whose simulated duration is the instruction cost an
// OpContext accumulates while the span is open (simulated time itself does
// not advance inside a slice). No-op when tracing is disabled.
class CtxSpan {
 public:
  // Hot-path form: the name was interned once at Hypervisor construction,
  // so this costs one branch when tracing is disabled.
  CtxSpan(Hypervisor& hv, const OpContext& ctx, sim::NameId name,
          hw::CpuId cpu)
      : hv_(hv), ctx_(ctx) {
    if (hv.tracer().enabled()) {
      start_ = hv.Now();
      instr0_ = ctx.instructions();
      id_ = hv.tracer().Begin(name, cpu, start_);
    }
  }
  CtxSpan(Hypervisor& hv, const OpContext& ctx, const std::string& name,
          hw::CpuId cpu)
      : hv_(hv), ctx_(ctx) {
    if (hv.tracer().enabled()) {
      start_ = hv.Now();
      instr0_ = ctx.instructions();
      id_ = hv.tracer().Begin(name, cpu, start_);
    }
  }
  CtxSpan(const CtxSpan&) = delete;
  CtxSpan& operator=(const CtxSpan&) = delete;
  ~CtxSpan() {
    if (id_ != 0) {
      hv_.tracer().End(id_, start_ + hv_.platform().DurationForInstructions(
                                         ctx_.instructions() - instr0_));
    }
  }

 private:
  Hypervisor& hv_;
  const OpContext& ctx_;
  sim::Time start_ = 0;
  std::uint64_t instr0_ = 0;
  std::uint32_t id_ = 0;
};

Hypervisor::Hypervisor(hw::Platform& platform, const HvConfig& config)
    : platform_(platform),
      config_(config),
      frames_(config.frame_table_frames),
      heap_(frames_) {
  c_hypercalls_ = metrics_.CounterHandleFor("hv.hypercalls");
  c_syscall_forwards_ = metrics_.CounterHandleFor("hv.syscall_forwards");
  c_interrupts_ = metrics_.CounterHandleFor("hv.interrupts");
  c_schedules_ = metrics_.CounterHandleFor("hv.schedules");
  c_timer_softirqs_ = metrics_.CounterHandleFor("hv.timer_softirqs");
  c_idle_polls_ = metrics_.CounterHandleFor("hv.idle_polls");
  c_events_sent_ = metrics_.CounterHandleFor("hv.events_sent");
  c_detections_ = metrics_.CounterHandleFor("hv.detections");
  c_recoveries_ = metrics_.CounterHandleFor("hv.recoveries");
  for (int c = 0; c < kNumHypercalls; ++c) {
    span_hypercall_[static_cast<std::size_t>(c)] = tracer_.InternName(
        "hypercall:" +
        std::string(HypercallName(static_cast<HypercallCode>(c))));
  }
  span_schedule_ = tracer_.InternName("schedule");
  span_timer_softirq_ = tracer_.InternName("timer_softirq");
  recorder_.SetClock([this] { return Now(); });
}

HvStats Hypervisor::stats() const {
  HvStats s;
  s.hypercalls = c_hypercalls_.value();
  s.syscall_forwards = c_syscall_forwards_.value();
  s.interrupts = c_interrupts_.value();
  s.schedules = c_schedules_.value();
  s.timer_softirqs = c_timer_softirqs_.value();
  s.idle_polls = c_idle_polls_.value();
  s.events_sent = c_events_sent_.value();
  s.detections = c_detections_.value();
  s.recoveries = c_recoveries_.value();
  return s;
}

// ---------------------------------------------------------------------------
// Boot and domain setup
// ---------------------------------------------------------------------------

void Hypervisor::Boot() {
  const int ncpus = platform_.num_cpus();
  for (int c = 0; c < ncpus; ++c) {
    percpu_.emplace_back(c);
    timers_.push_back(std::make_unique<TimerHeap>(c));
  }
  slice_instructions_.assign(static_cast<std::size_t>(ncpus), 0);
  busy_until_.assign(static_cast<std::size_t>(ncpus), 0);
  need_resched_.assign(static_cast<std::size_t>(ncpus), false);
  sched_tick_enabled_.assign(static_cast<std::size_t>(ncpus), false);

  // Register every statically-defined lock in the dedicated segment
  // (Section V-A "Unlock static locks").
  static_locks_.Register(&domlist_lock_);
  static_locks_.Register(&evtchn_lock_);
  static_locks_.Register(&grant_lock_);
  static_locks_.Register(&heap_lock_);
  static_locks_.Register(&console_lock_);
  for (PerCpuData& pc : percpu_) static_locks_.Register(&pc.sched_lock);

  frames_.ResetAll();
  heap_.Init(config_.heap_pages);
  statics_.ResetAll();

  vcpus_.reserve(static_cast<std::size_t>(config_.max_vcpus));

  for (int c = 0; c < ncpus; ++c) {
    RegisterRecurringTimers(c);
    ProgramApicFromHeap(c);
  }

  platform_.intc().SetWakeHandler([this](hw::CpuId c) { KickCpu(c); });
  platform_.intc().SetNmiHandler([this](hw::CpuId c) { OnNmi(c); });
  platform_.watchdog_nmi().StartAll();

  booted_ = true;
}

DomainId Hypervisor::CreateDomainDirect(const std::string& name,
                                        bool privileged, hw::CpuId pinned_cpu,
                                        std::uint64_t num_frames) {
  HvAssert(static_cast<int>(vcpus_.size()) < config_.max_vcpus,
           "vCPU capacity exhausted");
  const DomainId id = next_domid_++;
  Domain dom;
  dom.id = id;
  dom.name = name;
  dom.is_privileged = privileged;
  dom.lifecycle = DomainLifecycle::kCreating;
  dom.struct_obj = heap_.Alloc("domain:" + name, 2, /*with_lock=*/true);
  dom.grant_obj = heap_.Alloc("gnttab:" + name, 1, /*with_lock=*/true);
  dom.evtchn_obj = heap_.Alloc("evtchn:" + name, 1, /*with_lock=*/true);
  dom.first_frame = frames_.Alloc(num_frames, FrameType::kDomainPage, id);
  dom.num_frames = num_frames;
  dom.pte_present.assign(num_frames, false);

  Vcpu vc;
  vc.id = static_cast<VcpuId>(vcpus_.size());
  vc.domain = id;
  vc.pinned_cpu = pinned_cpu;
  vc.state = VcpuState::kOffline;
  dom.vcpus.push_back(vc.id);
  vcpus_.push_back(std::move(vc));

  // Port 0 is reserved for the timer virq.
  EventChannel& timer_port = dom.evtchn.At(0);
  timer_port.state = ChannelState::kVirq;
  timer_port.virq = 0;
  timer_port.notify_vcpu = vc.id;

  domains_.Insert(std::move(dom));
  StartSchedTick(pinned_cpu);
  return id;
}

void Hypervisor::AttachGuest(DomainId dom, GuestInterface* guest) {
  Domain* d = FindDomain(dom);
  HvAssert(d != nullptr, "attaching guest to unknown domain");
  d->guest = guest;
}

void Hypervisor::StartDomain(DomainId dom) {
  Domain* d = FindDomain(dom);
  HvAssert(d != nullptr, "starting unknown domain");
  d->lifecycle = DomainLifecycle::kRunning;
  for (VcpuId v : d->vcpus) {
    Vcpu& vc = vcpu(v);
    if (vc.state == VcpuState::kOffline) {
      vc.state = VcpuState::kRunnable;
      RunqueueInsert(percpu_[static_cast<std::size_t>(vc.pinned_cpu)], vcpus_,
                     v);
    }
    KickCpu(vc.pinned_cpu);
  }
}

Domain* Hypervisor::FindDomain(DomainId id) { return domains_.Find(id); }

// ---------------------------------------------------------------------------
// Recurring timers
// ---------------------------------------------------------------------------

void Hypervisor::RegisterRecurringTimers(hw::CpuId cpu) {
  TimerHeap& th = timers(cpu);
  const sim::Time now = Now();
  // Per-CPU phase stagger: CPUs are brought online sequentially during
  // boot, so their recurring timers are not phase-aligned across the
  // machine (alignment would make every CPU's timer fire at the instant a
  // hang is detected, with pathological consequences for recovery).
  const sim::Duration phase =
      sim::Microseconds(730) * (cpu + 1) +
      (cpu * config_.watchdog_tick_period) / (platform_.num_cpus() + 1);

  SoftTimer wd;
  wd.name = "watchdog_tick";
  wd.deadline = now + config_.watchdog_tick_period + phase;
  wd.period = config_.watchdog_tick_period;
  wd.is_system_recurring = true;
  wd.callback = [this, cpu] { ++percpu_[static_cast<std::size_t>(cpu)].watchdog_soft_count; };
  th.Insert(wd);

  SoftTimer ts;
  ts.name = "time_sync";
  ts.deadline = now + config_.time_sync_period + phase * 3;
  ts.period = config_.time_sync_period;
  ts.is_system_recurring = true;
  ts.callback = [this] { statics_.Use(StaticVar::kTscKhz); };
  th.Insert(ts);

  if (sched_tick_enabled_[static_cast<std::size_t>(cpu)]) {
    SoftTimer st;
    st.name = "sched_tick";
    st.deadline = now + config_.sched_tick_period + phase;
    st.period = config_.sched_tick_period;
    st.is_system_recurring = true;
    st.callback = [this, cpu] { need_resched_[static_cast<std::size_t>(cpu)] = true; };
    th.Insert(st);
  }
}

void Hypervisor::StartSchedTick(hw::CpuId cpu) {
  if (sched_tick_enabled_[static_cast<std::size_t>(cpu)]) return;
  sched_tick_enabled_[static_cast<std::size_t>(cpu)] = true;
  TimerHeap& th = timers(cpu);
  if (!th.ContainsName("sched_tick")) {
    SoftTimer st;
    st.name = "sched_tick";
    st.deadline = Now() + config_.sched_tick_period +
                  sim::Microseconds(613) * (cpu + 1);
    st.period = config_.sched_tick_period;
    st.is_system_recurring = true;
    st.callback = [this, cpu] { need_resched_[static_cast<std::size_t>(cpu)] = true; };
    th.Insert(st);
    ProgramApicFromHeap(cpu);
  }
}

void Hypervisor::EnsureRecurring(hw::CpuId cpu, const std::string& name,
                                 sim::Duration period,
                                 std::function<void()> cb, int* missing) {
  TimerHeap& th = timers(cpu);
  if (th.ContainsName(name)) return;
  SoftTimer t;
  t.name = name;
  t.deadline = Now() + period;
  t.period = period;
  t.is_system_recurring = true;
  t.callback = std::move(cb);
  th.Insert(t);
  if (missing != nullptr) ++(*missing);
}

void Hypervisor::RearmVcpuTimers() {
  for (Vcpu& vc : vcpus_) {
    if (vc.vtimer_deadline <= 0) continue;
    TimerHeap& th = timers(vc.pinned_cpu);
    const std::string name = "vtimer:" + std::to_string(vc.id);
    if (th.ContainsName(name)) continue;
    SoftTimer t;
    t.name = name;
    t.deadline = std::max(vc.vtimer_deadline, Now() + sim::Microseconds(100));
    t.period = 0;
    const VcpuId v = vc.id;
    t.callback = [this, v] { DeliverVirqTimer(v); };
    th.Insert(t);
  }
}

int Hypervisor::ReactivateRecurringEvents() {
  tracer_.Instant("hv.reactivate_recurring_events", 0, Now());
  int missing = 0;
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    EnsureRecurring(c, "watchdog_tick", config_.watchdog_tick_period,
                    [this, c] { ++percpu_[static_cast<std::size_t>(c)].watchdog_soft_count; },
                    &missing);
    EnsureRecurring(c, "time_sync", config_.time_sync_period,
                    [this] { statics_.Use(StaticVar::kTscKhz); }, &missing);
    if (sched_tick_enabled_[static_cast<std::size_t>(c)]) {
      EnsureRecurring(c, "sched_tick", config_.sched_tick_period,
                      [this, c] { need_resched_[static_cast<std::size_t>(c)] = true; },
                      &missing);
    }
  }
  return missing;
}

void Hypervisor::RebuildTimerSubsystem() {
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    timers(c).Clear();
    RegisterRecurringTimers(c);
  }
  // Re-integrate the per-vCPU singleshot timers from the preserved vCPU
  // structures (part of ReHype's state re-integration).
  RearmVcpuTimers();
}

void Hypervisor::ProgramApicFromHeap(hw::CpuId cpu) {
  statics_.Use(StaticVar::kTscKhz);
  const sim::Time next = timers(cpu).NextDeadline();
  if (next == std::numeric_limits<sim::Time>::max()) return;
  sim::Time when = next;
  const sim::Time min_arm = Now() + sim::Microseconds(10);
  if (when < min_arm) when = min_arm;
  platform_.apic(cpu).Program(when);
}

// ---------------------------------------------------------------------------
// Execution loop
// ---------------------------------------------------------------------------

void Hypervisor::KickCpu(hw::CpuId cpu) {
  hw::Cpu& c = platform_.cpu(cpu);
  if (c.resume_pending() || dead_) return;
  c.set_resume_pending(true);
  platform_.queue().ScheduleAfter(0, [this, cpu] { RunCpuSlice(cpu); });
}

void Hypervisor::KickCpuAt(hw::CpuId cpu, sim::Time when) {
  hw::Cpu& c = platform_.cpu(cpu);
  if (c.resume_pending() || dead_) return;
  c.set_resume_pending(true);
  platform_.queue().ScheduleAt(when, [this, cpu] { RunCpuSlice(cpu); });
}

VcpuId Hypervisor::VcpuOnCpu(hw::CpuId cpu) const {
  return percpu_[static_cast<std::size_t>(cpu)].curr;
}

void Hypervisor::ChargeSlice(hw::CpuId cpu, std::uint64_t instructions) {
  slice_instructions_[static_cast<std::size_t>(cpu)] += instructions;
}

void Hypervisor::RunCpuSlice(hw::CpuId cpu) {
  hw::Cpu& c = platform_.cpu(cpu);
  c.set_resume_pending(false);
  if (!booted_ || dead_ || frozen_ || !c.online() || c.halted() || c.hung()) {
    return;
  }
  // A wakeup that lands while the CPU is architecturally busy executing the
  // previous slice's work defers to the end of that work — a CPU cannot do
  // more than one second of work per second.
  if (Now() < busy_until_[static_cast<std::size_t>(cpu)]) {
    KickCpuAt(cpu, busy_until_[static_cast<std::size_t>(cpu)]);
    return;
  }

  slice_instructions_[static_cast<std::size_t>(cpu)] = 0;
  sim::Duration guest_time = 0;
  bool want_more = false;

  try {
    // 1. Deliver pending interrupts (slice-boundary granularity).
    int irq_budget = 8;
    while (c.interrupts_enabled() && irq_budget-- > 0 &&
           platform_.intc().NextDeliverable(cpu) >= 0) {
      HandleOneInterrupt(cpu);
    }

    // 2. Scheduler (also handles the need_resched flag from the tick).
    // Fairness rule: a vCPU that was switched in but has not executed yet
    // is never rotated away — otherwise a wake-before-schedule ordering can
    // starve it indefinitely.
    PerCpuData& pc = percpu_[static_cast<std::size_t>(cpu)];
    VcpuId curr = pc.curr;
    if (curr == kInvalidVcpu ||
        (need_resched_[static_cast<std::size_t>(cpu)] && pc.curr_ran)) {
      need_resched_[static_cast<std::size_t>(cpu)] = false;
      OpContext sctx(platform_, c, config_.runtime, HvContextKind::kSchedule,
                     nullptr, nullptr);
      curr = Schedule(sctx, cpu);
      ChargeSlice(cpu, sctx.instructions());
    }

    if (curr == kInvalidVcpu) {
      OpContext ictx(platform_, c, config_.runtime, HvContextKind::kIdle,
                     nullptr, nullptr);
      IdlePoll(ictx, cpu);
      ChargeSlice(cpu, ictx.instructions());
      want_more = false;  // sleep until an interrupt/wake arrives
    } else {
      Vcpu& vc = vcpu(curr);
      if (vc.inflight.needs_retry) ExecuteRetry(cpu, vc);

      Domain* dom = FindDomain(vc.domain);
      if (dom != nullptr && dom->guest != nullptr && dom->alive()) {
        const GuestRunResult r =
            dom->guest->RunSlice(curr, config_.guest_slice_budget);
        guest_time = r.used;
        if (pc.curr == curr) pc.curr_ran = true;
        if (r.action == GuestRunResult::Action::kBlock ||
            vc.state != VcpuState::kRunning) {
          OpContext sctx(platform_, c, config_.runtime,
                         HvContextKind::kSchedule, nullptr, nullptr);
          const VcpuId next = Schedule(sctx, cpu);
          ChargeSlice(cpu, sctx.instructions());
          // A newly switched-in vCPU must get to run promptly.
          if (next != kInvalidVcpu) {
            want_more = true;
          }
        }
        // An idle guest waits for events; do not spin its CPU.
        want_more |= (r.action == GuestRunResult::Action::kContinue);
      } else {
        want_more = false;
      }
    }
  } catch (const HvPanic& p) {
    ReportError(cpu, DetectionKind::kPanic, p.what());
    return;
  } catch (const HvHang& h) {
    last_hang_reason_ = h.what();
    c.set_hung(true);  // silent: only the NMI watchdog can notice
    return;
  }

  const std::uint64_t instr = slice_instructions_[static_cast<std::size_t>(cpu)];
  const sim::Duration hv_time = platform_.DurationForInstructions(instr);
  c.AccumulateTotalCycles(instr + platform_.CyclesForDuration(guest_time));
  c.AccumulateHvCycles(instr);

  sim::Duration elapsed = hv_time + guest_time;
  if (elapsed <= 0) elapsed = sim::Microseconds(1);
  busy_until_[static_cast<std::size_t>(cpu)] = Now() + elapsed;
  if (want_more) {
    KickCpuAt(cpu, Now() + elapsed);
  }
  // Idle CPUs are re-kicked by interrupt delivery (wake handler); a kick
  // landing before busy_until_ defers automatically.
}

sim::Duration Hypervisor::HandleOneInterrupt(hw::CpuId cpu) {
  auto& intc = platform_.intc();
  const hw::Vector v = intc.NextDeliverable(cpu);
  if (v < 0) return 0;

  hw::Cpu& c = platform_.cpu(cpu);
  PerCpuData& pc = percpu_[static_cast<std::size_t>(cpu)];
  c_interrupts_.Inc();
  NLH_RECORD(forensics::EventKind::kIrqDeliver, cpu,
             static_cast<std::uint64_t>(v));

  OpContext ctx(platform_, c, config_.runtime, HvContextKind::kIrq, nullptr,
                nullptr);
  ++pc.local_irq_count;  // interrupt entry
  ctx.Step(cost::kIrqEntry, "irq-entry");
  intc.Accept(cpu, v);
  ctx.Step(20, "pre-eoi");  // window where v sits in-service
  intc.Eoi(cpu);            // early EOI (ack_APIC_irq style)

  bool timer_work = false;
  if (v == hw::vec::kTimer) {
    timer_work = true;
  } else if (auto it = device_bindings_.find(v); it != device_bindings_.end()) {
    // Hardware device interrupt: forward to the bound event channel.
    statics_.Use(StaticVar::kIrqDescTable);
    statics_.Use(StaticVar::kIoApicRoute);
    ctx.Step(120, "device-irq");
    if (!it->second.masked) {
      SendEventToPort(it->second.dom, it->second.port, &ctx);
    }
  }
  ctx.Step(cost::kIrqExit, "irq-exit");
  --pc.local_irq_count;  // interrupt exit

  // Softirqs run after irq_exit, at nesting level zero. The stranded-count
  // assertion is what makes basic microreset always fail (Table I).
  HvAssert(pc.local_irq_count == 0,
           "!in_irq() in do_softirq (stranded interrupt nesting)");

  if (timer_work) {
    OpContext tctx(platform_, c, config_.runtime, HvContextKind::kTimerSoftirq,
                   nullptr, nullptr);
    TimerSoftirq(tctx, cpu);
    ChargeSlice(cpu, tctx.instructions());
  }
  ChargeSlice(cpu, ctx.instructions());
  return platform_.DurationForInstructions(ctx.instructions());
}

void Hypervisor::TimerSoftirq(OpContext& ctx, hw::CpuId cpu) {
  CtxSpan span(*this, ctx, span_timer_softirq_, cpu);
  c_timer_softirqs_.Inc();
  if (op_observer_) {
    op_observer_(OpEventKind::kTimerSoftirq, HypercallCode::kXenVersion, cpu);
  }
  statics_.Use(StaticVar::kTimerSubsysState);
  ctx.Step(cost::kTimerSoftirqFixed, "timer-softirq");

  TimerHeap& th = timers(cpu);
  SoftTimer t;
  int budget = 32;
  while (budget-- > 0 && th.PopExpired(Now(), &t)) {
    ctx.Step(cost::kTimerPerExpiry, "timer-expiry");
    if (t.callback) t.callback();
    if (t.period > 0) {
      // Abandonment between the pop above and this re-insert loses the
      // recurring event ("Reactivate recurring timer events", Section V-A).
      SoftTimer re = std::move(t);
      re.deadline += re.period;
      while (re.deadline <= Now()) re.deadline += re.period;
      th.Insert(std::move(re));
      ctx.Step(40, "timer-rearm");
    }
  }

  // Reprogram the one-shot APIC timer for the new top of heap. Everything
  // from the APIC firing to this point is the unarmed window the
  // "Reprogram hardware timer" enhancement protects against.
  ProgramApicFromHeap(cpu);
  ctx.Step(cost::kApicReprogram, "apic-reprogram");
}

void Hypervisor::IdlePoll(OpContext& ctx, hw::CpuId cpu) {
  (void)cpu;
  c_idle_polls_.Inc();
  ctx.Step(cost::kIdlePoll, "idle-poll");
}

void Hypervisor::DeliverVirqTimer(VcpuId v) {
  Vcpu& vc = vcpu(v);
  vc.vtimer_deadline = 0;
  vc.pending_events |= (1ULL << kVirqTimerPort);
  WakeVcpu(v);
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

VcpuId Hypervisor::Schedule(OpContext& ctx, hw::CpuId cpu) {
  CtxSpan span(*this, ctx, span_schedule_, cpu);
  PerCpuData& pc = percpu_[static_cast<std::size_t>(cpu)];
  HvAssert(pc.local_irq_count == 0, "ASSERT !in_irq() in schedule()");
  statics_.Use(StaticVar::kSchedOpsPtr);
  statics_.Use(StaticVar::kPerCpuOffsets);
  c_schedules_.Inc();

  ctx.Lock(pc.sched_lock);
  ctx.Step(cost::kSchedule, "schedule");

  const VcpuId prev = pc.curr;
  if (prev != kInvalidVcpu) {
    Vcpu& pv = vcpu(prev);
    HvAssert(!pv.struct_corrupted, "corrupted vcpu struct in scheduler");
    HvAssert(pv.is_current && pv.running_on == cpu,
             "scheduler metadata inconsistent (current vCPU)");
    if (pv.state == VcpuState::kRunning) {
      if (pc.rq_head == kInvalidVcpu) {
        ctx.Unlock(pc.sched_lock);
        return prev;  // fast path: keep running
      }
      pv.state = VcpuState::kRunnable;
      pv.is_current = false;
      pv.running_on = -1;
      pc.curr = kInvalidVcpu;
      RunqueueInsert(pc, vcpus_, prev);
    } else {
      // Blocked / offline: detach.
      pv.is_current = false;
      pv.running_on = -1;
      pc.curr = kInvalidVcpu;
    }
  }

  const VcpuId next = RunqueuePop(pc, vcpus_);
  if (next == kInvalidVcpu) {
    ctx.Unlock(pc.sched_lock);
    return kInvalidVcpu;
  }
  Vcpu& nv = vcpu(next);
  HvAssert(nv.state == VcpuState::kRunnable,
           "scheduling a non-runnable vCPU");
  HvAssert(!nv.is_current && nv.running_on == -1,
           "next vCPU already current elsewhere");
  ctx.Step(cost::kContextSwitch, "context-switch");
  pc.curr = next;
  pc.curr_ran = false;
  nv.state = VcpuState::kRunning;
  nv.running_on = cpu;
  nv.is_current = true;
  ctx.Unlock(pc.sched_lock);
  // +1 so vCPU 0 is distinguishable from "none" in the unsigned args.
  NLH_RECORD(forensics::EventKind::kSchedule, cpu,
             static_cast<std::uint64_t>(prev + 1),
             static_cast<std::uint64_t>(next + 1));
  return next;
}

void Hypervisor::WakeVcpu(VcpuId v) {
  Vcpu& vc = vcpu(v);
  if (vc.state == VcpuState::kBlocked) {
    vc.state = VcpuState::kRunnable;
    RunqueueInsert(percpu_[static_cast<std::size_t>(vc.pinned_cpu)], vcpus_, v);
  }
  KickCpu(vc.pinned_cpu);
}

std::uint64_t Hypervisor::ConsumePendingEvents(VcpuId v) {
  Vcpu& vc = vcpu(v);
  const std::uint64_t bits = vc.pending_events;
  vc.pending_events = 0;
  return bits;
}

// ---------------------------------------------------------------------------
// Events / devices
// ---------------------------------------------------------------------------

void Hypervisor::BindDeviceVector(hw::Vector v, DomainId dom, EventPort port) {
  device_bindings_[v] = DeviceBinding{dom, port, false};
}

void Hypervisor::RaiseDeviceIrq(hw::Vector v, hw::CpuId target_cpu) {
  platform_.intc().Raise(target_cpu, v);
}

void Hypervisor::SendEventToPort(DomainId dom, EventPort port, OpContext* ctx) {
  Domain* d = FindDomain(dom);
  if (d == nullptr || !d->alive()) return;
  statics_.Use(StaticVar::kEvtchnBucketPtr);
  const EventChannel& ch = d->evtchn.At(port);
  VcpuId target = ch.notify_vcpu;
  if (target == kInvalidVcpu && !d->vcpus.empty()) target = d->vcpus.front();
  if (target == kInvalidVcpu) return;
  Vcpu& vc = vcpu(target);
  HvAssert(!vc.struct_corrupted, "corrupted vcpu struct in event delivery");
  vc.pending_events |= (1ULL << port);
  if (ctx != nullptr) ctx->Step(60, "event-deliver");
  c_events_sent_.Inc();
  WakeVcpu(target);
}

// ---------------------------------------------------------------------------
// Guest entry points
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::Hypercall(VcpuId v, HypercallCode code,
                                    const HypercallArgs& args) {
  Vcpu& vc = vcpu(v);
  const hw::CpuId cpu = (vc.running_on >= 0) ? vc.running_on : vc.pinned_cpu;
  hw::Cpu& c = platform_.cpu(cpu);
  c_hypercalls_.Inc();

  vc.inflight.active = true;
  vc.inflight.is_syscall = false;
  vc.inflight.code = code;
  vc.inflight.args = args;
  vc.inflight.multicall_progress = 0;
  vc.inflight.progress_logged = false;
  vc.inflight.needs_retry = false;
  vc.inflight.lost = false;
  vc.inflight.undo.Clear();

  OpContext ctx(platform_, c, config_.runtime, HvContextKind::kHypercall, &vc,
                &vc.inflight.undo);
  CtxSpan span(*this, ctx,
               span_hypercall_[static_cast<std::size_t>(code) < span_hypercall_.size()
                                   ? static_cast<std::size_t>(code)
                                   : 0],
               cpu);
  NLH_RECORD(forensics::EventKind::kHypercallEnter, cpu,
             static_cast<std::uint64_t>(code), static_cast<std::uint64_t>(v),
             std::string(HypercallName(code)));
  if (op_observer_) op_observer_(OpEventKind::kHypercall, code, cpu);
  ctx.Step(cost::kHypercallEntry, "hypercall-entry");
  const std::uint64_t ret = Dispatch(ctx, vc, code, args);
  vc.inflight.undo.Clear();
  vc.inflight.active = false;  // commit point
  ctx.Step(cost::kHypercallExit, "hypercall-exit");
  NLH_RECORD(forensics::EventKind::kHypercallExit, cpu,
             static_cast<std::uint64_t>(code), ret);
  ChargeSlice(cpu, ctx.instructions());
  return ret;
}

void Hypervisor::ForwardedSyscall(VcpuId v, std::uint64_t sysno) {
  Vcpu& vc = vcpu(v);
  const hw::CpuId cpu = (vc.running_on >= 0) ? vc.running_on : vc.pinned_cpu;
  hw::Cpu& c = platform_.cpu(cpu);
  c_syscall_forwards_.Inc();

  vc.inflight.active = true;
  vc.inflight.is_syscall = true;
  vc.inflight.code = HypercallCode::kXenVersion;  // unused for syscalls
  vc.inflight.args = HypercallArgs{};
  vc.inflight.args.arg0 = sysno;
  vc.inflight.needs_retry = false;
  vc.inflight.lost = false;
  vc.inflight.undo.Clear();

  NLH_RECORD(forensics::EventKind::kSyscallForward, cpu, sysno,
             static_cast<std::uint64_t>(v));
  OpContext ctx(platform_, c, config_.runtime, HvContextKind::kSyscallForward,
                &vc, nullptr);
  ctx.Step(cost::kSyscallForward / 2, "syscall-lookup");
  ctx.Step(cost::kSyscallForward - cost::kSyscallForward / 2,
           "syscall-deliver");
  vc.inflight.active = false;
  ChargeSlice(cpu, ctx.instructions());
}

std::uint64_t Hypervisor::VmExit(VcpuId v, VmExitReason reason,
                                 std::uint64_t arg) {
  Vcpu& vc = vcpu(v);
  const hw::CpuId cpu = (vc.running_on >= 0) ? vc.running_on : vc.pinned_cpu;
  hw::Cpu& c = platform_.cpu(cpu);
  c_hypercalls_.Inc();  // counted with hypercalls (hypervisor entries)

  vc.inflight.active = true;
  vc.inflight.is_syscall = false;
  vc.inflight.is_vmexit = true;
  vc.inflight.vmexit_reason = static_cast<int>(reason);
  vc.inflight.vmexit_arg = arg;
  vc.inflight.needs_retry = false;
  vc.inflight.lost = false;
  vc.inflight.undo.Clear();

  NLH_RECORD(forensics::EventKind::kVmExit, cpu,
             static_cast<std::uint64_t>(reason), arg);
  OpContext ctx(platform_, c, config_.runtime, HvContextKind::kHypercall, &vc,
                &vc.inflight.undo);
  ctx.Step(cost::kIrqEntry, "vmexit-entry");  // VMEXIT world switch
  const std::uint64_t ret = DispatchVmExit(ctx, vc, reason, arg);
  vc.inflight.undo.Clear();
  vc.inflight.active = false;
  vc.inflight.is_vmexit = false;
  ctx.Step(cost::kIrqExit, "vmresume");
  ChargeSlice(cpu, ctx.instructions());
  return ret;
}

void Hypervisor::ExecuteRetry(hw::CpuId cpu, Vcpu& vc) {
  vc.inflight.needs_retry = false;
  hw::Cpu& c = platform_.cpu(cpu);
  Domain* dom = FindDomain(vc.domain);
  GuestInterface* guest = (dom != nullptr) ? dom->guest : nullptr;

  if (vc.inflight.is_vmexit) {
    // The hardware re-delivers the VM exit when the guest resumes.
    const VmExitReason reason =
        static_cast<VmExitReason>(vc.inflight.vmexit_reason);
    const std::uint64_t arg = vc.inflight.vmexit_arg;
    vc.inflight.active = true;
    OpContext ctx(platform_, c, config_.runtime, HvContextKind::kHypercall,
                  &vc, &vc.inflight.undo);
    ctx.Step(cost::kIrqEntry, "vmexit-redeliver");
    DispatchVmExit(ctx, vc, reason, arg);
    vc.inflight.undo.Clear();
    vc.inflight.active = false;
    vc.inflight.is_vmexit = false;
    ctx.Step(cost::kIrqExit, "vmresume");
    ChargeSlice(cpu, ctx.instructions());
    if (guest != nullptr) guest->OnVmExitResult(vc.id);
    return;
  }

  if (vc.inflight.is_syscall) {
    // Re-forward the system call (Section IV "Syscall retry").
    OpContext ctx(platform_, c, config_.runtime,
                  HvContextKind::kSyscallForward, &vc, nullptr);
    ctx.Step(cost::kSyscallForward, "syscall-retry");
    vc.inflight.active = false;
    ChargeSlice(cpu, ctx.instructions());
    if (guest != nullptr) guest->OnSyscallResult(vc.id);
    return;
  }

  // Re-execute the hypercall. multicall_progress is preserved so completed
  // components are skipped (fine-granularity batched retry, Section IV).
  const HypercallCode code = vc.inflight.code;
  const HypercallArgs args = vc.inflight.args;
  vc.inflight.active = true;
  OpContext ctx(platform_, c, config_.runtime, HvContextKind::kHypercall, &vc,
                &vc.inflight.undo);
  ctx.Step(cost::kHypercallEntry, "hypercall-retry-entry");
  const std::uint64_t ret = Dispatch(ctx, vc, code, args);
  vc.inflight.undo.Clear();
  vc.inflight.active = false;
  ctx.Step(cost::kHypercallExit, "hypercall-retry-exit");
  ChargeSlice(cpu, ctx.instructions());
  if (guest != nullptr) guest->OnHypercallResult(vc.id, code, ret);
}

// ---------------------------------------------------------------------------
// Error handling & recovery support
// ---------------------------------------------------------------------------

void Hypervisor::ReportError(DetectionEvent event) {
  c_detections_.Inc();
  if (event.when == 0) event.when = Now();
  tracer_.Instant(std::string("detect:") + DetectionKindName(event.kind),
                  event.cpu, event.when);
  if (!has_first_detection_) {
    first_detection_ = event;
    has_first_detection_ = true;
  }
  NLH_RECORD(forensics::EventKind::kDetection, event.cpu,
             static_cast<std::uint64_t>(event.kind),
             static_cast<std::uint64_t>(event.code), event.detail);
  // Freeze the machine state in the dossier before recovery mutates it
  // (only the first capture sticks).
  if (recorder_.enabled() && !recorder_.has_detection_snapshot()) {
    recorder_.SetDetectionSnapshot(DetectionSnapshotJson(*this, event));
  }
  platform_.log().Log(sim::LogLevel::kError, event.when, "detect",
                      std::string(DetectionKindName(event.kind)) + " on cpu" +
                          std::to_string(event.cpu) + ": " + event.detail);
  if (dead_) return;
  if (in_error_report_) {
    MarkDead(FailureReason::kNestedError,
             "error during error handling: " + event.detail);
    return;
  }
  if (!error_handler_) {
    MarkDead(FailureReason::kUnhandledError,
             std::string(DetectionKindName(event.kind)) + ": " + event.detail);
    return;
  }
  in_error_report_ = true;
  error_handler_(event);
  in_error_report_ = false;
}

void Hypervisor::ReportError(hw::CpuId cpu, DetectionKind kind,
                             const std::string& what) {
  DetectionEvent ev;
  ev.cpu = cpu;
  ev.kind = kind;
  ev.code = kind == DetectionKind::kPanic ? FailureCode::kAssertFailure
                                          : FailureCode::kWatchdogStall;
  ev.when = Now();
  ev.detail = what;
  ReportError(std::move(ev));
}

void Hypervisor::MarkDead(FailureReason reason, const std::string& detail) {
  if (dead_) return;
  dead_ = true;
  death_code_ = reason;
  death_reason_ = detail.empty()
                      ? std::string(FailureReasonName(reason))
                      : std::string(FailureReasonName(reason)) + ": " + detail;
  metrics_.GetCounter(std::string("hv.dead.") + FailureReasonName(reason))
      .Inc();
  NLH_RECORD(forensics::EventKind::kDeath, -1,
             static_cast<std::uint64_t>(reason), 0, death_reason_);
  platform_.log().Log(sim::LogLevel::kError, Now(), "hv",
                      "system dead: " + death_reason_);
}

void Hypervisor::OnNmi(hw::CpuId cpu) {
  if (!booted_ || dead_ || frozen_) return;
  if (nmi_hook_) nmi_hook_(cpu);
}

void Hypervisor::FreezeForRecovery(hw::CpuId detector) {
  ++recovery_attempts_;
  c_recoveries_.Inc();
  tracer_.Instant("hv.freeze_for_recovery", detector, Now());
  platform_.log().Log(sim::LogLevel::kInfo, Now(), "recover",
                      "freezing all CPUs (detector cpu" +
                          std::to_string(detector) + ", attempt " +
                          std::to_string(recovery_attempts_) + ")");
  frozen_ = true;
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    hw::Cpu& cp = platform_.cpu(c);
    if (c != detector && cp.online() && !cp.halted()) {
      // The recovery IPI interrupts whatever the CPU was doing; its entry
      // increments the nesting count, and the thread is then discarded
      // before the matching decrement ever runs.
      ++percpu_[static_cast<std::size_t>(c)].local_irq_count;
    }
    cp.set_interrupts_enabled(false);
  }
}

void Hypervisor::DiscardAllHvStacks() {
  tracer_.Instant("hv.discard_all_hv_stacks", 0, Now());
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    hw::Cpu& cp = platform_.cpu(c);
    cp.hv_stack().Reset();
    cp.set_hung(false);  // a discarded thread cannot keep spinning
  }
}

void Hypervisor::AckAllInterrupts() {
  tracer_.Instant("hv.ack_all_interrupts", 0, Now());
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    NLH_RECORD(forensics::EventKind::kIrqAck, c);
    platform_.intc().AckAll(c);
  }
}

void Hypervisor::ResumeAfterRecovery(sim::Time resume_at, bool reprogram_apics) {
  platform_.queue().ScheduleAt(resume_at, [this, reprogram_apics] {
    if (dead_) return;
    tracer_.Instant("hv.resume_after_recovery", 0, Now());
    frozen_ = false;
    try {
      for (int c = 0; c < platform_.num_cpus(); ++c) {
        hw::Cpu& cp = platform_.cpu(c);
        cp.set_interrupts_enabled(true);
        cp.set_halted(false);
        if (reprogram_apics) ProgramApicFromHeap(c);
      }
    } catch (const HvPanic& p) {
      ReportError(0, DetectionKind::kPanic, p.what());
      return;
    } catch (const HvHang&) {
      platform_.cpu(0).set_hung(true);
      return;
    }
    for (int c = 0; c < platform_.num_cpus(); ++c) KickCpu(c);
  });
}

// ---------------------------------------------------------------------------
// Audit (tests / diagnostics)
// ---------------------------------------------------------------------------

std::vector<std::string> Hypervisor::AuditState() const {
  std::vector<std::string> issues;
  const std::uint64_t bad_frames = frames_.CountInconsistent();
  if (bad_frames > 0) {
    issues.push_back("frame table: " + std::to_string(bad_frames) +
                     " inconsistent descriptors");
  }
  if (!heap_.CheckFreeListIntegrity()) {
    issues.push_back("heap: free list corrupt");
  }
  for (std::size_t c = 0; c < percpu_.size(); ++c) {
    if (!RunqueueValid(percpu_[c], vcpus_)) {
      issues.push_back("runqueue invalid on cpu" + std::to_string(c));
    }
    if (percpu_[c].local_irq_count != 0) {
      issues.push_back("cpu" + std::to_string(c) + ": stranded irq count " +
                       std::to_string(percpu_[c].local_irq_count));
    }
  }
  if (!SchedMetadataConsistent(percpu_, vcpus_)) {
    issues.push_back("scheduling metadata inconsistent");
  }
  const int held = static_locks_.HeldCount() + heap_.HeldLockCount();
  if (held > 0) {
    issues.push_back(std::to_string(held) + " locks held");
  }
  if (statics_.CorruptedCount() > 0) {
    issues.push_back(std::to_string(statics_.CorruptedCount()) +
                     " corrupted static variables");
  }
  return issues;
}

}  // namespace nlh::hv
