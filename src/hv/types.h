// Shared identifier types for the hypervisor.
#pragma once

#include <cstdint>

namespace nlh::hv {

using DomainId = int;
inline constexpr DomainId kInvalidDomain = -1;
inline constexpr DomainId kPrivVmId = 0;  // Dom0

// Global vCPU index (across all domains). The paper's configurations pin one
// vCPU per VM to one physical CPU, but the data structures support more.
using VcpuId = int;
inline constexpr VcpuId kInvalidVcpu = -1;

using FrameNumber = std::uint64_t;
inline constexpr FrameNumber kInvalidFrame = ~0ULL;

using EventPort = int;
inline constexpr EventPort kInvalidPort = -1;

using GrantRef = int;
inline constexpr GrantRef kInvalidGrant = -1;

}  // namespace nlh::hv
