// Simulated fatal-error machinery.
//
// A HvPanic models the events Xen's panic detector catches: fatal hardware
// exceptions (#PF/#GP on a wild pointer, PC=0 fetch) and failed software
// assertions (Section VI-B). It unwinds the current simulated execution
// thread up to the hypervisor entry point, where detection/recovery is
// invoked.
//
// A HvHang models a CPU stuck making no progress (spinning on a lock held
// by an abandoned thread, walking a corrupted circular list). It is caught
// at the entry point too, but instead of triggering recovery directly it
// marks the CPU hung; only the NMI-based watchdog can then detect it, after
// the paper's 3 x 100 ms missed-increment window.
#pragma once

#include <stdexcept>
#include <string>

#include "forensics/record.h"

namespace nlh::hv {

class HvPanic : public std::runtime_error {
 public:
  explicit HvPanic(const std::string& what) : std::runtime_error(what) {
    // The raising CPU is not known here; the entry-path catch that turns
    // this into a DetectionEvent records the CPU-attributed kDetection.
    NLH_RECORD(forensics::EventKind::kPanicRaised, -1, 0, 0, what);
  }
};

class HvHang : public std::runtime_error {
 public:
  explicit HvHang(const std::string& what) : std::runtime_error(what) {
    NLH_RECORD(forensics::EventKind::kPanicRaised, -1, 1, 0, what);
  }
};

// Xen-style assertion: throws HvPanic (i.e. the panic detector fires).
inline void HvAssert(bool cond, const char* msg) {
  if (!cond) throw HvPanic(std::string("ASSERT failed: ") + msg);
}

inline void HvBugOn(bool cond, const char* msg) {
  if (cond) throw HvPanic(std::string("BUG_ON: ") + msg);
}

}  // namespace nlh::hv
