#include "hv/hypercall_defs.h"

#include <array>

namespace nlh::hv {

std::string_view HypercallName(HypercallCode c) {
  switch (c) {
    case HypercallCode::kMmuUpdate: return "mmu_update";
    case HypercallCode::kPageTablePin: return "pt_pin";
    case HypercallCode::kPageTableUnpin: return "pt_unpin";
    case HypercallCode::kUpdateVaMapping: return "update_va_mapping";
    case HypercallCode::kMemoryOpIncrease: return "memory_op_increase";
    case HypercallCode::kMemoryOpDecrease: return "memory_op_decrease";
    case HypercallCode::kGrantMap: return "grant_map";
    case HypercallCode::kGrantUnmap: return "grant_unmap";
    case HypercallCode::kGrantCopy: return "grant_copy";
    case HypercallCode::kEventChannelSend: return "evtchn_send";
    case HypercallCode::kEventChannelAllocUnbound: return "evtchn_alloc_unbound";
    case HypercallCode::kEventChannelBindInterdomain: return "evtchn_bind";
    case HypercallCode::kEventChannelClose: return "evtchn_close";
    case HypercallCode::kSchedOpYield: return "sched_yield";
    case HypercallCode::kSchedOpBlock: return "sched_block";
    case HypercallCode::kSchedOpShutdown: return "sched_shutdown";
    case HypercallCode::kSetTimerOp: return "set_timer_op";
    case HypercallCode::kConsoleIo: return "console_io";
    case HypercallCode::kDomctlCreate: return "domctl_create";
    case HypercallCode::kDomctlDestroy: return "domctl_destroy";
    case HypercallCode::kDomctlUnpause: return "domctl_unpause";
    case HypercallCode::kVcpuOpUp: return "vcpu_op_up";
    case HypercallCode::kXenVersion: return "xen_version";
    case HypercallCode::kMulticall: return "multicall";
    case HypercallCode::kPhysdevOp: return "physdev_op";
    case HypercallCode::kCount: break;
  }
  return "?";
}

namespace {

std::array<HypercallTraits, kNumHypercalls> BuildTraits() {
  std::array<HypercallTraits, kNumHypercalls> t{};
  auto set = [](HypercallTraits& tr, bool idem, bool enhanced,
                double tolerated, bool priv) {
    tr.idempotent = idem;
    tr.retry_enhanced = enhanced;
    tr.lost_tolerated = tolerated;
    tr.priv_only = priv;
  };
  auto at = [&t](HypercallCode c) -> HypercallTraits& {
    return t[static_cast<std::size_t>(c)];
  };

  // Memory-management calls: losing one leaves the guest kernel's view of
  // its page tables out of sync with reality; Linux BUG()s on most of these
  // error paths.
  set(at(HypercallCode::kMmuUpdate), false, true, 0.05, false);
  set(at(HypercallCode::kPageTablePin), false, true, 0.05, false);
  set(at(HypercallCode::kPageTableUnpin), false, true, 0.10, false);
  set(at(HypercallCode::kUpdateVaMapping), false, true, 0.20, false);
  set(at(HypercallCode::kMemoryOpIncrease), false, true, 0.10, false);
  set(at(HypercallCode::kMemoryOpDecrease), false, true, 0.10, false);

  // Grant operations: blkback/netback check return codes; a lost map/copy
  // becomes an I/O error surfaced to the frontend (benchmark failure), but
  // it occasionally falls in a slot the backend retries on its own.
  // grant_copy is one of the "infrequently-used non-idempotent handlers we
  // have not properly enhanced" (Section IV).
  set(at(HypercallCode::kGrantMap), false, true, 0.25, false);
  set(at(HypercallCode::kGrantUnmap), false, true, 0.30, false);
  set(at(HypercallCode::kGrantCopy), false, /*enhanced=*/false, 0.25, false);

  // Event-channel send: losing a notification may or may not matter — ring
  // consumers re-check producer indices on their next kick. Setup/teardown
  // calls are rare and fatal-ish if lost mid-boot.
  set(at(HypercallCode::kEventChannelSend), true, true, 0.60, false);
  set(at(HypercallCode::kEventChannelAllocUnbound), false, true, 0.20, false);
  set(at(HypercallCode::kEventChannelBindInterdomain), false, true, 0.20, false);
  set(at(HypercallCode::kEventChannelClose), false, true, 0.50, false);

  // Scheduling calls: fully tolerable if lost — the guest simply runs again
  // and re-issues (a lost block looks like a spurious wakeup).
  set(at(HypercallCode::kSchedOpYield), true, true, 1.0, false);
  set(at(HypercallCode::kSchedOpBlock), true, true, 1.0, false);
  set(at(HypercallCode::kSchedOpShutdown), true, true, 0.9, false);
  set(at(HypercallCode::kSetTimerOp), true, true, 0.95, false);
  set(at(HypercallCode::kConsoleIo), true, true, 1.0, false);

  // Toolstack operations (PrivVM only): complex, multi-step, not fully
  // enhanced; a lost domain-create wedges the toolstack.
  set(at(HypercallCode::kDomctlCreate), false, /*enhanced=*/false, 0.10, true);
  set(at(HypercallCode::kDomctlDestroy), false, /*enhanced=*/false, 0.10, true);
  set(at(HypercallCode::kDomctlUnpause), true, true, 0.50, true);
  set(at(HypercallCode::kVcpuOpUp), true, true, 0.50, true);

  set(at(HypercallCode::kXenVersion), true, true, 1.0, false);
  set(at(HypercallCode::kMulticall), false, true, 0.05, false);
  set(at(HypercallCode::kPhysdevOp), false, /*enhanced=*/false, 0.30, true);
  return t;
}

}  // namespace

const HypercallTraits& TraitsOf(HypercallCode c) {
  static const std::array<HypercallTraits, kNumHypercalls> kTraits = BuildTraits();
  return kTraits[static_cast<std::size_t>(c)];
}

}  // namespace nlh::hv
