// Interface the hypervisor uses to drive guest execution.
//
// The guest layer (src/guest/) implements this; keeping it abstract here
// avoids an hv -> guest dependency, matching the real layering (Xen knows
// nothing about the kernels it hosts).
//
// Execution model: guests are explicit state machines. During RunSlice a
// guest may call back into the hypervisor (Hypercall / ForwardedSyscall);
// those calls normally return synchronously, but a simulated fault unwinds
// straight through RunSlice — guest implementations must therefore advance
// their state machine only AFTER a hypercall returns. If recovery retries
// the abandoned call, its completion is delivered via OnHypercallResult /
// OnSyscallResult; if retry was impossible, via OnHypercallLost.
#pragma once

#include <cstdint>

#include "hv/hypercall_defs.h"
#include "hv/types.h"
#include "sim/time.h"

namespace nlh::hv {

// What a vCPU did with its time slice.
struct GuestRunResult {
  enum class Action {
    kContinue,  // used budget computing / more work pending; run me again
    kBlock,     // issued sched_op(block); do not run until woken
    kIdle,      // nothing to do right now (waits without blocking)
  };
  Action action = Action::kIdle;
  sim::Duration used = 0;  // guest-mode time consumed
};

class GuestInterface {
 public:
  virtual ~GuestInterface() = default;

  // Runs the vCPU in guest mode for up to `budget`. Pending event-channel
  // bits should be consumed via Hypervisor::ConsumePendingEvents.
  virtual GuestRunResult RunSlice(VcpuId vcpu, sim::Duration budget) = 0;

  // A hypercall that was abandoned by recovery has been retried and
  // completed with `ret`; the guest resumes as if it returned normally.
  virtual void OnHypercallResult(VcpuId vcpu, HypercallCode code,
                                 std::uint64_t ret) = 0;
  // A forwarded syscall abandoned by recovery was re-forwarded.
  virtual void OnSyscallResult(VcpuId vcpu) = 0;
  // An abandoned VM exit (HVM) was re-delivered and completed.
  virtual void OnVmExitResult(VcpuId vcpu) { OnSyscallResult(vcpu); }

  // The in-flight hypercall/syscall was abandoned and could NOT be retried
  // (retry enhancement disabled): the guest kernel sees a garbage return
  // value and reacts per call type (tolerate, degrade, or crash).
  virtual void OnHypercallLost(VcpuId vcpu, HypercallCode code,
                               bool was_syscall) = 0;

  // Recovery resumed this vCPU with clobbered FS/GS segment bases ("Save
  // FS/GS" enhancement disabled): user-level TLS is broken.
  virtual void OnFsGsLost(VcpuId vcpu) = 0;

  // A wild hypervisor write (or injected SDC) corrupted guest memory.
  virtual void OnMemoryCorrupted(VcpuId vcpu) = 0;

  // The domain is being destroyed (or the platform died).
  virtual void OnShutdown(VcpuId vcpu) = 0;

  // Called for every vCPU when the system resumes after recovery (after any
  // OnHypercallLost/OnFsGsLost delivery). A guest that was inside a
  // hypercall that committed right before the abandonment point sees the
  // call as returned (with a garbage return value) — this hook lets it
  // proceed. Default: nothing.
  virtual void OnResumedAfterRecovery(VcpuId vcpu) { (void)vcpu; }
};

}  // namespace nlh::hv
