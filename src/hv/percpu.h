// The hypervisor's per-CPU data area.
#pragma once

#include <cstdint>
#include <deque>

#include "hv/spinlock.h"
#include "hv/types.h"
#include "sim/time.h"

namespace nlh::hv {

struct PerCpuData {
  explicit PerCpuData(int cpu)
      : sched_lock("sched_lock[" + std::to_string(cpu) + "]") {}

  // Interrupt nesting level. Incremented on every interrupt/exception/IPI
  // entry, decremented on exit. Discarding execution threads strands a
  // nonzero value here; Xen's ASSERT(!in_irq()) in the scheduler then
  // panics the first time the CPU schedules — which is why basic microreset
  // *always* fails until the "Clear IRQ count" enhancement is added
  // (Table I, Section V-A).
  int local_irq_count = 0;

  // The per-CPU copy of "which vCPU runs here" (redundant with
  // Vcpu::running_on and Vcpu::is_current).
  VcpuId curr = kInvalidVcpu;
  // Whether `curr` has executed at least one slice since being switched in
  // (scheduler fairness: never rotate away a vCPU that has not run yet).
  bool curr_ran = true;

  // Runqueue head/tail (intrusive list through Vcpu::rq_prev/rq_next).
  VcpuId rq_head = kInvalidVcpu;
  VcpuId rq_tail = kInvalidVcpu;
  int rq_len = 0;

  // Per-CPU scheduler lock. Statically allocated in Xen; registered with
  // the static-lock registry. The scheduling-metadata repair re-initializes
  // it directly (it rebuilds everything the lock protects anyway).
  SpinLock sched_lock;

  // Hang-detector soft counter: incremented by the recurring 100 ms
  // watchdog tick; sampled by the perf-counter NMI handler (Section VI-B).
  std::uint64_t watchdog_soft_count = 0;

  // FS/GS capture area used by the "Save FS/GS" enhancement (Section IV).
  std::uint64_t saved_fs = 0;
  std::uint64_t saved_gs = 0;
  bool fs_gs_saved = false;
};

// PerCpuData embeds a SpinLock (non-movable), so the per-CPU array uses a
// deque for reference stability.
using PerCpuList = std::deque<PerCpuData>;

}  // namespace nlh::hv
