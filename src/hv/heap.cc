#include "hv/heap.h"

#include <algorithm>

namespace nlh::hv {

namespace {
// A free-list walk longer than this is declared a livelock (cycle).
constexpr int kMaxWalk = 1 << 16;
}  // namespace

void HvHeap::Init(std::uint64_t pages) {
  const FrameNumber first = frames_.Alloc(pages, FrameType::kXenHeap, kInvalidDomain);
  heap_base_ = first;
  total_pages_ = pages;
  free_pages_ = pages;
  allocated_pages_ = 0;
  chunks_.clear();
  Chunk all;
  all.pages = pages;
  all.first_frame = first;
  all.next = kNullChunk;
  all.live = true;
  chunks_.push_back(all);
  free_head_ = 0;
  corrupted_ = false;
}

std::int64_t HvHeap::AllocChunkSlot() {
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    if (!chunks_[i].live) return static_cast<std::int64_t>(i);
  }
  chunks_.push_back(Chunk{});
  return static_cast<std::int64_t>(chunks_.size() - 1);
}

void HvHeap::WalkCheck(std::int64_t idx, int steps) const {
  if (idx == kNullChunk) return;
  if (idx < 0 || idx >= static_cast<std::int64_t>(chunks_.size()) ||
      !chunks_[static_cast<std::size_t>(idx)].live) {
    throw HvPanic("heap free list corrupted: wild chunk pointer");
  }
  if (steps > kMaxWalk) {
    throw HvHang("heap free list corrupted: cycle in chunk linkage");
  }
}

HeapObjectId HvHeap::Alloc(const std::string& tag, std::uint64_t pages,
                           bool with_lock) {
  HvAssert(pages > 0, "zero-page heap allocation");
  // First-fit walk over the free list.
  std::int64_t prev = kNullChunk;
  std::int64_t idx = free_head_;
  int steps = 0;
  WalkCheck(idx, steps);
  while (idx != kNullChunk) {
    Chunk& c = chunks_[static_cast<std::size_t>(idx)];
    if (c.pages >= pages) break;
    prev = idx;
    idx = c.next;
    WalkCheck(idx, ++steps);
  }
  if (idx == kNullChunk) throw HvPanic("hypervisor heap exhausted");

  Chunk& c = chunks_[static_cast<std::size_t>(idx)];
  const FrameNumber obj_first = c.first_frame;
  if (c.pages == pages) {
    // Unlink the whole chunk.
    if (prev == kNullChunk) {
      free_head_ = c.next;
    } else {
      chunks_[static_cast<std::size_t>(prev)].next = c.next;
    }
    c.live = false;
  } else {
    c.first_frame += pages;
    c.pages -= pages;
  }
  free_pages_ -= pages;
  allocated_pages_ += pages;

  HeapObject obj;
  obj.id = next_id_++;
  obj.tag = tag;
  obj.first_frame = obj_first;
  obj.pages = pages;
  if (with_lock) {
    obj.lock = std::make_unique<SpinLock>("heap:" + tag);
  }
  const HeapObjectId id = obj.id;
  objects_.push_back(std::move(obj));  // ids are monotonic: stays sorted
  return id;
}

void HvHeap::Free(HeapObjectId id) {
  auto it = LowerBound(id);
  HvAssert(it != objects_.end() && it->id == id, "freeing unknown heap object");
  const std::uint64_t pages = it->pages;
  const FrameNumber first = it->first_frame;
  objects_.erase(it);

  const std::int64_t slot = AllocChunkSlot();
  Chunk& c = chunks_[static_cast<std::size_t>(slot)];
  c.pages = pages;
  c.first_frame = first;
  c.next = free_head_;
  c.live = true;
  free_head_ = slot;
  free_pages_ += pages;
  allocated_pages_ -= pages;
}

HeapObject* HvHeap::Find(HeapObjectId id) {
  auto it = LowerBound(id);
  return (it != objects_.end() && it->id == id) ? &*it : nullptr;
}

std::vector<HeapObject>::iterator HvHeap::LowerBound(HeapObjectId id) {
  return std::lower_bound(
      objects_.begin(), objects_.end(), id,
      [](const HeapObject& o, HeapObjectId v) { return o.id < v; });
}

SpinLock* HvHeap::LockOf(HeapObjectId id) {
  HeapObject* obj = Find(id);
  return (obj != nullptr) ? obj->lock.get() : nullptr;
}

int HvHeap::ReleaseAllLocks() {
  int released = 0;
  for (HeapObject& obj : objects_) {
    if (obj.lock && obj.lock->held()) {
      obj.lock->ForceRelease();
      ++released;
    }
  }
  return released;
}

int HvHeap::HeldLockCount() const {
  int held = 0;
  for (const HeapObject& obj : objects_) {
    if (obj.lock && obj.lock->held()) ++held;
  }
  return held;
}

std::uint64_t HvHeap::RecreateFreeList() {
  // Collect live objects sorted by first frame, then rebuild the free list
  // as the gaps between them. This is ReHype's "recreate the new heap":
  // the result is valid regardless of how mangled the old linkage was.
  std::vector<const HeapObject*> live;
  live.reserve(objects_.size());
  for (const HeapObject& obj : objects_) live.push_back(&obj);
  std::sort(live.begin(), live.end(),
            [](const HeapObject* a, const HeapObject* b) {
              return a->first_frame < b->first_frame;
            });

  chunks_.clear();
  free_head_ = kNullChunk;
  corrupted_ = false;

  // Heap frames span [base, base + total_pages_). Derive base from the
  // lowest object or assume the heap began at the lowest known frame.
  // Track the scan cursor through the object layout.
  std::uint64_t rebuilt = 0;
  std::uint64_t free_accum = 0;
  const FrameNumber heap_base = heap_base_;
  FrameNumber cursor = heap_base;

  auto add_free_chunk = [&](FrameNumber first, std::uint64_t pages) {
    if (pages == 0) return;
    Chunk c;
    c.pages = pages;
    c.first_frame = first;
    c.next = free_head_;
    c.live = true;
    chunks_.push_back(c);
    free_head_ = static_cast<std::int64_t>(chunks_.size() - 1);
    free_accum += pages;
    ++rebuilt;
  };

  if (heap_base == kInvalidFrame) {
    // No objects and no recorded base: nothing to rebuild.
    free_pages_ = total_pages_;
    allocated_pages_ = 0;
    return 0;
  }

  for (const HeapObject* obj : live) {
    if (obj->first_frame > cursor) {
      add_free_chunk(cursor, obj->first_frame - cursor);
    }
    cursor = obj->first_frame + obj->pages;
  }
  const FrameNumber heap_end = heap_base + total_pages_;
  if (cursor < heap_end) add_free_chunk(cursor, heap_end - cursor);

  free_pages_ = free_accum;
  allocated_pages_ = total_pages_ - free_accum;
  return rebuilt;
}

void HvHeap::CorruptFreeList(bool fatal) {
  corrupted_ = true;
  if (free_head_ == kNullChunk) {
    free_head_ = kPoisonChunk;  // empty list: corrupt the head itself
    return;
  }
  Chunk& c = chunks_[static_cast<std::size_t>(free_head_)];
  c.next = fatal ? kPoisonChunk : free_head_;  // wild pointer or self-cycle
}

void HvHeap::CorruptObjectExtent(HeapObjectId id) {
  HeapObject* obj = Find(id);
  HvAssert(obj != nullptr, "corrupting extent of unknown heap object");
  ++obj->first_frame;
}

std::vector<std::pair<FrameNumber, std::uint64_t>> HvHeap::FreeChunkExtents()
    const {
  std::vector<std::pair<FrameNumber, std::uint64_t>> extents;
  std::int64_t idx = free_head_;
  int steps = 0;
  while (idx != kNullChunk) {
    if (idx < 0 || idx >= static_cast<std::int64_t>(chunks_.size())) return {};
    const Chunk& c = chunks_[static_cast<std::size_t>(idx)];
    if (!c.live) return {};
    extents.emplace_back(c.first_frame, c.pages);
    if (++steps > kMaxWalk) return {};
    idx = c.next;
  }
  return extents;
}

bool HvHeap::CheckFreeListIntegrity() const {
  std::int64_t idx = free_head_;
  int steps = 0;
  std::uint64_t pages = 0;
  while (idx != kNullChunk) {
    if (idx < 0 || idx >= static_cast<std::int64_t>(chunks_.size())) return false;
    const Chunk& c = chunks_[static_cast<std::size_t>(idx)];
    if (!c.live) return false;
    pages += c.pages;
    if (++steps > kMaxWalk) return false;
    idx = c.next;
  }
  return pages == free_pages_;
}

}  // namespace nlh::hv
