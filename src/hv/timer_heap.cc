#include "hv/timer_heap.h"

#include <limits>

#include "forensics/record.h"

namespace nlh::hv {

TimerId TimerHeap::Insert(SoftTimer timer) {
  if (timer.id == kInvalidTimer) timer.id = next_id_++;
  const TimerId id = timer.id;
  next_id_ = std::max(next_id_, id + 1);
  entries_.push_back(std::move(timer));
  SiftUp(entries_.size() - 1);
  return id;
}

bool TimerHeap::Remove(TimerId id) {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].id != id) continue;
    entries_[i] = std::move(entries_.back());
    entries_.pop_back();
    if (i < entries_.size()) {
      SiftDown(i);
      SiftUp(i);
    }
    return true;
  }
  return false;
}

bool TimerHeap::RemoveByName(const std::string& name) {
  for (const SoftTimer& t : entries_) {
    if (t.name == name) return Remove(t.id);
  }
  return false;
}

bool TimerHeap::Contains(TimerId id) const {
  for (const SoftTimer& t : entries_) {
    if (t.id == id) return true;
  }
  return false;
}

bool TimerHeap::ContainsName(const std::string& name) const {
  for (const SoftTimer& t : entries_) {
    if (t.name == name) return true;
  }
  return false;
}

sim::Time TimerHeap::NextDeadline() const {
  if (entries_.empty()) return std::numeric_limits<sim::Time>::max();
  return entries_.front().deadline;
}

bool TimerHeap::PopExpired(sim::Time now, SoftTimer* out) {
  if (entries_.empty()) return false;
  const SoftTimer& top = entries_.front();
  // A negative deadline can only come from corruption; Xen's timer code
  // would compute a bogus APIC delta and trip an assertion here.
  HvAssert(top.deadline >= 0, "timer heap entry has corrupt deadline");
  if (top.deadline > now) return false;
  // Move, not copy: the entry's name string and callback are handed to the
  // caller; the heap slot is about to be overwritten anyway.
  *out = std::move(entries_.front());
  NLH_RECORD(forensics::EventKind::kTimerFire, cpu_,
             static_cast<std::uint64_t>(out->deadline), 0, out->name);
  entries_.front() = std::move(entries_.back());
  entries_.pop_back();
  if (!entries_.empty()) SiftDown(0);
  return true;
}

void TimerHeap::CorruptEntry(std::size_t index, bool push_out) {
  if (entries_.empty()) return;
  SoftTimer& t = entries_[index % entries_.size()];
  if (push_out) {
    t.deadline = std::numeric_limits<sim::Time>::max() / 2;
  } else {
    t.deadline = -1;
  }
  // Deliberately NOT re-heapified: the corruption broke heap order in
  // place, exactly as a stray write would.
}

void TimerHeap::SiftUp(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (entries_[parent].deadline <= entries_[i].deadline) break;
    std::swap(entries_[parent], entries_[i]);
    i = parent;
  }
}

void TimerHeap::SiftDown(std::size_t i) {
  const std::size_t n = entries_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && entries_[l].deadline < entries_[smallest].deadline) smallest = l;
    if (r < n && entries_[r].deadline < entries_[smallest].deadline) smallest = r;
    if (smallest == i) return;
    std::swap(entries_[i], entries_[smallest]);
    i = smallest;
  }
}

}  // namespace nlh::hv
