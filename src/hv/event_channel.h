// Event channels: Xen's asynchronous notification primitive.
//
// Paravirtual I/O (block, net) rides on shared-memory rings plus event
// channel notifications between frontend (AppVM) and backend (PrivVM).
// Channel state lives in heap-allocated per-domain buckets; a stray write
// there breaks notification delivery — one flavor of the "corrupted data
// structure" recovery-failure cause (Section VII-A).
#pragma once

#include <cstdint>
#include <vector>

#include "hv/panic.h"
#include "hv/types.h"

namespace nlh::hv {

enum class ChannelState : std::uint8_t {
  kClosed = 0,
  kUnbound,       // allocated, waiting for the remote end to bind
  kInterdomain,   // connected to (remote_domain, remote_port)
  kVirq,          // bound to a virtual IRQ (e.g. the per-vCPU timer)
};

struct EventChannel {
  ChannelState state = ChannelState::kClosed;
  DomainId remote_domain = kInvalidDomain;
  EventPort remote_port = kInvalidPort;
  int virq = -1;
  VcpuId notify_vcpu = kInvalidVcpu;  // which vCPU receives the upcall
};

inline constexpr int kMaxEventPorts = 64;  // per domain (fits the bitmap)

// Per-domain event channel table.
class EventChannelTable {
 public:
  EventChannelTable() : channels_(kMaxEventPorts) {}

  EventPort AllocUnbound(DomainId remote, VcpuId notify_vcpu) {
    for (EventPort p = 0; p < kMaxEventPorts; ++p) {
      if (channels_[static_cast<std::size_t>(p)].state == ChannelState::kClosed) {
        EventChannel& ch = channels_[static_cast<std::size_t>(p)];
        ch.state = ChannelState::kUnbound;
        ch.remote_domain = remote;
        ch.remote_port = kInvalidPort;
        ch.notify_vcpu = notify_vcpu;
        return p;
      }
    }
    throw HvPanic("out of event channel ports");
  }

  void BindInterdomain(EventPort local, DomainId remote, EventPort remote_port) {
    EventChannel& ch = At(local);
    HvAssert(ch.state == ChannelState::kUnbound ||
                 ch.state == ChannelState::kInterdomain,
             "binding a port in the wrong state");
    ch.state = ChannelState::kInterdomain;
    ch.remote_domain = remote;
    ch.remote_port = remote_port;
  }

  void Close(EventPort port) { At(port) = EventChannel{}; }

  EventChannel& At(EventPort port) {
    HvAssert(port >= 0 && port < kMaxEventPorts, "event port out of range");
    return channels_[static_cast<std::size_t>(port)];
  }
  const EventChannel& At(EventPort port) const {
    HvAssert(port >= 0 && port < kMaxEventPorts, "event port out of range");
    return channels_[static_cast<std::size_t>(port)];
  }

  int OpenCount() const {
    int n = 0;
    for (const EventChannel& ch : channels_) {
      if (ch.state != ChannelState::kClosed) ++n;
    }
    return n;
  }

 private:
  std::vector<EventChannel> channels_;
};

}  // namespace nlh::hv
