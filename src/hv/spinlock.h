// Hypervisor spinlocks and the static-lock registry.
//
// Because microreset (and microreboot) discard every execution thread in
// the hypervisor, any lock held at detection time would otherwise stay
// locked forever; the next acquirer spins until the watchdog declares the
// CPU hung. Recovery therefore must force-release all locks:
//   - heap-allocated locks: tracked by the heap allocator (both mechanisms,
//     inherited from ReHype),
//   - static locks: ReHype re-initializes them by rebooting; NiLiHype
//     instead relies on the linker-script trick of Section V-A ("Unlock
//     static locks") that places every statically-defined lock in one
//     segment. StaticLockRegistry models that segment.
#pragma once

#include <string>
#include <vector>

#include "forensics/record.h"
#include "hv/panic.h"
#include "hw/cpu.h"

namespace nlh::hv {

class SpinLock {
 public:
  explicit SpinLock(std::string name) : name_(std::move(name)) {}

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  // Acquire by `cpu`. In the simulator, handler executions are serialized,
  // so a lock observed held was left behind by an abandoned or preempted
  // thread; a real CPU would spin on it forever -> simulated hang.
  void Acquire(hw::CpuId cpu) {
    if (holder_ != kUnheld) {
      throw HvHang("deadlock on lock '" + name_ + "' held by CPU" +
                   std::to_string(holder_));
    }
    NLH_RECORD(forensics::EventKind::kLockAcquire, cpu, 0, 0, name_);
    holder_ = cpu;
    ++acquisitions_;
  }

  void Release(hw::CpuId cpu) {
    HvAssert(holder_ == cpu, "releasing lock not held by this CPU");
    NLH_RECORD(forensics::EventKind::kLockRelease, cpu, 0, 0, name_);
    holder_ = kUnheld;
  }

  // Recovery path: unconditional unlock regardless of holder.
  void ForceRelease() { holder_ = kUnheld; }

  bool held() const { return holder_ != kUnheld; }
  hw::CpuId holder() const { return holder_; }
  const std::string& name() const { return name_; }
  std::uint64_t acquisitions() const { return acquisitions_; }

 private:
  static constexpr hw::CpuId kUnheld = -1;
  std::string name_;
  hw::CpuId holder_ = kUnheld;
  std::uint64_t acquisitions_ = 0;
};

// Models the dedicated linker segment holding all statically-defined locks.
// In Xen this is achieved by modifying the lock-definition macro and the
// linker script; here, static locks register themselves at construction.
class StaticLockRegistry {
 public:
  void Register(SpinLock* lock) { locks_.push_back(lock); }

  // The NiLiHype "Unlock static locks" enhancement: iterate the segment and
  // unlock everything. Returns how many locks were actually held.
  int ForceReleaseAll() {
    int released = 0;
    for (SpinLock* lock : locks_) {
      if (lock->held()) {
        lock->ForceRelease();
        ++released;
      }
    }
    return released;
  }

  int HeldCount() const {
    int held = 0;
    for (const SpinLock* lock : locks_) {
      if (lock->held()) ++held;
    }
    return held;
  }

  std::size_t size() const { return locks_.size(); }
  const std::vector<SpinLock*>& locks() const { return locks_; }

 private:
  std::vector<SpinLock*> locks_;
};

// RAII guard used by handler code on the normal (non-recovery) path.
class LockGuard {
 public:
  LockGuard(SpinLock& lock, hw::CpuId cpu) : lock_(&lock), cpu_(cpu) {
    lock_->Acquire(cpu_);
  }
  ~LockGuard() { Unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  // Explicit early unlock.
  void Unlock() {
    if (lock_ != nullptr && lock_->held() && lock_->holder() == cpu_) {
      lock_->Release(cpu_);
    }
    lock_ = nullptr;
  }

  // Abandonment: when a simulated fault unwinds a handler, the guard is
  // destroyed by C++ unwinding, but the *simulated* thread never ran its
  // unlock path. Call Leak() while unwinding to model the lock staying held.
  void Leak() { lock_ = nullptr; }

 private:
  SpinLock* lock_;
  hw::CpuId cpu_;
};

}  // namespace nlh::hv
