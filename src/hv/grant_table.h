// Grant tables: page sharing between domains for paravirtual I/O.
//
// A frontend grants a page to the backend domain; the backend maps (or
// grant-copies) it. Mapping takes a reference on the underlying frame —
// a non-idempotent step that makes grant hypercalls a prime source of
// retry failures (Section IV).
#pragma once

#include <cstdint>
#include <vector>

#include "hv/panic.h"
#include "hv/types.h"

namespace nlh::hv {

struct GrantEntry {
  bool in_use = false;        // granted by the owner
  DomainId grantee = kInvalidDomain;
  FrameNumber frame = kInvalidFrame;
  int map_count = 0;          // active mappings by the grantee
  int xfer_count = 0;         // completed grant-copy transfers through this
                              // entry; frontends compare against their own
                              // request count to detect duplicated transfers
                              // (retry of the un-enhanced grant_copy)
};

inline constexpr int kGrantTableSize = 128;  // per domain

class GrantTable {
 public:
  GrantTable() : entries_(kGrantTableSize) {}

  // Guest-side: grant `frame` to `grantee` (written directly into the
  // shared grant page; not a hypercall).
  GrantRef Grant(DomainId grantee, FrameNumber frame) {
    for (GrantRef r = 0; r < kGrantTableSize; ++r) {
      GrantEntry& e = entries_[static_cast<std::size_t>(r)];
      if (!e.in_use && e.map_count == 0) {
        e.in_use = true;
        e.grantee = grantee;
        e.frame = frame;
        e.map_count = 0;
        return r;
      }
    }
    throw HvPanic("grant table full");
  }

  // Guest-facing, non-throwing variant: returns kInvalidGrant when the
  // table is full (the guest kernel decides how to react).
  GrantRef TryGrant(DomainId grantee, FrameNumber frame) {
    for (GrantRef r = 0; r < kGrantTableSize; ++r) {
      GrantEntry& e = entries_[static_cast<std::size_t>(r)];
      if (!e.in_use && e.map_count == 0) {
        e.in_use = true;
        e.grantee = grantee;
        e.frame = frame;
        e.map_count = 0;
        e.xfer_count = 0;
        return r;
      }
    }
    return kInvalidGrant;
  }

  void Revoke(GrantRef ref) {
    GrantEntry& e = At(ref);
    HvAssert(e.map_count == 0, "revoking a mapped grant");
    e = GrantEntry{};
  }

  GrantEntry& At(GrantRef ref) {
    HvAssert(ref >= 0 && ref < kGrantTableSize, "grant ref out of range");
    return entries_[static_cast<std::size_t>(ref)];
  }
  const GrantEntry& At(GrantRef ref) const {
    HvAssert(ref >= 0 && ref < kGrantTableSize, "grant ref out of range");
    return entries_[static_cast<std::size_t>(ref)];
  }

  int MappedCount() const {
    int n = 0;
    for (const GrantEntry& e : entries_) n += e.map_count;
    return n;
  }

 private:
  std::vector<GrantEntry> entries_;
};

}  // namespace nlh::hv
