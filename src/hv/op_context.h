// Execution context for one hypervisor operation (hypercall handler, IRQ
// path, scheduler invocation, idle poll, recovery step).
//
// Handlers are written as sequences of Step() calls that mutate real
// hypervisor structures. Step() retires instructions on the owning CPU and
// invokes the platform's step hook, which is where the fault injector's
// instruction-counting trigger lives — so a simulated fault lands *between*
// two real mutations, leaving genuine partial state behind when the thread
// is abandoned (C++ unwinding carries the abandonment; locks acquired via
// Lock() deliberately stay held).
#pragma once

#include <cstdint>

#include "hv/costs.h"
#include "hv/options.h"
#include "hv/spinlock.h"
#include "hv/undo_log.h"
#include "hv/vcpu.h"
#include "hw/platform.h"

namespace nlh::hv {

enum class HvContextKind {
  kHypercall,
  kSyscallForward,
  kIrq,
  kTimerSoftirq,
  kSchedule,
  kIdle,
  kRecovery,
};

class OpContext {
 public:
  OpContext(hw::Platform& platform, hw::Cpu& cpu, const RuntimeOptions& options,
            HvContextKind kind, Vcpu* current_vcpu, UndoLog* undo)
      : platform_(platform),
        cpu_(cpu),
        options_(options),
        kind_(kind),
        vcpu_(current_vcpu),
        undo_(undo) {}

  OpContext(const OpContext&) = delete;
  OpContext& operator=(const OpContext&) = delete;

  // Retires `n` hypervisor instructions. May throw HvPanic/HvHang — either
  // from the injector hook (a fault fires here) or from a mutation that a
  // previous corruption made invalid.
  void Step(std::uint64_t n, const char* what) {
    (void)what;
    cpu_.RetireHvInstructions(n);
    instructions_ += n;
    platform_.OnHvStep(cpu_, n);
  }

  // Lock acquisition through the context. NOT RAII: if the handler is
  // abandoned mid-execution, the lock stays held — the abandoned simulated
  // thread never runs its unlock path. Recovery must force-release it.
  void Lock(SpinLock& lock) {
    Step(25, "lock");
    lock.Acquire(cpu_.id());
  }
  void Unlock(SpinLock& lock) {
    lock.Release(cpu_.id());
    Step(15, "unlock");
  }

  // Write-ahead undo record for a critical variable (Section IV). The
  // `restore` closure must capture the OLD value. Costs normal-operation
  // instructions only when undo logging is compiled in — this is the
  // NiLiHype-vs-NiLiHype* overhead of Figure 3. Templated so the closure
  // goes straight into the undo log's SmallFn storage (no std::function
  // materialization on the hypercall hot path).
  template <typename F>
  void LogUndo(F&& restore) {
    if (!options_.undo_logging || undo_ == nullptr) return;
    undo_->Record(std::forward<F>(restore));
    Step(cost::kUndoLogRecord, "undo-log");
  }

  // Logs completion of multicall component `index` (Section IV
  // fine-granularity batched retry).
  void LogBatchComponentDone(int index) {
    if (!options_.batch_completion_logging || vcpu_ == nullptr) return;
    vcpu_->inflight.multicall_progress = index + 1;
    vcpu_->inflight.progress_logged = true;
    Step(cost::kBatchCompletionLog, "batch-log");
  }

  // ReHype-only normal-operation shadowing of IO-APIC writes.
  void ShadowIoApicWrite() {
    if (!options_.rehype_ioapic_shadow) return;
    Step(cost::kIoApicShadowWrite, "ioapic-shadow");
  }

  HvContextKind kind() const { return kind_; }
  Vcpu* vcpu() { return vcpu_; }
  hw::Cpu& cpu() { return cpu_; }
  std::uint64_t instructions() const { return instructions_; }

 private:
  hw::Platform& platform_;
  hw::Cpu& cpu_;
  const RuntimeOptions& options_;
  HvContextKind kind_;
  Vcpu* vcpu_;
  UndoLog* undo_;
  std::uint64_t instructions_ = 0;
};

}  // namespace nlh::hv
