#include "hv/frame_table.h"

namespace nlh::hv {

FrameNumber FrameTable::Alloc(std::uint64_t count, FrameType type,
                              DomainId owner) {
  HvAssert(type != FrameType::kFree, "allocating frames as free");
  if (count == 1 && !free_list_.empty()) {
    const FrameNumber f = free_list_.back();
    free_list_.pop_back();
    PageFrameDescriptor& d = frames_[f];
    HvAssert(d.type == FrameType::kFree, "free-list entry not free");
    d.type = type;
    d.owner = owner;
    d.use_count = 1;
    d.validated = false;
    ++allocated_;
    return f;
  }
  if (bump_ + count > frames_.size()) {
    // Out of fresh frames; satisfy singles from the free list if possible.
    if (count == 1 || free_list_.size() < count) {
      throw HvPanic("out of physical memory frames");
    }
  }
  const FrameNumber first = bump_;
  bump_ += count;
  for (std::uint64_t i = 0; i < count; ++i) {
    PageFrameDescriptor& d = frames_[first + i];
    d.type = type;
    d.owner = owner;
    d.use_count = 1;
    d.validated = false;
  }
  allocated_ += count;
  return first;
}

void FrameTable::FreeOne(FrameNumber f) {
  PageFrameDescriptor& d = frames_[f];
  HvAssert(d.type != FrameType::kFree, "double free of frame");
  HvAssert(!d.validated, "freeing a validated page table");
  HvAssert(d.use_count <= 1, "freeing a referenced page");
  d = PageFrameDescriptor{};
  free_list_.push_back(f);
  --allocated_;
}

bool FrameTable::Consistent(const PageFrameDescriptor& d) {
  if (d.type == FrameType::kFree) {
    return !d.validated && d.use_count == 0;
  }
  if (d.use_count < 0) return false;
  if (d.validated && d.use_count <= 0) return false;
  if (d.type == FrameType::kPageTable && !d.validated) return false;
  if (d.validated && d.type != FrameType::kPageTable) return false;
  return true;
}

std::uint64_t FrameTable::CountInconsistent() const {
  std::uint64_t n = 0;
  for (const PageFrameDescriptor& d : frames_) {
    if (!Consistent(d)) ++n;
  }
  return n;
}

FrameScanReport FrameTable::ScanAndRepair() {
  FrameScanReport report;
  for (PageFrameDescriptor& d : frames_) {
    ++report.scanned;
    if (Consistent(d)) continue;
    ++report.repaired;
    if (d.type == FrameType::kFree) {
      d.validated = false;
      d.use_count = 0;
      continue;
    }
    if (d.use_count < 0) d.use_count = 0;
    // The validation bit is the more reliable field (set/cleared in one
    // step); make the counter and type agree with it.
    if (d.validated) {
      d.type = FrameType::kPageTable;
      if (d.use_count <= 0) d.use_count = 1;
    } else if (d.type == FrameType::kPageTable) {
      d.type = FrameType::kDomainPage;
      if (d.use_count < 0) d.use_count = 0;
    }
  }
  return report;
}

FrameNumber FrameTable::PickAllocatedFrame(sim::Rng& rng) const {
  if (allocated_ == 0) return kInvalidFrame;
  // Bounded rejection sampling over the bump region.
  for (int attempt = 0; attempt < 64; ++attempt) {
    const FrameNumber f = rng.Index(static_cast<std::size_t>(
        bump_ == 0 ? frames_.size() : bump_));
    if (frames_[f].type != FrameType::kFree) return f;
  }
  for (FrameNumber f = 0; f < frames_.size(); ++f) {
    if (frames_[f].type != FrameType::kFree) return f;
  }
  return kInvalidFrame;
}

void FrameTable::ResetAll() {
  for (PageFrameDescriptor& d : frames_) d = PageFrameDescriptor{};
  free_list_.clear();
  bump_ = 0;
  allocated_ = 0;
}

}  // namespace nlh::hv
