// The frame table: one descriptor per physical page frame.
//
// Mirrors Xen's page_info array. Each descriptor carries the two fields
// whose possible mutual inconsistency after recovery dominates NiLiHype's
// latency (Table III) and motivates the consistency scan both mechanisms
// run: the page-table *validation bit* and the page *use counter*
// (Section VII-B). Hypercall handlers mutate these fields step by step, so
// an abandoned handler leaves real partial state behind; non-idempotent
// retry without the undo log double-applies counter updates.
//
// NOTE ON SCALE: the mechanically-simulated frame table is a representative
// window (default 16 Ki frames); the configured physical memory size (8 GB
// in the paper) enters through the recovery latency model, which charges
// the per-descriptor scan cost for every frame of the *configured* memory.
#pragma once

#include <cstdint>
#include <vector>

#include "hv/panic.h"
#include "hv/types.h"
#include "sim/rng.h"

namespace nlh::hv {

enum class FrameType : std::uint8_t {
  kFree = 0,
  kXenHeap,     // backs the hypervisor heap
  kDomainPage,  // ordinary guest memory
  kPageTable,   // guest page table page (pinned/validated)
};

struct PageFrameDescriptor {
  FrameType type = FrameType::kFree;
  bool validated = false;   // page-table validation bit
  std::int32_t use_count = 0;  // reference counter
  DomainId owner = kInvalidDomain;
};

// Result of the recovery-time consistency scan.
struct FrameScanReport {
  std::uint64_t scanned = 0;
  std::uint64_t repaired = 0;
};

class FrameTable {
 public:
  explicit FrameTable(std::uint64_t num_frames) : frames_(num_frames) {}

  std::uint64_t size() const { return frames_.size(); }
  const PageFrameDescriptor& desc(FrameNumber f) const { return frames_[f]; }
  PageFrameDescriptor& mutable_desc(FrameNumber f) { return frames_[f]; }

  std::uint64_t free_frames() const { return size() - allocated_; }
  std::uint64_t allocated_frames() const { return allocated_; }

  // --- Allocation --------------------------------------------------------

  // Allocates `count` contiguous-enough frames (contiguity is not modeled)
  // for `owner`. Returns the first frame number of a linear run; frames are
  // handed out from a bump cursor with a free list for reuse.
  FrameNumber Alloc(std::uint64_t count, FrameType type, DomainId owner);

  // Frees one frame. Asserts the descriptor is in a freeable state — the
  // assertion that fires post-recovery when an unrepaired descriptor is
  // touched.
  void FreeOne(FrameNumber f);

  void FreeRange(FrameNumber first, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) FreeOne(first + i);
  }

  // --- Reference counting (hypercall building blocks) ---------------------

  // get_page: take a reference. Non-idempotent: a retried hypercall that
  // already executed this step double-increments unless undone.
  void GetPage(FrameNumber f) {
    PageFrameDescriptor& d = frames_[f];
    HvAssert(d.type != FrameType::kFree, "get_page on free frame");
    ++d.use_count;
  }

  // put_page: drop a reference.
  void PutPage(FrameNumber f) {
    PageFrameDescriptor& d = frames_[f];
    HvAssert(d.use_count > 0, "page reference count underflow");
    --d.use_count;
  }

  // Raw counter adjustment for undo-log replay (no assertions: the undo
  // path restores a value that the assert-bearing path may reject).
  void AdjustUseCount(FrameNumber f, std::int32_t delta) {
    frames_[f].use_count += delta;
  }

  // --- Page-table validation ----------------------------------------------

  // pin: validate a guest page as a page table.
  void ValidatePageTable(FrameNumber f) {
    PageFrameDescriptor& d = frames_[f];
    HvBugOn(d.validated, "validating an already-validated page table");
    HvAssert(d.type == FrameType::kDomainPage || d.type == FrameType::kPageTable,
             "validating a non-guest page");
    d.type = FrameType::kPageTable;
    d.validated = true;
  }

  // unpin: devalidate.
  void InvalidatePageTable(FrameNumber f) {
    PageFrameDescriptor& d = frames_[f];
    HvAssert(d.validated, "invalidating a non-validated page table");
    d.validated = false;
    d.type = FrameType::kDomainPage;
  }

  void SetValidated(FrameNumber f, bool v) { frames_[f].validated = v; }

  // --- Integrity -----------------------------------------------------------

  // Whether a descriptor satisfies the type/validated/use-count invariants.
  static bool Consistent(const PageFrameDescriptor& d);

  // Counts inconsistent descriptors (test/diagnostic helper).
  std::uint64_t CountInconsistent() const;

  // The recovery scan (both mechanisms): restore consistency between the
  // validation bit and the use counter of every descriptor, using the most
  // reliable of the two fields (Section VII-B).
  FrameScanReport ScanAndRepair();

  // Picks an allocated frame uniformly at random, for fault injection.
  // Returns kInvalidFrame if none are allocated.
  FrameNumber PickAllocatedFrame(sim::Rng& rng) const;

  // Resets every descriptor to free (fresh boot).
  void ResetAll();

 private:
  std::vector<PageFrameDescriptor> frames_;
  std::vector<FrameNumber> free_list_;
  FrameNumber bump_ = 0;
  std::uint64_t allocated_ = 0;
};

}  // namespace nlh::hv
