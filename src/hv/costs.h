// Instruction-cost calibration for hypervisor code paths.
//
// The fault injector's second-level trigger picks a uniformly random point
// in *retired hypervisor instructions* (Section VI-C), so these constants
// determine where faults land: the share of retirement spent in hypercall
// handlers vs. the scheduler vs. the timer-softirq path directly produces
// the increments between rows of Table I. The absolute scale (together
// with hw::PlatformConfig::ns_per_instruction) determines the <5% fraction
// of CPU cycles spent in the hypervisor (Section VII-A) and the Figure 3
// overhead percentages.
#pragma once

#include <cstdint>

namespace nlh::hv::cost {

// --- Entry/exit ------------------------------------------------------------
inline constexpr std::uint64_t kHypercallEntry = 180;   // save regs, dispatch
inline constexpr std::uint64_t kHypercallExit = 340;    // restore context,
    // re-check events/softirqs, sysret — the post-commit window
inline constexpr std::uint64_t kIrqEntry = 220;         // vector, save, ack
inline constexpr std::uint64_t kIrqExit = 160;
inline constexpr std::uint64_t kSyscallForward = 260;   // x86-64 forwarding

// --- Memory management -----------------------------------------------------
inline constexpr std::uint64_t kMmuUpdatePerEntry = 240;
inline constexpr std::uint64_t kPinValidate = 900;      // page-table walk
inline constexpr std::uint64_t kPinCommit = 150;
inline constexpr std::uint64_t kUnpin = 500;
inline constexpr std::uint64_t kUpdateVaMapping = 300;
inline constexpr std::uint64_t kMemoryOpPerFrame = 180;

// --- Grants / events ---------------------------------------------------------
inline constexpr std::uint64_t kGrantMap = 650;
inline constexpr std::uint64_t kGrantUnmap = 420;
inline constexpr std::uint64_t kGrantCopy = 1600;       // data copy included
inline constexpr std::uint64_t kEventSend = 320;
inline constexpr std::uint64_t kEventSetup = 380;

// --- Scheduling --------------------------------------------------------------
inline constexpr std::uint64_t kSchedOp = 200;          // yield/block body
inline constexpr std::uint64_t kSetTimerOp = 220;
inline constexpr std::uint64_t kSchedule = 1100;        // schedule() body
inline constexpr std::uint64_t kContextSwitch = 900;
inline constexpr std::uint64_t kConsoleIo = 150;

// --- Timer softirq -----------------------------------------------------------
inline constexpr std::uint64_t kTimerSoftirqFixed = 260;
inline constexpr std::uint64_t kTimerPerExpiry = 300;
inline constexpr std::uint64_t kApicReprogram = 120;

// --- Toolstack ----------------------------------------------------------------
inline constexpr std::uint64_t kDomctlCreate = 60000;
inline constexpr std::uint64_t kDomctlDestroy = 30000;
inline constexpr std::uint64_t kDomctlSmall = 900;

// --- Idle ---------------------------------------------------------------------
inline constexpr std::uint64_t kIdlePoll = 350;  // per idle-loop wakeup

// --- Recovery-support overhead during NORMAL operation ------------------------
// Per undo-log record (Section IV "lightweight logging"): the source of the
// NiLiHype-vs-NiLiHype* gap in Figure 3.
inline constexpr std::uint64_t kUndoLogRecord = 90;
// Per multicall-component completion log write (Section IV).
inline constexpr std::uint64_t kBatchCompletionLog = 40;
// ReHype-only: shadowing IO-APIC register writes during normal operation.
inline constexpr std::uint64_t kIoApicShadowWrite = 60;

}  // namespace nlh::hv::cost
