// Hypervisor build/runtime options that affect NORMAL operation.
//
// These correspond to the category-(1) code of Table IV: support code
// compiled into the hypervisor that runs before any failure. The recovery-
// time enhancement switches live in recovery/enhancements.h.
#pragma once

namespace nlh::hv {

struct RuntimeOptions {
  // Section IV "mechanisms to mitigate hypercall retry failure": write-ahead
  // old-value logging for critical variables in non-idempotent handlers.
  // Turning this off is the paper's NiLiHype* configuration (Figure 3) and
  // costs ~12% recovery rate (Section VII-C).
  bool undo_logging = true;

  // Section IV "fine-granularity batched hypercall retry": log completion of
  // each component of a multicall so retry can skip completed ones.
  bool batch_completion_logging = true;

  // ReHype-only normal-operation logging (Table IV discussion): shadow
  // IO-APIC register writes and record boot-line options so the reboot can
  // restore them. Pure overhead for NiLiHype.
  bool rehype_ioapic_shadow = false;
};

}  // namespace nlh::hv
