// Typed detection and failure classification, replacing the free-form
// strings previously threaded through error reporting, MarkDead, and the
// campaign failure tally.
//
//  - DetectionKind:  which detector class fired (panic path vs NMI watchdog).
//  - FailureCode:    what the detector saw (attached to a DetectionEvent).
//  - DetectionEvent: the structured error report delivered to the
//                    registered error handler (recovery/manager.h).
//  - FailureReason:  why a detected run did not end in successful recovery
//                    (the Section VII-A taxonomy), used by Hypervisor::
//                    MarkDead, RunResult, and the campaign tally so
//                    breakdowns key on an enum instead of typo-prone text.
#pragma once

#include <string>

#include "hw/cpu.h"
#include "sim/time.h"

namespace nlh::hv {

enum class DetectionKind { kPanic, kHang };

inline const char* DetectionKindName(DetectionKind k) {
  return k == DetectionKind::kPanic ? "panic" : "hang";
}

// What the firing detector observed.
enum class FailureCode {
  kUnknown = 0,
  kAssertFailure,   // panic path: a hypervisor assertion / fatal fault
  kWatchdogStall,   // NMI watchdog: per-CPU soft counter stopped advancing
  kNestedFault,     // error raised while handling a previous error
};

inline const char* FailureCodeName(FailureCode c) {
  switch (c) {
    case FailureCode::kUnknown: return "unknown";
    case FailureCode::kAssertFailure: return "assert_failure";
    case FailureCode::kWatchdogStall: return "watchdog_stall";
    case FailureCode::kNestedFault: return "nested_fault";
  }
  return "?";
}

// Structured error report: replaces the (CpuId, DetectionKind,
// const std::string&) triple previously passed to the error handler.
struct DetectionEvent {
  hw::CpuId cpu = 0;
  DetectionKind kind = DetectionKind::kPanic;
  FailureCode code = FailureCode::kUnknown;
  sim::Time when = 0;   // simulated detection time
  std::string detail;   // human-readable diagnostic (assert text, ...)
};

// Why a detected run did not count as a successful recovery
// (Section VII-A failure-reason breakdown + run-level classification).
enum class FailureReason {
  kNone = 0,                // recovered successfully / not applicable
  kRecoveryPathCorrupted,   // reason 1: recovery routine could not run
  kNoMechanism,             // no recovery mechanism configured
  kAttemptLimitReached,     // repeated recoveries exhausted the budget
  kNestedError,             // fault hit during error handling itself
  kUnhandledError,          // no error handler installed
  kSystemDead,              // platform dead for any other reason
  kPrivVmFailed,            // the PrivVM (Dom0) failed
  kVm3Failed,               // post-recovery VM creation / BlkBench failed
  kVm3NotAttempted,         // system never got to the VM3 check
  kTooManyVmsAffected,      // more AppVMs affected than the criterion allows
};

inline const char* FailureReasonName(FailureReason r) {
  switch (r) {
    case FailureReason::kNone: return "none";
    case FailureReason::kRecoveryPathCorrupted: return "recovery_path_corrupted";
    case FailureReason::kNoMechanism: return "no_mechanism";
    case FailureReason::kAttemptLimitReached: return "attempt_limit_reached";
    case FailureReason::kNestedError: return "nested_error";
    case FailureReason::kUnhandledError: return "unhandled_error";
    case FailureReason::kSystemDead: return "system_dead";
    case FailureReason::kPrivVmFailed: return "privvm_failed";
    case FailureReason::kVm3Failed: return "vm3_failed";
    case FailureReason::kVm3NotAttempted: return "vm3_not_attempted";
    case FailureReason::kTooManyVmsAffected: return "too_many_vms_affected";
  }
  return "?";
}

// Inverse of FailureReasonName (kNone for unrecognized input); used when
// campaign artifacts are read back / round-tripped in tests.
inline FailureReason FailureReasonFromName(const std::string& name) {
  for (int i = 0; i <= static_cast<int>(FailureReason::kTooManyVmsAffected);
       ++i) {
    const FailureReason r = static_cast<FailureReason>(i);
    if (name == FailureReasonName(r)) return r;
  }
  return FailureReason::kNone;
}

}  // namespace nlh::hv
