#include "hv/sched_ops.h"

#include "forensics/record.h"
#include "hv/panic.h"

namespace nlh::hv {

namespace {

Vcpu& At(std::vector<Vcpu>& vcpus, VcpuId v) {
  if (v < 0 || v >= static_cast<VcpuId>(vcpus.size())) {
    throw HvPanic("runqueue link points outside the vCPU array");
  }
  return vcpus[static_cast<std::size_t>(v)];
}

constexpr int kMaxWalk = 1024;  // longer walk => corrupt cycle => livelock

}  // namespace

void RunqueueInsert(PerCpuData& pcpu, std::vector<Vcpu>& vcpus, VcpuId v) {
  Vcpu& vc = At(vcpus, v);
  HvAssert(!vc.rq_queued, "inserting an already-queued vCPU");
  vc.rq_prev = pcpu.rq_tail;
  vc.rq_next = kInvalidVcpu;
  if (pcpu.rq_tail != kInvalidVcpu) {
    At(vcpus, pcpu.rq_tail).rq_next = v;
  } else {
    pcpu.rq_head = v;
  }
  pcpu.rq_tail = v;
  vc.rq_queued = true;
  ++pcpu.rq_len;
}

void RunqueueRemove(PerCpuData& pcpu, std::vector<Vcpu>& vcpus, VcpuId v) {
  Vcpu& vc = At(vcpus, v);
  HvAssert(vc.rq_queued, "removing a vCPU that is not queued");
  if (vc.rq_prev != kInvalidVcpu) {
    At(vcpus, vc.rq_prev).rq_next = vc.rq_next;
  } else {
    HvAssert(pcpu.rq_head == v, "runqueue head does not match link");
    pcpu.rq_head = vc.rq_next;
  }
  if (vc.rq_next != kInvalidVcpu) {
    At(vcpus, vc.rq_next).rq_prev = vc.rq_prev;
  } else {
    HvAssert(pcpu.rq_tail == v, "runqueue tail does not match link");
    pcpu.rq_tail = vc.rq_prev;
  }
  vc.rq_prev = vc.rq_next = kInvalidVcpu;
  vc.rq_queued = false;
  --pcpu.rq_len;
  HvAssert(pcpu.rq_len >= 0, "runqueue length underflow");
}

VcpuId RunqueuePop(PerCpuData& pcpu, std::vector<Vcpu>& vcpus) {
  if (pcpu.rq_head == kInvalidVcpu) {
    HvAssert(pcpu.rq_len == 0, "runqueue empty but length nonzero");
    return kInvalidVcpu;
  }
  const VcpuId head = pcpu.rq_head;
  Vcpu& vc = At(vcpus, head);
  HvAssert(vc.rq_queued, "runqueue head is not marked queued");
  RunqueueRemove(pcpu, vcpus, head);
  return head;
}

bool RunqueueValid(const PerCpuData& pcpu, const std::vector<Vcpu>& vcpus) {
  int walked = 0;
  VcpuId prev = kInvalidVcpu;
  VcpuId cur = pcpu.rq_head;
  while (cur != kInvalidVcpu) {
    if (cur < 0 || cur >= static_cast<VcpuId>(vcpus.size())) return false;
    const Vcpu& vc = vcpus[static_cast<std::size_t>(cur)];
    if (!vc.rq_queued) return false;
    if (vc.rq_prev != prev) return false;
    prev = cur;
    cur = vc.rq_next;
    if (++walked > kMaxWalk) return false;
  }
  if (pcpu.rq_tail != prev) return false;
  return walked == pcpu.rq_len;
}

bool SchedMetadataConsistent(const PerCpuList& pcpus,
                             const std::vector<Vcpu>& vcpus) {
  for (std::size_t c = 0; c < pcpus.size(); ++c) {
    const VcpuId curr = pcpus[c].curr;
    if (curr == kInvalidVcpu) continue;
    if (curr < 0 || curr >= static_cast<VcpuId>(vcpus.size())) return false;
    const Vcpu& vc = vcpus[static_cast<std::size_t>(curr)];
    if (vc.running_on != static_cast<hw::CpuId>(c)) return false;
    if (!vc.is_current) return false;
    if (vc.state != VcpuState::kRunning) return false;
    if (vc.rq_queued) return false;  // running vCPUs are not on a runqueue
  }
  for (const Vcpu& vc : vcpus) {
    const bool claimed =
        vc.running_on >= 0 &&
        vc.running_on < static_cast<hw::CpuId>(pcpus.size()) &&
        pcpus[static_cast<std::size_t>(vc.running_on)].curr == vc.id;
    if (vc.is_current && !claimed) return false;
    if (vc.state == VcpuState::kRunning && !claimed) return false;
  }
  return true;
}

int RepairSchedMetadata(PerCpuList& pcpus,
                        std::vector<Vcpu>& vcpus) {
  int repaired = 0;

  // Pass 1: the per-CPU `curr` is the most reliable source (Section V-A).
  // Sanitize obviously-wild values first.
  for (std::size_t c = 0; c < pcpus.size(); ++c) {
    VcpuId& curr = pcpus[c].curr;
    if (curr != kInvalidVcpu &&
        (curr < 0 || curr >= static_cast<VcpuId>(vcpus.size()))) {
      curr = kInvalidVcpu;
      ++repaired;
    }
  }
  // Resolve duplicate claims: if two CPUs claim the same vCPU, keep the one
  // matching the vCPU's pin, else the lower CPU.
  for (std::size_t a = 0; a < pcpus.size(); ++a) {
    for (std::size_t b = a + 1; b < pcpus.size(); ++b) {
      if (pcpus[a].curr != kInvalidVcpu && pcpus[a].curr == pcpus[b].curr) {
        const Vcpu& vc = vcpus[static_cast<std::size_t>(pcpus[a].curr)];
        if (vc.pinned_cpu == static_cast<hw::CpuId>(b)) {
          pcpus[a].curr = kInvalidVcpu;
        } else {
          pcpus[b].curr = kInvalidVcpu;
        }
        ++repaired;
      }
    }
  }

  // Pass 2: rewrite every per-vCPU copy from the per-CPU truth, and reset
  // runqueue linkage to a known state (rebuilt below).
  for (Vcpu& vc : vcpus) {
    // Queue linkage is rebuilt from scratch below (re-queueing a previously
    // queued vCPU is not a repair).
    vc.rq_prev = vc.rq_next = kInvalidVcpu;
    vc.rq_queued = false;

    bool claimed = false;
    hw::CpuId claimed_by = -1;
    for (std::size_t c = 0; c < pcpus.size(); ++c) {
      if (pcpus[c].curr == vc.id) {
        claimed = true;
        claimed_by = static_cast<hw::CpuId>(c);
        break;
      }
    }
    if (claimed) {
      if (vc.running_on != claimed_by || !vc.is_current ||
          vc.state != VcpuState::kRunning) {
        ++repaired;
      }
      vc.running_on = claimed_by;
      vc.is_current = true;
      vc.state = VcpuState::kRunning;
      pcpus[static_cast<std::size_t>(claimed_by)].curr_ran = true;
    } else {
      if (vc.is_current || vc.state == VcpuState::kRunning) {
        // Was marked running but no CPU claims it: make it runnable so the
        // scheduler picks it up again.
        vc.state = VcpuState::kRunnable;
        ++repaired;
      }
      vc.is_current = false;
      vc.running_on = -1;
    }
  }

  // Pass 3: rebuild every runqueue from scratch; initialize the per-CPU
  // scheduler locks to a fixed valid (unlocked) state.
  for (std::size_t c = 0; c < pcpus.size(); ++c) {
    pcpus[c].rq_head = pcpus[c].rq_tail = kInvalidVcpu;
    pcpus[c].rq_len = 0;
    if (pcpus[c].sched_lock.held()) {
      pcpus[c].sched_lock.ForceRelease();
      ++repaired;
    }
  }
  for (Vcpu& vc : vcpus) {
    if (vc.state == VcpuState::kRunnable && vc.pinned_cpu >= 0 &&
        vc.pinned_cpu < static_cast<hw::CpuId>(pcpus.size())) {
      RunqueueInsert(pcpus[static_cast<std::size_t>(vc.pinned_cpu)], vcpus,
                     vc.id);
    }
  }
  NLH_RECORD(forensics::EventKind::kSchedRepair, -1,
             static_cast<std::uint64_t>(repaired));
  return repaired;
}

}  // namespace nlh::hv
