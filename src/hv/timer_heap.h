// Per-CPU software timer heap and recurring system timer events.
//
// Xen multiplexes all software timers onto the one-shot APIC timer: the
// timer interrupt handler pops expired entries, runs their callbacks,
// re-inserts recurring ones, and finally reprograms the APIC for the new
// top-of-heap deadline. Two recovery hazards live here:
//   - the APIC stays unarmed from fire until reprogram; a fault in that
//     window silences the CPU's timer forever unless recovery reprograms it
//     ("Reprogram hardware timer", Section V-A);
//   - a recurring event abandoned between pop and re-insert is lost
//     ("Reactivate recurring timer events", Section V-A).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hv/panic.h"
#include "hv/types.h"
#include "hw/cpu.h"
#include "sim/time.h"

namespace nlh::hv {

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimer = 0;

struct SoftTimer {
  TimerId id = kInvalidTimer;
  std::string name;
  sim::Time deadline = 0;
  sim::Duration period = 0;  // 0 = one-shot
  std::function<void()> callback;
  bool is_system_recurring = false;  // member of the known recurring set
};

// A binary min-heap of software timers for one CPU. The heap array is a
// real data structure: fault injection can corrupt an entry's deadline, and
// the pop path asserts sanity exactly where Xen would fault.
class TimerHeap {
 public:
  explicit TimerHeap(hw::CpuId cpu) : cpu_(cpu) {}

  hw::CpuId cpu() const { return cpu_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  TimerId Insert(SoftTimer timer);
  bool Remove(TimerId id);
  bool RemoveByName(const std::string& name);
  bool Contains(TimerId id) const;
  bool ContainsName(const std::string& name) const;

  // Earliest deadline, or max Time if empty.
  sim::Time NextDeadline() const;

  // Pops the earliest timer if its deadline is <= now. The returned timer
  // has been removed; the caller runs its callback and re-inserts recurring
  // timers — the abandonment window. Asserts on corrupted deadlines.
  bool PopExpired(sim::Time now, SoftTimer* out);

  // Fault injection: corrupts the deadline of a random live entry.
  // push_out=true pushes it to the far future (event silently lost);
  // otherwise it becomes negative garbage (pop asserts -> panic).
  void CorruptEntry(std::size_t index, bool push_out);

  // ReHype reboot: discard everything (heap is rebuilt fresh).
  void Clear() { entries_.clear(); }

  const std::vector<SoftTimer>& entries() const { return entries_; }

 private:
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);

  hw::CpuId cpu_;
  std::vector<SoftTimer> entries_;  // binary-heap order by deadline
  TimerId next_id_ = 1;
};

}  // namespace nlh::hv
