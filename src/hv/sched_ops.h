// Runqueue primitives and scheduling-metadata consistency checking/repair.
//
// Kept as free functions over the raw structures so they are directly
// unit-testable and so the recovery code can reuse them. The runqueue is an
// intrusive doubly-linked list (Vcpu::rq_prev/rq_next through PerCpuData::
// rq_head/rq_tail) — a real structure whose broken linkage trips real
// assertions, mirroring how Xen fails when scheduling metadata is left
// inconsistent by recovery (Section V-A).
#pragma once

#include <vector>

#include "hv/percpu.h"
#include "hv/vcpu.h"

namespace nlh::hv {

// Appends `v` to cpu's runqueue. Asserts it is not already queued.
void RunqueueInsert(PerCpuData& pcpu, std::vector<Vcpu>& vcpus, VcpuId v);

// Removes `v` from cpu's runqueue. Asserts linkage consistency.
void RunqueueRemove(PerCpuData& pcpu, std::vector<Vcpu>& vcpus, VcpuId v);

// Pops the head of the runqueue, or returns kInvalidVcpu when empty.
// Walks real links; corrupt linkage throws (panic/hang).
VcpuId RunqueuePop(PerCpuData& pcpu, std::vector<Vcpu>& vcpus);

// Returns true if cpu's runqueue links are structurally valid.
bool RunqueueValid(const PerCpuData& pcpu, const std::vector<Vcpu>& vcpus);

// Returns true if the *cross-copy* scheduling metadata is consistent:
// percpu.curr, Vcpu::running_on, Vcpu::is_current and Vcpu::state agree for
// every vCPU assigned to this CPU.
bool SchedMetadataConsistent(const PerCpuList& pcpus,
                             const std::vector<Vcpu>& vcpus);

// The NiLiHype "Ensure consistency within scheduling metadata" enhancement
// (Section V-A): treat the per-CPU structures as the reliable source, make
// all per-vCPU copies agree with them, and rebuild every runqueue from
// scratch. Safe to run on arbitrarily mangled metadata. Returns the number
// of fields repaired.
int RepairSchedMetadata(PerCpuList& pcpus,
                        std::vector<Vcpu>& vcpus);

}  // namespace nlh::hv
