// Hypercall handlers.
//
// Handlers are sequences of OpContext::Step calls interleaved with real
// mutations of hypervisor structures. Fault injection fires between steps,
// so abandonment leaves genuine partial state. Mutations of critical
// variables are guarded by write-ahead undo records (ctx.LogUndo) in the
// handlers the paper's Section IV enhancement covered; grant_copy, the
// domctl family and physdev_op deliberately lack coverage ("there are
// likely to be several infrequently-used non-idempotent hypercall handlers
// that we have not properly enhanced").
#include "forensics/record.h"
#include "hv/hypervisor.h"
#include "hv/panic.h"

namespace nlh::hv {

std::uint64_t Hypervisor::Dispatch(OpContext& ctx, Vcpu& vc,
                                   HypercallCode code,
                                   const HypercallArgs& args) {
  if (TraitsOf(code).priv_only) {
    Domain* d = FindDomain(vc.domain);
    HvAssert(d != nullptr && d->is_privileged,
             "privileged hypercall from unprivileged domain");
  }
  switch (code) {
    case HypercallCode::kMmuUpdate:
      return DoMmuUpdate(ctx, vc, args);
    case HypercallCode::kPageTablePin:
      return DoPin(ctx, vc, args.arg0);
    case HypercallCode::kPageTableUnpin:
      return DoUnpin(ctx, vc, args.arg0);
    case HypercallCode::kUpdateVaMapping:
      return DoUpdateVaMapping(ctx, vc, args.arg0, args.arg1 != 0);
    case HypercallCode::kMemoryOpIncrease:
      return DoMemoryOp(ctx, vc, true, args.arg0);
    case HypercallCode::kMemoryOpDecrease:
      return DoMemoryOp(ctx, vc, false, args.arg0);
    case HypercallCode::kGrantMap:
      return DoGrantMap(ctx, vc, static_cast<DomainId>(args.arg0),
                        static_cast<GrantRef>(args.arg1));
    case HypercallCode::kGrantUnmap:
      return DoGrantUnmap(ctx, vc, static_cast<DomainId>(args.arg0),
                          static_cast<GrantRef>(args.arg1));
    case HypercallCode::kGrantCopy:
      return DoGrantCopy(ctx, vc, static_cast<DomainId>(args.arg0),
                         static_cast<GrantRef>(args.arg1));
    case HypercallCode::kEventChannelSend:
      return DoEventSend(ctx, vc, static_cast<EventPort>(args.arg0));
    case HypercallCode::kEventChannelAllocUnbound:
      return DoEventAllocUnbound(ctx, vc, static_cast<DomainId>(args.arg0));
    case HypercallCode::kEventChannelBindInterdomain:
      return DoEventBind(ctx, vc, static_cast<DomainId>(args.arg0),
                         static_cast<EventPort>(args.arg1));
    case HypercallCode::kEventChannelClose:
      return DoEventClose(ctx, vc, static_cast<EventPort>(args.arg0));
    case HypercallCode::kSchedOpYield:
    case HypercallCode::kSchedOpBlock:
    case HypercallCode::kSchedOpShutdown:
      return DoSchedOp(ctx, vc, code);
    case HypercallCode::kSetTimerOp:
      return DoSetTimer(ctx, vc, static_cast<sim::Time>(args.arg0));
    case HypercallCode::kConsoleIo:
      return DoConsoleIo(ctx, vc);
    case HypercallCode::kDomctlCreate:
      return DoDomctlCreate(ctx, vc, args);
    case HypercallCode::kDomctlDestroy:
      return DoDomctlDestroy(ctx, vc, static_cast<DomainId>(args.arg0));
    case HypercallCode::kDomctlUnpause:
      return DoDomctlUnpause(ctx, vc, static_cast<DomainId>(args.arg0));
    case HypercallCode::kVcpuOpUp:
      ctx.Step(cost::kDomctlSmall, "vcpu-up");
      return 0;
    case HypercallCode::kXenVersion:
      ctx.Step(50, "xen-version");
      return 40002;  // "4.2"-ish
    case HypercallCode::kMulticall:
      return DoMulticall(ctx, vc, args);
    case HypercallCode::kPhysdevOp:
      return DoPhysdevOp(ctx, vc);
    case HypercallCode::kCount:
      break;
  }
  throw HvPanic("unknown hypercall");
}

std::uint64_t Hypervisor::DispatchOne(OpContext& ctx, Vcpu& vc,
                                      HypercallCode code, std::uint64_t arg0,
                                      std::uint64_t arg1, std::uint64_t arg2) {
  HypercallArgs a;
  a.arg0 = arg0;
  a.arg1 = arg1;
  a.arg2 = arg2;
  return Dispatch(ctx, vc, code, a);
}

// ---------------------------------------------------------------------------
// Memory management
// ---------------------------------------------------------------------------

namespace {
// Resolves a guest-relative frame index to a physical frame of the domain.
FrameNumber GuestFrame(const Domain& dom, std::uint64_t index) {
  HvAssert(dom.num_frames > 0, "domain has no memory");
  return dom.first_frame + (index % dom.num_frames);
}
}  // namespace

std::uint64_t Hypervisor::DoMmuUpdate(OpContext& ctx, Vcpu& vc,
                                      const HypercallArgs& a) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "mmu_update from unknown domain");
  HvBugOn(dom->struct_corrupted, "corrupted domain struct in mmu_update");
  statics_.Use(StaticVar::kM2PTableBase);
  statics_.Use(StaticVar::kFrameTableBase);

  SpinLock* dlock = heap_.LockOf(dom->struct_obj);
  HvAssert(dlock != nullptr, "domain lock missing");
  ctx.Lock(*dlock);

  const FrameNumber f = GuestFrame(*dom, a.arg0);
  const std::size_t slot = static_cast<std::size_t>(f - dom->first_frame);
  const bool map = (a.arg1 != 0);
  ctx.Step(cost::kMmuUpdatePerEntry, "pte-walk");

  PageFrameDescriptor& d = frames_.mutable_desc(f);
  const std::int32_t old = d.use_count;
  const bool old_present = dom->pte_present[slot];
  if (map) {
    // Installing over a present PTE is a validation error (the hazard a
    // double-applied retry trips).
    HvAssert(!old_present, "mmu_update: PTE already present");
    frames_.GetPage(f);
    dom->pte_present[slot] = true;
  } else {
    HvAssert(old_present, "mmu_update: clearing a non-present PTE");
    frames_.PutPage(f);
    dom->pte_present[slot] = false;
  }
  const DomainId domid = dom->id;
  ctx.LogUndo([this, f, old, old_present, domid, slot] {
    frames_.mutable_desc(f).use_count = old;
    Domain* d2 = FindDomain(domid);
    if (d2 != nullptr && slot < d2->pte_present.size()) {
      d2->pte_present[slot] = old_present;
    }
  });
  ctx.Step(90, "pte-commit");
  // TLB shootdown + flush sync after the PTE write: a wide window in which
  // the critical mutation is done but the hypercall has not completed.
  ctx.Step(260, "tlb-shootdown");
  ctx.Unlock(*dlock);
  return 0;
}

std::uint64_t Hypervisor::DoPin(OpContext& ctx, Vcpu& vc, std::uint64_t idx) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "pin from unknown domain");
  HvBugOn(dom->struct_corrupted, "corrupted domain struct in pt_pin");
  statics_.Use(StaticVar::kM2PTableBase);
  statics_.Use(StaticVar::kFrameTableBase);

  SpinLock* dlock = heap_.LockOf(dom->struct_obj);
  HvAssert(dlock != nullptr, "domain lock missing");
  ctx.Lock(*dlock);

  const FrameNumber f = GuestFrame(*dom, idx);
  // Long validation walk before any mutation — a large harmless-abandonment
  // window once retry is in place.
  ctx.Step(cost::kPinValidate, "pin-validate");

  PageFrameDescriptor& d = frames_.mutable_desc(f);
  {
    const std::int32_t old_count = d.use_count;
    const bool old_valid = d.validated;
    const FrameType old_type = d.type;
    frames_.GetPage(f);
    frames_.ValidatePageTable(f);
    ctx.LogUndo([this, f, old_count, old_valid, old_type] {
      PageFrameDescriptor& pd = frames_.mutable_desc(f);
      pd.use_count = old_count;
      pd.validated = old_valid;
      pd.type = old_type;
    });
  }
  ctx.Step(cost::kPinCommit, "pin-commit");
  // Flush stale translations of the now-pinned table (wide dirty window).
  ctx.Step(420, "pin-tlb-flush");
  ctx.Unlock(*dlock);
  return 0;
}

std::uint64_t Hypervisor::DoUnpin(OpContext& ctx, Vcpu& vc, std::uint64_t idx) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "unpin from unknown domain");
  HvBugOn(dom->struct_corrupted, "corrupted domain struct in pt_unpin");
  statics_.Use(StaticVar::kFrameTableBase);

  SpinLock* dlock = heap_.LockOf(dom->struct_obj);
  HvAssert(dlock != nullptr, "domain lock missing");
  ctx.Lock(*dlock);

  const FrameNumber f = GuestFrame(*dom, idx);
  ctx.Step(cost::kUnpin, "unpin-walk");
  PageFrameDescriptor& d = frames_.mutable_desc(f);
  {
    const std::int32_t old_count = d.use_count;
    const bool old_valid = d.validated;
    const FrameType old_type = d.type;
    frames_.InvalidatePageTable(f);
    frames_.PutPage(f);
    ctx.LogUndo([this, f, old_count, old_valid, old_type] {
      PageFrameDescriptor& pd = frames_.mutable_desc(f);
      pd.use_count = old_count;
      pd.validated = old_valid;
      pd.type = old_type;
    });
  }
  ctx.Step(60, "unpin-commit");
  ctx.Step(380, "unpin-tlb-flush");
  ctx.Unlock(*dlock);
  return 0;
}

std::uint64_t Hypervisor::DoUpdateVaMapping(OpContext& ctx, Vcpu& vc,
                                            std::uint64_t idx, bool map) {
  HypercallArgs a;
  a.arg0 = idx;
  a.arg1 = map ? 1 : 0;
  // Same core operation as a single-entry mmu_update, lighter path.
  ctx.Step(cost::kUpdateVaMapping - cost::kMmuUpdatePerEntry > 0
               ? cost::kUpdateVaMapping - cost::kMmuUpdatePerEntry
               : 60,
           "va-fastpath");
  return DoMmuUpdate(ctx, vc, a);
}

std::uint64_t Hypervisor::DoMemoryOp(OpContext& ctx, Vcpu& vc, bool increase,
                                     std::uint64_t nframes) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "memory_op from unknown domain");
  statics_.Use(StaticVar::kFrameTableBase);
  ctx.Lock(heap_lock_);
  if (nframes == 0) nframes = 1;
  if (nframes > 8) nframes = 8;
  for (std::uint64_t i = 0; i < nframes; ++i) {
    ctx.Step(cost::kMemoryOpPerFrame, "memory-op-frame");
    if (increase) {
      const FrameNumber f = frames_.Alloc(1, FrameType::kDomainPage, dom->id);
      dom->extra_frames.push_back(f);
      const DomainId id = dom->id;
      ctx.LogUndo([this, id, f] {
        Domain* d2 = FindDomain(id);
        if (d2 != nullptr && !d2->extra_frames.empty() &&
            d2->extra_frames.back() == f) {
          d2->extra_frames.pop_back();
        }
        if (frames_.desc(f).type != FrameType::kFree) frames_.FreeOne(f);
      });
    } else {
      if (dom->extra_frames.empty()) break;
      const FrameNumber f = dom->extra_frames.back();
      dom->extra_frames.pop_back();
      const DomainId id = dom->id;
      frames_.FreeOne(f);
      ctx.LogUndo([this, id, f] {
        if (frames_.desc(f).type == FrameType::kFree) {
          // Undo of a free: re-allocate the same frame to the domain. The
          // free-list order makes this approximate; the frame scan cleans
          // up any residue.
          Domain* d2 = FindDomain(id);
          const FrameNumber nf =
              frames_.Alloc(1, FrameType::kDomainPage, id);
          if (d2 != nullptr) d2->extra_frames.push_back(nf);
        }
      });
    }
  }
  ctx.Unlock(heap_lock_);
  return nframes;
}

// ---------------------------------------------------------------------------
// Grants
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::DoGrantMap(OpContext& ctx, Vcpu& vc, DomainId granter,
                                     GrantRef ref) {
  (void)vc;
  Domain* g = FindDomain(granter);
  HvAssert(g != nullptr, "grant_map: unknown granter");
  HvBugOn(g->struct_corrupted, "corrupted domain struct in grant_map");
  statics_.Use(StaticVar::kFrameTableBase);
  SpinLock* glock = heap_.LockOf(g->grant_obj);
  HvAssert(glock != nullptr, "grant table lock missing");
  ctx.Lock(*glock);
  GrantEntry& e = g->grants.At(ref);
  HvAssert(e.in_use, "grant_map: mapping an unused grant");
  ctx.Step(cost::kGrantMap, "grant-map");
  {
    const int old_map = e.map_count;
    const std::int32_t old_count = frames_.desc(e.frame).use_count;
    ++e.map_count;
    frames_.GetPage(e.frame);
    GrantEntry* ep = &e;
    ctx.LogUndo([this, ep, old_map, old_count] {
      ep->map_count = old_map;
      frames_.mutable_desc(ep->frame).use_count = old_count;
    });
  }
  ctx.Step(90, "grant-map-commit");
  ctx.Step(240, "grant-map-sync");
  ctx.Unlock(*glock);
  return 0;
}

std::uint64_t Hypervisor::DoGrantUnmap(OpContext& ctx, Vcpu& vc,
                                       DomainId granter, GrantRef ref) {
  (void)vc;
  Domain* g = FindDomain(granter);
  HvAssert(g != nullptr, "grant_unmap: unknown granter");
  statics_.Use(StaticVar::kFrameTableBase);
  SpinLock* glock = heap_.LockOf(g->grant_obj);
  HvAssert(glock != nullptr, "grant table lock missing");
  ctx.Lock(*glock);
  GrantEntry& e = g->grants.At(ref);
  HvAssert(e.map_count > 0, "grant_unmap: entry not mapped");
  ctx.Step(cost::kGrantUnmap, "grant-unmap");
  {
    const int old_map = e.map_count;
    const std::int32_t old_count = frames_.desc(e.frame).use_count;
    --e.map_count;
    frames_.PutPage(e.frame);
    GrantEntry* ep = &e;
    ctx.LogUndo([this, ep, old_map, old_count] {
      ep->map_count = old_map;
      frames_.mutable_desc(ep->frame).use_count = old_count;
    });
  }
  ctx.Step(70, "grant-unmap-commit");
  ctx.Step(220, "grant-unmap-tlb");
  ctx.Unlock(*glock);
  return 0;
}

std::uint64_t Hypervisor::DoGrantCopy(OpContext& ctx, Vcpu& vc,
                                      DomainId granter, GrantRef ref) {
  (void)vc;
  // NOT retry-enhanced (Section IV): no undo records. A retried grant_copy
  // re-executes its mutations; the frontend detects the duplicated transfer
  // through xfer_count and surfaces an I/O error.
  Domain* g = FindDomain(granter);
  HvAssert(g != nullptr, "grant_copy: unknown granter");
  statics_.Use(StaticVar::kFrameTableBase);
  SpinLock* glock = heap_.LockOf(g->grant_obj);
  HvAssert(glock != nullptr, "grant table lock missing");
  ctx.Lock(*glock);
  GrantEntry& e = g->grants.At(ref);
  HvAssert(e.in_use, "grant_copy: unused grant");
  ++e.map_count;  // transfer in progress (pins the frame)
  frames_.GetPage(e.frame);
  ctx.Step(cost::kGrantCopy / 2, "grant-copy-first-half");
  ++e.xfer_count;  // the non-idempotent critical mutation, uncovered
  ctx.Step(cost::kGrantCopy - cost::kGrantCopy / 2, "grant-copy-second-half");
  frames_.PutPage(e.frame);
  --e.map_count;
  ctx.Step(40, "grant-copy-done");
  ctx.Unlock(*glock);
  return 0;
}

// ---------------------------------------------------------------------------
// Event channels
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::DoEventSend(OpContext& ctx, Vcpu& vc,
                                      EventPort port) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "evtchn_send from unknown domain");
  statics_.Use(StaticVar::kEvtchnBucketPtr);
  SpinLock* elock = heap_.LockOf(dom->evtchn_obj);
  HvAssert(elock != nullptr, "evtchn lock missing");
  ctx.Lock(*elock);
  ctx.Step(cost::kEventSend, "evtchn-send");
  const EventChannel& ch = dom->evtchn.At(port);
  HvAssert(ch.state == ChannelState::kInterdomain,
           "evtchn_send on an unbound port");
  SendEventToPort(ch.remote_domain, ch.remote_port, &ctx);
  ctx.Unlock(*elock);
  return 0;
}

std::uint64_t Hypervisor::DoEventAllocUnbound(OpContext& ctx, Vcpu& vc,
                                              DomainId remote) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "evtchn_alloc from unknown domain");
  statics_.Use(StaticVar::kEvtchnBucketPtr);
  SpinLock* elock = heap_.LockOf(dom->evtchn_obj);
  HvAssert(elock != nullptr, "evtchn lock missing");
  ctx.Lock(*elock);
  ctx.Step(cost::kEventSetup, "evtchn-alloc");
  const EventPort p = dom->evtchn.AllocUnbound(remote, dom->vcpus.front());
  ctx.Unlock(*elock);
  return static_cast<std::uint64_t>(p);
}

std::uint64_t Hypervisor::DoEventBind(OpContext& ctx, Vcpu& vc,
                                      DomainId remote, EventPort remote_port) {
  Domain* dom = FindDomain(vc.domain);
  Domain* rdom = FindDomain(remote);
  HvAssert(dom != nullptr && rdom != nullptr, "evtchn_bind: unknown domain");
  statics_.Use(StaticVar::kEvtchnBucketPtr);
  ctx.Lock(evtchn_lock_);
  ctx.Step(cost::kEventSetup, "evtchn-bind");
  // Allocate a local port bound to the remote's unbound port, then flip the
  // remote end to interdomain as well.
  const EventPort local = dom->evtchn.AllocUnbound(remote, dom->vcpus.front());
  dom->evtchn.BindInterdomain(local, remote, remote_port);
  rdom->evtchn.BindInterdomain(remote_port, dom->id, local);
  ctx.Step(80, "evtchn-bind-commit");
  ctx.Unlock(evtchn_lock_);
  return static_cast<std::uint64_t>(local);
}

std::uint64_t Hypervisor::DoEventClose(OpContext& ctx, Vcpu& vc,
                                       EventPort port) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "evtchn_close from unknown domain");
  ctx.Lock(evtchn_lock_);
  ctx.Step(cost::kEventSetup / 2, "evtchn-close");
  dom->evtchn.Close(port);
  ctx.Unlock(evtchn_lock_);
  return 0;
}

// ---------------------------------------------------------------------------
// Scheduling / timers / console
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::DoSchedOp(OpContext& ctx, Vcpu& vc,
                                    HypercallCode code) {
  ctx.Step(cost::kSchedOp, "sched-op");
  switch (code) {
    case HypercallCode::kSchedOpYield:
      need_resched_[static_cast<std::size_t>(vc.pinned_cpu)] = true;
      return 0;
    case HypercallCode::kSchedOpBlock:
      if (vc.has_pending_events()) return 1;  // events pending: do not block
      ctx.Step(60, "block-commit");
      vc.state = VcpuState::kBlocked;
      return 0;
    case HypercallCode::kSchedOpShutdown: {
      Domain* dom = FindDomain(vc.domain);
      if (dom != nullptr) dom->lifecycle = DomainLifecycle::kShutdown;
      vc.state = VcpuState::kBlocked;
      return 0;
    }
    default:
      throw HvPanic("bad sched_op");
  }
}

std::uint64_t Hypervisor::DoSetTimer(OpContext& ctx, Vcpu& vc,
                                     sim::Time deadline) {
  statics_.Use(StaticVar::kTimerSubsysState);
  ctx.Step(cost::kSetTimerOp, "set-timer");
  TimerHeap& th = timers(vc.pinned_cpu);
  const std::string name = "vtimer:" + std::to_string(vc.id);
  th.RemoveByName(name);
  vc.vtimer_deadline = deadline > 0 ? deadline : 0;
  if (deadline > 0) {
    SoftTimer t;
    t.name = name;
    t.deadline = deadline;
    t.period = 0;
    const VcpuId v = vc.id;
    t.callback = [this, v] { DeliverVirqTimer(v); };
    th.Insert(t);
    ProgramApicFromHeap(vc.pinned_cpu);
    ctx.Step(cost::kApicReprogram, "set-timer-reprogram");
  }
  return 0;
}

std::uint64_t Hypervisor::DoConsoleIo(OpContext& ctx, Vcpu& vc) {
  (void)vc;
  statics_.Use(StaticVar::kConsoleState);  // benign if corrupted
  ctx.Lock(console_lock_);
  ctx.Step(cost::kConsoleIo, "console-io");
  ctx.Unlock(console_lock_);
  return 0;
}

// ---------------------------------------------------------------------------
// Toolstack (PrivVM only)
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::DoDomctlCreate(OpContext& ctx, Vcpu& vc,
                                         const HypercallArgs& a) {
  (void)vc;
  // NOT retry-enhanced: the multi-step creation has no undo coverage.
  statics_.Use(StaticVar::kDomainListHead);
  ctx.Lock(domlist_lock_);
  ctx.Step(cost::kDomctlCreate / 4, "create-alloc");
  const hw::CpuId pin = static_cast<hw::CpuId>(a.arg0);
  const std::uint64_t nframes = (a.arg1 > 0) ? a.arg1 : 64;
  ctx.Step(cost::kDomctlCreate / 4, "create-memory");
  const DomainId id =
      CreateDomainDirect("dom" + std::to_string(next_domid_), false, pin,
                         nframes);
  ctx.Step(cost::kDomctlCreate / 4, "create-vcpus");
  ctx.Step(cost::kDomctlCreate / 4, "create-link");
  ctx.Unlock(domlist_lock_);
  NLH_RECORD(forensics::EventKind::kDomainCreate, -1,
             static_cast<std::uint64_t>(id), nframes);
  return static_cast<std::uint64_t>(id);
}

std::uint64_t Hypervisor::DoDomctlDestroy(OpContext& ctx, Vcpu& vc,
                                          DomainId target) {
  (void)vc;
  statics_.Use(StaticVar::kDomainListHead);
  ctx.Lock(domlist_lock_);
  ctx.Step(cost::kDomctlDestroy / 2, "destroy-teardown");
  DestroyDomainInternal(ctx, target);
  ctx.Step(cost::kDomctlDestroy / 2, "destroy-free");
  ctx.Unlock(domlist_lock_);
  NLH_RECORD(forensics::EventKind::kDomainDestroy, -1,
             static_cast<std::uint64_t>(target));
  return 0;
}

std::uint64_t Hypervisor::DoDomctlUnpause(OpContext& ctx, Vcpu& vc,
                                          DomainId target) {
  (void)vc;
  statics_.Use(StaticVar::kDomainListHead);
  ctx.Step(cost::kDomctlSmall, "unpause");
  StartDomain(target);
  return 0;
}

void Hypervisor::DestroyDomainInternal(OpContext& ctx, DomainId id) {
  Domain* dom = FindDomain(id);
  HvAssert(dom != nullptr, "destroying unknown domain");
  HvAssert(!dom->is_privileged, "destroying the PrivVM");
  dom->lifecycle = DomainLifecycle::kDead;
  for (VcpuId v : dom->vcpus) {
    Vcpu& vcp = vcpu(v);
    if (vcp.rq_queued) {
      RunqueueRemove(percpu_[static_cast<std::size_t>(vcp.pinned_cpu)], vcpus_,
                     v);
    }
    if (vcp.is_current && vcp.running_on >= 0) {
      percpu_[static_cast<std::size_t>(vcp.running_on)].curr = kInvalidVcpu;
    }
    vcp.state = VcpuState::kOffline;
    vcp.is_current = false;
    vcp.running_on = -1;
  }
  if (dom->guest != nullptr) dom->guest->OnShutdown(dom->vcpus.front());
  ctx.Step(200, "destroy-pages");
  // Frames and the heap object are deliberately left to a lazy sweeper in
  // real Xen; we release them immediately.
  for (FrameNumber f : dom->extra_frames) frames_.FreeOne(f);
  dom->extra_frames.clear();
}

// ---------------------------------------------------------------------------
// HVM VM exits
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::DispatchVmExit(OpContext& ctx, Vcpu& vc,
                                         VmExitReason reason,
                                         std::uint64_t arg) {
  Domain* dom = FindDomain(vc.domain);
  HvAssert(dom != nullptr, "VM exit from unknown domain");
  HvBugOn(dom->struct_corrupted, "corrupted domain struct in VM exit");
  switch (reason) {
    case VmExitReason::kEptViolation: {
      // Build the EPT mapping for the faulting guest-physical page: walk,
      // allocate the entry, take a reference on the frame. The reference is
      // the non-idempotent step guarded by the undo log.
      statics_.Use(StaticVar::kM2PTableBase);
      statics_.Use(StaticVar::kFrameTableBase);
      SpinLock* dlock = heap_.LockOf(dom->struct_obj);
      HvAssert(dlock != nullptr, "domain lock missing");
      ctx.Lock(*dlock);
      const FrameNumber f = dom->first_frame + (arg % dom->num_frames);
      const std::size_t slot = static_cast<std::size_t>(f - dom->first_frame);
      ctx.Step(700, "ept-walk");
      if (dom->pte_present[slot]) {
        // The mapping already exists (e.g. a re-delivered exit after a
        // recovery retried a completed handler): nothing to do — the guest
        // simply would not have faulted.
        ctx.Unlock(*dlock);
        return 0;
      }
      PageFrameDescriptor& d = frames_.mutable_desc(f);
      const std::int32_t old = d.use_count;
      frames_.GetPage(f);
      dom->pte_present[slot] = true;
      const DomainId domid = dom->id;
      ctx.LogUndo([this, f, old, domid, slot] {
        frames_.mutable_desc(f).use_count = old;
        Domain* d2 = FindDomain(domid);
        if (d2 != nullptr) d2->pte_present[slot] = false;
      });
      ctx.Step(120, "ept-install");
      ctx.Unlock(*dlock);
      return 0;
    }
    case VmExitReason::kEptReclaim: {
      statics_.Use(StaticVar::kFrameTableBase);
      SpinLock* dlock = heap_.LockOf(dom->struct_obj);
      HvAssert(dlock != nullptr, "domain lock missing");
      ctx.Lock(*dlock);
      const FrameNumber f = dom->first_frame + (arg % dom->num_frames);
      const std::size_t slot = static_cast<std::size_t>(f - dom->first_frame);
      ctx.Step(400, "ept-reclaim-walk");
      if (!dom->pte_present[slot]) {
        ctx.Unlock(*dlock);  // already reclaimed: no-op, as in hardware
        return 0;
      }
      PageFrameDescriptor& d = frames_.mutable_desc(f);
      const std::int32_t old = d.use_count;
      frames_.PutPage(f);
      dom->pte_present[slot] = false;
      const DomainId domid = dom->id;
      ctx.LogUndo([this, f, old, domid, slot] {
        frames_.mutable_desc(f).use_count = old;
        Domain* d2 = FindDomain(domid);
        if (d2 != nullptr) d2->pte_present[slot] = true;
      });
      ctx.Step(80, "ept-uninstall");
      ctx.Unlock(*dlock);
      return 0;
    }
    case VmExitReason::kCpuid:
      ctx.Step(90, "cpuid-emulate");
      return 0;
  }
  throw HvPanic("unknown VM exit reason");
}

// ---------------------------------------------------------------------------
// Multicall & physdev
// ---------------------------------------------------------------------------

std::uint64_t Hypervisor::DoMulticall(OpContext& ctx, Vcpu& vc,
                                      const HypercallArgs& a) {
  // Components before multicall_progress already completed in a previous
  // (abandoned) execution and are skipped — IF completion logging was on.
  const int start = vc.inflight.multicall_progress;
  const int n = static_cast<int>(a.batch.size());
  ctx.Step(100, "multicall-setup");
  for (int i = start; i < n; ++i) {
    const MulticallEntry& e = a.batch[static_cast<std::size_t>(i)];
    // Batch component boundary: the injector's trigger-event conditions can
    // target the window between two components, where abandonment semantics
    // depend on completion logging.
    if (op_observer_) {
      op_observer_(OpEventKind::kMulticallComponent, e.code, ctx.cpu().id());
    }
    DispatchOne(ctx, vc, e.code, e.arg0, e.arg1, 0);
    // Component complete: its effects are final. Drop its undo records and
    // log progress (Section IV fine-granularity batched retry).
    vc.inflight.undo.Clear();
    ctx.LogBatchComponentDone(i);
  }
  return 0;
}

std::uint64_t Hypervisor::DoPhysdevOp(OpContext& ctx, Vcpu& vc) {
  (void)vc;
  // IRQ rebalance: masks a route, fiddles with it, unmasks. NOT
  // retry-enhanced; abandonment between mask and unmask that is never
  // retried leaves the device silent.
  statics_.Use(StaticVar::kIoApicRoute);
  if (device_bindings_.empty()) {
    ctx.Step(200, "physdev-noop");
    return 0;
  }
  DeviceBinding& b = device_bindings_.begin()->second;
  b.masked = true;
  ctx.ShadowIoApicWrite();
  ctx.Step(300, "physdev-mask");
  ctx.Step(400, "physdev-rewrite");
  b.masked = false;
  ctx.ShadowIoApicWrite();
  ctx.Step(100, "physdev-unmask");
  return 0;
}

}  // namespace nlh::hv
