// Domains (VMs) as the hypervisor sees them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hv/event_channel.h"
#include "hv/grant_table.h"
#include "hv/heap.h"
#include "hv/types.h"

namespace nlh::hv {

class GuestInterface;

enum class DomainLifecycle : std::uint8_t {
  kCreating = 0,
  kRunning,
  kShutdown,
  kDead,
};

struct Domain {
  DomainId id = kInvalidDomain;
  std::string name;
  bool is_privileged = false;  // the PrivVM / Dom0
  DomainLifecycle lifecycle = DomainLifecycle::kCreating;

  std::vector<VcpuId> vcpus;

  // Guest memory: the frames backing this domain (a representative sample
  // of its allocation; see frame_table.h scale note).
  FrameNumber first_frame = kInvalidFrame;
  std::uint64_t num_frames = 0;
  // Frames acquired at runtime via memory_op increase_reservation.
  std::vector<FrameNumber> extra_frames;
  // Present bit of the guest PTE covering each frame of the base range
  // (index = frame - first_frame). mmu_update(map) requires absent,
  // mmu_update(unmap) requires present — re-executing a completed update
  // therefore fails exactly like Xen's PTE validation would.
  std::vector<bool> pte_present;

  EventChannelTable evtchn;
  GrantTable grants;

  // Heap objects backing struct domain, the grant table, and the event
  // channel buckets. Each embeds a lock; recovery's "release all locks
  // stored in the heap" step (Section V-A) iterates these.
  HeapObjectId struct_obj = kInvalidHeapObject;
  HeapObjectId grant_obj = kInvalidHeapObject;
  HeapObjectId evtchn_obj = kInvalidHeapObject;

  // Models a stray write into this domain's hypervisor-side structures.
  bool struct_corrupted = false;

  // Non-owning; set by the guest layer after construction.
  GuestInterface* guest = nullptr;

  bool alive() const {
    return lifecycle == DomainLifecycle::kRunning ||
           lifecycle == DomainLifecycle::kCreating;
  }
};

}  // namespace nlh::hv
