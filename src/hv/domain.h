// Domains (VMs) as the hypervisor sees them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hv/event_channel.h"
#include "hv/grant_table.h"
#include "hv/heap.h"
#include "hv/types.h"

namespace nlh::hv {

class GuestInterface;

enum class DomainLifecycle : std::uint8_t {
  kCreating = 0,
  kRunning,
  kShutdown,
  kDead,
};

struct Domain {
  DomainId id = kInvalidDomain;
  std::string name;
  bool is_privileged = false;  // the PrivVM / Dom0
  DomainLifecycle lifecycle = DomainLifecycle::kCreating;

  std::vector<VcpuId> vcpus;

  // Guest memory: the frames backing this domain (a representative sample
  // of its allocation; see frame_table.h scale note).
  FrameNumber first_frame = kInvalidFrame;
  std::uint64_t num_frames = 0;
  // Frames acquired at runtime via memory_op increase_reservation.
  std::vector<FrameNumber> extra_frames;
  // Present bit of the guest PTE covering each frame of the base range
  // (index = frame - first_frame). mmu_update(map) requires absent,
  // mmu_update(unmap) requires present — re-executing a completed update
  // therefore fails exactly like Xen's PTE validation would.
  std::vector<bool> pte_present;

  EventChannelTable evtchn;
  GrantTable grants;

  // Heap objects backing struct domain, the grant table, and the event
  // channel buckets. Each embeds a lock; recovery's "release all locks
  // stored in the heap" step (Section V-A) iterates these.
  HeapObjectId struct_obj = kInvalidHeapObject;
  HeapObjectId grant_obj = kInvalidHeapObject;
  HeapObjectId evtchn_obj = kInvalidHeapObject;

  // Models a stray write into this domain's hypervisor-side structures.
  bool struct_corrupted = false;

  // Non-owning; set by the guest layer after construction.
  GuestInterface* guest = nullptr;

  bool alive() const {
    return lifecycle == DomainLifecycle::kRunning ||
           lifecycle == DomainLifecycle::kCreating;
  }
};

// The hypervisor's domain list: a flat vector of unique_ptr<Domain> kept
// sorted by id (replacing std::map<DomainId, Domain>).
//
// Two invariants matter:
//  - Iteration is id-ascending, exactly like the map it replaced — the
//    audit walkers and campaign JSON depend on this order for byte-
//    identical goldens.
//  - Domain addresses are stable across insert/erase (the indirection via
//    unique_ptr): hypercall handlers hold Domain* across nested operations
//    that create or destroy other domains (e.g. a PrivVM toolstack slice
//    creating a domain mid-slice).
//
// Find is a binary search over a contiguous id array; with the handful of
// domains a host runs this is faster than the map's pointer-chasing and
// allocation-free on the create path (ids are assigned monotonically, so
// insertion is push_back).
class DomainTable {
 public:
  class iterator {
   public:
    using Inner = std::vector<std::unique_ptr<Domain>>::iterator;
    explicit iterator(Inner it) : it_(it) {}
    Domain& operator*() const { return **it_; }
    Domain* operator->() const { return it_->get(); }
    iterator& operator++() { ++it_; return *this; }
    bool operator==(const iterator& o) const { return it_ == o.it_; }
    bool operator!=(const iterator& o) const { return it_ != o.it_; }
   private:
    Inner it_;
  };
  class const_iterator {
   public:
    using Inner = std::vector<std::unique_ptr<Domain>>::const_iterator;
    explicit const_iterator(Inner it) : it_(it) {}
    const Domain& operator*() const { return **it_; }
    const Domain* operator->() const { return it_->get(); }
    const_iterator& operator++() { ++it_; return *this; }
    bool operator==(const const_iterator& o) const { return it_ == o.it_; }
    bool operator!=(const const_iterator& o) const { return it_ != o.it_; }
   private:
    Inner it_;
  };

  iterator begin() { return iterator(slots_.begin()); }
  iterator end() { return iterator(slots_.end()); }
  const_iterator begin() const { return const_iterator(slots_.begin()); }
  const_iterator end() const { return const_iterator(slots_.end()); }

  bool empty() const { return slots_.empty(); }
  std::size_t size() const { return slots_.size(); }

  // i-th domain in id order (deterministic random pick for injection).
  Domain& at_index(std::size_t i) { return *slots_[i]; }

  Domain& Insert(Domain&& dom) {
    auto it = LowerBound(dom.id);
    it = slots_.insert(it, std::make_unique<Domain>(std::move(dom)));
    return **it;
  }

  Domain* Find(DomainId id) {
    auto it = LowerBound(id);
    return (it != slots_.end() && (*it)->id == id) ? it->get() : nullptr;
  }
  const Domain* Find(DomainId id) const {
    return const_cast<DomainTable*>(this)->Find(id);
  }

  std::size_t count(DomainId id) const { return Find(id) != nullptr ? 1 : 0; }

  std::size_t erase(DomainId id) {
    auto it = LowerBound(id);
    if (it == slots_.end() || (*it)->id != id) return 0;
    slots_.erase(it);
    return 1;
  }

 private:
  std::vector<std::unique_ptr<Domain>>::iterator LowerBound(DomainId id) {
    return std::lower_bound(slots_.begin(), slots_.end(), id,
                            [](const std::unique_ptr<Domain>& d, DomainId v) {
                              return d->id < v;
                            });
  }

  std::vector<std::unique_ptr<Domain>> slots_;  // sorted by id
};

}  // namespace nlh::hv
