// Hypercall interface definitions shared by the hypervisor and guests.
//
// A representative subset of the Xen PV hypercall ABI. For each call the
// table at the bottom records the retry-relevant properties that drive the
// Section IV enhancements: whether the handler is idempotent, whether it
// was enhanced with undo logging ("the mechanisms to mitigate hypercall
// retry failure"), and how a PV Linux kernel reacts if the call is silently
// lost (abandoned without the retry enhancement).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hv/types.h"

namespace nlh::hv {

enum class HypercallCode : int {
  kMmuUpdate = 0,       // update page table entries (batched internally)
  kPageTablePin,        // validate a page as a page table
  kPageTableUnpin,      // devalidate
  kUpdateVaMapping,     // single PTE update
  kMemoryOpIncrease,    // increase_reservation (alloc frames to domain)
  kMemoryOpDecrease,    // decrease_reservation (free frames)
  kGrantMap,            // map a foreign grant (backend side)
  kGrantUnmap,          // unmap
  kGrantCopy,           // hypervisor-mediated copy (NOT retry-enhanced)
  kEventChannelSend,    // notify remote end
  kEventChannelAllocUnbound,
  kEventChannelBindInterdomain,
  kEventChannelClose,
  kSchedOpYield,
  kSchedOpBlock,        // block until an event is pending
  kSchedOpShutdown,     // domain self-shutdown
  kSetTimerOp,          // program the per-vCPU timer virq
  kConsoleIo,           // console output
  kDomctlCreate,        // PrivVM toolstack: create a domain
  kDomctlDestroy,       // PrivVM toolstack: destroy a domain
  kDomctlUnpause,       // PrivVM toolstack: start a created domain
  kVcpuOpUp,            // bring a vCPU online
  kXenVersion,          // trivial query (idempotent)
  kMulticall,           // batch of hypercalls (Section IV: batched retry)
  kPhysdevOp,           // interrupt routing management (PrivVM only)
  kCount,
};

inline constexpr int kNumHypercalls = static_cast<int>(HypercallCode::kCount);

std::string_view HypercallName(HypercallCode c);

// One batched component inside a multicall.
struct MulticallEntry {
  HypercallCode code = HypercallCode::kXenVersion;
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

struct HypercallArgs {
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  std::vector<MulticallEntry> batch;  // kMulticall only
};

// How a PV guest kernel reacts when this call is lost (abandoned with no
// retry): the probability that the loss is tolerated (guest-level retry or
// graceful error path) rather than fatal to the guest kernel / the issuing
// process. Derived from how Linux PV call sites check return codes; see
// DESIGN.md section 4. These feed the *guest* model, not the hypervisor.
struct HypercallTraits {
  bool idempotent = false;        // safe to re-execute blindly
  bool retry_enhanced = true;     // Section IV undo-log/reorder applied
  double lost_tolerated = 0.0;    // P(guest survives losing this call)
  bool priv_only = false;         // PrivVM-only call
};

const HypercallTraits& TraitsOf(HypercallCode c);

}  // namespace nlh::hv
