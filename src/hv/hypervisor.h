// The simulated Xen-like hypervisor.
//
// Owns every hypervisor-side structure the paper's recovery mechanisms
// repair (frame table, heap, timer heaps, scheduler metadata, locks, event
// channels, per-CPU data, static segment) and drives execution of the
// hosted guests over the hardware platform. Error detection unwinds to the
// entry paths here and is reported through the registered error handler
// (the detect/ layer), which invokes a recovery mechanism (recovery/).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "hv/domain.h"
#include "hv/failure.h"
#include "hv/frame_table.h"
#include "hv/guest_iface.h"
#include "hv/heap.h"
#include "hv/hypercall_defs.h"
#include "hv/op_context.h"
#include "hv/options.h"
#include "hv/percpu.h"
#include "hv/sched_ops.h"
#include "hv/spinlock.h"
#include "hv/static_data.h"
#include "hv/timer_heap.h"
#include "hv/types.h"
#include "hv/vcpu.h"
#include "hw/platform.h"
#include "forensics/flight_recorder.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace nlh::hv {

// HVM extension: VM exit reasons handled by the hypervisor.
enum class VmExitReason : int {
  kEptViolation = 0,  // guest touched an unmapped guest-physical page
  kEptReclaim,        // balloon/pressure path unmapping a guest page
  kCpuid,             // trivial emulated instruction
};

// Routing of a hardware interrupt vector to a domain's event port.
// `masked` models IO-APIC masking during a physdev_op rebalance: an
// abandoned rebalance leaves the route masked and the device silent.
struct DeviceBinding {
  DomainId dom = kInvalidDomain;
  EventPort port = kInvalidPort;
  bool masked = false;
};

// Read-only snapshot view of the hypervisor's core counters, assembled on
// demand from the metrics registry (the registry is the single source of
// truth; this struct survives for callers that want plain fields).
struct HvStats {
  std::uint64_t hypercalls = 0;
  std::uint64_t syscall_forwards = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t schedules = 0;
  std::uint64_t timer_softirqs = 0;
  std::uint64_t idle_polls = 0;
  std::uint64_t events_sent = 0;
  std::uint64_t detections = 0;
  std::uint64_t recoveries = 0;
};

struct HvConfig {
  RuntimeOptions runtime;
  std::uint64_t heap_pages = 2048;    // hypervisor heap size (sim frames)
  std::uint64_t frame_table_frames = 16384;  // mechanical frame-table window
  sim::Duration sched_tick_period = sim::Milliseconds(10);
  sim::Duration watchdog_tick_period = sim::Milliseconds(100);
  sim::Duration time_sync_period = sim::Milliseconds(500);
  sim::Duration guest_slice_budget = sim::Microseconds(500);
  int max_vcpus = 64;
};

class Hypervisor {
 public:
  Hypervisor(hw::Platform& platform, const HvConfig& config);

  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  // --- Boot / configuration ----------------------------------------------
  // Fresh bring-up: initializes all state, registers recurring timer
  // events, arms APIC timers and the watchdog NMI source.
  void Boot();

  // Creates a domain directly (boot-time path; the runtime path is the
  // kDomctlCreate hypercall issued by the PrivVM toolstack).
  DomainId CreateDomainDirect(const std::string& name, bool privileged,
                              hw::CpuId pinned_cpu, std::uint64_t frames);
  void AttachGuest(DomainId dom, GuestInterface* guest);
  // Makes the domain's vCPUs runnable and kicks their CPUs.
  void StartDomain(DomainId dom);

  // --- Guest entry points (called from GuestInterface::RunSlice) -----------
  // Executes a hypercall synchronously. May throw (simulated fault) — the
  // guest layer must be a pass-through for exceptions.
  std::uint64_t Hypercall(VcpuId vcpu, HypercallCode code,
                          const HypercallArgs& args);
  // x86-64 forwarded system call (Section IV): charges the forwarding path
  // and tracks it for syscall retry.
  void ForwardedSyscall(VcpuId vcpu, std::uint64_t sysno);

  // HVM extension: handles a hardware VM exit from a fully-virtualized
  // guest. Unlike PV hypercalls, an abandoned VM exit is re-delivered by
  // the hardware when the guest instruction re-executes.
  std::uint64_t VmExit(VcpuId vcpu, VmExitReason reason, std::uint64_t arg);

  // Reads and clears the pending event-channel bitmap of a vCPU (bit 0 is
  // the timer virq; bit N>0 is local port N). Guests call this from
  // RunSlice.
  std::uint64_t ConsumePendingEvents(VcpuId vcpu);

  // --- Device / external interface ------------------------------------------
  // Binds a hardware interrupt vector to (domain, event port).
  void BindDeviceVector(hw::Vector v, DomainId dom, EventPort port);
  void RaiseDeviceIrq(hw::Vector v, hw::CpuId target_cpu);

  // --- Execution ---------------------------------------------------------
  // Ensures a run-slice event is pending for the CPU.
  void KickCpu(hw::CpuId cpu);
  // As KickCpu, but at an absolute time.
  void KickCpuAt(hw::CpuId cpu, sim::Time when);
  // The per-CPU executor; normally invoked from the event queue.
  void RunCpuSlice(hw::CpuId cpu);

  // --- Operation observation (fault injector trigger events) ---------------
  // A lightweight tap on hypervisor operations: hypercall entry, each
  // completed multicall batch component, and timer-softirq entry. The fault
  // injector uses it for trigger-event injection conditions ("fire on the
  // Nth grant op after T") so scenario fuzzing can land faults against
  // in-flight operations instead of only at wall positions.
  enum class OpEventKind { kHypercall, kMulticallComponent, kTimerSoftirq };
  using OpObserver =
      std::function<void(OpEventKind, HypercallCode, hw::CpuId)>;
  void SetOpObserver(OpObserver observer) {
    op_observer_ = std::move(observer);
  }
  void ClearOpObserver() { op_observer_ = nullptr; }

  // --- Error handling -------------------------------------------------------
  // Structured error delivery: the handler receives a DetectionEvent
  // instead of the old (CpuId, DetectionKind, string) triple.
  using ErrorHandler = std::function<void(const DetectionEvent&)>;
  void SetErrorHandler(ErrorHandler handler) { error_handler_ = std::move(handler); }
  // NMI hook (hang detector); invoked on every watchdog NMI.
  void SetNmiHook(std::function<void(hw::CpuId)> hook) { nmi_hook_ = std::move(hook); }
  // Reports a detected error (panic path or hang detector). The event's
  // `when` field is stamped with the current simulated time if unset.
  void ReportError(DetectionEvent event);
  // Convenience for raisers that only know kind + diagnostic text; the
  // failure code is inferred from the kind.
  void ReportError(hw::CpuId cpu, DetectionKind kind, const std::string& what);
  // True once an unrecoverable state was reached (no handler, or the
  // handler gave up): the platform is dead.
  bool dead() const { return dead_; }
  void MarkDead(FailureReason reason, const std::string& detail = "");
  FailureReason death_code() const { return death_code_; }
  const std::string& death_reason() const { return death_reason_; }
  // Reason of the most recent silent CPU hang (diagnostics).
  const std::string& last_hang_reason() const { return last_hang_reason_; }

  // --- Recovery support API (used by recovery/) ------------------------------
  // Freeze: disable interrupts everywhere, deliver the recovery IPI to all
  // other CPUs (incrementing their interrupt nesting level — they were
  // interrupted!), park them in busy-wait.
  void FreezeForRecovery(hw::CpuId detector);
  // Microreset core: discard every execution thread (reset all HV stacks).
  void DiscardAllHvStacks();
  // Resume: schedules un-freeze at `resume_at`, optionally reprogramming
  // every APIC timer from its software timer heap at that moment.
  void ResumeAfterRecovery(sim::Time resume_at, bool reprogram_apics);
  // Acks pending and in-service interrupts on every CPU (recovery step).
  void AckAllInterrupts();
  // Re-registers any missing recurring system timer events (NiLiHype
  // "Reactivate recurring timer events").
  int ReactivateRecurringEvents();
  // Re-inserts armed per-vCPU singleshot timers that are missing from the
  // heaps (from the authoritative Vcpu::vtimer_deadline field).
  void RearmVcpuTimers();
  // Makes sure every recurring system timer exists; used by ReHype reboot
  // (which cleared the heaps).
  void RebuildTimerSubsystem();
  bool frozen() const { return frozen_; }
  bool recovery_in_progress() const { return frozen_; }
  int recovery_attempts() const { return recovery_attempts_; }
  void set_max_recovery_attempts(int n) { max_recovery_attempts_ = n; }

  // Injected corruption of state the recovery routine itself depends on
  // (Section VII-A failure reason 1).
  void CorruptRecoveryPath() { recovery_path_ok_ = false; }
  bool recovery_path_ok() const { return recovery_path_ok_; }

  // --- State access (recovery, injection, tests, benches) --------------------
  hw::Platform& platform() { return platform_; }
  const HvConfig& config() const { return config_; }
  RuntimeOptions& options() { return config_.runtime; }
  StaticDataSegment& statics() { return statics_; }
  StaticLockRegistry& static_locks() { return static_locks_; }
  FrameTable& frames() { return frames_; }
  HvHeap& heap() { return heap_; }
  PerCpuList& percpu() { return percpu_; }
  PerCpuData& percpu(hw::CpuId c) { return percpu_[static_cast<std::size_t>(c)]; }
  std::vector<Vcpu>& vcpus() { return vcpus_; }
  Vcpu& vcpu(VcpuId v) { return vcpus_[static_cast<std::size_t>(v)]; }
  DomainTable& domains() { return domains_; }
  Domain* FindDomain(DomainId id);
  TimerHeap& timers(hw::CpuId c) { return *timers_[static_cast<std::size_t>(c)]; }
  // Snapshot of the core counters (see the metrics registry for the full,
  // extensible set).
  HvStats stats() const;
  // Observability: span tracer + metrics registry + flight recorder for
  // this host.
  sim::Tracer& tracer() { return tracer_; }
  sim::MetricsRegistry& metrics() { return metrics_; }
  const sim::MetricsRegistry& metrics() const { return metrics_; }
  forensics::FlightRecorder& flight_recorder() { return recorder_; }
  const forensics::FlightRecorder& flight_recorder() const { return recorder_; }
  // First DetectionEvent this host ever reported (survives recovery and
  // later detections; the correlator joins it against injection ground
  // truth). nullptr until a detection happens.
  const DetectionEvent* first_detection() const {
    return has_first_detection_ ? &first_detection_ : nullptr;
  }
  std::map<hw::Vector, DeviceBinding>& device_bindings() {
    return device_bindings_;
  }
  sim::Time Now() const { return platform_.queue().Now(); }
  // Whether the lazy per-CPU scheduler tick has been started (audit uses
  // this to know if a missing "sched_tick" heap entry is a lost event).
  bool sched_tick_enabled(hw::CpuId c) const {
    return sched_tick_enabled_[static_cast<std::size_t>(c)];
  }

  // Global static locks (registered in the static-lock segment).
  SpinLock& domlist_lock() { return domlist_lock_; }
  SpinLock& evtchn_lock() { return evtchn_lock_; }
  SpinLock& grant_lock() { return grant_lock_; }
  SpinLock& heap_lock() { return heap_lock_; }
  SpinLock& console_lock() { return console_lock_; }

  // --- Internals shared with recovery ----------------------------------------
  // Delivers a pending event port to a domain's notify vCPU and wakes it.
  void SendEventToPort(DomainId dom, EventPort port, OpContext* ctx);
  // Wakes a blocked vCPU (event arrival).
  void WakeVcpu(VcpuId v);
  // Runs the scheduler on `cpu` (softirq context). Returns the chosen vCPU.
  VcpuId Schedule(OpContext& ctx, hw::CpuId cpu);
  // Post-recovery integrity sweep used by tests/examples (not by recovery
  // itself): returns a human-readable list of detected inconsistencies.
  std::vector<std::string> AuditState() const;

  // Runtime (hypercall-driven) domain destruction support.
  void DestroyDomainInternal(OpContext& ctx, DomainId id);

 public:
  // --- Hypercall dispatch (exposed for the retry path and white-box tests) --
  std::uint64_t Dispatch(OpContext& ctx, Vcpu& vc, HypercallCode code,
                         const HypercallArgs& args);
  std::uint64_t DispatchOne(OpContext& ctx, Vcpu& vc, HypercallCode code,
                            std::uint64_t arg0, std::uint64_t arg1,
                            std::uint64_t arg2);

 private:
  // --- IRQ / softirq paths ---------------------------------------------------
  sim::Duration HandleOneInterrupt(hw::CpuId cpu);
  void TimerSoftirq(OpContext& ctx, hw::CpuId cpu);
  void DeliverVirqTimer(VcpuId v);
  void IdlePoll(OpContext& ctx, hw::CpuId cpu);
  // Handlers (hypercalls.cc).
  std::uint64_t DoMmuUpdate(OpContext& ctx, Vcpu& vc, const HypercallArgs& a);
  std::uint64_t DoPin(OpContext& ctx, Vcpu& vc, std::uint64_t frame);
  std::uint64_t DoUnpin(OpContext& ctx, Vcpu& vc, std::uint64_t frame);
  std::uint64_t DoUpdateVaMapping(OpContext& ctx, Vcpu& vc, std::uint64_t frame,
                                  bool map);
  std::uint64_t DoMemoryOp(OpContext& ctx, Vcpu& vc, bool increase,
                           std::uint64_t nframes);
  std::uint64_t DoGrantMap(OpContext& ctx, Vcpu& vc, DomainId granter,
                           GrantRef ref);
  std::uint64_t DoGrantUnmap(OpContext& ctx, Vcpu& vc, DomainId granter,
                             GrantRef ref);
  std::uint64_t DoGrantCopy(OpContext& ctx, Vcpu& vc, DomainId granter,
                            GrantRef ref);
  std::uint64_t DoEventSend(OpContext& ctx, Vcpu& vc, EventPort port);
  std::uint64_t DoEventAllocUnbound(OpContext& ctx, Vcpu& vc, DomainId remote);
  std::uint64_t DoEventBind(OpContext& ctx, Vcpu& vc, DomainId remote,
                            EventPort remote_port);
  std::uint64_t DoEventClose(OpContext& ctx, Vcpu& vc, EventPort port);
  std::uint64_t DoSchedOp(OpContext& ctx, Vcpu& vc, HypercallCode code);
  std::uint64_t DoSetTimer(OpContext& ctx, Vcpu& vc, sim::Time deadline);
  std::uint64_t DoConsoleIo(OpContext& ctx, Vcpu& vc);
  std::uint64_t DoDomctlCreate(OpContext& ctx, Vcpu& vc,
                               const HypercallArgs& a);
  std::uint64_t DoDomctlDestroy(OpContext& ctx, Vcpu& vc, DomainId target);
  std::uint64_t DoDomctlUnpause(OpContext& ctx, Vcpu& vc, DomainId target);
  std::uint64_t DoMulticall(OpContext& ctx, Vcpu& vc, const HypercallArgs& a);
  std::uint64_t DoPhysdevOp(OpContext& ctx, Vcpu& vc);
  std::uint64_t DispatchVmExit(OpContext& ctx, Vcpu& vc, VmExitReason reason,
                               std::uint64_t arg);

  // --- Helpers ------------------------------------------------------------
  void RegisterRecurringTimers(hw::CpuId cpu);
  void EnsureRecurring(hw::CpuId cpu, const std::string& name,
                       sim::Duration period, std::function<void()> cb,
                       int* missing);
  void ProgramApicFromHeap(hw::CpuId cpu);
  void ChargeSlice(hw::CpuId cpu, std::uint64_t instructions);
  // Executes a retried request before the guest resumes (recovery set
  // needs_retry); returns instructions charged.
  void ExecuteRetry(hw::CpuId cpu, Vcpu& vc);
  void OnNmi(hw::CpuId cpu);
  void StartSchedTick(hw::CpuId cpu);
  VcpuId VcpuOnCpu(hw::CpuId cpu) const;

  hw::Platform& platform_;
  HvConfig config_;

  StaticDataSegment statics_;
  StaticLockRegistry static_locks_;
  SpinLock domlist_lock_{"domlist_lock"};
  SpinLock evtchn_lock_{"evtchn_lock"};
  SpinLock grant_lock_{"grant_lock"};
  SpinLock heap_lock_{"heap_lock"};
  SpinLock console_lock_{"console_lock"};

  FrameTable frames_;
  HvHeap heap_;
  PerCpuList percpu_;
  std::vector<std::unique_ptr<TimerHeap>> timers_;
  std::vector<Vcpu> vcpus_;
  DomainTable domains_;
  DomainId next_domid_ = 0;
  std::map<hw::Vector, DeviceBinding> device_bindings_;

  ErrorHandler error_handler_;
  std::function<void(hw::CpuId)> nmi_hook_;
  OpObserver op_observer_;

  // Observability. Counter handles are resolved once in the constructor so
  // hot paths bump them without a registry lookup, and span names used on
  // hot paths (one per hypercall code, plus the scheduler and the timer
  // softirq) are pre-interned so opening a span never builds a string.
  // The RecorderScope installs this host's flight recorder as the
  // thread-local current one for the lifetime of the Hypervisor (runs are
  // single-threaded; campaigns use one Hypervisor per worker thread).
  sim::Tracer tracer_;
  sim::MetricsRegistry metrics_;
  forensics::FlightRecorder recorder_;
  forensics::RecorderScope recorder_scope_{&recorder_};
  sim::CounterHandle c_hypercalls_;
  sim::CounterHandle c_syscall_forwards_;
  sim::CounterHandle c_interrupts_;
  sim::CounterHandle c_schedules_;
  sim::CounterHandle c_timer_softirqs_;
  sim::CounterHandle c_idle_polls_;
  sim::CounterHandle c_events_sent_;
  sim::CounterHandle c_detections_;
  sim::CounterHandle c_recoveries_;
  std::array<sim::NameId, kNumHypercalls> span_hypercall_{};
  sim::NameId span_schedule_ = 0;
  sim::NameId span_timer_softirq_ = 0;
  friend class CtxSpan;

  bool booted_ = false;
  bool frozen_ = false;
  bool dead_ = false;
  FailureReason death_code_ = FailureReason::kNone;
  std::string death_reason_;
  std::string last_hang_reason_;
  bool recovery_path_ok_ = true;
  int recovery_attempts_ = 0;
  int max_recovery_attempts_ = 3;
  bool in_error_report_ = false;
  DetectionEvent first_detection_;
  bool has_first_detection_ = false;

  // Cost accumulated by reentrant hypercall execution during a guest slice.
  std::vector<std::uint64_t> slice_instructions_;
  // Architectural busy horizon per CPU: a slice's work occupies simulated
  // time [start, busy_until); wakeups arriving inside that window defer.
  std::vector<sim::Time> busy_until_;
  std::vector<bool> need_resched_;
  std::vector<bool> sched_tick_enabled_;
};

}  // namespace nlh::hv
