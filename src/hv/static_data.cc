#include "hv/static_data.h"

namespace nlh::hv {

std::string_view StaticVarName(StaticVar v) {
  switch (v) {
    case StaticVar::kDomainListHead: return "domain_list";
    case StaticVar::kM2PTableBase: return "m2p_table";
    case StaticVar::kFrameTableBase: return "frame_table";
    case StaticVar::kTscKhz: return "tsc_khz";
    case StaticVar::kIrqDescTable: return "irq_desc";
    case StaticVar::kIoApicRoute: return "io_apic_route";
    case StaticVar::kSchedOpsPtr: return "sched_ops";
    case StaticVar::kTimerSubsysState: return "timer_subsys";
    case StaticVar::kConsoleState: return "console_state";
    case StaticVar::kPerCpuOffsets: return "percpu_offsets";
    case StaticVar::kHeapMetadataPtr: return "heap_metadata";
    case StaticVar::kEvtchnBucketPtr: return "evtchn_buckets";
    case StaticVar::kCount: break;
  }
  return "?";
}

void StaticDataSegment::ResetAll() {
  for (Entry& e : entries_) e = Entry{};

  auto& at = entries_;
  auto idx = [](StaticVar v) { return static_cast<std::size_t>(v); };

  // Preserved across ReHype reboot: state that encodes live-VM information
  // a fresh boot cannot reconstruct (Section III-B: "parts of the preserved
  // static data segments are used to overwrite some of the values
  // initialized earlier in the boot process").
  at[idx(StaticVar::kDomainListHead)].preserved_by_rehype = true;
  at[idx(StaticVar::kEvtchnBucketPtr)].preserved_by_rehype = true;
  at[idx(StaticVar::kHeapMetadataPtr)].preserved_by_rehype = true;
  at[idx(StaticVar::kFrameTableBase)].preserved_by_rehype = true;

  // Re-derived by a fresh boot: TSC calibration, IRQ routing, IO-APIC
  // shadow, scheduler ops, per-CPU offsets, timer subsystem, M2P base.
  // (ReHype repairs corruption here; NiLiHype reuses the corrupt value.)

  // Manifestation style at the use site.
  at[idx(StaticVar::kTscKhz)].hangs_on_use = true;        // bad timer math
  at[idx(StaticVar::kTimerSubsysState)].hangs_on_use = true;
  at[idx(StaticVar::kConsoleState)].benign = true;        // cosmetic only
}

}  // namespace nlh::hv
