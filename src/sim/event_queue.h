// Discrete-event simulation core: a time-ordered queue of callbacks.
//
// The entire target system (hardware, hypervisor, guests, external network
// peers) advances by popping the earliest event and running it. Events
// scheduled at the same timestamp run in FIFO order, which keeps runs
// deterministic for a fixed seed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace nlh::sim {

// Handle for a scheduled event; allows cancellation (e.g. reprogramming a
// one-shot APIC timer cancels its previously scheduled fire event).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Time Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Requires delay >= 0.
  EventId ScheduleAfter(Duration delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at an absolute time (clamped to be no earlier than Now()).
  EventId ScheduleAt(Time when, std::function<void()> fn) {
    if (when < now_) when = now_;
    const EventId id = next_id_++;
    heap_.push(Entry{when, id, std::move(fn)});
    pending_.insert(id);
    return id;
  }

  // Cancels a pending event. Cancelling an unknown, already-run or
  // already-cancelled event is a no-op. Returns true if it was pending.
  bool Cancel(EventId id) {
    if (id == kInvalidEvent) return false;
    if (pending_.erase(id) == 0) return false;
    cancelled_.insert(id);
    return true;
  }

  bool Empty() const { return pending_.empty(); }
  std::size_t PendingCount() const { return pending_.size(); }

  // Runs the next pending event, advancing the clock. Returns false if the
  // queue is empty.
  bool RunOne() {
    while (!heap_.empty()) {
      Entry top = heap_.top();
      heap_.pop();
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      pending_.erase(top.id);
      now_ = top.when;
      top.fn();
      return true;
    }
    return false;
  }

  // Runs events until the clock passes `deadline` or the queue drains.
  // Events stamped exactly at `deadline` still run.
  void RunUntil(Time deadline) {
    while (!heap_.empty()) {
      if (NextTime() > deadline) break;
      RunOne();
    }
    if (now_ < deadline) now_ = deadline;
  }

  // Runs all events to completion. Intended for tests and short scenarios;
  // campaigns use RunUntil with a workload deadline.
  void RunAll() {
    while (RunOne()) {
    }
  }

  // Timestamp of the earliest pending (non-cancelled) event.
  Time NextTime() {
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
        cancelled_.erase(it);
        heap_.pop();
        continue;
      }
      return top.when;
    }
    return std::numeric_limits<Time>::max();
  }

 private:
  struct Entry {
    Time when;
    EventId id;
    std::function<void()> fn;
    // Earliest time first; FIFO among equal times via ascending id.
    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;
    }
  };

  Time now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace nlh::sim
