// Discrete-event simulation core: a time-ordered queue of callbacks.
//
// The entire target system (hardware, hypervisor, guests, external network
// peers) advances by popping the earliest event and running it. Events
// scheduled at the same timestamp run in FIFO order, which keeps runs
// deterministic for a fixed seed.
//
// Implementation notes (this is the hottest structure in a campaign; see
// bench/bench_sim_core.cc):
//  - Callbacks live in a slab of pooled slots recycled through a free list,
//    stored as SmallFn (small-buffer optimized, move-only), so steady-state
//    scheduling performs no allocation and popping never copies a callback.
//  - The heap is a 4-ary min-heap of 24-byte plain structs ordered by
//    (when, seq); `seq` is a per-schedule monotonic counter, giving the
//    same FIFO-among-equal-timestamps order as the previous id-ordered
//    binary heap.
//  - Cancellation bumps the slot's generation counter (O(1)) and frees the
//    slot; the stale heap entry is skipped when it surfaces. EventId packs
//    (generation << 32 | slot), so a recycled slot never honours an old id.
//  - ReleaseStorage()/adopting constructor let a campaign worker recycle
//    the slab and heap buffers across runs (core::RunArena) without
//    carrying any logical state between runs.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "sim/small_fn.h"
#include "sim/time.h"

namespace nlh::sim {

// Handle for a scheduled event; allows cancellation (e.g. reprogramming a
// one-shot APIC timer cancels its previously scheduled fire event).
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

// Pooled callback slot. Generations start at 1 so an EventId is never 0
// (kInvalidEvent); a slot's generation is bumped whenever the slot is
// freed (fire or cancel), invalidating outstanding ids and heap entries.
struct EventSlot {
  SmallFn fn;
  std::uint32_t gen = 1;
};

// Heap entry: 24 bytes, plain data. `seq` preserves schedule order among
// equal timestamps (FIFO), matching the previous implementation exactly.
struct EventHeapEntry {
  Time when;
  std::uint64_t seq;
  std::uint32_t slot;
  std::uint32_t gen;
};

class EventQueue {
 public:
  // Recyclable buffers (no logical state): see core::RunArena.
  struct Storage {
    std::vector<EventSlot> slots;
    std::vector<EventHeapEntry> heap;
    std::vector<std::uint32_t> free_slots;
  };

  EventQueue() = default;
  // Adopts recycled buffers: capacity is reused, contents are discarded.
  explicit EventQueue(Storage&& recycled)
      : slots_(std::move(recycled.slots)),
        heap_(std::move(recycled.heap)),
        free_(std::move(recycled.free_slots)) {
    slots_.clear();
    heap_.clear();
    free_.clear();
  }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Post-construction flavor of the adopting constructor, for queues
  // embedded in other objects (hw::Platform). Only meaningful before the
  // first ScheduleAt; once anything has been scheduled it is a no-op, so
  // pending events can never be dropped.
  void AdoptStorage(Storage&& recycled) {
    if (!slots_.empty() || !heap_.empty()) return;
    slots_ = std::move(recycled.slots);
    heap_ = std::move(recycled.heap);
    free_ = std::move(recycled.free_slots);
    slots_.clear();
    heap_.clear();
    free_.clear();
  }

  // Tears down all pending events and hands the buffers back for reuse.
  Storage ReleaseStorage() {
    for (EventSlot& s : slots_) s.fn.Reset();
    slots_.clear();
    heap_.clear();
    free_.clear();
    live_ = 0;
    return Storage{std::move(slots_), std::move(heap_), std::move(free_)};
  }

  Time Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. Requires delay >= 0.
  template <typename F>
  EventId ScheduleAfter(Duration delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at an absolute time (clamped to be no earlier than Now()).
  template <typename F>
  EventId ScheduleAt(Time when, F&& fn) {
    if (when < now_) when = now_;
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    EventSlot& s = slots_[slot];
    s.fn = SmallFn(std::forward<F>(fn));
    HeapPush(EventHeapEntry{when, next_seq_++, slot, s.gen});
    ++live_;
    return MakeId(slot, s.gen);
  }

  // Cancels a pending event. Cancelling an unknown, already-run or
  // already-cancelled event is a no-op. Returns true if it was pending.
  bool Cancel(EventId id) {
    if (id == kInvalidEvent) return false;
    const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu);
    const std::uint32_t gen = static_cast<std::uint32_t>(id >> 32);
    if (slot >= slots_.size() || slots_[slot].gen != gen) return false;
    FreeSlot(slot);
    --live_;
    return true;
  }

  bool Empty() const { return live_ == 0; }
  std::size_t PendingCount() const { return live_; }

  // Runs the next pending event, advancing the clock. Returns false if the
  // queue is empty.
  bool RunOne() {
    while (!heap_.empty()) {
      const EventHeapEntry top = heap_.front();
      HeapPop();
      EventSlot& s = slots_[top.slot];
      if (s.gen != top.gen) continue;  // cancelled; slot already freed
      now_ = top.when;
      // Move the callback to a local before freeing the slot: the callback
      // may schedule events, growing the slab and reusing this slot.
      SmallFn fn = std::move(s.fn);
      FreeSlot(top.slot);
      --live_;
      fn();
      return true;
    }
    return false;
  }

  // Runs events until the clock passes `deadline` or the queue drains.
  // Events stamped exactly at `deadline` still run.
  void RunUntil(Time deadline) {
    while (!heap_.empty()) {
      if (NextTime() > deadline) break;
      RunOne();
    }
    if (now_ < deadline) now_ = deadline;
  }

  // Runs all events to completion. Intended for tests and short scenarios;
  // campaigns use RunUntil with a workload deadline.
  void RunAll() {
    while (RunOne()) {
    }
  }

  // Timestamp of the earliest pending (non-cancelled) event.
  Time NextTime() {
    while (!heap_.empty()) {
      const EventHeapEntry& top = heap_.front();
      if (slots_[top.slot].gen != top.gen) {
        HeapPop();  // stale entry for a cancelled event
        continue;
      }
      return top.when;
    }
    return std::numeric_limits<Time>::max();
  }

 private:
  static EventId MakeId(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  // Invalidates any outstanding EventId / heap entry for `slot` and returns
  // it to the free list.
  void FreeSlot(std::uint32_t slot) {
    EventSlot& s = slots_[slot];
    ++s.gen;
    s.fn.Reset();
    free_.push_back(slot);
  }

  // 4-ary min-heap ordered by (when, seq): shallower than a binary heap
  // (fewer cache-missing levels per sift) at the cost of three extra
  // comparisons per level, a good trade for 24-byte entries.
  static bool Less(const EventHeapEntry& a, const EventHeapEntry& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void HeapPush(EventHeapEntry e) {
    std::size_t i = heap_.size();
    heap_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!Less(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void HeapPop() {
    const std::size_t n = heap_.size() - 1;
    heap_[0] = heap_[n];
    heap_.pop_back();
    std::size_t i = 0;
    while (true) {
      const std::size_t first_child = 4 * i + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (Less(heap_[c], heap_[best])) best = c;
      }
      if (!Less(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  Time now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::vector<EventSlot> slots_;
  std::vector<EventHeapEntry> heap_;
  std::vector<std::uint32_t> free_;
};

}  // namespace nlh::sim
