// Simulated time: signed 64-bit nanoseconds since simulation start.
//
// All latencies in the simulator are expressed in this unit. The
// recovery-latency models (recovery/latency_model.h) are calibrated in
// nanoseconds against the millisecond-granularity numbers in Tables II and
// III of the paper.
#pragma once

#include <cstdint>

namespace nlh::sim {

using Time = std::int64_t;      // nanoseconds
using Duration = std::int64_t;  // nanoseconds

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000;
inline constexpr Duration kMillisecond = 1000 * 1000;
inline constexpr Duration kSecond = 1000LL * 1000 * 1000;

constexpr Duration Nanoseconds(std::int64_t n) { return n; }
constexpr Duration Microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr Duration Milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr Duration Seconds(std::int64_t n) { return n * kSecond; }

// Converts a duration to (truncated) milliseconds, for reporting.
constexpr std::int64_t ToMillis(Duration d) { return d / kMillisecond; }
constexpr std::int64_t ToMicros(Duration d) { return d / kMicrosecond; }
constexpr double ToMillisF(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double ToSecondsF(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

}  // namespace nlh::sim
