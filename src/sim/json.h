// Minimal JSON emission helpers shared by the trace exporter, the metrics
// registry, and the campaign/bench JSON artifacts. Emission only — the
// simulator never parses JSON.
#pragma once

#include <cstdio>
#include <string>

namespace nlh::sim {

// Escapes a string for inclusion inside a JSON string literal (no quotes).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// "name" (quoted + escaped).
inline std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

// Fixed-point double formatting (JSON forbids NaN/Inf; clamp to 0).
inline std::string JsonNum(double v, int decimals = 3) {
  if (v != v || v > 1e300 || v < -1e300) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

}  // namespace nlh::sim
