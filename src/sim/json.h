// Minimal JSON helpers shared by the trace exporter, the metrics registry,
// and the campaign/bench/forensics JSON artifacts: emission (JsonEscape /
// JsonStr / JsonNum) plus a small strict recursive-descent parser
// (JsonValue / ParseJson) used to round-trip every emitted artifact in
// tests and to read dossiers back.
#pragma once

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace nlh::sim {

// Escapes a string for inclusion inside a JSON string literal (no quotes).
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// "name" (quoted + escaped).
inline std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

// Fixed-point double formatting (JSON forbids NaN/Inf; clamp to 0).
inline std::string JsonNum(double v, int decimals = 3) {
  if (v != v || v > 1e300 || v < -1e300) v = 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

// --- Parsing ----------------------------------------------------------------

// Parsed JSON document node. Objects keep field insertion order (emission
// order round-trips byte-stably through re-serialization in tests).
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  // kObject

  bool IsNull() const { return type == Type::kNull; }
  bool IsObject() const { return type == Type::kObject; }
  bool IsArray() const { return type == Type::kArray; }

  // Object member lookup (first match); nullptr when absent or not an
  // object.
  const JsonValue* Find(const std::string& key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace detail {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out, 0)) return false;
    SkipWs();
    return pos_ == s_.size();  // no trailing garbage
  }

 private:
  static constexpr int kMaxDepth = 200;

  void SkipWs() {
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth || pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case 'n':
        out->type = JsonValue::Type::kNull;
        return Literal("null");
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case '"':
        out->type = JsonValue::Type::kString;
        return ParseString(&out->str);
      case '[':
        return ParseArray(out, depth);
      case '{':
        return ParseObject(out, depth);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out->type = JsonValue::Type::kNumber;
    return true;
  }

  bool ParseString(std::string* out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode (surrogate pairs are not combined; our emitter
          // only produces \u00xx control-character escapes).
          if (cp < 0x80) {
            out->push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      SkipWs();
      if (!ParseValue(&item, depth + 1)) return false;
      out->items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !ParseString(&key)) {
        return false;
      }
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      SkipWs();
      JsonValue val;
      if (!ParseValue(&val, depth + 1)) return false;
      out->fields.emplace_back(std::move(key), std::move(val));
      SkipWs();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace detail

// Strict parse of a complete JSON document (no trailing garbage). Returns
// false on any syntax error, leaving *out unspecified.
inline bool ParseJson(const std::string& text, JsonValue* out) {
  return detail::JsonParser(text).Parse(out);
}

// Canonical re-serialization: no whitespace, object fields in stored
// (insertion) order, integer-valued numbers printed without a decimal
// point. parse -> WriteJson is a fixed point for documents whose numbers
// are all integers (every fuzz verdict/reproducer artifact is emitted that
// way on purpose), which is what lets the corpus regression runner compare
// recorded and recomputed verdicts byte-for-byte.
inline std::string WriteJson(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Type::kNumber: {
      const double d = v.number;
      const long long i = static_cast<long long>(d);
      if (static_cast<double>(i) == d && d >= -9.0e15 && d <= 9.0e15) {
        return std::to_string(i);
      }
      return JsonNum(d, 6);
    }
    case JsonValue::Type::kString: return JsonStr(v.str);
    case JsonValue::Type::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        if (i) out += ",";
        out += WriteJson(v.items[i]);
      }
      return out + "]";
    }
    case JsonValue::Type::kObject: {
      std::string out = "{";
      for (std::size_t i = 0; i < v.fields.size(); ++i) {
        if (i) out += ",";
        out += JsonStr(v.fields[i].first) + ":" + WriteJson(v.fields[i].second);
      }
      return out + "}";
    }
  }
  return "null";
}

}  // namespace nlh::sim
