// Minimal structured logging for the simulator.
//
// Logs carry the simulated timestamp of the emitting context. Campaigns run
// with logging off (kNone) for speed; individual replayed runs enable kTrace
// to diagnose recovery failures.
#pragma once

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/time.h"

namespace nlh::sim {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kNone) : level_(level) {}

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel Level() const { return level_; }

  // Optional capture hook; when set, formatted lines are appended to the
  // sink instead of stderr (used by tests to assert on recovery traces).
  void SetSink(std::vector<std::string>* sink) { sink_ = sink; }

  // Per-component level override: a component named here is filtered
  // against its own level instead of the global one, so a replay can run
  // e.g. global kInfo with "inject" at kDebug (or silence a chatty
  // component with kNone).
  void SetComponentLevel(const std::string& component, LogLevel level) {
    component_levels_[component] = level;
  }
  void ClearComponentLevels() { component_levels_.clear(); }

  // Structured observer called (before formatting) for every line that
  // passes filtering, in addition to the sink/stderr output. The flight
  // recorder uses this to fold log lines into the event stream.
  using EventHook =
      std::function<void(LogLevel, Time, const std::string& /*component*/,
                         const std::string& /*message*/)>;
  void SetEventHook(EventHook hook) { event_hook_ = std::move(hook); }

  bool Enabled(LogLevel level) const { return level <= level_; }

  bool Enabled(LogLevel level, const std::string& component) const {
    auto it = component_levels_.find(component);
    return level <= (it == component_levels_.end() ? level_ : it->second);
  }

  void Log(LogLevel level, Time now, const std::string& component,
           const std::string& message) {
    if (!Enabled(level, component)) return;
    if (event_hook_) event_hook_(level, now, component, message);
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[%10.3fms] %-8s ", ToMillisF(now),
                  component.c_str());
    std::string line = std::string(prefix) + message;
    if (sink_ != nullptr) {
      sink_->push_back(std::move(line));
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

 private:
  LogLevel level_;
  std::map<std::string, LogLevel> component_levels_;
  EventHook event_hook_;
  std::vector<std::string>* sink_ = nullptr;
};

}  // namespace nlh::sim
