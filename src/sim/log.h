// Minimal structured logging for the simulator.
//
// Logs carry the simulated timestamp of the emitting context. Campaigns run
// with logging off (kNone) for speed; individual replayed runs enable kTrace
// to diagnose recovery failures.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace nlh::sim {

enum class LogLevel { kNone = 0, kError, kInfo, kDebug, kTrace };

class Logger {
 public:
  explicit Logger(LogLevel level = LogLevel::kNone) : level_(level) {}

  void SetLevel(LogLevel level) { level_ = level; }
  LogLevel Level() const { return level_; }

  // Optional capture hook; when set, formatted lines are appended to the
  // sink instead of stderr (used by tests to assert on recovery traces).
  void SetSink(std::vector<std::string>* sink) { sink_ = sink; }

  bool Enabled(LogLevel level) const { return level <= level_; }

  void Log(LogLevel level, Time now, const std::string& component,
           const std::string& message) {
    if (!Enabled(level)) return;
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "[%10.3fms] %-8s ", ToMillisF(now),
                  component.c_str());
    std::string line = std::string(prefix) + message;
    if (sink_ != nullptr) {
      sink_->push_back(std::move(line));
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

 private:
  LogLevel level_;
  std::vector<std::string>* sink_ = nullptr;
};

}  // namespace nlh::sim
