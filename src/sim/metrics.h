// Metrics registry: named counters, gauges, and histograms replacing
// ad-hoc stat-struct field twiddling. One registry per simulated host
// (campaigns parallelize across runs, each with its own registry), so no
// atomics are needed. Metric objects are owned by the registry and their
// addresses are stable — hot paths cache a pointer once and bump it
// without a map lookup.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/json.h"

namespace nlh::sim {

class Counter {
 public:
  void Inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Exact-sample histogram (runs are short; memory is bounded by a sample
// cap after which only count/sum/min/max stay exact).
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 1 << 16;

  void Observe(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    if (samples_.size() < kMaxSamples) samples_.push_back(v);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  // Exact quantile over the retained samples with linear interpolation
  // between closest ranks (the "exclusive" definition used by numpy's
  // default percentile): rank = q*(n-1), result = s[lo] + frac*(s[lo+1]-
  // s[lo]). q <= 0 yields the minimum sample, q >= 1 the maximum.
  double Quantile(double q) const {
    if (samples_.empty()) return 0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (q <= 0) return sorted.front();
    if (q >= 1) return sorted.back();
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) {
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& GetGauge(const std::string& name) {
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Histogram& GetHistogram(const std::string& name) {
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
  }

  const Counter* FindCounter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
  }
  const Histogram* FindHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  std::string ToJson() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto& [name, c] : counters_) {
      if (!first) out += ",";
      first = false;
      out += JsonStr(name) + ":" + std::to_string(c->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, g] : gauges_) {
      if (!first) out += ",";
      first = false;
      out += JsonStr(name) + ":" + JsonNum(g->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) out += ",";
      first = false;
      out += JsonStr(name) + ":{\"count\":" + std::to_string(h->count()) +
             ",\"sum\":" + JsonNum(h->sum()) +
             ",\"min\":" + JsonNum(h->min()) +
             ",\"max\":" + JsonNum(h->max()) +
             ",\"mean\":" + JsonNum(h->Mean()) +
             ",\"p50\":" + JsonNum(h->Quantile(0.50)) +
             ",\"p99\":" + JsonNum(h->Quantile(0.99)) + "}";
    }
    out += "}}";
    return out;
  }

 private:
  // std::map: deterministic JSON field order; unique_ptr: stable addresses.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nlh::sim
