// Metrics registry: named counters, gauges, and histograms replacing
// ad-hoc stat-struct field twiddling. One registry per simulated host
// (campaigns parallelize across runs, each with its own registry), so no
// atomics are needed. Metric objects are owned by the registry and their
// addresses are stable — hot paths resolve a handle (or cache a pointer)
// once and bump it without a map lookup.
//
// Name lookup is an unordered_map (resolution happens at setup time, not
// on the hot path); deterministic field order is imposed only at JSON
// export, by sorting the names then.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/json.h"

namespace nlh::sim {

class Counter {
 public:
  void Inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  void Add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

// Exact-sample histogram (runs are short; memory is bounded by a sample
// cap after which only count/sum/min/max stay exact).
class Histogram {
 public:
  static constexpr std::size_t kMaxSamples = 1 << 16;

  void Observe(double v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    if (samples_.size() < kMaxSamples) samples_.push_back(v);
  }

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0 : min_; }
  double max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const {
    return count_ == 0 ? 0 : sum_ / static_cast<double>(count_);
  }
  // Exact quantile over the retained samples with linear interpolation
  // between closest ranks (the "exclusive" definition used by numpy's
  // default percentile): rank = q*(n-1), result = s[lo] + frac*(s[lo+1]-
  // s[lo]). q <= 0 yields the minimum sample, q >= 1 the maximum.
  double Quantile(double q) const {
    if (samples_.empty()) return 0;
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    if (q <= 0) return sorted.front();
    if (q >= 1) return sorted.back();
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= sorted.size()) return sorted.back();
    return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
  }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  std::vector<double> samples_;
};

// Pre-resolved handles: resolve once at setup (MetricsRegistry::*HandleFor),
// then the hot path is a single pointer dereference. A default-constructed
// handle is inert (valid() == false); using an invalid handle is UB, so
// hot-path call sites resolve in their constructor.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* c) : c_(c) {}
  void Inc(std::uint64_t delta = 1) { c_->Inc(delta); }
  std::uint64_t value() const { return c_->value(); }
  bool valid() const { return c_ != nullptr; }
  Counter* get() const { return c_; }

 private:
  Counter* c_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* g) : g_(g) {}
  void Set(double v) { g_->Set(v); }
  void Add(double delta) { g_->Add(delta); }
  bool valid() const { return g_ != nullptr; }
  Gauge* get() const { return g_; }

 private:
  Gauge* g_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* h) : h_(h) {}
  void Observe(double v) { h_->Observe(v); }
  bool valid() const { return h_ != nullptr; }
  Histogram* get() const { return h_; }

 private:
  Histogram* h_ = nullptr;
};

class MetricsRegistry {
 public:
  Counter& GetCounter(const std::string& name) {
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }
  Gauge& GetGauge(const std::string& name) {
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }
  Histogram& GetHistogram(const std::string& name) {
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>();
    return *slot;
  }

  CounterHandle CounterHandleFor(const std::string& name) {
    return CounterHandle(&GetCounter(name));
  }
  GaugeHandle GaugeHandleFor(const std::string& name) {
    return GaugeHandle(&GetGauge(name));
  }
  HistogramHandle HistogramHandleFor(const std::string& name) {
    return HistogramHandle(&GetHistogram(name));
  }

  const Counter* FindCounter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
  }
  const Histogram* FindHistogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
  }

  // {"counters":{...},"gauges":{...},"histograms":{name:{count,mean,...}}}
  // Field order is deterministic: names are sorted at export time (the
  // live maps are unordered; nothing ordered is maintained on the
  // registration path).
  std::string ToJson() const {
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto* kv : SortedByName(counters_)) {
      if (!first) out += ",";
      first = false;
      out += JsonStr(kv->first) + ":" + std::to_string(kv->second->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto* kv : SortedByName(gauges_)) {
      if (!first) out += ",";
      first = false;
      out += JsonStr(kv->first) + ":" + JsonNum(kv->second->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto* kv : SortedByName(histograms_)) {
      if (!first) out += ",";
      first = false;
      const Histogram* h = kv->second.get();
      out += JsonStr(kv->first) + ":{\"count\":" + std::to_string(h->count()) +
             ",\"sum\":" + JsonNum(h->sum()) +
             ",\"min\":" + JsonNum(h->min()) +
             ",\"max\":" + JsonNum(h->max()) +
             ",\"mean\":" + JsonNum(h->Mean()) +
             ",\"p50\":" + JsonNum(h->Quantile(0.50)) +
             ",\"p99\":" + JsonNum(h->Quantile(0.99)) + "}";
    }
    out += "}}";
    return out;
  }

 private:
  template <typename M>
  static std::vector<const typename M::value_type*> SortedByName(const M& m) {
    std::vector<const typename M::value_type*> out;
    out.reserve(m.size());
    for (const auto& kv : m) out.push_back(&kv);
    std::sort(out.begin(), out.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    return out;
  }

  // unordered_map: O(1) name resolution at setup; unique_ptr: stable
  // addresses for handles and cached pointers.
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nlh::sim
