// Span tracer for the simulator: structured, nested spans carrying
// *simulated* start/end times (sim::Time), the emitting CPU, and a parent
// link, stored in a bounded ring buffer and exportable in Chrome
// trace_event JSON ("X" complete events, chrome://tracing / Perfetto).
//
// Zero overhead when disabled: every recording call checks a single bool
// and returns immediately; no allocation, no storage, no span ids.
//
// Span names are interned: hot paths resolve a NameId once at setup
// (InternName survives Enable/Clear, so pre-resolved ids stay valid for
// the lifetime of the tracer) and record plain-struct entries with no
// string construction. The string-taking overloads intern on the fly and
// remain for cold paths. Strings are resolved back only in Snapshot().
//
// The simulator is single-threaded within one run (campaigns parallelize
// across runs, each with its own Hypervisor and therefore its own Tracer),
// so nesting is tracked with a plain open-span stack: Begin() pushes, End()
// pops, and a span's parent is whatever was on top when it began. Code
// whose simulated duration is only known after the fact (modeled latencies)
// can instead record complete spans with explicit times via Span().
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/json.h"
#include "sim/time.h"

namespace nlh::sim {

// Interned span-name id; index into the tracer's name table.
using NameId = std::uint32_t;

struct TraceEvent {
  std::uint32_t id = 0;
  std::uint32_t parent = 0;  // 0 = root (no enclosing span)
  Time start = 0;
  Time end = 0;
  int cpu = 0;
  std::string name;
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  void Enable(std::size_t capacity = kDefaultCapacity) {
    enabled_ = true;
    capacity_ = capacity == 0 ? 1 : capacity;
    Clear();
  }
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Discards recorded spans. The name-intern table is intentionally kept:
  // handles resolved before Enable()/Clear() must stay valid.
  void Clear() {
    ring_.clear();
    open_.clear();
    next_slot_ = 0;
    recorded_ = 0;
    next_id_ = 1;
  }

  // Resolves (registering if needed) the id for a span name. Valid whether
  // or not tracing is enabled, and stable across Enable/Disable/Clear.
  NameId InternName(const std::string& name) {
    auto it = name_ids_.find(name);
    if (it != name_ids_.end()) return it->second;
    const NameId id = static_cast<NameId>(names_.size());
    names_.push_back(name);
    name_ids_.emplace(name, id);
    return id;
  }

  // Opens a span at simulated time `start`, nested under the currently
  // innermost open span. Returns the span id (0 when disabled).
  std::uint32_t Begin(NameId name, int cpu, Time start) {
    if (!enabled_) return 0;
    Rec ev;
    ev.id = next_id_++;
    ev.parent = open_.empty() ? 0 : open_.back().id;
    ev.start = start;
    ev.end = start;
    ev.cpu = cpu;
    ev.name = name;
    open_.push_back(ev);
    return ev.id;
  }
  std::uint32_t Begin(const std::string& name, int cpu, Time start) {
    if (!enabled_) return 0;
    return Begin(InternName(name), cpu, start);
  }

  // Closes the span `id` at simulated time `end` and commits it to the ring
  // buffer. Spans must close innermost-first; closing a span also closes
  // (at the same instant) any forgotten spans nested inside it.
  void End(std::uint32_t id, Time end) {
    if (!enabled_ || id == 0) return;
    while (!open_.empty()) {
      Rec ev = open_.back();
      open_.pop_back();
      const bool match = ev.id == id;
      ev.end = std::max(end, ev.start);
      Commit(ev);
      if (match) return;
    }
  }

  // Records a complete span with explicit times as a child of the innermost
  // open span (modeled-latency recording).
  std::uint32_t Span(NameId name, int cpu, Time start, Time end) {
    if (!enabled_) return 0;
    Rec ev;
    ev.id = next_id_++;
    ev.parent = open_.empty() ? 0 : open_.back().id;
    ev.start = start;
    ev.end = std::max(end, start);
    ev.cpu = cpu;
    ev.name = name;
    Commit(ev);
    return ev.id;
  }
  std::uint32_t Span(const std::string& name, int cpu, Time start, Time end) {
    if (!enabled_) return 0;
    return Span(InternName(name), cpu, start, end);
  }

  // Zero-duration marker.
  std::uint32_t Instant(NameId name, int cpu, Time at) {
    return Span(name, cpu, at, at);
  }
  std::uint32_t Instant(const std::string& name, int cpu, Time at) {
    if (!enabled_) return 0;
    return Span(InternName(name), cpu, at, at);
  }

  // Committed spans, oldest first, sorted by start time (open spans are not
  // included until ended). Names are resolved from the intern table here.
  std::vector<TraceEvent> Snapshot() const {
    std::vector<Rec> recs;
    recs.reserve(ring_.size());
    // Ring order: next_slot_ points at the oldest entry once wrapped.
    if (recorded_ > ring_.size()) {
      recs.insert(recs.end(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(next_slot_),
                  ring_.end());
      recs.insert(recs.end(), ring_.begin(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(next_slot_));
    } else {
      recs = ring_;
    }
    std::stable_sort(recs.begin(), recs.end(),
                     [](const Rec& a, const Rec& b) { return a.start < b.start; });
    std::vector<TraceEvent> out;
    out.reserve(recs.size());
    for (const Rec& r : recs) {
      TraceEvent ev;
      ev.id = r.id;
      ev.parent = r.parent;
      ev.start = r.start;
      ev.end = r.end;
      ev.cpu = r.cpu;
      ev.name = names_[r.name];
      out.push_back(std::move(ev));
    }
    return out;
  }

  // Total spans committed (including any overwritten by the ring).
  std::uint64_t recorded() const { return recorded_; }
  // Spans lost to ring overwrite.
  std::uint64_t dropped() const {
    return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
  }

  // Chrome trace_event JSON: {"traceEvents":[{"ph":"X",...}, ...]}.
  // ts/dur are in microseconds (fractional) of simulated time; tid is the
  // emitting CPU so each CPU gets its own track.
  std::string ToChromeJson() const {
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const TraceEvent& ev : Snapshot()) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":" + JsonStr(ev.name) +
             ",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":" +
             JsonNum(static_cast<double>(ev.start) / kMicrosecond) +
             ",\"dur\":" +
             JsonNum(static_cast<double>(ev.end - ev.start) / kMicrosecond) +
             ",\"pid\":1,\"tid\":" + std::to_string(ev.cpu) +
             ",\"args\":{\"id\":" + std::to_string(ev.id) +
             ",\"parent\":" + std::to_string(ev.parent) + "}}";
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
  }

 private:
  // Internal record: plain data, no string — name is an intern-table index.
  struct Rec {
    std::uint32_t id = 0;
    std::uint32_t parent = 0;
    Time start = 0;
    Time end = 0;
    int cpu = 0;
    NameId name = 0;
  };

  void Commit(const Rec& ev) {
    if (ring_.size() < capacity_) {
      ring_.push_back(ev);
    } else {
      ring_[next_slot_] = ev;
      next_slot_ = (next_slot_ + 1) % capacity_;
    }
    ++recorded_;
  }

  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<Rec> ring_;
  std::vector<Rec> open_;  // stack of open spans
  std::size_t next_slot_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint32_t next_id_ = 1;
  std::vector<std::string> names_;                     // NameId -> name
  std::unordered_map<std::string, NameId> name_ids_;   // name -> NameId
};

// RAII span for scopes whose simulated duration is known at exit.
// The caller supplies the end time explicitly (simulated time does not
// advance implicitly inside a slice), defaulting to the start time.
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(Tracer& tracer, const std::string& name, int cpu, Time start)
      : tracer_(&tracer), start_(start), end_(start) {
    id_ = tracer.Begin(name, cpu, start);
  }
  TraceSpan(Tracer& tracer, NameId name, int cpu, Time start)
      : tracer_(&tracer), start_(start), end_(start) {
    id_ = tracer.Begin(name, cpu, start);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (tracer_ != nullptr && id_ != 0) tracer_->End(id_, end_);
  }

  void SetEnd(Time end) { end_ = end; }
  Time start() const { return start_; }
  std::uint32_t id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  std::uint32_t id_ = 0;
  Time start_ = 0;
  Time end_ = 0;
};

}  // namespace nlh::sim
