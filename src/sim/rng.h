// Deterministic pseudo-random number generation for reproducible campaigns.
//
// xoshiro256** seeded via SplitMix64, per Blackman & Vigna. Every fault
// injection run is fully determined by its 64-bit seed, so any run in a
// campaign can be replayed in isolation for debugging.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace nlh::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Reseed(seed); }

  void Reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t U64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(U64());  // full range
    return lo + static_cast<std::int64_t>(U64() % span);
  }

  std::size_t Index(std::size_t size) {
    return static_cast<std::size_t>(U64() % size);
  }

  // Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(U64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return Uniform() < p; }

  // Returns `value` with a uniformly random bit (0..width-1) flipped.
  std::uint64_t FlipRandomBit(std::uint64_t value, int width = 64) {
    const int bit = static_cast<int>(U64() % static_cast<std::uint64_t>(width));
    return value ^ (1ULL << bit);
  }

  // Splits off an independent child generator; used to give each subsystem
  // its own stream so adding draws in one subsystem does not perturb others.
  Rng Fork() { return Rng(U64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace nlh::sim
