// Move-only callable wrapper with small-buffer optimization, used where
// std::function's copy requirement and 16-byte inline budget cost real
// throughput: event-queue callbacks and hypercall undo records, both of
// which capture a handful of pointers/words and are invoked exactly once
// per schedule on the simulation hot path.
//
// Callables up to kInlineSize bytes (and with a no-throw move) live inside
// the wrapper; larger ones fall back to a single heap allocation. The
// wrapper is relocated with the target's move constructor via a static
// ops table (invoke / relocate / destroy), so moving a SmallFn never
// allocates and invoking it is one indirect call.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace nlh::sim {

class SmallFn {
 public:
  // Large enough for a lambda capturing six pointer-sized words, which
  // covers every callback the simulator schedules (verified by the
  // static_assert idiom at hot call sites growing past this: they simply
  // spill to the heap, they do not fail to compile).
  static constexpr std::size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      /*invoke=*/[](void* s) { (*static_cast<Fn*>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      /*destroy=*/[](void* s) { static_cast<Fn*>(s)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      /*invoke=*/[](void* s) { (**static_cast<Fn**>(s))(); },
      /*relocate=*/
      [](void* dst, void* src) {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      /*destroy=*/[](void* s) { delete *static_cast<Fn**>(s); },
  };

  void MoveFrom(SmallFn& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace nlh::sim
