// Cost-attribution profiler: folds the modeled-instruction-cost trace
// spans (sim/trace.h) into a collapsed-stack profile compatible with
// flamegraph.pl / inferno-flamegraph:
//
//   root;child;leaf <self_time_ns>
//
// one line per unique span path, weight = the span's SELF time in
// simulated nanoseconds (duration minus the time covered by its child
// spans), lines sorted lexicographically so the output is byte-stable.
// Render with e.g. `flamegraph.pl --countname ns profile.txt > prof.svg`.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

namespace nlh::forensics {

std::string CollapsedStackProfile(const std::vector<sim::TraceEvent>& spans);

}  // namespace nlh::forensics
