// Root-cause correlator: joins injection ground truth (what fault fired,
// when, and how it should manifest) with what the detectors actually
// reported, yielding a per-run detection classification and the
// injection→detection latency — a quantity the paper only reports
// indirectly (through the detection-latency discussion of Section VII-A).
//
// Header-only on purpose: core/outcome.h and core/campaign.cc use it, and
// it must depend on nothing heavier than the manifestation and detection
// enums.
#pragma once

#include "hv/failure.h"
#include "inject/corruption.h"
#include "sim/time.h"

namespace nlh::forensics {

// How the run's detection relates to the injected ground truth.
enum class DetectionClass {
  kNotApplicable = 0,  // no fault fired, or it never manifested
  kPrompt,             // detected, kind agrees, within the class threshold
  kDetectedLate,       // detected and kind agrees, but past the threshold
  kMisdetected,        // a detector fired but disagrees with ground truth
                       //   (wrong kind, or no detectable manifestation)
  kSilent,             // the fault manifested but no detector ever fired
};

inline const char* DetectionClassName(DetectionClass c) {
  switch (c) {
    case DetectionClass::kNotApplicable: return "not_applicable";
    case DetectionClass::kPrompt: return "prompt";
    case DetectionClass::kDetectedLate: return "detected_late";
    case DetectionClass::kMisdetected: return "misdetected";
    case DetectionClass::kSilent: return "silent";
  }
  return "?";
}

// Detection-latency threshold separating "prompt" from "detected late",
// per detector class: panics unwind to the entry point within the handler
// (sub-millisecond), while the NMI watchdog needs its 3 x 100 ms
// missed-increment window by design — so hangs are only "late" when they
// exceed the watchdog's own design latency with margin.
inline sim::Duration LateThresholdFor(hv::DetectionKind kind) {
  return kind == hv::DetectionKind::kHang ? sim::Milliseconds(500)
                                          : sim::Milliseconds(10);
}

// Whether a manifestation is supposed to trip a detector at all.
inline bool ManifestationDetectable(inject::Manifestation m) {
  return m == inject::Manifestation::kImmediatePanic ||
         m == inject::Manifestation::kDelayedPanic ||
         m == inject::Manifestation::kHang;
}

// Which detector class the ground truth predicts. Only meaningful when
// ManifestationDetectable(m).
inline hv::DetectionKind ExpectedDetectionKind(inject::Manifestation m) {
  return m == inject::Manifestation::kHang ? hv::DetectionKind::kHang
                                           : hv::DetectionKind::kPanic;
}

// Classifies one run. `latency` is injection→first-detection simulated
// time (negative = unknown/not detected). A detection whose kind disagrees
// with the predicted manifestation class is a misdetection even though
// *something* fired — e.g. a delayed-panic fault whose corruption deadlocks
// a CPU first, so the watchdog reports a hang the panic path never saw.
inline DetectionClass ClassifyDetection(bool injection_fired,
                                        inject::Manifestation manifestation,
                                        bool detected,
                                        hv::DetectionKind detected_kind,
                                        sim::Duration latency) {
  if (!injection_fired) {
    // Nothing was injected (or the trigger never fired): any detection is
    // the system accusing itself without cause.
    return detected ? DetectionClass::kMisdetected
                    : DetectionClass::kNotApplicable;
  }
  if (!detected) {
    if (manifestation == inject::Manifestation::kNone) {
      return DetectionClass::kNotApplicable;
    }
    return DetectionClass::kSilent;  // manifested (SDC or worse), undetected
  }
  if (!ManifestationDetectable(manifestation) ||
      ExpectedDetectionKind(manifestation) != detected_kind) {
    return DetectionClass::kMisdetected;
  }
  if (latency >= 0 && latency > LateThresholdFor(detected_kind)) {
    return DetectionClass::kDetectedLate;
  }
  return DetectionClass::kPrompt;
}

}  // namespace nlh::forensics
