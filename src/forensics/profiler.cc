#include "forensics/profiler.h"

#include <cstdint>
#include <map>
#include <unordered_map>

namespace nlh::forensics {

namespace {

// Frame separators and whitespace would corrupt the collapsed format.
std::string SanitizeFrame(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  return out.empty() ? std::string("?") : out;
}

}  // namespace

std::string CollapsedStackProfile(const std::vector<sim::TraceEvent>& spans) {
  // Index spans by id for parent-chain walks, and accumulate each span's
  // child coverage so self time = duration - children. Trace rings can
  // drop parents (overwritten spans); a child whose parent is missing is
  // treated as a root, and its time still counts toward its own frame.
  std::unordered_map<std::uint32_t, const sim::TraceEvent*> by_id;
  by_id.reserve(spans.size());
  for (const sim::TraceEvent& ev : spans) by_id[ev.id] = &ev;

  std::unordered_map<std::uint32_t, std::int64_t> child_time;
  for (const sim::TraceEvent& ev : spans) {
    if (ev.parent != 0 && by_id.count(ev.parent) != 0) {
      child_time[ev.parent] += ev.end - ev.start;
    }
  }

  std::map<std::string, std::uint64_t> weights;  // path -> self ns
  for (const sim::TraceEvent& ev : spans) {
    std::int64_t self = (ev.end - ev.start);
    auto it = child_time.find(ev.id);
    if (it != child_time.end()) self -= it->second;
    if (self <= 0) continue;  // fully covered by children (or zero-width)

    // Build root;...;self by walking the parent chain (bounded: a cycle
    // could only arise from id reuse after ring wrap).
    std::vector<const sim::TraceEvent*> chain{&ev};
    const sim::TraceEvent* cur = &ev;
    for (int depth = 0; depth < 64; ++depth) {
      if (cur->parent == 0) break;
      auto pit = by_id.find(cur->parent);
      if (pit == by_id.end()) break;
      cur = pit->second;
      chain.push_back(cur);
    }
    std::string path;
    for (auto rit = chain.rbegin(); rit != chain.rend(); ++rit) {
      if (!path.empty()) path += ";";
      path += SanitizeFrame((*rit)->name);
    }
    weights[path] += static_cast<std::uint64_t>(self);
  }

  std::string out;
  for (const auto& [path, ns] : weights) {
    out += path + " " + std::to_string(ns) + "\n";
  }
  return out;
}

}  // namespace nlh::forensics
