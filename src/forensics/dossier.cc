#include "forensics/dossier.h"

#include <cstdio>
#include <filesystem>

#include "core/target_system.h"
#include "forensics/profiler.h"
#include "hv/failure.h"
#include "inject/corruption.h"
#include "sim/json.h"

namespace nlh::forensics {

bool DossierWorthy(const core::RunResult& r) {
  if (r.outcome == core::OutcomeClass::kSdc) return true;
  if (r.detected && !r.success) return true;
  return r.latent_corruption;
}

namespace {

const char* Bool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string ConfigJson(const core::RunConfig& cfg) {
  std::string out = "{";
  out += "\"mechanism\":" + sim::JsonStr(core::MechanismName(cfg.mechanism));
  out += ",\"setup\":" + sim::JsonStr(cfg.setup == core::Setup::k1AppVM
                                          ? "1AppVM"
                                          : "3AppVM");
  out += ",\"fault\":" + sim::JsonStr(inject::FaultTypeName(cfg.fault));
  out += ",\"inject\":" + std::string(Bool(cfg.inject));
  out += ",\"audit\":" + std::string(Bool(cfg.audit));
  out += ",\"seed\":" + std::to_string(cfg.seed);
  out += ",\"num_cpus\":" + std::to_string(cfg.platform.num_cpus);
  // Scenario hooks (defaults encode the classic campaign behavior).
  out += ",\"trigger\":" +
         sim::JsonStr(inject::TriggerKindName(cfg.inject_trigger.kind));
  out += ",\"trigger_skip\":" + std::to_string(cfg.inject_trigger.skip);
  out += ",\"second_trigger\":" + std::to_string(cfg.inject_second_trigger);
  out += ",\"plants\":[";
  for (std::size_t i = 0; i < cfg.inject_plants.size(); ++i) {
    if (i) out += ",";
    out += "{\"target\":" +
           sim::JsonStr(inject::CorruptionTargetName(cfg.inject_plants[i].target)) +
           ",\"at_ns\":" + std::to_string(cfg.inject_plants[i].at) + "}";
  }
  out += "]}";
  return out;
}

std::string ResultJson(const core::RunResult& r) {
  std::string out = "{";
  out += "\"outcome\":" + sim::JsonStr(core::OutcomeClassName(r.outcome));
  out += ",\"detected\":" + std::string(Bool(r.detected));
  out += ",\"recoveries\":" + std::to_string(r.recoveries);
  out += ",\"success\":" + std::string(Bool(r.success));
  out += ",\"no_vm_failures\":" + std::string(Bool(r.no_vm_failures));
  out += ",\"failure_reason\":" +
         sim::JsonStr(hv::FailureReasonName(r.failure_reason));
  out += ",\"failure_detail\":" + sim::JsonStr(r.failure_detail);
  out += ",\"system_dead\":" + std::string(Bool(r.system_dead));
  out += ",\"death_reason\":" + sim::JsonStr(r.death_reason);
  out += ",\"detection_class\":" +
         sim::JsonStr(DetectionClassName(r.detection_class));
  out += ",\"detection_latency_ms\":";
  out += r.detection_latency >= 0
             ? sim::JsonNum(sim::ToMillisF(r.detection_latency), 6)
             : std::string("null");
  out += ",\"audited\":" + std::string(Bool(r.audited));
  out += ",\"audit_clean\":" + std::string(Bool(r.audit_clean));
  out += ",\"latent_corruption\":" + std::string(Bool(r.latent_corruption));
  out += ",\"vm3_attempted\":" + std::string(Bool(r.vm3_attempted));
  out += ",\"vm3_ok\":" + std::string(Bool(r.vm3_ok));
  out += ",\"vms\":[";
  for (std::size_t i = 0; i < r.vms.size(); ++i) {
    if (i) out += ",";
    out += "{\"name\":" + sim::JsonStr(r.vms[i].name) +
           ",\"affected\":" + Bool(r.vms[i].affected) +
           ",\"why\":" + sim::JsonStr(r.vms[i].why) + "}";
  }
  out += "]}";
  return out;
}

std::string InjectionJson(const core::RunResult& r) {
  std::string out = "{";
  out += "\"fired\":" + std::string(Bool(r.injection_fired));
  out += ",\"fired_at_ns\":" + std::to_string(r.injected_at);
  out += ",\"cpu\":" + std::to_string(r.injection_cpu);
  out += ",\"manifestation\":" +
         sim::JsonStr(inject::ManifestationName(r.manifestation));
  out += ",\"corruptions\":[";
  for (std::size_t i = 0; i < r.injection_corruptions.size(); ++i) {
    if (i) out += ",";
    out += sim::JsonStr(r.injection_corruptions[i]);
  }
  out += "],\"planted\":[";
  for (std::size_t i = 0; i < r.planted_corruptions.size(); ++i) {
    if (i) out += ",";
    out += sim::JsonStr(r.planted_corruptions[i]);
  }
  out += "]}";
  return out;
}

std::string DetectionJson(const core::RunResult& r) {
  if (!r.detected) return "null";
  const hv::DetectionEvent& ev = r.detection;
  return "{\"cpu\":" + std::to_string(ev.cpu) +
         ",\"kind\":" + sim::JsonStr(hv::DetectionKindName(ev.kind)) +
         ",\"code\":" + sim::JsonStr(hv::FailureCodeName(ev.code)) +
         ",\"when_ns\":" + std::to_string(ev.when) +
         ",\"detail\":" + sim::JsonStr(ev.detail) + "}";
}

ReplayArtifacts ReplayRun(const core::RunConfig& base_cfg, std::uint64_t run_id,
                          const ReplayOptions& opts) {
  core::RunConfig cfg = base_cfg;
  cfg.seed = run_id;
  if (opts.audit) cfg.audit = true;

  core::TargetSystem sys(cfg);
  sys.EnableTracing(opts.trace_capacity);
  sys.EnableFlightRecorder(opts.recorder_capacity);
  sys.platform().log().SetLevel(opts.log_level);

  ReplayArtifacts art;
  art.result = sys.Run();
  art.trace_json = sys.hv().tracer().ToChromeJson();
  art.profile = CollapsedStackProfile(sys.hv().tracer().Snapshot());

  std::string out = "{";
  out += "\"schema\":\"nlh-dossier-v1\"";
  out += ",\"run_id\":" + std::to_string(run_id);
  out += ",\"config\":" + ConfigJson(cfg);
  out += ",\"result\":" + ResultJson(art.result);
  out += ",\"injection\":" + InjectionJson(art.result);
  out += ",\"detection\":" + DetectionJson(art.result);
  out += ",\"audit_findings\":" + art.result.audit_report.ToJson();
  out += ",\"recorder\":" + sys.hv().flight_recorder().ToJson();
  out += ",\"trace\":" + art.trace_json;
  out += "}";
  art.dossier_json = std::move(out);
  return art;
}

std::string WriteDossier(const core::RunConfig& base_cfg, std::uint64_t run_id,
                         const std::string& dir, const ReplayOptions& opts) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";

  const ReplayArtifacts art = ReplayRun(base_cfg, run_id, opts);
  const std::string path =
      (std::filesystem::path(dir) / ("run_" + std::to_string(run_id) + ".json"))
          .string();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return "";
  const std::size_t n = std::fwrite(art.dossier_json.data(), 1,
                                    art.dossier_json.size(), f);
  const bool ok = (n == art.dossier_json.size()) && (std::fclose(f) == 0);
  return ok ? path : "";
}

}  // namespace nlh::forensics
