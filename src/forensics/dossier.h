// Failure dossiers: one self-contained JSON bundle per interesting run,
// assembled by deterministically *replaying* the run with full telemetry on.
//
// Campaigns run with the flight recorder, tracer, and logger off for speed;
// when a run fails (or recovers with latent corruption) the campaign tool
// re-executes that exact run — same RunConfig, seed == run_id — with the
// recorder and tracer enabled. Determinism of the simulator guarantees the
// replay reproduces the original byte-for-byte, so the dossier captures the
// true failing execution, not a statistical cousin.
//
// A dossier bundles everything the paper's failure analysis (Section VII-A)
// needs to attribute one run: the injection ground truth, the detection
// event with a machine-state snapshot at detection time, the last-N flight
// recorder events per CPU leading up to it, the end-of-run audit findings,
// and the full trace-span timeline.
#pragma once

#include <cstdint>
#include <string>

#include "core/campaign.h"
#include "core/config.h"
#include "core/outcome.h"
#include "sim/log.h"

namespace nlh::forensics {

// A run deserves a dossier when the behavioral or audit classification says
// something went wrong: a detected run that did not fully recover, a
// successful recovery carrying latent corruption, or silent data corruption.
bool DossierWorthy(const core::RunResult& r);

struct ReplayOptions {
  std::size_t recorder_capacity = 256;   // per-CPU flight recorder ring
  std::size_t trace_capacity = 4096;     // trace span ring
  sim::LogLevel log_level = sim::LogLevel::kNone;  // stderr logging (replay CLI)
  bool audit = true;  // force the state audit on so dossiers carry findings
};

struct ReplayArtifacts {
  core::RunResult result;
  std::string dossier_json;  // the full failure dossier (see dossier.cc)
  std::string trace_json;    // Chrome trace_event JSON of the replay
  std::string profile;       // collapsed-stack cost-attribution profile
};

// Dossier JSON building blocks, exposed so other emitters (the scenario
// fuzzer's minimal-reproducer bundles) can stay schema-compatible with
// nlh-dossier-v1 instead of inventing parallel encodings.
std::string ConfigJson(const core::RunConfig& cfg);
std::string ResultJson(const core::RunResult& r);
std::string InjectionJson(const core::RunResult& r);
std::string DetectionJson(const core::RunResult& r);  // "null" if undetected

// Deterministically re-executes run `run_id` of `base_cfg` (seed := run_id)
// with the flight recorder + tracer enabled and assembles the artifacts.
ReplayArtifacts ReplayRun(const core::RunConfig& base_cfg, std::uint64_t run_id,
                          const ReplayOptions& opts = {});

// Replays `run_id` and writes its dossier to `dir/run_<run_id>.json`,
// creating `dir` if missing. Returns the written path, or "" on I/O failure.
std::string WriteDossier(const core::RunConfig& base_cfg, std::uint64_t run_id,
                         const std::string& dir, const ReplayOptions& opts = {});

}  // namespace nlh::forensics
