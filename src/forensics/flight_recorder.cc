#include "forensics/flight_recorder.h"

#include "sim/json.h"

namespace nlh::forensics {

const char* EventKindName(EventKind k) {
  switch (k) {
    case EventKind::kHypercallEnter: return "hypercall_enter";
    case EventKind::kHypercallExit: return "hypercall_exit";
    case EventKind::kSyscallForward: return "syscall_forward";
    case EventKind::kVmExit: return "vm_exit";
    case EventKind::kIrqRaise: return "irq_raise";
    case EventKind::kIrqDeliver: return "irq_deliver";
    case EventKind::kIrqAck: return "irq_ack";
    case EventKind::kIpi: return "ipi";
    case EventKind::kNmi: return "nmi";
    case EventKind::kApicFire: return "apic_fire";
    case EventKind::kTimerFire: return "timer_fire";
    case EventKind::kSchedule: return "sched_decision";
    case EventKind::kSchedRepair: return "sched_repair";
    case EventKind::kLockAcquire: return "lock_acquire";
    case EventKind::kLockRelease: return "lock_release";
    case EventKind::kPanicRaised: return "panic_raised";
    case EventKind::kCpuHung: return "cpu_hung";
    case EventKind::kInjectionFired: return "injection_fired";
    case EventKind::kCorruptionApplied: return "corruption_applied";
    case EventKind::kDetection: return "detection";
    case EventKind::kRecoveryPhase: return "recovery_phase";
    case EventKind::kDeath: return "death";
    case EventKind::kDomainCreate: return "domain_create";
    case EventKind::kDomainDestroy: return "domain_destroy";
    case EventKind::kLogLine: return "log_line";
    case EventKind::kCount: break;
  }
  return "?";
}

bool FlightRecorder::IsPinnedKind(EventKind kind) {
  switch (kind) {
    case EventKind::kSchedRepair:
    case EventKind::kPanicRaised:
    case EventKind::kCpuHung:
    case EventKind::kInjectionFired:
    case EventKind::kCorruptionApplied:
    case EventKind::kDetection:
    case EventKind::kRecoveryPhase:
    case EventKind::kDeath:
    case EventKind::kDomainCreate:
    case EventKind::kDomainDestroy:
      return true;
    default:
      return false;
  }
}

void FlightRecorder::Enable(int num_cpus, std::size_t per_cpu_capacity) {
  num_cpus_ = num_cpus < 0 ? 0 : num_cpus;
  capacity_ = per_cpu_capacity == 0 ? 1 : per_cpu_capacity;
  rings_.assign(static_cast<std::size_t>(num_cpus_) + 1, Ring{});
  pinned_.clear();
  pinned_dropped_ = 0;
  recorded_ = 0;
  seq_ = 0;
  detection_snapshot_.clear();
  enabled_ = true;
}

FlightRecorder::Ring& FlightRecorder::RingFor(int cpu) {
  if (cpu < 0 || cpu >= num_cpus_) return rings_.back();  // global ring
  return rings_[static_cast<std::size_t>(cpu)];
}

void FlightRecorder::Record(EventKind kind, int cpu, std::uint64_t arg0,
                            std::uint64_t arg1, std::string detail) {
  if (!enabled_) return;
  FlightEvent ev;
  ev.seq = seq_++;
  ev.at = clock_ ? clock_() : 0;
  ev.kind = kind;
  ev.cpu = cpu;
  ev.arg0 = arg0;
  ev.arg1 = arg1;
  ev.detail = std::move(detail);
  if (IsPinnedKind(kind)) {
    if (pinned_.size() < kPinnedCapacity) {
      pinned_.push_back(ev);
    } else {
      ++pinned_dropped_;
    }
  }
  Ring& ring = RingFor(cpu);
  if (ring.slots.size() < capacity_) {
    ring.slots.push_back(std::move(ev));
  } else {
    ring.slots[ring.next] = std::move(ev);
    ring.next = (ring.next + 1) % capacity_;
  }
  ++ring.count;
  ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::RingSnapshot(const Ring& ring) {
  std::vector<FlightEvent> out;
  out.reserve(ring.slots.size());
  // Once wrapped, `next` points at the oldest slot.
  if (ring.count > ring.slots.size()) {
    out.insert(out.end(),
               ring.slots.begin() + static_cast<std::ptrdiff_t>(ring.next),
               ring.slots.end());
    out.insert(out.end(), ring.slots.begin(),
               ring.slots.begin() + static_cast<std::ptrdiff_t>(ring.next));
  } else {
    out = ring.slots;
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::SnapshotCpu(int cpu) const {
  if (rings_.empty()) return {};
  if (cpu >= num_cpus_) return {};
  const Ring& ring =
      cpu < 0 ? rings_.back() : rings_[static_cast<std::size_t>(cpu)];
  return RingSnapshot(ring);
}

std::uint64_t FlightRecorder::dropped() const {
  std::uint64_t d = 0;
  for (const Ring& r : rings_) {
    if (r.count > r.slots.size()) d += r.count - r.slots.size();
  }
  return d;
}

void FlightRecorder::SetDetectionSnapshot(std::string json) {
  if (detection_snapshot_.empty()) detection_snapshot_ = std::move(json);
}

namespace {

void AppendEventsJson(std::string& out, const std::vector<FlightEvent>& evs) {
  out += "[";
  bool first = true;
  for (const FlightEvent& ev : evs) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":" + std::to_string(ev.seq) +
           ",\"t_ns\":" + std::to_string(ev.at) +
           ",\"kind\":" + sim::JsonStr(EventKindName(ev.kind)) +
           ",\"cpu\":" + std::to_string(ev.cpu) +
           ",\"arg0\":" + std::to_string(ev.arg0) +
           ",\"arg1\":" + std::to_string(ev.arg1) +
           ",\"detail\":" + sim::JsonStr(ev.detail) + "}";
  }
  out += "]";
}

}  // namespace

void FlightRecorder::AppendRingJson(std::string& out, const Ring& ring) {
  AppendEventsJson(out, RingSnapshot(ring));
}

std::string FlightRecorder::ToJson() const {
  std::string out = "{\"dropped\":" + std::to_string(dropped()) +
                    ",\"pinned_dropped\":" + std::to_string(pinned_dropped_) +
                    ",\"detection_snapshot\":";
  out += detection_snapshot_.empty() ? "null" : detection_snapshot_;
  out += ",\"pinned\":";
  AppendEventsJson(out, pinned_);
  out += ",\"global\":";
  if (rings_.empty()) {
    out += "[]";
  } else {
    AppendRingJson(out, rings_.back());
  }
  out += ",\"per_cpu\":[";
  for (int c = 0; c < num_cpus_; ++c) {
    if (c) out += ",";
    AppendRingJson(out, rings_[static_cast<std::size_t>(c)]);
  }
  out += "]}";
  return out;
}

}  // namespace nlh::forensics
