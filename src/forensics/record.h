// NLH_RECORD(kind, cpu [, arg0 [, arg1 [, detail]]]): the flight-recorder
// hook woven through hw/, hv/, inject/, detect/ and recovery/.
//
// Expands to a check of the thread-local current recorder (installed by the
// owning Hypervisor's RecorderScope); the variadic arguments — including
// any string construction for `detail` — are evaluated only when a recorder
// is installed AND enabled, so the disabled-at-runtime cost is one
// thread-local load and a branch.
//
// Compiling with -DNLH_NO_FLIGHT_RECORDER (CMake -DNLH_FLIGHT_RECORDER=OFF)
// expands every hook to ((void)0): zero code in the hot paths.
#pragma once

#include "forensics/flight_recorder.h"

#ifdef NLH_NO_FLIGHT_RECORDER

#define NLH_RECORD(kind, cpu, ...) ((void)0)

#else

#define NLH_RECORD(kind, cpu, ...)                                    \
  do {                                                                \
    ::nlh::forensics::FlightRecorder* nlh_rec_ =                      \
        ::nlh::forensics::CurrentRecorder();                          \
    if (nlh_rec_ != nullptr && nlh_rec_->enabled()) {                 \
      nlh_rec_->Record((kind), (cpu)__VA_OPT__(, ) __VA_ARGS__);      \
    }                                                                 \
  } while (0)

#endif
