// FlightRecorder: fixed-capacity per-CPU ring buffers of typed,
// simulated-time-stamped events — the "black box" a FailureDossier reads
// out after a failed run (ReHype's failure-class analysis reconstructs the
// event sequence leading to the crash; this records it as it happens).
//
// Recording sites are woven through hw/, hv/, inject/, detect/ and
// recovery/ behind the NLH_RECORD(...) macro (forensics/record.h), which
// compiles out entirely under -DNLH_NO_FLIGHT_RECORDER (CMake option
// NLH_FLIGHT_RECORDER=OFF). The recorder stamps simulated time itself via
// an injected clock callback, so call-sites never need a time source.
//
// Hardware-layer components (SpinLock, ApicTimer, InterruptController)
// have no back-pointer to the hypervisor that owns the recorder; instead a
// thread-local "current recorder" pointer is installed by RecorderScope,
// which the owning Hypervisor holds for its lifetime. This is safe because
// the simulator is single-threaded within one run (campaigns parallelize
// across runs, each worker thread constructing and destroying its own
// TargetSystem, and therefore its own recorder, on that thread).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.h"

namespace nlh::forensics {

// Event taxonomy. Slugs (EventKindName) are stable identifiers used in
// dossier JSON; extend at the end, never renumber.
enum class EventKind : std::uint8_t {
  kHypercallEnter = 0,
  kHypercallExit,
  kSyscallForward,
  kVmExit,
  kIrqRaise,       // vector became pending (IRR set)
  kIrqDeliver,     // vector accepted for handling
  kIrqAck,         // recovery AckAll swept a CPU's IRR/ISR
  kIpi,            // inter-processor interrupt sent
  kNmi,            // watchdog NMI sampled a CPU (arg0=count, arg1=misses)
  kApicFire,       // one-shot APIC timer expired
  kTimerFire,      // software timer popped from the heap
  kSchedule,       // scheduling decision (arg0=prev+1, arg1=next+1; 0=none)
  kSchedRepair,    // scheduler-metadata repair pass (arg0=fixes)
  kLockAcquire,
  kLockRelease,
  kPanicRaised,    // HvPanic constructed (about to unwind)
  kCpuHung,        // CPU marked hung (silent; watchdog must notice)
  kInjectionFired,     // ground truth: the injected fault fired
  kCorruptionApplied,  // ground truth: one corruption action (arg0=target)
  kDetection,      // a detector reported an error (arg0=kind, arg1=code)
  kRecoveryPhase,  // one recovery step completed (arg0=phase, arg1=ns)
  kDeath,          // platform marked dead (arg0=FailureReason)
  kDomainCreate,
  kDomainDestroy,
  kLogLine,        // sim::Logger line routed into the recorder (arg0=level)
  kCount,
};

const char* EventKindName(EventKind k);

struct FlightEvent {
  std::uint64_t seq = 0;   // global record order (monotonic across CPUs)
  sim::Time at = 0;        // simulated time
  EventKind kind = EventKind::kCount;
  int cpu = -1;            // -1 = not CPU-local (global ring)
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::string detail;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  // Allocates one ring per CPU plus one "global" ring for events that are
  // not CPU-local (cpu = -1). Re-enabling clears all rings.
  void Enable(int num_cpus, std::size_t per_cpu_capacity = kDefaultCapacity);
  void Disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // Injected simulated-time source (the owning hypervisor's Now()).
  void SetClock(std::function<sim::Time()> clock) { clock_ = std::move(clock); }

  void Record(EventKind kind, int cpu, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0, std::string detail = {});

  // Ring contents oldest-first. cpu = -1 returns the global ring; an
  // out-of-range cpu returns empty.
  std::vector<FlightEvent> SnapshotCpu(int cpu) const;

  // Rare, high-value events (injection ground truth, detections, recovery
  // steps, panics, domain lifecycle, death) are additionally copied to this
  // pinned channel, which never wraps: hours of hot-path chatter cannot
  // displace the handful of events a dossier is actually about. Bounded by
  // kPinnedCapacity (overflow counted in pinned_dropped()).
  static constexpr std::size_t kPinnedCapacity = 1024;
  static bool IsPinnedKind(EventKind kind);
  const std::vector<FlightEvent>& pinned() const { return pinned_; }
  std::uint64_t pinned_dropped() const { return pinned_dropped_; }

  int num_cpus() const { return num_cpus_; }
  std::uint64_t recorded() const { return recorded_; }
  // Events lost to ring overwrite, across all rings.
  std::uint64_t dropped() const;

  // Register/per-CPU state captured at the first detection of the run
  // (pre-formatted JSON, assembled by Hypervisor::ReportError so the
  // forensics layer stays independent of hw/hv headers). Empty until set;
  // only the first capture sticks.
  void SetDetectionSnapshot(std::string json);
  bool has_detection_snapshot() const { return !detection_snapshot_.empty(); }
  const std::string& detection_snapshot() const { return detection_snapshot_; }

  // {"dropped":N,"pinned_dropped":N,"detection_snapshot":{...}|null,
  //  "pinned":[...],"global":[...],"per_cpu":[[...],...]} — events as
  // {"seq":..,"t_ns":..,"kind":"..","cpu":..,"arg0":..,"arg1":..,
  //  "detail":".."}. All-integer timestamps keep the output byte-stable.
  std::string ToJson() const;

 private:
  struct Ring {
    std::vector<FlightEvent> slots;  // filled up to capacity, then wraps
    std::size_t next = 0;            // oldest slot once wrapped
    std::uint64_t count = 0;         // total events pushed
  };

  Ring& RingFor(int cpu);
  static void AppendRingJson(std::string& out, const Ring& ring);
  static std::vector<FlightEvent> RingSnapshot(const Ring& ring);

  bool enabled_ = false;
  int num_cpus_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  std::vector<Ring> rings_;  // [0..num_cpus) per-CPU, [num_cpus] global
  std::vector<FlightEvent> pinned_;
  std::uint64_t pinned_dropped_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t seq_ = 0;
  std::function<sim::Time()> clock_;
  std::string detection_snapshot_;
};

// --- Thread-local current recorder -----------------------------------------
// Installed by the owning Hypervisor via RecorderScope; read by NLH_RECORD.
inline thread_local FlightRecorder* t_current_recorder = nullptr;

inline FlightRecorder* CurrentRecorder() { return t_current_recorder; }
inline void SetCurrentRecorder(FlightRecorder* r) { t_current_recorder = r; }

// RAII installer. Restores the previous recorder on destruction; tolerant
// of non-LIFO destruction orders (it only uninstalls itself if it is still
// the current one), so overlapping Hypervisor lifetimes in tests are safe.
class RecorderScope {
 public:
  explicit RecorderScope(FlightRecorder* r)
      : mine_(r), prev_(CurrentRecorder()) {
    SetCurrentRecorder(r);
  }
  ~RecorderScope() {
    if (CurrentRecorder() == mine_) SetCurrentRecorder(prev_);
  }

  RecorderScope(const RecorderScope&) = delete;
  RecorderScope& operator=(const RecorderScope&) = delete;

 private:
  FlightRecorder* mine_;
  FlightRecorder* prev_;
};

}  // namespace nlh::forensics
