// The state-audit engine: a sweep over every recovery-critical hypervisor
// structure that emits typed findings (finding.h) instead of panicking.
//
// The recovery mechanisms restore *internal* consistency (e.g. the frame
// scan makes the validation bit, type, and use counter of each descriptor
// agree with each other) but cannot restore *referential* consistency —
// whether the use counter matches the references that actually exist in
// page tables and grant entries. The auditor checks both, which is what
// lets a campaign split "successful recovery" into audit-clean vs
// latent-corruption (the residual-failure class the ReHype follow-up
// analysis identifies).
//
// The auditor must be runnable on an arbitrarily-damaged platform without
// itself panicking or hanging: every walk it performs is bounded and
// validity-checked (it uses FreeChunkExtents(), not the throwing free-list
// walk; it skips runqueue reachability on a runqueue whose linkage already
// failed validation). It runs at event-queue boundaries — a quiescent
// instant with no handler mid-flight — so held locks and nonzero IRQ
// nesting are findings, not transient states; both checks are skipped when
// the platform is frozen for recovery.
//
// Audit cost is modeled, not free: each pass charges a per-entry cost into
// AuditReport::modeled_cost and emits an "audit:<subsystem>" tracer span,
// so campaigns can account audit overhead alongside recovery latency.
#pragma once

#include "audit/finding.h"
#include "audit/snapshot.h"
#include "hv/hypervisor.h"

namespace nlh::audit {

class StateAuditor {
 public:
  explicit StateAuditor(hv::Hypervisor& hv) : hv_(hv) {}

  StateAuditor(const StateAuditor&) = delete;
  StateAuditor& operator=(const StateAuditor&) = delete;

  // Full sweep over every subsystem.
  AuditReport Audit();
  // Full sweep plus differential findings against a golden snapshot
  // (divergence classes are informational; functional invariants decide
  // cleanliness).
  AuditReport Audit(const GoldenSnapshot& snapshot);

  // Individual passes, exposed so tests can exercise one subsystem's
  // invariants in isolation. Each appends findings and charges its modeled
  // cost into `r`.
  void AuditFrameTable(AuditReport& r);
  void AuditHeap(AuditReport& r);
  void AuditTimers(AuditReport& r);
  void AuditScheduler(AuditReport& r);
  void AuditLocks(AuditReport& r);
  void AuditEventChannels(AuditReport& r);
  void AuditGrantTables(AuditReport& r);
  void AuditPerCpu(AuditReport& r);
  void AuditStatics(AuditReport& r);
  void AuditDiff(AuditReport& r, const GoldenSnapshot& snapshot);

 private:
  AuditReport Run(const GoldenSnapshot* snapshot);
  void Emit(AuditReport& r, AuditSubsystem subsystem, const char* invariant,
            AuditSeverity severity, std::string detail);

  hv::Hypervisor& hv_;
};

}  // namespace nlh::audit
