// Typed audit findings: the output vocabulary of the state-audit engine.
//
// The paper classifies each injection run as success / SDC / failure by
// observing guest-visible behavior (Section VI-B). A run can pass that
// classification while leaving latent corruption inside the hypervisor —
// stale frame use counters, leaked heap objects, orphaned timers — which
// the ReHype follow-up analysis identifies as the dominant residual-failure
// class. Findings give that latent state a stable, machine-readable name so
// campaigns can split "success" into audit-clean vs latent-corruption.
#pragma once

#include <string>
#include <vector>

#include "sim/json.h"
#include "sim/time.h"

namespace nlh::audit {

// Which hypervisor structure the finding is about. Slugs are stable: metric
// names, campaign JSON columns, and tests key on them.
enum class AuditSubsystem {
  kFrameTable = 0,
  kHeap,
  kTimer,
  kScheduler,
  kLocks,
  kEventChannel,
  kGrantTable,
  kPerCpu,
  kStatics,
  kDiff,  // differential findings vs the golden snapshot
  kCount,
};

inline constexpr int kNumAuditSubsystems =
    static_cast<int>(AuditSubsystem::kCount);

inline const char* AuditSubsystemName(AuditSubsystem s) {
  switch (s) {
    case AuditSubsystem::kFrameTable: return "frame_table";
    case AuditSubsystem::kHeap: return "heap";
    case AuditSubsystem::kTimer: return "timer";
    case AuditSubsystem::kScheduler: return "scheduler";
    case AuditSubsystem::kLocks: return "locks";
    case AuditSubsystem::kEventChannel: return "event_channel";
    case AuditSubsystem::kGrantTable: return "grant_table";
    case AuditSubsystem::kPerCpu: return "percpu";
    case AuditSubsystem::kStatics: return "statics";
    case AuditSubsystem::kDiff: return "diff";
    case AuditSubsystem::kCount: break;
  }
  return "?";
}

enum class AuditSeverity {
  kInfo = 0,  // divergence worth reporting, no functional consequence
  kLatent,    // functionally wrong state that has not yet manifested
  kFatal,     // state that will panic/hang the next code path touching it
};

inline const char* AuditSeverityName(AuditSeverity s) {
  switch (s) {
    case AuditSeverity::kInfo: return "info";
    case AuditSeverity::kLatent: return "latent";
    case AuditSeverity::kFatal: return "fatal";
  }
  return "?";
}

struct AuditFinding {
  AuditSubsystem subsystem = AuditSubsystem::kFrameTable;
  std::string invariant;  // stable slug, e.g. "frame.use_count_referential"
  AuditSeverity severity = AuditSeverity::kLatent;
  std::string detail;     // human-readable diagnostic

  std::string ToJson() const {
    return std::string("{\"subsystem\":") +
           sim::JsonStr(AuditSubsystemName(subsystem)) +
           ",\"invariant\":" + sim::JsonStr(invariant) +
           ",\"severity\":" + sim::JsonStr(AuditSeverityName(severity)) +
           ",\"detail\":" + sim::JsonStr(detail) + "}";
  }
};

// The result of one audit sweep.
struct AuditReport {
  std::vector<AuditFinding> findings;
  // Modeled simulated cost of the sweep (per-entry charges; see
  // StateAuditor). Exposed so campaigns can account audit cost the same way
  // they account recovery phase latency.
  sim::Time modeled_cost = 0;

  bool clean() const { return findings.empty(); }

  // Findings that make the platform state functionally wrong (severity
  // above kInfo). Differential/info findings do not make a run dirty.
  int CorruptionCount() const {
    int n = 0;
    for (const AuditFinding& f : findings) {
      if (f.severity != AuditSeverity::kInfo) ++n;
    }
    return n;
  }

  int CountFor(AuditSubsystem s) const {
    int n = 0;
    for (const AuditFinding& f : findings) n += (f.subsystem == s) ? 1 : 0;
    return n;
  }

  bool HasInvariant(const std::string& slug) const {
    for (const AuditFinding& f : findings) {
      if (f.invariant == slug) return true;
    }
    return false;
  }

  std::string ToJson() const {
    std::string out = "[";
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (i) out += ",";
      out += findings[i].ToJson();
    }
    out += "]";
    return out;
  }
};

}  // namespace nlh::audit
