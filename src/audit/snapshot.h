// Golden snapshot for the auditor's differential mode.
//
// Captured on a healthy platform (before injection arms), it shadows the
// coarse shape of every recovery-critical structure. After recovery the
// auditor diffs the live platform against it and reports divergence
// classes: heap growth with no owning domain (leak census), frame-table
// population drift, lost timers, static-segment damage. The snapshot is
// deliberately shallow — counts and identity sets, not deep copies — so
// capturing it costs one sweep and holds no references into the live state.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "hv/hypervisor.h"

namespace nlh::audit {

struct GoldenSnapshot {
  bool captured = false;
  sim::Time captured_at = 0;

  // Frame table census.
  std::uint64_t frames_allocated = 0;

  // Heap census.
  std::uint64_t heap_allocated_pages = 0;
  std::uint64_t heap_objects = 0;
  std::set<hv::HeapObjectId> heap_object_ids;
  std::map<std::string, int> heap_objects_by_tag;

  // Per-CPU timer census: number of system-recurring entries.
  std::map<int, int> recurring_timers_by_cpu;

  // Event-channel / grant census.
  int open_event_ports = 0;
  int mapped_grants = 0;

  // Domains present (leak attribution: heap objects created for a domain
  // that exists are growth, not a leak).
  std::set<hv::DomainId> domains;

  int statics_corrupted = 0;

  static GoldenSnapshot Capture(hv::Hypervisor& hv);
};

}  // namespace nlh::audit
