#include "audit/state_auditor.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace nlh::audit {

namespace {

// Modeled per-entry sweep costs. The frame-table charge matches the order
// of magnitude of the recovery scan's per-descriptor cost; the rest are
// pointer-chasing walks over much smaller structures.
constexpr sim::Duration kFrameCost = 6;        // per frame descriptor
constexpr sim::Duration kHeapObjectCost = 40;  // per heap object / chunk
constexpr sim::Duration kTimerCost = 25;       // per timer-heap entry
constexpr sim::Duration kVcpuCost = 30;        // per vCPU
constexpr sim::Duration kPortCost = 15;        // per event channel port
constexpr sim::Duration kGrantCost = 15;       // per grant entry
constexpr sim::Duration kLockCost = 10;        // per registered lock
constexpr sim::Duration kStaticCost = 50;      // per static variable

// A software timer deadline further out than this is considered pushed out
// of reach: every legitimate timer in the simulator (recurring system
// events <= 500 ms, vCPU one-shots, APIC slices) fires well inside it.
constexpr sim::Duration kDeadlineHorizon = sim::Seconds(3600);

// Parses a per-vCPU one-shot timer name "vtimer:<id>"; returns -1 if the
// name has a different shape.
hv::VcpuId ParseVtimerName(const std::string& name) {
  constexpr const char* kPrefix = "vtimer:";
  if (name.rfind(kPrefix, 0) != 0) return -1;
  return static_cast<hv::VcpuId>(std::atoll(name.c_str() + 7));
}

}  // namespace

void StateAuditor::Emit(AuditReport& r, AuditSubsystem subsystem,
                        const char* invariant, AuditSeverity severity,
                        std::string detail) {
  AuditFinding f;
  f.subsystem = subsystem;
  f.invariant = invariant;
  f.severity = severity;
  f.detail = std::move(detail);
  r.findings.push_back(std::move(f));
}

// --- Frame table -----------------------------------------------------------

void StateAuditor::AuditFrameTable(AuditReport& r) {
  hv::FrameTable& frames = hv_.frames();
  const std::uint64_t n = frames.size();
  r.modeled_cost += static_cast<sim::Duration>(n) * kFrameCost;

  // Reference census: how many references to each frame actually exist in
  // guest page tables (pte_present) and grant entries (map_count). The
  // baseline reference from allocation itself is 1.
  std::map<hv::FrameNumber, std::int64_t> refs;
  for (hv::Domain& dom : hv_.domains()) {
    for (std::size_t s = 0; s < dom.pte_present.size(); ++s) {
      if (dom.pte_present[s]) {
        ++refs[dom.first_frame + static_cast<hv::FrameNumber>(s)];
      }
    }
    for (hv::GrantRef g = 0; g < hv::kGrantTableSize; ++g) {
      const hv::GrantEntry& e = dom.grants.At(g);
      if (e.map_count > 0 && e.frame < static_cast<hv::FrameNumber>(n)) {
        refs[e.frame] += e.map_count;
      }
    }
  }

  std::uint64_t populated = 0;
  for (hv::FrameNumber f = 0; f < static_cast<hv::FrameNumber>(n); ++f) {
    const hv::PageFrameDescriptor& d = frames.desc(f);
    if (d.type != hv::FrameType::kFree) ++populated;

    if (!hv::FrameTable::Consistent(d)) {
      Emit(r, AuditSubsystem::kFrameTable, "frame.descriptor_consistent",
           AuditSeverity::kFatal,
           "frame " + std::to_string(f) + ": type=" +
               std::to_string(static_cast<int>(d.type)) +
               " validated=" + std::to_string(d.validated) +
               " use_count=" + std::to_string(d.use_count));
      continue;  // referential checks assume internal consistency
    }
    if (d.type == hv::FrameType::kFree) continue;

    const bool guest_frame = d.type == hv::FrameType::kDomainPage ||
                             d.type == hv::FrameType::kPageTable;
    if (guest_frame && hv_.FindDomain(d.owner) == nullptr) {
      Emit(r, AuditSubsystem::kFrameTable, "frame.orphaned_owner",
           AuditSeverity::kLatent,
           "frame " + std::to_string(f) + " owned by unknown domain " +
               std::to_string(d.owner));
      continue;
    }

    // Referential use-count check. The expected count is a range, not a
    // point: the recovery scan repairs a validated descriptor to
    // use_count >= 1 without knowing whether the pin itself still holds a
    // reference, so the validation bit contributes only to the upper bound.
    auto it = refs.find(f);
    const std::int64_t external = (it == refs.end()) ? 0 : it->second;
    const std::int64_t expected_min = 1 + external;
    const std::int64_t expected_max = expected_min + (d.validated ? 1 : 0);
    if (d.use_count < expected_min || d.use_count > expected_max) {
      Emit(r, AuditSubsystem::kFrameTable, "frame.use_count_referential",
           AuditSeverity::kLatent,
           "frame " + std::to_string(f) + ": use_count=" +
               std::to_string(d.use_count) + " but references present=[" +
               std::to_string(expected_min) + "," +
               std::to_string(expected_max) + "]");
    }
  }

  if (populated != frames.allocated_frames()) {
    Emit(r, AuditSubsystem::kFrameTable, "frame.alloc_accounting",
         AuditSeverity::kLatent,
         "allocated counter says " +
             std::to_string(frames.allocated_frames()) + " frames, census " +
             "found " + std::to_string(populated));
  }
}

// --- Heap ------------------------------------------------------------------

void StateAuditor::AuditHeap(AuditReport& r) {
  hv::HvHeap& heap = hv_.heap();
  r.modeled_cost +=
      static_cast<sim::Duration>(heap.num_objects() + 1) * kHeapObjectCost;

  const bool free_list_ok = heap.CheckFreeListIntegrity();
  if (!free_list_ok) {
    Emit(r, AuditSubsystem::kHeap, "heap.free_list", AuditSeverity::kFatal,
         "free-list linkage corrupt (wild pointer, cycle, or page-count "
         "mismatch): next allocation walk panics or hangs");
  }

  // Extent map: every live object plus (when walkable) every free chunk.
  // No two extents may overlap, and all must lie inside the heap range.
  struct Extent {
    hv::FrameNumber first;
    std::uint64_t pages;
    std::string what;
  };
  std::vector<Extent> extents;
  std::uint64_t object_pages = 0;
  for (const hv::HeapObject& obj : heap.objects()) {
    extents.push_back({obj.first_frame, obj.pages, "object '" + obj.tag + "'"});
    object_pages += obj.pages;
  }
  if (free_list_ok) {
    for (const auto& [first, pages] : heap.FreeChunkExtents()) {
      extents.push_back({first, pages, "free chunk"});
    }
  }
  r.modeled_cost +=
      static_cast<sim::Duration>(extents.size()) * kHeapObjectCost;

  const hv::FrameNumber base = heap.heap_base();
  const hv::FrameNumber end =
      base + static_cast<hv::FrameNumber>(heap.total_pages());
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.first < b.first; });
  for (std::size_t i = 0; i < extents.size(); ++i) {
    const Extent& e = extents[i];
    if (e.first < base ||
        e.first + static_cast<hv::FrameNumber>(e.pages) > end) {
      Emit(r, AuditSubsystem::kHeap, "heap.extent_bounds",
           AuditSeverity::kLatent,
           e.what + " at frame " + std::to_string(e.first) + "+" +
               std::to_string(e.pages) + " outside heap [" +
               std::to_string(base) + "," + std::to_string(end) + ")");
    }
    if (i > 0) {
      const Extent& p = extents[i - 1];
      if (p.first + static_cast<hv::FrameNumber>(p.pages) > e.first) {
        Emit(r, AuditSubsystem::kHeap, "heap.double_ownership",
             AuditSeverity::kLatent,
             p.what + " and " + e.what + " both own frame " +
                 std::to_string(e.first));
      }
    }
  }

  // Page accounting must close: allocated + free == total, and the live
  // objects must account for exactly the allocated pages.
  if (heap.allocated_pages() + heap.free_pages() != heap.total_pages() ||
      object_pages != heap.allocated_pages()) {
    Emit(r, AuditSubsystem::kHeap, "heap.accounting", AuditSeverity::kLatent,
         "allocated=" + std::to_string(heap.allocated_pages()) +
             " free=" + std::to_string(heap.free_pages()) +
             " total=" + std::to_string(heap.total_pages()) +
             " object_pages=" + std::to_string(object_pages));
  }

  // Every frame backing the heap must still be typed kXenHeap.
  hv::FrameTable& frames = hv_.frames();
  for (hv::FrameNumber f = base;
       f < end && f < static_cast<hv::FrameNumber>(frames.size()); ++f) {
    if (frames.desc(f).type != hv::FrameType::kXenHeap) {
      Emit(r, AuditSubsystem::kHeap, "heap.frame_type", AuditSeverity::kLatent,
           "heap frame " + std::to_string(f) + " retyped to " +
               std::to_string(static_cast<int>(frames.desc(f).type)));
    }
  }

  // Leak census (closed world): every heap object created on behalf of a
  // domain carries a "domain:"/"gnttab:"/"evtchn:" tag and must be
  // referenced by some domain's struct_obj/grant_obj/evtchn_obj handle —
  // dead domains included (teardown is lazy). An unreferenced one is a
  // leaked allocation no recovery mechanism will ever free.
  for (const hv::HeapObject& obj : heap.objects()) {
    const bool domain_tagged = obj.tag.rfind("domain:", 0) == 0 ||
                               obj.tag.rfind("gnttab:", 0) == 0 ||
                               obj.tag.rfind("evtchn:", 0) == 0;
    if (!domain_tagged) continue;
    bool referenced = false;
    for (hv::Domain& dom : hv_.domains()) {
      if (dom.struct_obj == obj.id || dom.grant_obj == obj.id ||
          dom.evtchn_obj == obj.id) {
        referenced = true;
        break;
      }
    }
    if (!referenced) {
      Emit(r, AuditSubsystem::kHeap, "heap.leaked_object",
           AuditSeverity::kLatent,
           "object '" + obj.tag + "' (" + std::to_string(obj.pages) +
               " pages) referenced by no domain");
    }
  }
}

// --- Timers ----------------------------------------------------------------

void StateAuditor::AuditTimers(AuditReport& r) {
  const sim::Time now = hv_.Now();
  for (int c = 0; c < hv_.platform().num_cpus(); ++c) {
    hv::TimerHeap& th = hv_.timers(c);
    const std::vector<hv::SoftTimer>& entries = th.entries();
    r.modeled_cost +=
        static_cast<sim::Duration>(entries.size() + 1) * kTimerCost;

    for (std::size_t i = 0; i < entries.size(); ++i) {
      const hv::SoftTimer& t = entries[i];
      if (t.deadline < 0) {
        Emit(r, AuditSubsystem::kTimer, "timer.deadline_negative",
             AuditSeverity::kFatal,
             "cpu" + std::to_string(c) + " timer '" + t.name +
                 "' deadline underflowed: pop asserts");
      } else if (t.deadline > now + kDeadlineHorizon) {
        Emit(r, AuditSubsystem::kTimer, "timer.deadline_horizon",
             AuditSeverity::kLatent,
             "cpu" + std::to_string(c) + " timer '" + t.name +
                 "' pushed beyond the horizon: event silently lost");
      }
      if (i > 0 && entries[(i - 1) / 2].deadline > entries[i].deadline) {
        Emit(r, AuditSubsystem::kTimer, "timer.heap_order",
             AuditSeverity::kFatal,
             "cpu" + std::to_string(c) + " heap-order violation at index " +
                 std::to_string(i) + " ('" + t.name + "')");
      }
      if (t.is_system_recurring && t.period <= 0) {
        Emit(r, AuditSubsystem::kTimer, "timer.recurring_period",
             AuditSeverity::kLatent,
             "cpu" + std::to_string(c) + " recurring timer '" + t.name +
                 "' has no period: fires once and vanishes");
      }
      const hv::VcpuId v = ParseVtimerName(t.name);
      if (v >= 0) {
        const bool valid =
            v < static_cast<hv::VcpuId>(hv_.vcpus().size()) &&
            hv_.FindDomain(hv_.vcpu(v).domain) != nullptr;
        if (!valid) {
          Emit(r, AuditSubsystem::kTimer, "timer.dangling_vcpu",
               AuditSeverity::kLatent,
               "cpu" + std::to_string(c) + " timer '" + t.name +
                   "' targets a nonexistent vCPU");
        }
      }
    }

    // Recurring-event liveness: the known recurring set must be present.
    // The sched tick is checked only where the hypervisor believes it is
    // running (it is started lazily per CPU).
    const char* required[] = {"watchdog_tick", "time_sync"};
    for (const char* name : required) {
      if (!th.ContainsName(name)) {
        Emit(r, AuditSubsystem::kTimer, "timer.recurring_missing",
             AuditSeverity::kLatent,
             "cpu" + std::to_string(c) + " lost recurring event '" +
                 std::string(name) + "'");
      }
    }
    if (hv_.sched_tick_enabled(c) && !th.ContainsName("sched_tick")) {
      Emit(r, AuditSubsystem::kTimer, "timer.recurring_missing",
           AuditSeverity::kLatent,
           "cpu" + std::to_string(c) +
               " sched tick enabled but absent from the heap");
    }
  }
}

// --- Scheduler -------------------------------------------------------------

void StateAuditor::AuditScheduler(AuditReport& r) {
  hv::PerCpuList& pcpus = hv_.percpu();
  std::vector<hv::Vcpu>& vcpus = hv_.vcpus();
  r.modeled_cost += static_cast<sim::Duration>(vcpus.size() + pcpus.size()) *
                    kVcpuCost;

  // Which vCPUs are reachable by walking each runqueue. Only walked when
  // the linkage validates — a corrupt queue is reported once, as fatal.
  std::vector<bool> reachable(vcpus.size(), false);
  for (std::size_t c = 0; c < pcpus.size(); ++c) {
    if (!hv::RunqueueValid(pcpus[c], vcpus)) {
      Emit(r, AuditSubsystem::kScheduler, "sched.runqueue_links",
           AuditSeverity::kFatal,
           "cpu" + std::to_string(c) +
               " runqueue linkage corrupt (head/tail/prev/next/len)");
      continue;
    }
    hv::VcpuId cur = pcpus[c].rq_head;
    int walked = 0;
    while (cur != hv::kInvalidVcpu &&
           walked <= static_cast<int>(vcpus.size())) {
      reachable[static_cast<std::size_t>(cur)] = true;
      cur = vcpus[static_cast<std::size_t>(cur)].rq_next;
      ++walked;
    }
  }

  if (!hv::SchedMetadataConsistent(pcpus, vcpus)) {
    Emit(r, AuditSubsystem::kScheduler, "sched.metadata",
         AuditSeverity::kLatent,
         "redundant scheduling metadata disagrees (per-CPU curr vs "
         "running_on/is_current/state)");
  }

  for (const hv::Vcpu& vc : vcpus) {
    if (vc.state != hv::VcpuState::kRunnable || vc.is_current) continue;
    const hv::Domain* dom = hv_.FindDomain(vc.domain);
    if (dom == nullptr || !dom->alive()) continue;
    if (!vc.rq_queued || !reachable[static_cast<std::size_t>(vc.id)]) {
      Emit(r, AuditSubsystem::kScheduler, "sched.runnable_unreachable",
           AuditSeverity::kLatent,
           "vCPU " + std::to_string(vc.id) + " (domain " +
               std::to_string(vc.domain) +
               ") runnable but on no runqueue: never scheduled again");
    }
  }
}

// --- Locks -----------------------------------------------------------------

void StateAuditor::AuditLocks(AuditReport& r) {
  // At a quiescent point no lock may be held; during recovery freeze the
  // detector CPU legitimately owns state, so the check is skipped.
  if (hv_.frozen()) return;
  const hv::StaticLockRegistry& reg = hv_.static_locks();
  r.modeled_cost += static_cast<sim::Duration>(reg.size()) * kLockCost;
  for (const hv::SpinLock* lock : reg.locks()) {
    if (lock->held()) {
      Emit(r, AuditSubsystem::kLocks, "lock.static_held",
           AuditSeverity::kFatal,
           "static lock '" + lock->name() + "' held by CPU" +
               std::to_string(lock->holder()) +
               " with no thread to release it");
    }
  }
  for (const hv::HeapObject& obj : hv_.heap().objects()) {
    r.modeled_cost += kLockCost;
    if (obj.lock && obj.lock->held()) {
      Emit(r, AuditSubsystem::kLocks, "lock.heap_held", AuditSeverity::kFatal,
           "heap lock '" + obj.lock->name() + "' held by CPU" +
               std::to_string(obj.lock->holder()) +
               " with no thread to release it");
    }
  }
}

// --- Event channels --------------------------------------------------------

void StateAuditor::AuditEventChannels(AuditReport& r) {
  for (hv::Domain& dom : hv_.domains()) {
    r.modeled_cost += static_cast<sim::Duration>(hv::kMaxEventPorts) *
                      kPortCost;
    for (hv::EventPort p = 0; p < hv::kMaxEventPorts; ++p) {
      const hv::EventChannel& ch = dom.evtchn.At(p);
      if (ch.state == hv::ChannelState::kClosed) continue;

      if (ch.state == hv::ChannelState::kInterdomain) {
        hv::Domain* remote = hv_.FindDomain(ch.remote_domain);
        if (remote == nullptr) {
          Emit(r, AuditSubsystem::kEventChannel, "evtchn.closure",
               AuditSeverity::kLatent,
               "domain " + std::to_string(dom.id) + " port " + std::to_string(p) +
                   " connected to nonexistent domain " +
                   std::to_string(ch.remote_domain));
        } else if (remote->alive()) {
          // Both ends of a live interdomain channel must point back at
          // each other (half-open channels drop notifications).
          bool closed = ch.remote_port < 0 ||
                        ch.remote_port >= hv::kMaxEventPorts;
          if (!closed) {
            const hv::EventChannel& rch = remote->evtchn.At(ch.remote_port);
            closed = rch.state != hv::ChannelState::kInterdomain ||
                     rch.remote_domain != dom.id || rch.remote_port != p;
          }
          if (closed) {
            Emit(r, AuditSubsystem::kEventChannel, "evtchn.closure",
                 AuditSeverity::kLatent,
                 "domain " + std::to_string(dom.id) + " port " +
                     std::to_string(p) + " -> domain " +
                     std::to_string(ch.remote_domain) + " port " +
                     std::to_string(ch.remote_port) +
                     " does not point back");
          }
        }
      }

      if (ch.state == hv::ChannelState::kInterdomain ||
          ch.state == hv::ChannelState::kVirq) {
        const bool notify_ok =
            ch.notify_vcpu >= 0 &&
            ch.notify_vcpu < static_cast<hv::VcpuId>(hv_.vcpus().size()) &&
            hv_.vcpu(ch.notify_vcpu).domain == dom.id;
        if (!notify_ok) {
          Emit(r, AuditSubsystem::kEventChannel, "evtchn.notify_vcpu",
               AuditSeverity::kLatent,
               "domain " + std::to_string(dom.id) + " port " + std::to_string(p) +
                   " notifies vCPU " + std::to_string(ch.notify_vcpu) +
                   " which is not one of its vCPUs");
        }
      }
    }

    // Pending bits must reference open ports (bit 0 is the timer virq).
    if (!dom.alive()) continue;
    for (hv::VcpuId v : dom.vcpus) {
      const hv::Vcpu& vc = hv_.vcpu(v);
      for (int bit = 1; bit < hv::kMaxEventPorts; ++bit) {
        if ((vc.pending_events >> bit) & 1ULL) {
          if (dom.evtchn.At(bit).state == hv::ChannelState::kClosed) {
            Emit(r, AuditSubsystem::kEventChannel, "evtchn.pending_closed",
                 AuditSeverity::kLatent,
                 "vCPU " + std::to_string(v) + " has a pending event on " +
                     "closed port " + std::to_string(bit));
          }
        }
      }
    }
  }
}

// --- Grant tables ----------------------------------------------------------

void StateAuditor::AuditGrantTables(AuditReport& r) {
  hv::FrameTable& frames = hv_.frames();
  for (hv::Domain& dom : hv_.domains()) {
    r.modeled_cost += static_cast<sim::Duration>(hv::kGrantTableSize) *
                      kGrantCost;
    for (hv::GrantRef g = 0; g < hv::kGrantTableSize; ++g) {
      const hv::GrantEntry& e = dom.grants.At(g);
      if (e.map_count < 0 || (e.map_count > 0 && !e.in_use)) {
        Emit(r, AuditSubsystem::kGrantTable, "grant.map_count",
             AuditSeverity::kLatent,
             "domain " + std::to_string(dom.id) + " grant " + std::to_string(g) +
                 ": map_count=" + std::to_string(e.map_count) +
                 " in_use=" + std::to_string(e.in_use));
      }
      if (!e.in_use) continue;
      if (hv_.FindDomain(e.grantee) == nullptr) {
        Emit(r, AuditSubsystem::kGrantTable, "grant.grantee_exists",
             AuditSeverity::kLatent,
             "domain " + std::to_string(dom.id) + " grant " + std::to_string(g) +
                 " granted to nonexistent domain " +
                 std::to_string(e.grantee));
      }
      const bool frame_ok =
          e.frame < static_cast<hv::FrameNumber>(frames.size()) &&
          frames.desc(e.frame).type != hv::FrameType::kFree &&
          frames.desc(e.frame).owner == dom.id;
      if (!frame_ok) {
        Emit(r, AuditSubsystem::kGrantTable, "grant.frame_owner",
             AuditSeverity::kLatent,
             "domain " + std::to_string(dom.id) + " grant " + std::to_string(g) +
                 " covers frame " + std::to_string(e.frame) +
                 " it does not own");
      }
    }
  }
}

// --- Per-CPU ---------------------------------------------------------------

void StateAuditor::AuditPerCpu(AuditReport& r) {
  if (hv_.frozen()) return;
  hv::PerCpuList& pcpus = hv_.percpu();
  r.modeled_cost += static_cast<sim::Duration>(pcpus.size()) * kLockCost;
  for (std::size_t c = 0; c < pcpus.size(); ++c) {
    if (pcpus[c].local_irq_count != 0) {
      Emit(r, AuditSubsystem::kPerCpu, "percpu.irq_count",
           AuditSeverity::kFatal,
           "cpu" + std::to_string(c) + " local_irq_count=" +
               std::to_string(pcpus[c].local_irq_count) +
               " at a quiescent point: ASSERT(!in_irq()) panics on the "
               "next schedule");
    }
  }
}

// --- Statics ---------------------------------------------------------------

void StateAuditor::AuditStatics(AuditReport& r) {
  const hv::StaticDataSegment& statics = hv_.statics();
  r.modeled_cost += static_cast<sim::Duration>(hv::kNumStaticVars) *
                    kStaticCost;
  for (int i = 0; i < hv::kNumStaticVars; ++i) {
    const auto v = static_cast<hv::StaticVar>(i);
    if (!statics.corrupted(v)) continue;
    const AuditSeverity sev =
        statics.benign(v) ? AuditSeverity::kInfo : AuditSeverity::kFatal;
    Emit(r, AuditSubsystem::kStatics, "static.corrupted", sev,
         "static '" + std::string(hv::StaticVarName(v)) + "' corrupted" +
             (statics.benign(v) ? " (benign)"
                                : ": panics or hangs at its use site"));
  }
}

// --- Differential ----------------------------------------------------------

void StateAuditor::AuditDiff(AuditReport& r, const GoldenSnapshot& snap) {
  if (!snap.captured) return;
  const GoldenSnapshot now = GoldenSnapshot::Capture(hv_);
  r.modeled_cost += static_cast<sim::Duration>(now.heap_objects + 8) *
                    kHeapObjectCost;

  if (now.frames_allocated != snap.frames_allocated) {
    Emit(r, AuditSubsystem::kDiff, "diff.frame_population",
         AuditSeverity::kInfo,
         "allocated frames " + std::to_string(snap.frames_allocated) +
             " -> " + std::to_string(now.frames_allocated));
  }

  std::uint64_t created = 0, vanished = 0;
  for (hv::HeapObjectId id : now.heap_object_ids) {
    if (snap.heap_object_ids.count(id) == 0) ++created;
  }
  for (hv::HeapObjectId id : snap.heap_object_ids) {
    if (now.heap_object_ids.count(id) == 0) ++vanished;
  }
  if (created != 0 || vanished != 0) {
    Emit(r, AuditSubsystem::kDiff, "diff.heap_objects", AuditSeverity::kInfo,
         "heap objects since snapshot: +" + std::to_string(created) + " -" +
             std::to_string(vanished) + " (pages " +
             std::to_string(snap.heap_allocated_pages) + " -> " +
             std::to_string(now.heap_allocated_pages) + ")");
  }

  for (const auto& [cpu, count] : snap.recurring_timers_by_cpu) {
    auto it = now.recurring_timers_by_cpu.find(cpu);
    const int live = (it == now.recurring_timers_by_cpu.end()) ? 0 : it->second;
    if (live < count) {
      Emit(r, AuditSubsystem::kDiff, "diff.recurring_timers",
           AuditSeverity::kInfo,
           "cpu" + std::to_string(cpu) + " recurring timers " +
               std::to_string(count) + " -> " + std::to_string(live));
    }
  }

  if (now.open_event_ports < snap.open_event_ports) {
    Emit(r, AuditSubsystem::kDiff, "diff.event_ports", AuditSeverity::kInfo,
         "open event ports " + std::to_string(snap.open_event_ports) +
             " -> " + std::to_string(now.open_event_ports));
  }

  for (hv::DomainId id : snap.domains) {
    if (hv_.domains().count(id) == 0) {
      Emit(r, AuditSubsystem::kDiff, "diff.domain_vanished",
           AuditSeverity::kInfo,
           "domain " + std::to_string(id) +
               " present at snapshot time no longer exists");
    }
  }
}

// --- Orchestration ---------------------------------------------------------

AuditReport StateAuditor::Run(const GoldenSnapshot* snapshot) {
  AuditReport r;
  const sim::Time start = hv_.Now();
  sim::Time cursor = start;
  sim::Tracer& tracer = hv_.tracer();
  const std::uint32_t sweep_span =
      tracer.Begin("audit:sweep", /*cpu=*/0, start);

  const auto run_pass = [&](const char* name, auto&& pass) {
    const sim::Duration before = r.modeled_cost;
    pass();
    const sim::Duration cost = r.modeled_cost - before;
    tracer.Span(std::string("audit:") + name, /*cpu=*/0, cursor,
                cursor + cost);
    cursor += cost;
  };

  run_pass("frame_table", [&] { AuditFrameTable(r); });
  run_pass("heap", [&] { AuditHeap(r); });
  run_pass("timer", [&] { AuditTimers(r); });
  run_pass("scheduler", [&] { AuditScheduler(r); });
  run_pass("locks", [&] { AuditLocks(r); });
  run_pass("event_channel", [&] { AuditEventChannels(r); });
  run_pass("grant_table", [&] { AuditGrantTables(r); });
  run_pass("percpu", [&] { AuditPerCpu(r); });
  run_pass("statics", [&] { AuditStatics(r); });
  if (snapshot != nullptr) {
    run_pass("diff", [&] { AuditDiff(r, *snapshot); });
  }

  tracer.End(sweep_span, start + r.modeled_cost);

  sim::MetricsRegistry& metrics = hv_.metrics();
  metrics.GetCounter("audit.sweeps").Inc();
  for (const AuditFinding& f : r.findings) {
    metrics
        .GetCounter(std::string("audit.findings.") +
                    AuditSubsystemName(f.subsystem))
        .Inc();
  }
  metrics.GetHistogram("audit.sweep_ms").Observe(sim::ToMillisF(r.modeled_cost));
  metrics.GetHistogram("audit.findings_per_sweep")
      .Observe(static_cast<double>(r.findings.size()));
  return r;
}

AuditReport StateAuditor::Audit() { return Run(nullptr); }

AuditReport StateAuditor::Audit(const GoldenSnapshot& snapshot) {
  return Run(&snapshot);
}

}  // namespace nlh::audit
