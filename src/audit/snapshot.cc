#include "audit/snapshot.h"

namespace nlh::audit {

GoldenSnapshot GoldenSnapshot::Capture(hv::Hypervisor& hv) {
  GoldenSnapshot s;
  s.captured = true;
  s.captured_at = hv.Now();

  s.frames_allocated = hv.frames().allocated_frames();

  const hv::HvHeap& heap = hv.heap();
  s.heap_allocated_pages = heap.allocated_pages();
  s.heap_objects = heap.num_objects();
  for (const hv::HeapObject& obj : heap.objects()) {
    s.heap_object_ids.insert(obj.id);
    ++s.heap_objects_by_tag[obj.tag];
  }

  for (int c = 0; c < hv.platform().num_cpus(); ++c) {
    int recurring = 0;
    for (const hv::SoftTimer& t : hv.timers(c).entries()) {
      if (t.is_system_recurring) ++recurring;
    }
    s.recurring_timers_by_cpu[c] = recurring;
  }

  for (const hv::Domain& dom : hv.domains()) {
    s.domains.insert(dom.id);
    s.open_event_ports += dom.evtchn.OpenCount();
    s.mapped_grants += dom.grants.MappedCount();
  }

  s.statics_corrupted = hv.statics().CorruptedCount();
  return s;
}

}  // namespace nlh::audit
