file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_rehype_port.dir/bench_sec4_rehype_port.cc.o"
  "CMakeFiles/bench_sec4_rehype_port.dir/bench_sec4_rehype_port.cc.o.d"
  "bench_sec4_rehype_port"
  "bench_sec4_rehype_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_rehype_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
