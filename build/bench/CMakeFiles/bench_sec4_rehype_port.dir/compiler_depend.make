# Empty compiler generated dependencies file for bench_sec4_rehype_port.
# This may be replaced when dependencies are built.
