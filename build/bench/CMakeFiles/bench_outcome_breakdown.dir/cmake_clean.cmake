file(REMOVE_RECURSE
  "CMakeFiles/bench_outcome_breakdown.dir/bench_outcome_breakdown.cc.o"
  "CMakeFiles/bench_outcome_breakdown.dir/bench_outcome_breakdown.cc.o.d"
  "bench_outcome_breakdown"
  "bench_outcome_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_outcome_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
