# Empty compiler generated dependencies file for bench_micro_hvops.
# This may be replaced when dependencies are built.
