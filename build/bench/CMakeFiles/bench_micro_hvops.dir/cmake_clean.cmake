file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_hvops.dir/bench_micro_hvops.cc.o"
  "CMakeFiles/bench_micro_hvops.dir/bench_micro_hvops.cc.o.d"
  "bench_micro_hvops"
  "bench_micro_hvops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_hvops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
