# Empty compiler generated dependencies file for bench_fig2_recovery_rate.
# This may be replaced when dependencies are built.
