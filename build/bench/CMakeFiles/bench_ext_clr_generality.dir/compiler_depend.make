# Empty compiler generated dependencies file for bench_ext_clr_generality.
# This may be replaced when dependencies are built.
