file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_enhancements.dir/bench_table1_enhancements.cc.o"
  "CMakeFiles/bench_table1_enhancements.dir/bench_table1_enhancements.cc.o.d"
  "bench_table1_enhancements"
  "bench_table1_enhancements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_enhancements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
