# Empty dependencies file for bench_table1_enhancements.
# This may be replaced when dependencies are built.
