# Empty dependencies file for bench_table2_rehype_latency.
# This may be replaced when dependencies are built.
