file(REMOVE_RECURSE
  "CMakeFiles/rejuvenation.dir/rejuvenation.cpp.o"
  "CMakeFiles/rejuvenation.dir/rejuvenation.cpp.o.d"
  "rejuvenation"
  "rejuvenation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rejuvenation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
