# Empty compiler generated dependencies file for rejuvenation.
# This may be replaced when dependencies are built.
