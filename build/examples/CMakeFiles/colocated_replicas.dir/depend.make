# Empty dependencies file for colocated_replicas.
# This may be replaced when dependencies are built.
