file(REMOVE_RECURSE
  "CMakeFiles/colocated_replicas.dir/colocated_replicas.cpp.o"
  "CMakeFiles/colocated_replicas.dir/colocated_replicas.cpp.o.d"
  "colocated_replicas"
  "colocated_replicas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_replicas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
