file(REMOVE_RECURSE
  "CMakeFiles/campaign_tool.dir/campaign_tool.cpp.o"
  "CMakeFiles/campaign_tool.dir/campaign_tool.cpp.o.d"
  "campaign_tool"
  "campaign_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
