file(REMOVE_RECURSE
  "CMakeFiles/webserver_survival.dir/webserver_survival.cpp.o"
  "CMakeFiles/webserver_survival.dir/webserver_survival.cpp.o.d"
  "webserver_survival"
  "webserver_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webserver_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
