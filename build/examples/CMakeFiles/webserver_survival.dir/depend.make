# Empty dependencies file for webserver_survival.
# This may be replaced when dependencies are built.
