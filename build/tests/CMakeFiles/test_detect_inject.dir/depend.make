# Empty dependencies file for test_detect_inject.
# This may be replaced when dependencies are built.
