file(REMOVE_RECURSE
  "CMakeFiles/test_detect_inject.dir/test_detect_inject.cc.o"
  "CMakeFiles/test_detect_inject.dir/test_detect_inject.cc.o.d"
  "test_detect_inject"
  "test_detect_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
