file(REMOVE_RECURSE
  "CMakeFiles/test_hv_components.dir/test_hv_components.cc.o"
  "CMakeFiles/test_hv_components.dir/test_hv_components.cc.o.d"
  "test_hv_components"
  "test_hv_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hv_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
