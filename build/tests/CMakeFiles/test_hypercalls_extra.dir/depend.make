# Empty dependencies file for test_hypercalls_extra.
# This may be replaced when dependencies are built.
