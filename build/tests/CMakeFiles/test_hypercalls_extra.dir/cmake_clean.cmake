file(REMOVE_RECURSE
  "CMakeFiles/test_hypercalls_extra.dir/test_hypercalls_extra.cc.o"
  "CMakeFiles/test_hypercalls_extra.dir/test_hypercalls_extra.cc.o.d"
  "test_hypercalls_extra"
  "test_hypercalls_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hypercalls_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
