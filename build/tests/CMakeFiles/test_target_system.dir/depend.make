# Empty dependencies file for test_target_system.
# This may be replaced when dependencies are built.
