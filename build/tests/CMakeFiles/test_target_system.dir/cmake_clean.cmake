file(REMOVE_RECURSE
  "CMakeFiles/test_target_system.dir/test_target_system.cc.o"
  "CMakeFiles/test_target_system.dir/test_target_system.cc.o.d"
  "test_target_system"
  "test_target_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_target_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
