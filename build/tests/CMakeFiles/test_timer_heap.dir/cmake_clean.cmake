file(REMOVE_RECURSE
  "CMakeFiles/test_timer_heap.dir/test_timer_heap.cc.o"
  "CMakeFiles/test_timer_heap.dir/test_timer_heap.cc.o.d"
  "test_timer_heap"
  "test_timer_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timer_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
