# Empty dependencies file for test_timer_heap.
# This may be replaced when dependencies are built.
