# Empty compiler generated dependencies file for test_clr.
# This may be replaced when dependencies are built.
