file(REMOVE_RECURSE
  "CMakeFiles/test_clr.dir/test_clr.cc.o"
  "CMakeFiles/test_clr.dir/test_clr.cc.o.d"
  "test_clr"
  "test_clr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_clr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
