# Empty dependencies file for test_sched_ops.
# This may be replaced when dependencies are built.
