file(REMOVE_RECURSE
  "CMakeFiles/test_sched_ops.dir/test_sched_ops.cc.o"
  "CMakeFiles/test_sched_ops.dir/test_sched_ops.cc.o.d"
  "test_sched_ops"
  "test_sched_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sched_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
