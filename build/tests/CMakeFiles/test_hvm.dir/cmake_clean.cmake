file(REMOVE_RECURSE
  "CMakeFiles/test_hvm.dir/test_hvm.cc.o"
  "CMakeFiles/test_hvm.dir/test_hvm.cc.o.d"
  "test_hvm"
  "test_hvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
