file(REMOVE_RECURSE
  "CMakeFiles/test_privvm_backend.dir/test_privvm_backend.cc.o"
  "CMakeFiles/test_privvm_backend.dir/test_privvm_backend.cc.o.d"
  "test_privvm_backend"
  "test_privvm_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_privvm_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
