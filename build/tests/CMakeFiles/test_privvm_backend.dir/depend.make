# Empty dependencies file for test_privvm_backend.
# This may be replaced when dependencies are built.
