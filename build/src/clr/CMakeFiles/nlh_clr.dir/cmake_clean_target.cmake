file(REMOVE_RECURSE
  "libnlh_clr.a"
)
