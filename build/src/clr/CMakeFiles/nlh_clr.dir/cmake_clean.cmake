file(REMOVE_RECURSE
  "CMakeFiles/nlh_clr.dir/kv_service.cc.o"
  "CMakeFiles/nlh_clr.dir/kv_service.cc.o.d"
  "libnlh_clr.a"
  "libnlh_clr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_clr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
