# Empty dependencies file for nlh_clr.
# This may be replaced when dependencies are built.
