# Empty dependencies file for nlh_guest.
# This may be replaced when dependencies are built.
