
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guest/appvm.cc" "src/guest/CMakeFiles/nlh_guest.dir/appvm.cc.o" "gcc" "src/guest/CMakeFiles/nlh_guest.dir/appvm.cc.o.d"
  "/root/repo/src/guest/devices.cc" "src/guest/CMakeFiles/nlh_guest.dir/devices.cc.o" "gcc" "src/guest/CMakeFiles/nlh_guest.dir/devices.cc.o.d"
  "/root/repo/src/guest/guest_kernel.cc" "src/guest/CMakeFiles/nlh_guest.dir/guest_kernel.cc.o" "gcc" "src/guest/CMakeFiles/nlh_guest.dir/guest_kernel.cc.o.d"
  "/root/repo/src/guest/privvm.cc" "src/guest/CMakeFiles/nlh_guest.dir/privvm.cc.o" "gcc" "src/guest/CMakeFiles/nlh_guest.dir/privvm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/nlh_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nlh_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
