file(REMOVE_RECURSE
  "libnlh_guest.a"
)
