file(REMOVE_RECURSE
  "CMakeFiles/nlh_guest.dir/appvm.cc.o"
  "CMakeFiles/nlh_guest.dir/appvm.cc.o.d"
  "CMakeFiles/nlh_guest.dir/devices.cc.o"
  "CMakeFiles/nlh_guest.dir/devices.cc.o.d"
  "CMakeFiles/nlh_guest.dir/guest_kernel.cc.o"
  "CMakeFiles/nlh_guest.dir/guest_kernel.cc.o.d"
  "CMakeFiles/nlh_guest.dir/privvm.cc.o"
  "CMakeFiles/nlh_guest.dir/privvm.cc.o.d"
  "libnlh_guest.a"
  "libnlh_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
