file(REMOVE_RECURSE
  "CMakeFiles/nlh_hw.dir/platform.cc.o"
  "CMakeFiles/nlh_hw.dir/platform.cc.o.d"
  "CMakeFiles/nlh_hw.dir/registers.cc.o"
  "CMakeFiles/nlh_hw.dir/registers.cc.o.d"
  "libnlh_hw.a"
  "libnlh_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
