# Empty compiler generated dependencies file for nlh_hw.
# This may be replaced when dependencies are built.
