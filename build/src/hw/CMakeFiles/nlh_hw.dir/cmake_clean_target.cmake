file(REMOVE_RECURSE
  "libnlh_hw.a"
)
