# Empty dependencies file for nlh_recovery.
# This may be replaced when dependencies are built.
