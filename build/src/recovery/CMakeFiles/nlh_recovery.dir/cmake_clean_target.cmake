file(REMOVE_RECURSE
  "libnlh_recovery.a"
)
