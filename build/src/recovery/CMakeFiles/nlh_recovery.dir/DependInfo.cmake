
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recovery/nilihype.cc" "src/recovery/CMakeFiles/nlh_recovery.dir/nilihype.cc.o" "gcc" "src/recovery/CMakeFiles/nlh_recovery.dir/nilihype.cc.o.d"
  "/root/repo/src/recovery/recovery_common.cc" "src/recovery/CMakeFiles/nlh_recovery.dir/recovery_common.cc.o" "gcc" "src/recovery/CMakeFiles/nlh_recovery.dir/recovery_common.cc.o.d"
  "/root/repo/src/recovery/rehype.cc" "src/recovery/CMakeFiles/nlh_recovery.dir/rehype.cc.o" "gcc" "src/recovery/CMakeFiles/nlh_recovery.dir/rehype.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hv/CMakeFiles/nlh_hv.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/nlh_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
