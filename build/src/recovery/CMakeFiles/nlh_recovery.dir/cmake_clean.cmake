file(REMOVE_RECURSE
  "CMakeFiles/nlh_recovery.dir/nilihype.cc.o"
  "CMakeFiles/nlh_recovery.dir/nilihype.cc.o.d"
  "CMakeFiles/nlh_recovery.dir/recovery_common.cc.o"
  "CMakeFiles/nlh_recovery.dir/recovery_common.cc.o.d"
  "CMakeFiles/nlh_recovery.dir/rehype.cc.o"
  "CMakeFiles/nlh_recovery.dir/rehype.cc.o.d"
  "libnlh_recovery.a"
  "libnlh_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
