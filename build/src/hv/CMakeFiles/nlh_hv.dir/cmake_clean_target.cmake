file(REMOVE_RECURSE
  "libnlh_hv.a"
)
