# Empty dependencies file for nlh_hv.
# This may be replaced when dependencies are built.
