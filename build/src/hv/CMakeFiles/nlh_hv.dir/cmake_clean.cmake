file(REMOVE_RECURSE
  "CMakeFiles/nlh_hv.dir/frame_table.cc.o"
  "CMakeFiles/nlh_hv.dir/frame_table.cc.o.d"
  "CMakeFiles/nlh_hv.dir/heap.cc.o"
  "CMakeFiles/nlh_hv.dir/heap.cc.o.d"
  "CMakeFiles/nlh_hv.dir/hypercall_defs.cc.o"
  "CMakeFiles/nlh_hv.dir/hypercall_defs.cc.o.d"
  "CMakeFiles/nlh_hv.dir/hypercalls.cc.o"
  "CMakeFiles/nlh_hv.dir/hypercalls.cc.o.d"
  "CMakeFiles/nlh_hv.dir/hypervisor.cc.o"
  "CMakeFiles/nlh_hv.dir/hypervisor.cc.o.d"
  "CMakeFiles/nlh_hv.dir/sched_ops.cc.o"
  "CMakeFiles/nlh_hv.dir/sched_ops.cc.o.d"
  "CMakeFiles/nlh_hv.dir/static_data.cc.o"
  "CMakeFiles/nlh_hv.dir/static_data.cc.o.d"
  "CMakeFiles/nlh_hv.dir/timer_heap.cc.o"
  "CMakeFiles/nlh_hv.dir/timer_heap.cc.o.d"
  "libnlh_hv.a"
  "libnlh_hv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_hv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
