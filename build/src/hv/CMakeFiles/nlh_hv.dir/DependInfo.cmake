
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hv/frame_table.cc" "src/hv/CMakeFiles/nlh_hv.dir/frame_table.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/frame_table.cc.o.d"
  "/root/repo/src/hv/heap.cc" "src/hv/CMakeFiles/nlh_hv.dir/heap.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/heap.cc.o.d"
  "/root/repo/src/hv/hypercall_defs.cc" "src/hv/CMakeFiles/nlh_hv.dir/hypercall_defs.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/hypercall_defs.cc.o.d"
  "/root/repo/src/hv/hypercalls.cc" "src/hv/CMakeFiles/nlh_hv.dir/hypercalls.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/hypercalls.cc.o.d"
  "/root/repo/src/hv/hypervisor.cc" "src/hv/CMakeFiles/nlh_hv.dir/hypervisor.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/hypervisor.cc.o.d"
  "/root/repo/src/hv/sched_ops.cc" "src/hv/CMakeFiles/nlh_hv.dir/sched_ops.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/sched_ops.cc.o.d"
  "/root/repo/src/hv/static_data.cc" "src/hv/CMakeFiles/nlh_hv.dir/static_data.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/static_data.cc.o.d"
  "/root/repo/src/hv/timer_heap.cc" "src/hv/CMakeFiles/nlh_hv.dir/timer_heap.cc.o" "gcc" "src/hv/CMakeFiles/nlh_hv.dir/timer_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/nlh_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
