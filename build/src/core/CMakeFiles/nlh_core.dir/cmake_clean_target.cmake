file(REMOVE_RECURSE
  "libnlh_core.a"
)
