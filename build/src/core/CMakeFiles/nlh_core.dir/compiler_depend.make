# Empty compiler generated dependencies file for nlh_core.
# This may be replaced when dependencies are built.
