file(REMOVE_RECURSE
  "CMakeFiles/nlh_core.dir/campaign.cc.o"
  "CMakeFiles/nlh_core.dir/campaign.cc.o.d"
  "CMakeFiles/nlh_core.dir/target_system.cc.o"
  "CMakeFiles/nlh_core.dir/target_system.cc.o.d"
  "libnlh_core.a"
  "libnlh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
