file(REMOVE_RECURSE
  "libnlh_inject.a"
)
