# Empty dependencies file for nlh_inject.
# This may be replaced when dependencies are built.
