file(REMOVE_RECURSE
  "CMakeFiles/nlh_inject.dir/injector.cc.o"
  "CMakeFiles/nlh_inject.dir/injector.cc.o.d"
  "libnlh_inject.a"
  "libnlh_inject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nlh_inject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
