// Integration tests for the hypervisor core: boot, domains, hypercalls,
// undo logging, multicall progress, events, scheduling, IRQ accounting.
#include <gtest/gtest.h>

#include "hv/hypervisor.h"
#include "hv/panic.h"

namespace nlh::hv {
namespace {

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest()
      : platform_(MakePlatformConfig(), 1), hv_(platform_, HvConfig{}) {
    hv_.Boot();
    dom_ = hv_.CreateDomainDirect("test", /*privileged=*/false, /*cpu=*/1, 32);
    priv_ = hv_.CreateDomainDirect("dom0", /*privileged=*/true, /*cpu=*/0, 32);
    hv_.StartDomain(dom_);
    hv_.StartDomain(priv_);
    vcpu_ = hv_.FindDomain(dom_)->vcpus.front();
    pvcpu_ = hv_.FindDomain(priv_)->vcpus.front();
    // Mark them running so hypercalls execute in a realistic context.
    OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                  HvContextKind::kSchedule, nullptr, nullptr);
    hv_.Schedule(ctx, 1);
    OpContext ctx0(platform_, platform_.cpu(0), hv_.options(),
                   HvContextKind::kSchedule, nullptr, nullptr);
    hv_.Schedule(ctx0, 0);
  }

  static hw::PlatformConfig MakePlatformConfig() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 4;
    cfg.memory_gib = 1;
    return cfg;
  }

  std::uint64_t Call(VcpuId v, HypercallCode code, std::uint64_t a0 = 0,
                     std::uint64_t a1 = 0) {
    HypercallArgs a;
    a.arg0 = a0;
    a.arg1 = a1;
    return hv_.Hypercall(v, code, a);
  }

  hw::Platform platform_;
  Hypervisor hv_;
  DomainId dom_ = kInvalidDomain;
  DomainId priv_ = kInvalidDomain;
  VcpuId vcpu_ = kInvalidVcpu;
  VcpuId pvcpu_ = kInvalidVcpu;
};

TEST_F(HypervisorTest, BootEstablishesTimersAndLocks) {
  // Recurring system timers exist per CPU and the APICs are armed.
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    EXPECT_TRUE(hv_.timers(c).ContainsName("watchdog_tick"));
    EXPECT_TRUE(hv_.timers(c).ContainsName("time_sync"));
    EXPECT_TRUE(platform_.apic(c).armed());
  }
  // Static locks registered: 5 globals + one sched lock per CPU.
  EXPECT_EQ(hv_.static_locks().size(), 5u + 4u);
}

TEST_F(HypervisorTest, DomainCreationAllocatesResources) {
  Domain* d = hv_.FindDomain(dom_);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->num_frames, 32u);
  EXPECT_NE(hv_.heap().LockOf(d->struct_obj), nullptr);
  EXPECT_NE(hv_.heap().LockOf(d->grant_obj), nullptr);
  EXPECT_NE(hv_.heap().LockOf(d->evtchn_obj), nullptr);
  // Port 0 reserved for the timer virq.
  EXPECT_EQ(d->evtchn.At(0).state, ChannelState::kVirq);
}

TEST_F(HypervisorTest, XenVersionHypercall) {
  EXPECT_EQ(Call(vcpu_, HypercallCode::kXenVersion), 40002u);
  EXPECT_EQ(hv_.stats().hypercalls, 1u);
  // Commit: nothing in flight afterwards.
  EXPECT_FALSE(hv_.vcpu(vcpu_).inflight.active);
}

TEST_F(HypervisorTest, MmuUpdateBalancesRefcounts) {
  Domain* d = hv_.FindDomain(dom_);
  const FrameNumber f = d->first_frame + 3;
  const std::int32_t before = hv_.frames().desc(f).use_count;
  Call(vcpu_, HypercallCode::kMmuUpdate, 3, 1);  // map
  EXPECT_EQ(hv_.frames().desc(f).use_count, before + 1);
  Call(vcpu_, HypercallCode::kMmuUpdate, 3, 0);  // unmap
  EXPECT_EQ(hv_.frames().desc(f).use_count, before);
  // No locks left held.
  EXPECT_EQ(hv_.heap().HeldLockCount(), 0);
}

TEST_F(HypervisorTest, PinUnpinSetsValidation) {
  Domain* d = hv_.FindDomain(dom_);
  const FrameNumber f = d->first_frame + 7;
  Call(vcpu_, HypercallCode::kPageTablePin, 7);
  EXPECT_TRUE(hv_.frames().desc(f).validated);
  EXPECT_EQ(hv_.frames().desc(f).type, FrameType::kPageTable);
  Call(vcpu_, HypercallCode::kPageTableUnpin, 7);
  EXPECT_FALSE(hv_.frames().desc(f).validated);
  EXPECT_EQ(hv_.frames().CountInconsistent(), 0u);
}

TEST_F(HypervisorTest, DoublePinPanics) {
  Call(vcpu_, HypercallCode::kPageTablePin, 7);
  EXPECT_THROW(Call(vcpu_, HypercallCode::kPageTablePin, 7), HvPanic);
}

TEST_F(HypervisorTest, MemoryOpGrowsAndShrinks) {
  Domain* d = hv_.FindDomain(dom_);
  const std::uint64_t before = hv_.frames().allocated_frames();
  Call(vcpu_, HypercallCode::kMemoryOpIncrease, 4);
  EXPECT_EQ(d->extra_frames.size(), 4u);
  EXPECT_EQ(hv_.frames().allocated_frames(), before + 4);
  Call(vcpu_, HypercallCode::kMemoryOpDecrease, 4);
  EXPECT_TRUE(d->extra_frames.empty());
  EXPECT_EQ(hv_.frames().allocated_frames(), before);
}

TEST_F(HypervisorTest, GrantMapCopyUnmapFlow) {
  Domain* d = hv_.FindDomain(dom_);
  const FrameNumber frame = d->first_frame + 1;
  const GrantRef ref = d->grants.TryGrant(priv_, frame);
  ASSERT_NE(ref, kInvalidGrant);
  const std::int32_t before = hv_.frames().desc(frame).use_count;

  Call(pvcpu_, HypercallCode::kGrantMap, static_cast<std::uint64_t>(dom_),
       static_cast<std::uint64_t>(ref));
  EXPECT_EQ(d->grants.At(ref).map_count, 1);
  EXPECT_EQ(hv_.frames().desc(frame).use_count, before + 1);

  Call(pvcpu_, HypercallCode::kGrantCopy, static_cast<std::uint64_t>(dom_),
       static_cast<std::uint64_t>(ref));
  EXPECT_EQ(d->grants.At(ref).xfer_count, 1);

  Call(pvcpu_, HypercallCode::kGrantUnmap, static_cast<std::uint64_t>(dom_),
       static_cast<std::uint64_t>(ref));
  EXPECT_EQ(d->grants.At(ref).map_count, 0);
  EXPECT_EQ(hv_.frames().desc(frame).use_count, before);
  d->grants.Revoke(ref);
}

TEST_F(HypervisorTest, EventChannelBindAndSend) {
  Domain* a = hv_.FindDomain(dom_);
  Domain* p = hv_.FindDomain(priv_);
  const EventPort pa = a->evtchn.AllocUnbound(priv_, vcpu_);
  const EventPort pp = p->evtchn.AllocUnbound(dom_, pvcpu_);
  a->evtchn.BindInterdomain(pa, priv_, pp);
  p->evtchn.BindInterdomain(pp, dom_, pa);

  Call(vcpu_, HypercallCode::kEventChannelSend,
       static_cast<std::uint64_t>(pa));
  EXPECT_TRUE(hv_.vcpu(pvcpu_).pending_events & (1ULL << pp));
  const std::uint64_t bits = hv_.ConsumePendingEvents(pvcpu_);
  EXPECT_NE(bits & (1ULL << pp), 0u);
  EXPECT_EQ(hv_.vcpu(pvcpu_).pending_events, 0u);
}

TEST_F(HypervisorTest, SendOnUnboundPortPanics) {
  EXPECT_THROW(Call(vcpu_, HypercallCode::kEventChannelSend, 9), HvPanic);
}

TEST_F(HypervisorTest, BlockRefusedWithPendingEvents) {
  hv_.vcpu(vcpu_).pending_events = 0x2;
  EXPECT_EQ(Call(vcpu_, HypercallCode::kSchedOpBlock), 1u);
  EXPECT_EQ(hv_.vcpu(vcpu_).state, VcpuState::kRunning);
}

TEST_F(HypervisorTest, BlockAndWake) {
  EXPECT_EQ(Call(vcpu_, HypercallCode::kSchedOpBlock), 0u);
  EXPECT_EQ(hv_.vcpu(vcpu_).state, VcpuState::kBlocked);
  hv_.WakeVcpu(vcpu_);
  EXPECT_EQ(hv_.vcpu(vcpu_).state, VcpuState::kRunnable);
  EXPECT_TRUE(hv_.vcpu(vcpu_).rq_queued);
}

TEST_F(HypervisorTest, SetTimerArmsVtimerAndVirqFires) {
  const sim::Time deadline = hv_.Now() + sim::Milliseconds(5);
  Call(vcpu_, HypercallCode::kSetTimerOp,
       static_cast<std::uint64_t>(deadline));
  EXPECT_EQ(hv_.vcpu(vcpu_).vtimer_deadline, deadline);
  EXPECT_TRUE(hv_.timers(1).ContainsName("vtimer:" + std::to_string(vcpu_)));
  // Drive the platform past the deadline; the virq should be delivered.
  platform_.queue().RunUntil(deadline + sim::Milliseconds(2));
  EXPECT_NE(hv_.vcpu(vcpu_).pending_events & 1ULL, 0u);
  EXPECT_EQ(hv_.vcpu(vcpu_).vtimer_deadline, 0);
}

TEST_F(HypervisorTest, PrivilegedCallFromAppVmPanics) {
  EXPECT_THROW(Call(vcpu_, HypercallCode::kDomctlCreate, 2, 16), HvPanic);
}

TEST_F(HypervisorTest, DomctlCreateMakesUsableDomain) {
  const std::uint64_t id = Call(pvcpu_, HypercallCode::kDomctlCreate, 2, 16);
  Domain* nd = hv_.FindDomain(static_cast<DomainId>(id));
  ASSERT_NE(nd, nullptr);
  EXPECT_EQ(nd->num_frames, 16u);
  Call(pvcpu_, HypercallCode::kDomctlUnpause, id);
  EXPECT_EQ(nd->lifecycle, DomainLifecycle::kRunning);
  EXPECT_EQ(hv_.vcpu(nd->vcpus.front()).state, VcpuState::kRunnable);
}

TEST_F(HypervisorTest, MulticallRunsAllComponents) {
  HypercallArgs a;
  for (int i = 0; i < 4; ++i) {
    MulticallEntry e;
    e.code = HypercallCode::kMmuUpdate;
    e.arg0 = static_cast<std::uint64_t>(i);
    e.arg1 = 1;  // map
    a.batch.push_back(e);
  }
  hv_.Hypercall(vcpu_, HypercallCode::kMulticall, a);
  Domain* d = hv_.FindDomain(dom_);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(hv_.frames().desc(d->first_frame + static_cast<FrameNumber>(i)).use_count, 2);
  }
}

TEST_F(HypervisorTest, MulticallProgressSkipsCompleted) {
  // Pretend a retry with 2 of 4 components already completed.
  Vcpu& vc = hv_.vcpu(vcpu_);
  HypercallArgs a;
  for (int i = 0; i < 4; ++i) {
    MulticallEntry e;
    e.code = HypercallCode::kMmuUpdate;
    e.arg0 = static_cast<std::uint64_t>(i);
    e.arg1 = 1;
    a.batch.push_back(e);
  }
  vc.inflight.code = HypercallCode::kMulticall;
  vc.inflight.args = a;
  vc.inflight.multicall_progress = 2;
  vc.inflight.needs_retry = true;
  // Execute the retry path directly.
  OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                HvContextKind::kHypercall, &vc, &vc.inflight.undo);
  vc.inflight.active = true;
  hv_.Dispatch(ctx, vc, HypercallCode::kMulticall, a);
  Domain* d = hv_.FindDomain(dom_);
  // Components 0,1 skipped; 2,3 executed.
  EXPECT_EQ(hv_.frames().desc(d->first_frame + 0).use_count, 1);
  EXPECT_EQ(hv_.frames().desc(d->first_frame + 2).use_count, 2);
}

TEST_F(HypervisorTest, UndoLogRestoresCriticalVariables) {
  Domain* d = hv_.FindDomain(dom_);
  const FrameNumber f = d->first_frame + 9;
  Vcpu& vc = hv_.vcpu(vcpu_);
  // Run a pin but "abandon" it by unwinding the undo log before commit:
  // simulate by executing the handler body then calling UnwindAll.
  vc.inflight.active = true;
  vc.inflight.undo.Clear();
  OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                HvContextKind::kHypercall, &vc, &vc.inflight.undo);
  hv_.DispatchOne(ctx, vc, HypercallCode::kPageTablePin, 9, 0, 0);
  EXPECT_TRUE(hv_.frames().desc(f).validated);
  vc.inflight.undo.UnwindAll();  // recovery's mitigation step
  EXPECT_FALSE(hv_.frames().desc(f).validated);
  EXPECT_EQ(hv_.frames().desc(f).use_count, 1);
  EXPECT_EQ(hv_.frames().CountInconsistent(), 0u);
}

TEST_F(HypervisorTest, LoggingDisabledMeansNoUndoRecords) {
  hv_.options().undo_logging = false;
  Vcpu& vc = hv_.vcpu(vcpu_);
  vc.inflight.active = true;
  vc.inflight.undo.Clear();
  OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                HvContextKind::kHypercall, &vc, &vc.inflight.undo);
  hv_.DispatchOne(ctx, vc, HypercallCode::kPageTablePin, 11, 0, 0);
  EXPECT_TRUE(vc.inflight.undo.empty());
}

TEST_F(HypervisorTest, SyscallForwardTracksInflight) {
  hv_.ForwardedSyscall(vcpu_, 42);
  EXPECT_EQ(hv_.stats().syscall_forwards, 1u);
  EXPECT_FALSE(hv_.vcpu(vcpu_).inflight.active);  // completed
}

TEST_F(HypervisorTest, FreezeIncrementsOtherCpusIrqCount) {
  hv_.FreezeForRecovery(/*detector=*/1);
  EXPECT_TRUE(hv_.frozen());
  EXPECT_EQ(hv_.percpu(1).local_irq_count, 0);  // detecting CPU: no IPI
  EXPECT_EQ(hv_.percpu(0).local_irq_count, 1);
  EXPECT_EQ(hv_.percpu(2).local_irq_count, 1);
  for (int c = 0; c < platform_.num_cpus(); ++c) {
    EXPECT_FALSE(platform_.cpu(c).interrupts_enabled());
  }
}

TEST_F(HypervisorTest, DiscardStacksClearsHungAndResetsStacks) {
  platform_.cpu(2).set_hung(true);
  platform_.cpu(2).hv_stack().top -= 128;
  hv_.DiscardAllHvStacks();
  EXPECT_FALSE(platform_.cpu(2).hung());
  EXPECT_TRUE(platform_.cpu(2).hv_stack().Clean());
}

TEST_F(HypervisorTest, ReactivateReinsertsLostRecurringEvents) {
  hv_.timers(2).RemoveByName("watchdog_tick");
  EXPECT_FALSE(hv_.timers(2).ContainsName("watchdog_tick"));
  const int missing = hv_.ReactivateRecurringEvents();
  EXPECT_EQ(missing, 1);
  EXPECT_TRUE(hv_.timers(2).ContainsName("watchdog_tick"));
  EXPECT_EQ(hv_.ReactivateRecurringEvents(), 0);  // idempotent
}

TEST_F(HypervisorTest, RearmVcpuTimersRestoresLostVtimer) {
  const sim::Time deadline = hv_.Now() + sim::Milliseconds(50);
  Call(vcpu_, HypercallCode::kSetTimerOp,
       static_cast<std::uint64_t>(deadline));
  hv_.timers(1).Clear();  // a reboot-style wipe
  hv_.RearmVcpuTimers();
  EXPECT_TRUE(hv_.timers(1).ContainsName("vtimer:" + std::to_string(vcpu_)));
}

TEST_F(HypervisorTest, ReportWithoutHandlerKillsSystem) {
  hv_.ReportError(0, DetectionKind::kPanic, "test");
  EXPECT_TRUE(hv_.dead());
}

TEST_F(HypervisorTest, AuditCleanAfterNormalActivity) {
  for (int i = 0; i < 20; ++i) {
    Call(vcpu_, HypercallCode::kMmuUpdate, static_cast<std::uint64_t>(i), 1);
    Call(vcpu_, HypercallCode::kMmuUpdate, static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_TRUE(hv_.AuditState().empty());
}

}  // namespace
}  // namespace nlh::hv
