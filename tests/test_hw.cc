// Unit tests for the hardware substrate (hw/).
#include <gtest/gtest.h>

#include "hw/apic.h"
#include "hw/cpu.h"
#include "hw/interrupt_controller.h"
#include "hw/memory.h"
#include "hw/perf_counter.h"
#include "hw/platform.h"

namespace nlh::hw {
namespace {

TEST(CpuTest, StackDiscardIsPointerReset) {
  Cpu cpu(3);
  EXPECT_TRUE(cpu.hv_stack().Clean());
  cpu.hv_stack().top -= 512;
  cpu.hv_stack().frames = 4;
  EXPECT_FALSE(cpu.hv_stack().Clean());
  cpu.hv_stack().Reset();
  EXPECT_TRUE(cpu.hv_stack().Clean());
}

TEST(CpuTest, DistinctStackBases) {
  Cpu a(0), b(1);
  EXPECT_NE(a.hv_stack().base, b.hv_stack().base);
}

TEST(CpuTest, CountersAccumulate) {
  Cpu cpu(0);
  cpu.RetireHvInstructions(100);
  cpu.RetireHvInstructions(50);
  EXPECT_EQ(cpu.hv_instructions(), 150u);
  cpu.AccumulateHvCycles(10);
  cpu.AccumulateTotalCycles(100);
  EXPECT_EQ(cpu.hv_cycles(), 10u);
  EXPECT_EQ(cpu.total_cycles(), 100u);
}

TEST(ApicTimerTest, OneShotFiresOnceAtDeadline) {
  sim::EventQueue q;
  int fires = 0;
  ApicTimer apic(q, 0, [&](CpuId) { ++fires; });
  apic.Program(100);
  EXPECT_TRUE(apic.armed());
  q.RunUntil(99);
  EXPECT_EQ(fires, 0);
  q.RunUntil(100);
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(apic.armed());  // silent until reprogrammed
  q.RunUntil(10000);
  EXPECT_EQ(fires, 1);
}

TEST(ApicTimerTest, ReprogramReplacesDeadline) {
  sim::EventQueue q;
  int fires = 0;
  ApicTimer apic(q, 0, [&](CpuId) { ++fires; });
  apic.Program(100);
  apic.Program(500);  // replaces, does not add
  q.RunUntil(400);
  EXPECT_EQ(fires, 0);
  q.RunUntil(500);
  EXPECT_EQ(fires, 1);
}

TEST(ApicTimerTest, StopDisarms) {
  sim::EventQueue q;
  int fires = 0;
  ApicTimer apic(q, 0, [&](CpuId) { ++fires; });
  apic.Program(100);
  apic.Stop();
  EXPECT_FALSE(apic.armed());
  q.RunUntil(1000);
  EXPECT_EQ(fires, 0);
}

TEST(InterruptControllerTest, RaiseAcceptEoiCycle) {
  InterruptController intc(2);
  intc.Raise(0, vec::kTimer);
  EXPECT_TRUE(intc.Pending(0, vec::kTimer));
  EXPECT_EQ(intc.NextDeliverable(0), vec::kTimer);
  intc.Accept(0, vec::kTimer);
  EXPECT_FALSE(intc.Pending(0, vec::kTimer));
  EXPECT_TRUE(intc.InService(0, vec::kTimer));
  intc.Eoi(0);
  EXPECT_FALSE(intc.InService(0, vec::kTimer));
}

TEST(InterruptControllerTest, InServiceMasksLowerPriority) {
  InterruptController intc(1);
  intc.Raise(0, vec::kTimer);  // 0xf0
  intc.Accept(0, vec::kTimer);
  // A lower-priority device vector is pending but not deliverable while the
  // timer is in service — the stuck-ISR failure mode recovery must ack.
  intc.Raise(0, vec::kNet);  // 0x40
  EXPECT_EQ(intc.NextDeliverable(0), -1);
  intc.Eoi(0);
  EXPECT_EQ(intc.NextDeliverable(0), vec::kNet);
}

TEST(InterruptControllerTest, HigherPriorityPreempts) {
  InterruptController intc(1);
  intc.Raise(0, vec::kNet);
  intc.Accept(0, vec::kNet);
  intc.Raise(0, vec::kTimer);
  EXPECT_EQ(intc.NextDeliverable(0), vec::kTimer);
}

TEST(InterruptControllerTest, AckAllClearsEverything) {
  InterruptController intc(1);
  intc.Raise(0, vec::kTimer);
  intc.Accept(0, vec::kTimer);
  intc.Raise(0, vec::kBlk);
  intc.AckAll(0);
  EXPECT_FALSE(intc.AnyPending(0));
  EXPECT_FALSE(intc.AnyInService(0));
}

TEST(InterruptControllerTest, PerCpuIsolation) {
  InterruptController intc(2);
  intc.Raise(0, vec::kTimer);
  EXPECT_FALSE(intc.AnyPending(1));
  EXPECT_TRUE(intc.AnyPending(0));
}

TEST(InterruptControllerTest, WakeHandlerInvokedOnRaise) {
  InterruptController intc(2);
  CpuId woken = -1;
  intc.SetWakeHandler([&](CpuId c) { woken = c; });
  intc.Raise(1, vec::kBlk);
  EXPECT_EQ(woken, 1);
}

TEST(InterruptControllerTest, NmiBypassesIrr) {
  InterruptController intc(1);
  int nmis = 0;
  intc.SetNmiHandler([&](CpuId) { ++nmis; });
  intc.DeliverNmi(0);
  EXPECT_EQ(nmis, 1);
  EXPECT_FALSE(intc.AnyPending(0));
}

TEST(PhysicalMemoryTest, FrameGeometry) {
  PhysicalMemory mem = PhysicalMemory::FromGiB(8);
  EXPECT_EQ(mem.bytes(), 8ULL << 30);
  EXPECT_EQ(mem.num_frames(), (8ULL << 30) / 4096);
}

TEST(PerfCounterTest, PeriodicNmisPerCpuAreStaggered) {
  sim::EventQueue q;
  std::vector<sim::Time> first_fire(2, -1);
  PerfCounterNmiSource src(q, 2, sim::Milliseconds(100), [&](CpuId c) {
    if (first_fire[static_cast<size_t>(c)] < 0) {
      first_fire[static_cast<size_t>(c)] = q.Now();
    }
  });
  src.StartAll();
  q.RunUntil(sim::Milliseconds(300));
  EXPECT_GT(first_fire[0], 0);
  EXPECT_GT(first_fire[1], 0);
  EXPECT_NE(first_fire[0], first_fire[1]);  // phase-staggered
}

TEST(PerfCounterTest, StopHaltsNmis) {
  sim::EventQueue q;
  int fires = 0;
  PerfCounterNmiSource src(q, 1, sim::Milliseconds(100),
                           [&](CpuId) { ++fires; });
  src.Start(0);
  q.RunUntil(sim::Milliseconds(250));
  const int seen = fires;
  EXPECT_GE(seen, 1);
  src.Stop(0);
  q.RunUntil(sim::Milliseconds(1000));
  EXPECT_LE(fires, seen + 1);  // at most one already-queued event
}

TEST(PlatformTest, ConstructsConfiguredTopology) {
  PlatformConfig cfg;
  cfg.num_cpus = 4;
  cfg.memory_gib = 2;
  Platform p(cfg, 1);
  EXPECT_EQ(p.num_cpus(), 4);
  EXPECT_EQ(p.memory().num_frames(), (2ULL << 30) / 4096);
}

TEST(PlatformTest, DurationInstructionConversionRoundTrips) {
  PlatformConfig cfg;
  Platform p(cfg, 1);
  const sim::Duration d = p.DurationForInstructions(2500);
  EXPECT_EQ(d, 1000);  // 2500 instr at 0.4 ns = 1 us
  EXPECT_EQ(p.CyclesForDuration(d), 2500u);
}

TEST(PlatformTest, ApicFireRaisesTimerVector) {
  PlatformConfig cfg;
  cfg.num_cpus = 2;
  Platform p(cfg, 1);
  p.apic(1).Program(100);
  p.queue().RunUntil(100);
  EXPECT_TRUE(p.intc().Pending(1, vec::kTimer));
  EXPECT_FALSE(p.intc().Pending(0, vec::kTimer));
}

TEST(PlatformTest, HvStepHookInvoked) {
  PlatformConfig cfg;
  Platform p(cfg, 1);
  std::uint64_t seen = 0;
  p.SetHvStepHook([&](Cpu&, std::uint64_t n) { seen += n; });
  p.OnHvStep(p.cpu(0), 40);
  p.OnHvStep(p.cpu(0), 2);
  EXPECT_EQ(seen, 42u);
  p.ClearHvStepHook();
  p.OnHvStep(p.cpu(0), 100);
  EXPECT_EQ(seen, 42u);
}

}  // namespace
}  // namespace nlh::hw
