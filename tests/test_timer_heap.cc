// Unit & property tests for the software timer heap (hv/timer_heap.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "hv/panic.h"
#include "hv/timer_heap.h"
#include "sim/rng.h"

namespace nlh::hv {
namespace {

SoftTimer Mk(const std::string& name, sim::Time deadline,
             sim::Duration period = 0) {
  SoftTimer t;
  t.name = name;
  t.deadline = deadline;
  t.period = period;
  return t;
}

TEST(TimerHeapTest, PopsInDeadlineOrder) {
  TimerHeap th(0);
  th.Insert(Mk("c", 300));
  th.Insert(Mk("a", 100));
  th.Insert(Mk("b", 200));
  SoftTimer t;
  ASSERT_TRUE(th.PopExpired(1000, &t));
  EXPECT_EQ(t.name, "a");
  ASSERT_TRUE(th.PopExpired(1000, &t));
  EXPECT_EQ(t.name, "b");
  ASSERT_TRUE(th.PopExpired(1000, &t));
  EXPECT_EQ(t.name, "c");
  EXPECT_FALSE(th.PopExpired(1000, &t));
}

TEST(TimerHeapTest, PopOnlyExpired) {
  TimerHeap th(0);
  th.Insert(Mk("later", 500));
  SoftTimer t;
  EXPECT_FALSE(th.PopExpired(499, &t));
  EXPECT_TRUE(th.PopExpired(500, &t));
}

TEST(TimerHeapTest, NextDeadline) {
  TimerHeap th(0);
  EXPECT_EQ(th.NextDeadline(), std::numeric_limits<sim::Time>::max());
  th.Insert(Mk("x", 700));
  th.Insert(Mk("y", 400));
  EXPECT_EQ(th.NextDeadline(), 400);
}

TEST(TimerHeapTest, RemoveById) {
  TimerHeap th(0);
  const TimerId a = th.Insert(Mk("a", 100));
  th.Insert(Mk("b", 200));
  EXPECT_TRUE(th.Remove(a));
  EXPECT_FALSE(th.Remove(a));
  EXPECT_FALSE(th.Contains(a));
  EXPECT_EQ(th.NextDeadline(), 200);
}

TEST(TimerHeapTest, RemoveByName) {
  TimerHeap th(0);
  th.Insert(Mk("vtimer:3", 100));
  th.Insert(Mk("watchdog_tick", 200));
  EXPECT_TRUE(th.RemoveByName("vtimer:3"));
  EXPECT_FALSE(th.ContainsName("vtimer:3"));
  EXPECT_TRUE(th.ContainsName("watchdog_tick"));
  EXPECT_FALSE(th.RemoveByName("missing"));
}

TEST(TimerHeapTest, CorruptNegativeDeadlinePanicsOnPop) {
  TimerHeap th(0);
  th.Insert(Mk("a", 100));
  th.CorruptEntry(0, /*push_out=*/false);
  SoftTimer t;
  EXPECT_THROW(th.PopExpired(1000, &t), HvPanic);
}

TEST(TimerHeapTest, CorruptPushOutSilentlyLosesEvent) {
  TimerHeap th(0);
  th.Insert(Mk("only", 100));
  th.CorruptEntry(0, /*push_out=*/true);
  SoftTimer t;
  EXPECT_FALSE(th.PopExpired(1'000'000'000, &t));  // never fires in any run
  EXPECT_EQ(th.size(), 1u);  // the entry is still present (not missing)
}

TEST(TimerHeapTest, ClearEmptiesHeap) {
  TimerHeap th(0);
  th.Insert(Mk("a", 1));
  th.Insert(Mk("b", 2));
  th.Clear();
  EXPECT_TRUE(th.empty());
}

// Property: random insert/remove/pop sequences always pop in nondecreasing
// deadline order.
class TimerHeapFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TimerHeapFuzz, PopOrderIsMonotone) {
  sim::Rng rng(GetParam());
  TimerHeap th(0);
  std::vector<TimerId> live;
  for (int op = 0; op < 200; ++op) {
    const int what = static_cast<int>(rng.Index(3));
    if (what == 0 || live.empty()) {
      live.push_back(th.Insert(Mk("t", rng.Range(0, 10000))));
    } else if (what == 1) {
      const std::size_t i = rng.Index(live.size());
      th.Remove(live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      sim::Time last = -1;
      SoftTimer t;
      while (th.PopExpired(rng.Range(0, 10000), &t)) {
        ASSERT_GE(t.deadline, last) << "seed " << GetParam();
        last = t.deadline;
        live.erase(std::remove(live.begin(), live.end(), t.id), live.end());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TimerHeapFuzz, ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace nlh::hv
