// Unit tests for the remaining hypervisor components: event channels,
// grant tables, the undo log, the operation context, and hypercall traits.
#include <gtest/gtest.h>

#include "hv/event_channel.h"
#include "hv/grant_table.h"
#include "hv/hypercall_defs.h"
#include "hv/op_context.h"
#include "hv/panic.h"
#include "hv/undo_log.h"
#include "hw/platform.h"

namespace nlh::hv {
namespace {

TEST(EventChannelTest, AllocBindCloseLifecycle) {
  EventChannelTable t;
  const EventPort p = t.AllocUnbound(2, 0);
  EXPECT_EQ(t.At(p).state, ChannelState::kUnbound);
  EXPECT_EQ(t.At(p).remote_domain, 2);
  t.BindInterdomain(p, 2, 7);
  EXPECT_EQ(t.At(p).state, ChannelState::kInterdomain);
  EXPECT_EQ(t.At(p).remote_port, 7);
  EXPECT_EQ(t.OpenCount(), 1);
  t.Close(p);
  EXPECT_EQ(t.At(p).state, ChannelState::kClosed);
  EXPECT_EQ(t.OpenCount(), 0);
}

TEST(EventChannelTest, PortsAreReusedAfterClose) {
  EventChannelTable t;
  const EventPort a = t.AllocUnbound(1, 0);
  t.Close(a);
  const EventPort b = t.AllocUnbound(1, 0);
  EXPECT_EQ(a, b);
}

TEST(EventChannelTest, ExhaustionPanics) {
  EventChannelTable t;
  for (int i = 0; i < kMaxEventPorts; ++i) t.AllocUnbound(1, 0);
  EXPECT_THROW(t.AllocUnbound(1, 0), HvPanic);
}

TEST(EventChannelTest, OutOfRangePortAsserts) {
  EventChannelTable t;
  EXPECT_THROW(t.At(-1), HvPanic);
  EXPECT_THROW(t.At(kMaxEventPorts), HvPanic);
}

TEST(EventChannelTest, BindWrongStateAsserts) {
  EventChannelTable t;
  EXPECT_THROW(t.BindInterdomain(5, 1, 1), HvPanic);  // closed port
}

TEST(GrantTableTest, GrantMapRevokeLifecycle) {
  GrantTable g;
  const GrantRef r = g.Grant(1, 100);
  EXPECT_TRUE(g.At(r).in_use);
  EXPECT_EQ(g.At(r).frame, 100u);
  ++g.At(r).map_count;
  EXPECT_EQ(g.MappedCount(), 1);
  EXPECT_THROW(g.Revoke(r), HvPanic);  // revoking a mapped grant
  --g.At(r).map_count;
  g.Revoke(r);
  EXPECT_FALSE(g.At(r).in_use);
}

TEST(GrantTableTest, TryGrantReturnsInvalidWhenFull) {
  GrantTable g;
  for (int i = 0; i < kGrantTableSize; ++i) {
    ASSERT_NE(g.TryGrant(1, static_cast<FrameNumber>(i)), kInvalidGrant);
  }
  EXPECT_EQ(g.TryGrant(1, 999), kInvalidGrant);  // non-throwing guest API
  EXPECT_THROW(g.Grant(1, 999), HvPanic);        // hv-internal API asserts
}

TEST(GrantTableTest, LeakedEntryNotReused) {
  GrantTable g;
  const GrantRef r = g.TryGrant(1, 5);
  ++g.At(r).map_count;  // backend still holds a mapping
  g.At(r).in_use = false;  // frontend "forgot" it without revoke
  const GrantRef r2 = g.TryGrant(1, 6);
  EXPECT_NE(r, r2);  // slot with live mapping must not be handed out
}

TEST(UndoLogTest, UnwindsNewestFirstAndClears) {
  UndoLog log;
  std::vector<int> order;
  log.Record([&] { order.push_back(1); });
  log.Record([&] { order.push_back(2); });
  EXPECT_EQ(log.size(), 2u);
  log.UnwindAll();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_TRUE(log.empty());
  log.UnwindAll();  // idempotent on empty
  EXPECT_EQ(order.size(), 2u);
}

TEST(UndoLogTest, ClearDropsWithoutRunning) {
  UndoLog log;
  int ran = 0;
  log.Record([&] { ++ran; });
  log.Clear();
  log.UnwindAll();
  EXPECT_EQ(ran, 0);
}

TEST(HypercallTraitsTest, CoverageAndInvariants) {
  for (int i = 0; i < kNumHypercalls; ++i) {
    const auto code = static_cast<HypercallCode>(i);
    const HypercallTraits& t = TraitsOf(code);
    EXPECT_GE(t.lost_tolerated, 0.0) << HypercallName(code);
    EXPECT_LE(t.lost_tolerated, 1.0) << HypercallName(code);
    EXPECT_NE(HypercallName(code), "?");
  }
  // Section IV anchors: grant_copy and the toolstack ops are the
  // "infrequently-used non-idempotent handlers not properly enhanced".
  EXPECT_FALSE(TraitsOf(HypercallCode::kGrantCopy).retry_enhanced);
  EXPECT_FALSE(TraitsOf(HypercallCode::kDomctlCreate).retry_enhanced);
  EXPECT_FALSE(TraitsOf(HypercallCode::kPhysdevOp).retry_enhanced);
  EXPECT_TRUE(TraitsOf(HypercallCode::kMmuUpdate).retry_enhanced);
  // Scheduling calls tolerate loss; mm calls mostly do not.
  EXPECT_DOUBLE_EQ(TraitsOf(HypercallCode::kSchedOpBlock).lost_tolerated, 1.0);
  EXPECT_LT(TraitsOf(HypercallCode::kMmuUpdate).lost_tolerated, 0.2);
  // Privilege bits.
  EXPECT_TRUE(TraitsOf(HypercallCode::kDomctlCreate).priv_only);
  EXPECT_FALSE(TraitsOf(HypercallCode::kEventChannelSend).priv_only);
}

class OpContextTest : public ::testing::Test {
 protected:
  OpContextTest() : platform_(Cfg(), 1) {}
  static hw::PlatformConfig Cfg() {
    hw::PlatformConfig c;
    c.num_cpus = 1;
    return c;
  }
  hw::Platform platform_;
  RuntimeOptions options_;
};

TEST_F(OpContextTest, StepRetiresAndInvokesHook) {
  std::uint64_t hooked = 0;
  platform_.SetHvStepHook([&](hw::Cpu&, std::uint64_t n) { hooked += n; });
  OpContext ctx(platform_, platform_.cpu(0), options_,
                HvContextKind::kHypercall, nullptr, nullptr);
  ctx.Step(100, "a");
  ctx.Step(50, "b");
  EXPECT_EQ(ctx.instructions(), 150u);
  EXPECT_EQ(platform_.cpu(0).hv_instructions(), 150u);
  EXPECT_EQ(hooked, 150u);
}

TEST_F(OpContextTest, LockThroughContextIsNotRaii) {
  SpinLock lock("x");
  try {
    OpContext ctx(platform_, platform_.cpu(0), options_,
                  HvContextKind::kHypercall, nullptr, nullptr);
    ctx.Lock(lock);
    throw HvPanic("fault mid-handler");
  } catch (const HvPanic&) {
  }
  // Abandoned-thread semantics: the lock stays held after unwinding.
  EXPECT_TRUE(lock.held());
}

TEST_F(OpContextTest, LogUndoCostsOnlyWhenEnabled) {
  UndoLog log;
  options_.undo_logging = true;
  {
    OpContext ctx(platform_, platform_.cpu(0), options_,
                  HvContextKind::kHypercall, nullptr, &log);
    ctx.LogUndo([] {});
    EXPECT_EQ(ctx.instructions(), cost::kUndoLogRecord);
    EXPECT_EQ(log.size(), 1u);
  }
  options_.undo_logging = false;
  {
    OpContext ctx(platform_, platform_.cpu(0), options_,
                  HvContextKind::kHypercall, nullptr, &log);
    ctx.LogUndo([] {});
    EXPECT_EQ(ctx.instructions(), 0u);  // NiLiHype*: no records, no cost
    EXPECT_EQ(log.size(), 1u);          // unchanged
  }
}

TEST_F(OpContextTest, BatchCompletionLoggingGatedByOption) {
  Vcpu vc;
  vc.id = 0;
  options_.batch_completion_logging = true;
  {
    OpContext ctx(platform_, platform_.cpu(0), options_,
                  HvContextKind::kHypercall, &vc, nullptr);
    ctx.LogBatchComponentDone(2);
    EXPECT_EQ(vc.inflight.multicall_progress, 3);
    EXPECT_TRUE(vc.inflight.progress_logged);
  }
  vc.inflight.multicall_progress = 0;
  vc.inflight.progress_logged = false;
  options_.batch_completion_logging = false;
  {
    OpContext ctx(platform_, platform_.cpu(0), options_,
                  HvContextKind::kHypercall, &vc, nullptr);
    ctx.LogBatchComponentDone(2);
    EXPECT_EQ(vc.inflight.multicall_progress, 0);  // no logging, no skip
  }
}

TEST_F(OpContextTest, IoApicShadowOnlyForReHypeBuilds) {
  options_.rehype_ioapic_shadow = false;
  {
    OpContext ctx(platform_, platform_.cpu(0), options_, HvContextKind::kIrq,
                  nullptr, nullptr);
    ctx.ShadowIoApicWrite();
    EXPECT_EQ(ctx.instructions(), 0u);
  }
  options_.rehype_ioapic_shadow = true;
  {
    OpContext ctx(platform_, platform_.cpu(0), options_, HvContextKind::kIrq,
                  nullptr, nullptr);
    ctx.ShadowIoApicWrite();
    EXPECT_EQ(ctx.instructions(), cost::kIoApicShadowWrite);
  }
}

}  // namespace
}  // namespace nlh::hv
