// Cross-cutting property tests over whole fault-injection runs.
//
// These sweep seeds (TEST_P) and assert invariants that must hold for ANY
// injected fault — the simulator-level analogue of the paper's claim that
// the enhancements make recovery safe on arbitrarily damaged state.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "audit/state_auditor.h"
#include "core/target_system.h"
#include "sim/rng.h"

namespace nlh {
namespace {

struct SweepParam {
  std::uint64_t seed;
  inject::FaultType fault;
  core::Mechanism mechanism;
};

class RunSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RunSweep, InvariantsHoldAfterAnyRun) {
  const SweepParam p = GetParam();
  core::RunConfig cfg;
  cfg.mechanism = p.mechanism;
  cfg.fault = p.fault;
  cfg.seed = p.seed;
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();

  // 1. A classified run is exactly one of the three outcome classes, and
  //    success is only meaningful for detected runs.
  if (r.outcome != core::OutcomeClass::kDetected) {
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.recoveries, 0);
  }

  // 2. A successful recovery implies a live, lock-free hypervisor.
  if (r.success) {
    EXPECT_FALSE(r.system_dead);
    EXPECT_EQ(sys.hv().static_locks().HeldCount(), 0);
    EXPECT_EQ(sys.hv().heap().HeldLockCount(), 0);
    for (const auto& pc : sys.hv().percpu()) {
      EXPECT_EQ(pc.local_irq_count, 0);
    }
    // Scheduling metadata consistent after the dust settles.
    EXPECT_TRUE(hv::SchedMetadataConsistent(sys.hv().percpu(),
                                            sys.hv().vcpus()));
  }

  // 3. The frame scan ran during recovery: a successful NiLiHype/ReHype
  //    run leaves no descriptor inconsistencies among *live* frames.
  if (r.success) {
    EXPECT_EQ(sys.hv().frames().CountInconsistent(), 0u);
  }

  // 4. Recovery latency matches the mechanism's model whenever recovery ran
  //    to completion.
  if (r.recoveries > 0 &&
      !sys.recovery_manager()->reports().front().gave_up) {
    const double ms = sim::ToMillisF(r.first_recovery_latency);
    if (p.mechanism == core::Mechanism::kNiLiHype) {
      EXPECT_GT(ms, 20.0);
      EXPECT_LT(ms, 25.0);
    } else {
      EXPECT_GT(ms, 690.0);
      EXPECT_LT(ms, 740.0);
    }
  }

  // 5. Determinism: re-running the same seed reproduces the outcome.
  core::TargetSystem sys2(cfg);
  const core::RunResult r2 = sys2.Run();
  EXPECT_EQ(r.outcome, r2.outcome);
  EXPECT_EQ(r.success, r2.success);
  EXPECT_EQ(r.no_vm_failures, r2.no_vm_failures);
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  for (std::uint64_t seed = 9000; seed < 9012; ++seed) {
    for (const inject::FaultType f :
         {inject::FaultType::kFailstop, inject::FaultType::kRegister,
          inject::FaultType::kCode}) {
      params.push_back({seed, f, core::Mechanism::kNiLiHype});
    }
    if (seed % 3 == 0) {
      params.push_back({seed, inject::FaultType::kFailstop,
                        core::Mechanism::kReHype});
      params.push_back({seed, inject::FaultType::kCode,
                        core::Mechanism::kReHype});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(FaultRuns, RunSweep, ::testing::ValuesIn(MakeSweep()));

// Property: the Table I monotonicity — each cumulative enhancement level
// can only help. Checked coarsely over a small campaign per level.
TEST(EnhancementMonotonicity, MoreEnhancementsNeverHurtMuch) {
  double prev = -1.0;
  for (int row = 0; row <= 6; row += 2) {
    core::RunConfig cfg =
        core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
    cfg.mechanism = core::Mechanism::kNiLiHype;
    cfg.enhancements = recovery::EnhancementSet::TableISimple(row);
    cfg.fault = inject::FaultType::kFailstop;
    int succ = 0;
    const int kRuns = 25;
    for (int i = 0; i < kRuns; ++i) {
      cfg.seed = 4000 + static_cast<std::uint64_t>(i);
      core::TargetSystem sys(cfg);
      succ += sys.Run().success ? 1 : 0;
    }
    const double rate = succ / double(kRuns);
    // Allow small-sample noise, but the trend must be upward.
    EXPECT_GE(rate, prev - 0.15) << "row " << row;
    prev = std::max(prev, rate);
  }
  EXPECT_GT(prev, 0.8);  // fully enhanced recovers the large majority
}

// Property: the auditor has no false positives. Any sequence of *completed*
// hypervisor operations — allocations, frees, grants, timers, balanced
// reference taking, real execution of the event queue — interleaved with
// audit sweeps on an uninjected platform must never produce a finding.
TEST(AuditProperty, RandomizedOpsNeverProduceFindings) {
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    hw::PlatformConfig pc;
    pc.num_cpus = 4;
    pc.memory_gib = 8;
    hw::Platform platform(pc, seed);
    hv::Hypervisor hv(platform, hv::HvConfig{});
    hv.Boot();
    const hv::DomainId a = hv.CreateDomainDirect("a", false, 1, 32);
    const hv::DomainId b = hv.CreateDomainDirect("b", false, 2, 32);
    hv.StartDomain(a);
    hv.StartDomain(b);

    sim::Rng rng(seed * 1337);
    std::vector<hv::HeapObjectId> objs;
    std::vector<std::pair<hv::DomainId, hv::GrantRef>> grants;
    std::vector<std::pair<int, hv::TimerId>> timers;
    auto pick_dom = [&] { return rng.Chance(0.5) ? a : b; };

    for (int op = 0; op < 300; ++op) {
      switch (rng.Index(8)) {
        case 0:
          if (objs.size() < 50) {
            objs.push_back(hv.heap().Alloc(
                "scratch:" + std::to_string(op), 1 + rng.Index(3)));
          }
          break;
        case 1:
          if (!objs.empty()) {
            const std::size_t i = rng.Index(objs.size());
            hv.heap().Free(objs[i]);
            objs[i] = objs.back();
            objs.pop_back();
          }
          break;
        case 2: {
          const hv::DomainId d = pick_dom();
          hv::Domain* dom = hv.FindDomain(d);
          const hv::GrantRef r = dom->grants.TryGrant(
              d == a ? b : a,
              dom->first_frame +
                  static_cast<hv::FrameNumber>(rng.Index(dom->num_frames)));
          if (r != hv::kInvalidGrant) grants.emplace_back(d, r);
          break;
        }
        case 3:
          if (!grants.empty()) {
            const std::size_t i = rng.Index(grants.size());
            hv.FindDomain(grants[i].first)->grants.Revoke(grants[i].second);
            grants[i] = grants.back();
            grants.pop_back();
          }
          break;
        case 4: {
          const int cpu = static_cast<int>(rng.Index(4));
          hv::SoftTimer t;
          t.name = "aux:" + std::to_string(op);
          t.deadline = hv.Now() + sim::Milliseconds(
                                      1 + static_cast<sim::Duration>(
                                              rng.Index(500)));
          timers.emplace_back(cpu, hv.timers(cpu).Insert(std::move(t)));
          break;
        }
        case 5:
          if (!timers.empty()) {
            const std::size_t i = rng.Index(timers.size());
            hv.timers(timers[i].first).Remove(timers[i].second);
            timers[i] = timers.back();
            timers.pop_back();
          }
          break;
        case 6: {
          // A completed get/put reference pair (balanced by definition).
          hv::Domain* dom = hv.FindDomain(pick_dom());
          const hv::FrameNumber f =
              dom->first_frame +
              static_cast<hv::FrameNumber>(rng.Index(dom->num_frames));
          hv.frames().GetPage(f);
          hv.frames().PutPage(f);
          break;
        }
        default:
          // Real execution: run the platform forward a little.
          platform.queue().RunUntil(hv.Now() + sim::Milliseconds(2));
          break;
      }

      if (op % 50 == 49) {
        audit::StateAuditor auditor(hv);
        const audit::AuditReport r = auditor.Audit();
        for (const audit::AuditFinding& f : r.findings) {
          ADD_FAILURE() << "seed " << seed << " op " << op << ": "
                        << f.invariant << " — " << f.detail;
        }
        if (!r.clean()) return;  // one dump is enough
      }
    }
  }
}

}  // namespace
}  // namespace nlh
