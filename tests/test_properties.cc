// Cross-cutting property tests over whole fault-injection runs.
//
// These sweep seeds (TEST_P) and assert invariants that must hold for ANY
// injected fault — the simulator-level analogue of the paper's claim that
// the enhancements make recovery safe on arbitrarily damaged state.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "audit/state_auditor.h"
#include "core/target_system.h"
#include "sim/rng.h"

namespace nlh {
namespace {

struct SweepParam {
  std::uint64_t seed;
  inject::FaultType fault;
  core::Mechanism mechanism;
};

class RunSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(RunSweep, InvariantsHoldAfterAnyRun) {
  const SweepParam p = GetParam();
  core::RunConfig cfg;
  cfg.mechanism = p.mechanism;
  cfg.fault = p.fault;
  cfg.seed = p.seed;
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();

  // 1. A classified run is exactly one of the three outcome classes, and
  //    success is only meaningful for detected runs.
  if (r.outcome != core::OutcomeClass::kDetected) {
    EXPECT_FALSE(r.success);
    EXPECT_EQ(r.recoveries, 0);
  }

  // 2. A successful recovery implies a live, lock-free hypervisor.
  if (r.success) {
    EXPECT_FALSE(r.system_dead);
    EXPECT_EQ(sys.hv().static_locks().HeldCount(), 0);
    EXPECT_EQ(sys.hv().heap().HeldLockCount(), 0);
    for (const auto& pc : sys.hv().percpu()) {
      EXPECT_EQ(pc.local_irq_count, 0);
    }
    // Scheduling metadata consistent after the dust settles.
    EXPECT_TRUE(hv::SchedMetadataConsistent(sys.hv().percpu(),
                                            sys.hv().vcpus()));
  }

  // 3. The frame scan ran during recovery: a successful NiLiHype/ReHype
  //    run leaves no descriptor inconsistencies among *live* frames.
  if (r.success) {
    EXPECT_EQ(sys.hv().frames().CountInconsistent(), 0u);
  }

  // 4. Recovery latency matches the mechanism's model whenever recovery ran
  //    to completion.
  if (r.recoveries > 0 &&
      !sys.recovery_manager()->reports().front().gave_up) {
    const double ms = sim::ToMillisF(r.first_recovery_latency);
    if (p.mechanism == core::Mechanism::kNiLiHype) {
      EXPECT_GT(ms, 20.0);
      EXPECT_LT(ms, 25.0);
    } else {
      EXPECT_GT(ms, 690.0);
      EXPECT_LT(ms, 740.0);
    }
  }

  // 5. Determinism: re-running the same seed reproduces the outcome.
  core::TargetSystem sys2(cfg);
  const core::RunResult r2 = sys2.Run();
  EXPECT_EQ(r.outcome, r2.outcome);
  EXPECT_EQ(r.success, r2.success);
  EXPECT_EQ(r.no_vm_failures, r2.no_vm_failures);
}

std::vector<SweepParam> MakeSweep() {
  std::vector<SweepParam> params;
  for (std::uint64_t seed = 9000; seed < 9012; ++seed) {
    for (const inject::FaultType f :
         {inject::FaultType::kFailstop, inject::FaultType::kRegister,
          inject::FaultType::kCode}) {
      params.push_back({seed, f, core::Mechanism::kNiLiHype});
    }
    if (seed % 3 == 0) {
      params.push_back({seed, inject::FaultType::kFailstop,
                        core::Mechanism::kReHype});
      params.push_back({seed, inject::FaultType::kCode,
                        core::Mechanism::kReHype});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(FaultRuns, RunSweep, ::testing::ValuesIn(MakeSweep()));

// Property: the Table I monotonicity — each cumulative enhancement level
// can only help. Checked coarsely over a small campaign per level.
TEST(EnhancementMonotonicity, MoreEnhancementsNeverHurtMuch) {
  double prev = -1.0;
  for (int row = 0; row <= 6; row += 2) {
    core::RunConfig cfg =
        core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
    cfg.mechanism = core::Mechanism::kNiLiHype;
    cfg.enhancements = recovery::EnhancementSet::TableISimple(row);
    cfg.fault = inject::FaultType::kFailstop;
    int succ = 0;
    const int kRuns = 25;
    for (int i = 0; i < kRuns; ++i) {
      cfg.seed = 4000 + static_cast<std::uint64_t>(i);
      core::TargetSystem sys(cfg);
      succ += sys.Run().success ? 1 : 0;
    }
    const double rate = succ / double(kRuns);
    // Allow small-sample noise, but the trend must be upward.
    EXPECT_GE(rate, prev - 0.15) << "row " << row;
    prev = std::max(prev, rate);
  }
  EXPECT_GT(prev, 0.8);  // fully enhanced recovers the large majority
}

// Property: the auditor has no false positives. Any sequence of *completed*
// hypervisor operations — allocations, frees, grants, grant map/unmap via
// the real hypercall path, event-channel pair setup/traffic/teardown,
// timers, balanced reference taking, real execution of the event queue —
// interleaved with audit sweeps on an uninjected platform must never
// produce a finding.
TEST(AuditProperty, RandomizedOpsNeverProduceFindings) {
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    hw::PlatformConfig pc;
    pc.num_cpus = 4;
    pc.memory_gib = 8;
    hw::Platform platform(pc, seed);
    hv::Hypervisor hv(platform, hv::HvConfig{});
    hv.Boot();
    const hv::DomainId a = hv.CreateDomainDirect("a", false, 1, 32);
    const hv::DomainId b = hv.CreateDomainDirect("b", false, 2, 32);
    hv.StartDomain(a);
    hv.StartDomain(b);

    sim::Rng rng(seed * 1337);
    std::vector<hv::HeapObjectId> objs;
    std::vector<std::pair<hv::DomainId, hv::GrantRef>> grants;
    std::vector<std::pair<hv::DomainId, hv::GrantRef>> mapped;
    std::vector<std::pair<int, hv::TimerId>> timers;
    // One fully bound event-channel pair: port `pa` in domain `da` is
    // interdomain-connected to port `pb` in domain `db`.
    struct Chan {
      hv::DomainId da, db;
      hv::EventPort pa, pb;
    };
    std::vector<Chan> chans;
    auto pick_dom = [&] { return rng.Chance(0.5) ? a : b; };
    auto vcpu_of = [&](hv::DomainId d) {
      return hv.FindDomain(d)->vcpus.front();
    };
    auto call = [&](hv::DomainId d, hv::HypercallCode code, std::uint64_t a0,
                    std::uint64_t a1 = 0) {
      hv::HypercallArgs args;
      args.arg0 = a0;
      args.arg1 = a1;
      return hv.Hypercall(vcpu_of(d), code, args);
    };
    auto is_mapped = [&](const std::pair<hv::DomainId, hv::GrantRef>& g) {
      for (const auto& m : mapped) {
        if (m == g) return true;
      }
      return false;
    };
    // The guest side consuming a delivered event: clear the pending bit.
    auto consume = [&](hv::DomainId d, hv::EventPort p) {
      for (const hv::VcpuId v : hv.FindDomain(d)->vcpus) {
        hv.vcpu(v).pending_events &= ~(1ULL << static_cast<unsigned>(p));
      }
    };

    for (int op = 0; op < 300; ++op) {
      switch (rng.Index(12)) {
        case 0:
          if (objs.size() < 50) {
            objs.push_back(hv.heap().Alloc(
                "scratch:" + std::to_string(op), 1 + rng.Index(3)));
          }
          break;
        case 1:
          if (!objs.empty()) {
            const std::size_t i = rng.Index(objs.size());
            hv.heap().Free(objs[i]);
            objs[i] = objs.back();
            objs.pop_back();
          }
          break;
        case 2: {
          const hv::DomainId d = pick_dom();
          hv::Domain* dom = hv.FindDomain(d);
          const hv::GrantRef r = dom->grants.TryGrant(
              d == a ? b : a,
              dom->first_frame +
                  static_cast<hv::FrameNumber>(rng.Index(dom->num_frames)));
          if (r != hv::kInvalidGrant) grants.emplace_back(d, r);
          break;
        }
        case 3:
          if (!grants.empty()) {
            const std::size_t i = rng.Index(grants.size());
            if (is_mapped(grants[i])) break;  // must unmap before revoking
            hv.FindDomain(grants[i].first)->grants.Revoke(grants[i].second);
            grants[i] = grants.back();
            grants.pop_back();
          }
          break;
        case 4: {
          const int cpu = static_cast<int>(rng.Index(4));
          hv::SoftTimer t;
          t.name = "aux:" + std::to_string(op);
          t.deadline = hv.Now() + sim::Milliseconds(
                                      1 + static_cast<sim::Duration>(
                                              rng.Index(500)));
          timers.emplace_back(cpu, hv.timers(cpu).Insert(std::move(t)));
          break;
        }
        case 5:
          if (!timers.empty()) {
            const std::size_t i = rng.Index(timers.size());
            hv.timers(timers[i].first).Remove(timers[i].second);
            timers[i] = timers.back();
            timers.pop_back();
          }
          break;
        case 6: {
          // A completed get/put reference pair (balanced by definition).
          hv::Domain* dom = hv.FindDomain(pick_dom());
          const hv::FrameNumber f =
              dom->first_frame +
              static_cast<hv::FrameNumber>(rng.Index(dom->num_frames));
          hv.frames().GetPage(f);
          hv.frames().PutPage(f);
          break;
        }
        case 7:
          // Map an outstanding grant through the real hypercall path (the
          // peer domain is the backend doing the mapping).
          if (!grants.empty() && mapped.size() < 16) {
            const auto g = grants[rng.Index(grants.size())];
            const hv::DomainId mapper = g.first == a ? b : a;
            call(mapper, hv::HypercallCode::kGrantMap,
                 static_cast<std::uint64_t>(g.first),
                 static_cast<std::uint64_t>(g.second));
            mapped.push_back(g);
          }
          break;
        case 8:
          // Unmap a previously mapped grant, again via the hypercall.
          if (!mapped.empty()) {
            const std::size_t i = rng.Index(mapped.size());
            const auto g = mapped[i];
            const hv::DomainId mapper = g.first == a ? b : a;
            call(mapper, hv::HypercallCode::kGrantUnmap,
                 static_cast<std::uint64_t>(g.first),
                 static_cast<std::uint64_t>(g.second));
            mapped[i] = mapped.back();
            mapped.pop_back();
          }
          break;
        case 9: {
          // Open a full event-channel pair: one side allocates an unbound
          // port for the peer, the peer binds to it.
          if (chans.size() >= 6) break;
          const hv::DomainId x = pick_dom();
          const hv::DomainId y = x == a ? b : a;
          const hv::EventPort px = static_cast<hv::EventPort>(
              call(x, hv::HypercallCode::kEventChannelAllocUnbound,
                   static_cast<std::uint64_t>(y)));
          const hv::EventPort py = static_cast<hv::EventPort>(
              call(y, hv::HypercallCode::kEventChannelBindInterdomain,
                   static_cast<std::uint64_t>(x),
                   static_cast<std::uint64_t>(px)));
          chans.push_back({x, y, px, py});
          break;
        }
        case 10:
          // Event-channel traffic or teardown. Teardown consumes any
          // pending bits first (a close with events still pending is the
          // evtchn.pending_closed corruption signature) and then closes
          // BOTH ends — each end from its own domain.
          if (!chans.empty()) {
            const std::size_t i = rng.Index(chans.size());
            const Chan c = chans[i];
            if (rng.Chance(0.5)) {
              if (rng.Chance(0.5)) {
                call(c.da, hv::HypercallCode::kEventChannelSend,
                     static_cast<std::uint64_t>(c.pa));
              } else {
                call(c.db, hv::HypercallCode::kEventChannelSend,
                     static_cast<std::uint64_t>(c.pb));
              }
            } else {
              consume(c.da, c.pa);
              consume(c.db, c.pb);
              call(c.da, hv::HypercallCode::kEventChannelClose,
                   static_cast<std::uint64_t>(c.pa));
              call(c.db, hv::HypercallCode::kEventChannelClose,
                   static_cast<std::uint64_t>(c.pb));
              chans[i] = chans.back();
              chans.pop_back();
            }
          }
          break;
        default:
          // Real execution: run the platform forward a little.
          platform.queue().RunUntil(hv.Now() + sim::Milliseconds(2));
          break;
      }

      if (op % 50 == 49) {
        audit::StateAuditor auditor(hv);
        const audit::AuditReport r = auditor.Audit();
        for (const audit::AuditFinding& f : r.findings) {
          ADD_FAILURE() << "seed " << seed << " op " << op << ": "
                        << f.invariant << " — " << f.detail;
        }
        if (!r.clean()) return;  // one dump is enough
      }
    }
  }
}

}  // namespace
}  // namespace nlh
