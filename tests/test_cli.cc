// CLI contract of campaign_tool: bad invocations must fail fast, with a
// nonzero exit code and a usage message — a misspelled flag or a missing
// corpus path in CI must never silently fall through to a default
// campaign. NLH_CAMPAIGN_TOOL is the built binary's path (from CMake).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct CliResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CliResult RunTool(const std::string& args) {
  const std::string cmd =
      std::string(NLH_CAMPAIGN_TOOL) + " " + args + " 2>&1";
  std::FILE* pipe = popen(cmd.c_str(), "r");
  CliResult r;
  if (pipe == nullptr) return r;
  char buf[1024];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

TEST(CampaignToolCli, UnknownFlagExitsNonzeroWithUsage) {
  const CliResult r = RunTool("--bogus-flag");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag --bogus-flag"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CampaignToolCli, UnreadableReplayPathExitsNonzeroWithUsage) {
  const CliResult r = RunTool("--replay=/nonexistent/repro.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unreadable"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CampaignToolCli, MissingCorpusDirExitsNonzeroWithUsage) {
  const CliResult r = RunTool("--corpus=/nonexistent/corpus-dir");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("does not exist"), std::string::npos);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CampaignToolCli, UnreadableShrinkPathExitsNonzeroWithUsage) {
  const CliResult r = RunTool("--shrink=/nonexistent/repro.json");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(CampaignToolCli, CorpusCheckPassesOnTheCommittedCorpus) {
  const CliResult r =
      RunTool(std::string("--corpus=") + NLH_CORPUS_DIR + " --threads=4");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("corpus check passed"), std::string::npos)
      << r.output;
}

}  // namespace
