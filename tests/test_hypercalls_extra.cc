// Additional hypercall-path tests: the remaining handlers, and white-box
// demonstrations of the retry hazards the Section IV enhancements exist
// for (double-applied batch components, lost physdev rebalance).
#include <gtest/gtest.h>

#include "hv/hypervisor.h"
#include "hv/panic.h"
#include "recovery/recovery_common.h"

namespace nlh::hv {
namespace {

class HypercallExtraTest : public ::testing::Test {
 protected:
  HypercallExtraTest()
      : platform_(MakeCfg(), 3), hv_(platform_, HvConfig{}) {
    hv_.Boot();
    dom_ = hv_.CreateDomainDirect("app", false, 1, 32);
    priv_ = hv_.CreateDomainDirect("dom0", true, 0, 32);
    hv_.StartDomain(dom_);
    hv_.StartDomain(priv_);
    vcpu_ = hv_.FindDomain(dom_)->vcpus.front();
    pvcpu_ = hv_.FindDomain(priv_)->vcpus.front();
  }
  static hw::PlatformConfig MakeCfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 4;
    cfg.memory_gib = 1;
    return cfg;
  }
  std::uint64_t Call(VcpuId v, HypercallCode code, std::uint64_t a0 = 0,
                     std::uint64_t a1 = 0) {
    HypercallArgs a;
    a.arg0 = a0;
    a.arg1 = a1;
    return hv_.Hypercall(v, code, a);
  }

  hw::Platform platform_;
  Hypervisor hv_;
  DomainId dom_, priv_;
  VcpuId vcpu_, pvcpu_;
};

TEST_F(HypercallExtraTest, UpdateVaMappingBalances) {
  Domain* d = hv_.FindDomain(dom_);
  const FrameNumber f = d->first_frame + 4;
  const std::int32_t before = hv_.frames().desc(f).use_count;
  Call(vcpu_, HypercallCode::kUpdateVaMapping, 4, 1);
  EXPECT_EQ(hv_.frames().desc(f).use_count, before + 1);
  Call(vcpu_, HypercallCode::kUpdateVaMapping, 4, 0);
  EXPECT_EQ(hv_.frames().desc(f).use_count, before);
}

TEST_F(HypercallExtraTest, EventChannelSetupViaHypercalls) {
  // dom allocates an unbound port for dom0, then dom0 binds to it.
  const EventPort remote_port = static_cast<EventPort>(
      Call(vcpu_, HypercallCode::kEventChannelAllocUnbound,
           static_cast<std::uint64_t>(priv_)));
  const EventPort local = static_cast<EventPort>(
      Call(pvcpu_, HypercallCode::kEventChannelBindInterdomain,
           static_cast<std::uint64_t>(dom_),
           static_cast<std::uint64_t>(remote_port)));
  Domain* p = hv_.FindDomain(priv_);
  EXPECT_EQ(p->evtchn.At(local).state, ChannelState::kInterdomain);
  // Send from dom0 -> dom arrives on the remote port.
  Call(pvcpu_, HypercallCode::kEventChannelSend,
       static_cast<std::uint64_t>(local));
  EXPECT_NE(hv_.vcpu(vcpu_).pending_events &
                (1ULL << static_cast<unsigned>(remote_port)),
            0u);
  Call(pvcpu_, HypercallCode::kEventChannelClose,
       static_cast<std::uint64_t>(local));
  EXPECT_EQ(p->evtchn.At(local).state, ChannelState::kClosed);
}

TEST_F(HypercallExtraTest, DomctlDestroyDetachesDomain) {
  const std::uint64_t id = Call(pvcpu_, HypercallCode::kDomctlCreate, 2, 8);
  Call(pvcpu_, HypercallCode::kDomctlUnpause, id);
  Domain* nd = hv_.FindDomain(static_cast<DomainId>(id));
  const VcpuId nv = nd->vcpus.front();
  EXPECT_EQ(hv_.vcpu(nv).state, VcpuState::kRunnable);
  Call(pvcpu_, HypercallCode::kDomctlDestroy, id);
  EXPECT_EQ(nd->lifecycle, DomainLifecycle::kDead);
  EXPECT_EQ(hv_.vcpu(nv).state, VcpuState::kOffline);
  EXPECT_FALSE(hv_.vcpu(nv).rq_queued);
}

TEST_F(HypercallExtraTest, ConsoleAndVersionAreHarmless) {
  EXPECT_EQ(Call(vcpu_, HypercallCode::kConsoleIo), 0u);
  EXPECT_EQ(Call(pvcpu_, HypercallCode::kVcpuOpUp), 0u);
  EXPECT_TRUE(hv_.AuditState().empty());
}

TEST_F(HypercallExtraTest, PhysdevRebalanceLeavesRouteUnmasked) {
  Domain* p = hv_.FindDomain(priv_);
  const EventPort port = p->evtchn.AllocUnbound(priv_, pvcpu_);
  hv_.BindDeviceVector(hw::vec::kBlk, priv_, port);
  Call(pvcpu_, HypercallCode::kPhysdevOp);
  EXPECT_FALSE(hv_.device_bindings().begin()->second.masked);
}

// The hazard fine-granularity batched retry exists for (Section IV): a
// retried multicall without completion logging re-executes components whose
// effects were already final, and the second unmap underflows.
TEST_F(HypercallExtraTest, BatchRetryWithoutLoggingDoubleApplies) {
  hv_.options().batch_completion_logging = false;
  hv_.options().undo_logging = false;  // no mitigation either

  Domain* d = hv_.FindDomain(dom_);
  // Establish present PTEs so the unmap batch below is valid once.
  for (int i = 0; i < 2; ++i) {
    Call(vcpu_, HypercallCode::kMmuUpdate, static_cast<std::uint64_t>(i), 1);
  }
  Vcpu& vc = hv_.vcpu(vcpu_);
  HypercallArgs a;
  for (int i = 0; i < 2; ++i) {
    MulticallEntry e;
    e.code = HypercallCode::kMmuUpdate;
    e.arg0 = static_cast<std::uint64_t>(i);
    e.arg1 = 0;  // unmap
    a.batch.push_back(e);
  }
  // Execute the full batch once, as if it completed just before the fault
  // (commit boundary), but with the in-flight record still active.
  vc.inflight.active = true;
  vc.inflight.code = HypercallCode::kMulticall;
  vc.inflight.args = a;
  vc.inflight.multicall_progress = 0;
  {
    OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                  HvContextKind::kHypercall, &vc, &vc.inflight.undo);
    hv_.Dispatch(ctx, vc, HypercallCode::kMulticall, a);
  }
  // Progress was NOT logged (enhancement off), so a retry re-runs all
  // components: the use counts underflow and the hypervisor panics.
  EXPECT_EQ(vc.inflight.multicall_progress, 0);
  EXPECT_EQ(hv_.frames().desc(d->first_frame + 0).use_count, 1);
  EXPECT_FALSE(d->pte_present[0]);
  {
    OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                  HvContextKind::kHypercall, &vc, &vc.inflight.undo);
    EXPECT_THROW(hv_.Dispatch(ctx, vc, HypercallCode::kMulticall, a), HvPanic);
  }
}

// With completion logging on, the same retry skips the completed
// components and is harmless.
TEST_F(HypercallExtraTest, BatchRetryWithLoggingSkipsCompleted) {
  for (int i = 0; i < 2; ++i) {
    Call(vcpu_, HypercallCode::kMmuUpdate, static_cast<std::uint64_t>(i), 1);
  }
  Vcpu& vc = hv_.vcpu(vcpu_);
  HypercallArgs a;
  for (int i = 0; i < 2; ++i) {
    MulticallEntry e;
    e.code = HypercallCode::kMmuUpdate;
    e.arg0 = static_cast<std::uint64_t>(i);
    e.arg1 = 0;
    a.batch.push_back(e);
  }
  vc.inflight.active = true;
  vc.inflight.code = HypercallCode::kMulticall;
  vc.inflight.args = a;
  vc.inflight.multicall_progress = 0;
  {
    OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                  HvContextKind::kHypercall, &vc, &vc.inflight.undo);
    hv_.Dispatch(ctx, vc, HypercallCode::kMulticall, a);
  }
  EXPECT_EQ(vc.inflight.multicall_progress, 2);  // logged as it went
  {
    OpContext ctx(platform_, platform_.cpu(1), hv_.options(),
                  HvContextKind::kHypercall, &vc, &vc.inflight.undo);
    EXPECT_NO_THROW(hv_.Dispatch(ctx, vc, HypercallCode::kMulticall, a));
  }
  Domain* d = hv_.FindDomain(dom_);
  EXPECT_EQ(hv_.frames().desc(d->first_frame + 0).use_count, 1);
}

// Grant-map abandoned mid-flight, then recovered WITHOUT the mitigation:
// the retry double-increments and the later revoke path catches it.
TEST_F(HypercallExtraTest, GrantMapRetryWithoutUndoLeavesLeak) {
  hv_.options().undo_logging = false;
  Domain* d = hv_.FindDomain(dom_);
  const FrameNumber frame = d->first_frame + 2;
  const GrantRef ref = d->grants.TryGrant(priv_, frame);

  Vcpu& pv = hv_.vcpu(pvcpu_);
  HypercallArgs a;
  a.arg0 = static_cast<std::uint64_t>(dom_);
  a.arg1 = static_cast<std::uint64_t>(ref);
  // Execute the mutating part once (simulating abandonment after the
  // mutation), then retry the whole handler.
  pv.inflight.active = true;
  pv.inflight.code = HypercallCode::kGrantMap;
  pv.inflight.args = a;
  {
    OpContext ctx(platform_, platform_.cpu(0), hv_.options(),
                  HvContextKind::kHypercall, &pv, &pv.inflight.undo);
    hv_.Dispatch(ctx, pv, HypercallCode::kGrantMap, a);
  }
  recovery::steps::SetupRequestRetries(hv_,
                                       recovery::EnhancementSet::Full());
  // Full() would normally have replayed undo records — but logging was off,
  // so there was nothing to replay and the retry double-applies.
  EXPECT_TRUE(pv.inflight.needs_retry);
  {
    OpContext ctx(platform_, platform_.cpu(0), hv_.options(),
                  HvContextKind::kHypercall, &pv, &pv.inflight.undo);
    hv_.Dispatch(ctx, pv, HypercallCode::kGrantMap, a);
  }
  EXPECT_EQ(d->grants.At(ref).map_count, 2);  // the leak
}

}  // namespace
}  // namespace nlh::hv
