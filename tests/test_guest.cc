// Tests for the guest layer: devices, NetPeer measurement, benchmark
// behavior, guest reactions to lost hypercalls, PrivVM backends.
#include <gtest/gtest.h>

#include "core/target_system.h"
#include "guest/devices.h"

namespace nlh {
namespace {

TEST(VirtualDiskTest, CompletionAfterLatencyRaisesIrq) {
  hw::PlatformConfig cfg;
  cfg.num_cpus = 1;
  hw::Platform p(cfg, 1);
  guest::VirtualDisk disk(p, 0, sim::Microseconds(80));
  disk.Submit(42);
  EXPECT_EQ(disk.in_flight(), 1);
  p.queue().RunUntil(sim::Microseconds(80));
  EXPECT_EQ(disk.in_flight(), 0);
  std::uint64_t tag = 0;
  EXPECT_TRUE(disk.PopCompletion(&tag));
  EXPECT_EQ(tag, 42u);
  EXPECT_TRUE(p.intc().Pending(0, hw::vec::kBlk));
}

TEST(VirtualDiskTest, LevelTriggeredReassertAfterAck) {
  hw::PlatformConfig cfg;
  cfg.num_cpus = 1;
  hw::Platform p(cfg, 1);
  guest::VirtualDisk disk(p, 0);
  disk.Submit(1);
  p.queue().RunUntil(sim::Microseconds(100));
  // Recovery-style ack eats the pending interrupt...
  p.intc().AckAll(0);
  EXPECT_FALSE(p.intc().Pending(0, hw::vec::kBlk));
  // ...but the unserviced completion keeps the line asserted.
  p.queue().RunUntil(sim::Milliseconds(3));
  EXPECT_TRUE(p.intc().Pending(0, hw::vec::kBlk));
}

TEST(VirtualNicTest, RxOverflowDrops) {
  hw::PlatformConfig cfg;
  cfg.num_cpus = 1;
  hw::Platform p(cfg, 1);
  guest::VirtualNic nic(p, 0);
  for (int i = 0; i < 300; ++i) {
    nic.DeliverFromWire(static_cast<std::uint64_t>(i), 0);
  }
  EXPECT_EQ(nic.rx_dropped(), 300u - 256u);
}

TEST(NetPeerTest, MeasuresGapAndRate) {
  hw::PlatformConfig cfg;
  cfg.num_cpus = 1;
  hw::Platform p(cfg, 1);
  guest::VirtualNic nic(p, 0);
  guest::NetPeer peer(p, nic);
  // Loop the NIC straight back: every delivered packet is echoed.
  // (Simulates a perfectly responsive host.)
  std::function<void()> pump = [&] {
    std::uint64_t seq;
    sim::Time sent;
    while (nic.PopRx(&seq, &sent)) nic.Transmit(seq, sent);
    p.queue().ScheduleAfter(sim::Microseconds(200), pump);
  };
  p.queue().ScheduleAfter(sim::Microseconds(200), pump);
  peer.Start(sim::Seconds(3));
  p.queue().RunUntil(sim::Seconds(3));
  EXPECT_GT(peer.received(), 2900u);
  EXPECT_LT(peer.MaxGap(), sim::Milliseconds(3));
  EXPECT_FALSE(peer.RateDropped(0.10));
}

TEST(NetPeerTest, DetectsSustainedOutage) {
  hw::PlatformConfig cfg;
  cfg.num_cpus = 1;
  hw::Platform p(cfg, 1);
  guest::VirtualNic nic(p, 0);
  guest::NetPeer peer(p, nic);
  bool outage = false;
  std::function<void()> pump = [&] {
    std::uint64_t seq;
    sim::Time sent;
    while (nic.PopRx(&seq, &sent)) {
      if (!outage) nic.Transmit(seq, sent);
    }
    // 700 ms outage starting at 1 s (a ReHype-scale interruption).
    outage = p.Now() >= sim::Seconds(1) && p.Now() < sim::Milliseconds(1700);
    p.queue().ScheduleAfter(sim::Microseconds(200), pump);
  };
  p.queue().ScheduleAfter(sim::Microseconds(200), pump);
  peer.Start(sim::Seconds(3));
  p.queue().RunUntil(sim::Seconds(3));
  EXPECT_TRUE(peer.RateDropped(0.10));
  EXPECT_GE(peer.MaxGap(), sim::Milliseconds(600));
  // With the outage window excluded, the rest of the run is healthy.
  EXPECT_FALSE(peer.RateDropped(0.10, sim::Milliseconds(900),
                                sim::Milliseconds(1800)));
}

// --- Benchmarks through the full stack --------------------------------------

TEST(BenchmarkTest, AllThreeCompleteFaultFree) {
  for (const guest::BenchmarkKind kind :
       {guest::BenchmarkKind::kUnixBench, guest::BenchmarkKind::kBlkBench,
        guest::BenchmarkKind::kNetBench}) {
    core::RunConfig cfg = core::RunConfig::OneAppVm(kind);
    cfg.inject = false;
    cfg.seed = 99;
    core::TargetSystem sys(cfg);
    const core::RunResult r = sys.Run();
    EXPECT_EQ(r.outcome, core::OutcomeClass::kNonManifested)
        << guest::BenchmarkName(kind);
    EXPECT_EQ(r.AffectedVmCount(), 0) << guest::BenchmarkName(kind);
    if (kind != guest::BenchmarkKind::kNetBench) {
      EXPECT_TRUE(sys.appvms().front()->BenchmarkDone())
          << guest::BenchmarkName(kind);
    } else {
      EXPECT_GT(sys.appvms().front()->packets_handled(), 1000u);
    }
  }
}

TEST(BenchmarkTest, MemoryCorruptionFailsGoldenCopy) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kBlkBench);
  cfg.inject = false;
  cfg.seed = 7;
  core::TargetSystem sys(cfg);
  sys.platform().queue().ScheduleAt(sim::Milliseconds(200), [&] {
    auto* vm = sys.appvms().front().get();
    vm->OnMemoryCorrupted(vm->vcpu_id());
  });
  const core::RunResult r = sys.Run();
  EXPECT_EQ(r.outcome, core::OutcomeClass::kSdc);
  EXPECT_EQ(r.vms[0].why, "output differs from golden copy");
}

TEST(BenchmarkTest, BlkBenchDrivesBackendPipeline) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kBlkBench);
  cfg.inject = false;
  cfg.blkbench_files = 50;
  cfg.seed = 3;
  core::TargetSystem sys(cfg);
  sys.RunUntil(sim::Seconds(2));
  EXPECT_TRUE(sys.appvms().front()->BenchmarkDone());
  // Each file is a write burst + read burst + verification: the backend
  // served many I/Os and the grant/event machinery was exercised.
  EXPECT_GE(sys.privvm().ios_served(), 50u * 8u);
  EXPECT_GT(sys.hv().stats().events_sent, 100u);
  EXPECT_EQ(sys.hv().heap().HeldLockCount(), 0);
}

TEST(BenchmarkTest, NetBenchRoundTripsThroughPrivVm) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench);
  cfg.inject = false;
  cfg.netbench_duration = sim::Seconds(1);
  cfg.seed = 4;
  core::TargetSystem sys(cfg);
  sys.RunUntil(sim::Milliseconds(1300));
  EXPECT_GT(sys.net_peer()->received(), 900u);
  EXPECT_GT(sys.privvm().packets_forwarded(), 1800u);  // rx + tx per packet
  EXPECT_LT(sys.net_peer()->MaxGap(), sim::Milliseconds(5));
}

TEST(BenchmarkTest, PrivVmCorruptionStopsBackends) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kBlkBench);
  cfg.inject = false;
  cfg.seed = 5;
  core::TargetSystem sys(cfg);
  sys.platform().queue().ScheduleAt(sim::Milliseconds(100), [&] {
    sys.privvm().CorruptKernelState();
  });
  const core::RunResult r = sys.Run();
  EXPECT_FALSE(r.privvm_ok);
  // With Dom0 dead, the AppVM's I/O stalls and its benchmark cannot finish.
  EXPECT_FALSE(sys.appvms().front()->BenchmarkDone());
}

TEST(BenchmarkTest, ToolstackCreatesVmAtRuntime) {
  core::RunConfig cfg;  // 3AppVM
  cfg.inject = false;
  cfg.seed = 6;
  core::TargetSystem sys(cfg);
  sys.RunUntil(sim::Milliseconds(300));
  EXPECT_EQ(sys.appvms().size(), 2u);
  sys.TriggerVm3Creation();
  sys.RunUntil(sim::Seconds(2));
  ASSERT_EQ(sys.appvms().size(), 3u);
  EXPECT_TRUE(sys.appvms().back()->BenchmarkDone());
  EXPECT_FALSE(sys.appvms().back()->Affected());
}

TEST(GuestReactionTest, LostSchedOpIsTolerated) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.inject = false;
  cfg.seed = 8;
  core::TargetSystem sys(cfg);
  sys.RunUntil(sim::Milliseconds(100));
  auto* vm = sys.appvms().front().get();
  vm->OnHypercallLost(vm->vcpu_id(), hv::HypercallCode::kSchedOpYield, false);
  EXPECT_FALSE(vm->Affected());
}

TEST(GuestReactionTest, LostSyscallIsLoggedFailure) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.inject = false;
  cfg.seed = 8;
  core::TargetSystem sys(cfg);
  sys.RunUntil(sim::Milliseconds(100));
  auto* vm = sys.appvms().front().get();
  vm->OnHypercallLost(vm->vcpu_id(), hv::HypercallCode::kXenVersion, true);
  EXPECT_GT(vm->syscall_failures(), 0);
  EXPECT_TRUE(vm->Affected());
}

TEST(GuestReactionTest, LostMmuCallUsuallyCrashesKernel) {
  int crashes = 0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
    cfg.inject = false;
    cfg.seed = 1000 + seed;
    core::TargetSystem sys(cfg);
    sys.RunUntil(sim::Milliseconds(50));
    auto* vm = sys.appvms().front().get();
    vm->OnHypercallLost(vm->vcpu_id(), hv::HypercallCode::kMmuUpdate, false);
    crashes += vm->crashed() ? 1 : 0;
  }
  // mmu_update losses are tolerated only ~5% of the time (hypercall_defs).
  EXPECT_GE(crashes, 30);
}

}  // namespace
}  // namespace nlh
