// Tests for the telemetry layer: sim/trace.h span nesting and simulated
// time, sim/metrics.h registry, the recovery-path phase instrumentation,
// and the typed FailureReason plumbing through campaign aggregation.
#include <gtest/gtest.h>

#include "core/campaign.h"
#include "core/target_system.h"
#include "recovery/nilihype.h"
#include "sim/metrics.h"
#include "sim/trace.h"

namespace nlh {
namespace {

// --- sim/trace.h -----------------------------------------------------------

TEST(Tracer, SpansNestAndCarrySimulatedTime) {
  sim::Tracer tr;
  tr.Enable();
  const std::uint32_t outer = tr.Begin("outer", 0, sim::Milliseconds(10));
  const std::uint32_t inner = tr.Begin("inner", 1, sim::Milliseconds(12));
  tr.Span("leaf", 1, sim::Milliseconds(13), sim::Milliseconds(14));
  tr.End(inner, sim::Milliseconds(15));
  tr.End(outer, sim::Milliseconds(20));

  const std::vector<sim::TraceEvent> evs = tr.Snapshot();
  ASSERT_EQ(evs.size(), 3u);
  // Snapshot is sorted by start: outer, inner, leaf.
  EXPECT_EQ(evs[0].name, "outer");
  EXPECT_EQ(evs[1].name, "inner");
  EXPECT_EQ(evs[2].name, "leaf");
  EXPECT_EQ(evs[0].parent, 0u);
  EXPECT_EQ(evs[1].parent, evs[0].id);
  EXPECT_EQ(evs[2].parent, evs[1].id);
  // Times are the simulated instants handed in, not wall-clock.
  EXPECT_EQ(evs[0].start, sim::Milliseconds(10));
  EXPECT_EQ(evs[0].end, sim::Milliseconds(20));
  EXPECT_EQ(evs[1].start, sim::Milliseconds(12));
  EXPECT_EQ(evs[1].end, sim::Milliseconds(15));
  EXPECT_EQ(evs[2].end - evs[2].start, sim::Milliseconds(1));
}

TEST(Tracer, RaiiSpanEndsAtExplicitEnd) {
  sim::Tracer tr;
  tr.Enable();
  {
    sim::TraceSpan span(tr, "scope", 2, sim::Microseconds(100));
    span.SetEnd(sim::Microseconds(250));
  }
  const auto evs = tr.Snapshot();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].cpu, 2);
  EXPECT_EQ(evs[0].end - evs[0].start, sim::Microseconds(150));
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  sim::Tracer tr;  // never enabled
  EXPECT_EQ(tr.Begin("a", 0, 0), 0u);
  EXPECT_EQ(tr.Span("b", 0, 0, 100), 0u);
  tr.End(1, 100);
  EXPECT_EQ(tr.recorded(), 0u);
  EXPECT_TRUE(tr.Snapshot().empty());
}

TEST(Tracer, RingOverwritesOldestAndCountsDrops) {
  sim::Tracer tr;
  tr.Enable(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) tr.Span("s" + std::to_string(i), 0, i, i + 1);
  EXPECT_EQ(tr.recorded(), 10u);
  EXPECT_EQ(tr.dropped(), 6u);
  const auto evs = tr.Snapshot();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs.front().name, "s6");  // oldest survivor
  EXPECT_EQ(evs.back().name, "s9");
}

// --- sim/metrics.h ---------------------------------------------------------

TEST(Metrics, RegistryCountersAndHistograms) {
  sim::MetricsRegistry reg;
  sim::Counter& c = reg.GetCounter("x.count");
  c.Inc();
  c.Inc(4);
  EXPECT_EQ(reg.GetCounter("x.count").value(), 5u);  // same instance by name
  sim::Histogram& h = reg.GetHistogram("x.ms");
  for (int i = 1; i <= 100; ++i) h.Observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  // Interpolated: rank 0.99*(100-1) = 98.01 between samples 99 and 100.
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 99.01);
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"x.count\""), std::string::npos);
  EXPECT_NE(json.find("\"x.ms\""), std::string::npos);
}

// --- recovery-path instrumentation ----------------------------------------

class TraceRecoveryTest : public ::testing::Test {
 protected:
  TraceRecoveryTest() : platform_(MakeCfg(), 1), hv_(platform_, hv::HvConfig{}) {
    hv_.Boot();
  }
  static hw::PlatformConfig MakeCfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 4;
    cfg.memory_gib = 8;
    return cfg;
  }
  hw::Platform platform_;
  hv::Hypervisor hv_;
};

TEST_F(TraceRecoveryTest, NiLiHypeEmitsFullPhaseSequence) {
  hv_.tracer().Enable();
  recovery::NiLiHype mech(hv_, recovery::EnhancementSet::Full());
  const recovery::RecoveryReport rep =
      mech.Recover(1, hv::DetectionKind::kPanic);
  ASSERT_FALSE(rep.gave_up);

  const auto evs = hv_.tracer().Snapshot();
  const sim::TraceEvent* root = nullptr;
  for (const auto& ev : evs) {
    if (ev.name == "recover:NiLiHype") root = &ev;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->start, rep.detected_at);
  EXPECT_EQ(root->end, rep.resumed_at);

  // Phase spans: children of the root, contiguous, in mechanism order,
  // summing exactly to the report total.
  std::vector<const sim::TraceEvent*> phases;
  for (const auto& ev : evs) {
    if (ev.name.rfind("phase:", 0) == 0) phases.push_back(&ev);
  }
  const std::vector<std::string> want = {
      "phase:freeze",          "phase:discard_threads",
      "phase:clear_irq_count", "phase:release_locks",
      "phase:sched_metadata_repair", "phase:retry_setup",
      "phase:frame_table_scan", "phase:reactivate_timers",
      "phase:ack_interrupts",  "phase:reprogram_apic",
      "phase:resume"};
  ASSERT_EQ(phases.size(), want.size());
  sim::Time cursor = rep.detected_at;
  sim::Duration sum = 0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(phases[i]->name, want[i]);
    EXPECT_EQ(phases[i]->parent, root->id);
    EXPECT_EQ(phases[i]->start, cursor);  // contiguous timeline
    cursor = phases[i]->end;
    sum += phases[i]->end - phases[i]->start;
  }
  EXPECT_EQ(sum, rep.total());
  EXPECT_EQ(cursor, rep.resumed_at);

  // The phase histograms and the total got one sample each.
  const sim::Histogram* total =
      hv_.metrics().FindHistogram("recovery.total_ms");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), 1u);
  EXPECT_DOUBLE_EQ(total->sum(), sim::ToMillisF(rep.total()));
  const sim::Histogram* scan =
      hv_.metrics().FindHistogram("recovery.phase_ms.frame_table_scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->count(), 1u);
}

TEST_F(TraceRecoveryTest, DisabledTracingAddsZeroSpans) {
  // Tracing is off by default: a full recovery must not record anything.
  recovery::NiLiHype mech(hv_, recovery::EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);
  platform_.queue().RunUntil(platform_.Now() + sim::Seconds(1));
  EXPECT_FALSE(hv_.tracer().enabled());
  EXPECT_EQ(hv_.tracer().recorded(), 0u);
  EXPECT_TRUE(hv_.tracer().Snapshot().empty());
}

// --- typed failure reasons -------------------------------------------------

TEST(FailureReason, NamesRoundTrip) {
  using hv::FailureReason;
  for (FailureReason r : {
           FailureReason::kNone, FailureReason::kRecoveryPathCorrupted,
           FailureReason::kNoMechanism, FailureReason::kAttemptLimitReached,
           FailureReason::kNestedError, FailureReason::kUnhandledError,
           FailureReason::kSystemDead, FailureReason::kPrivVmFailed,
           FailureReason::kVm3Failed, FailureReason::kVm3NotAttempted,
           FailureReason::kTooManyVmsAffected}) {
    EXPECT_EQ(hv::FailureReasonFromName(hv::FailureReasonName(r)), r)
        << hv::FailureReasonName(r);
  }
}

TEST(FailureReason, CampaignTallyIsTyped) {
  // With no recovery mechanism every detected run dies with kNoMechanism;
  // the campaign tally must carry that enum (not a message string).
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.mechanism = core::Mechanism::kNone;
  cfg.fault = inject::FaultType::kFailstop;
  core::CampaignOptions opts;
  opts.runs = 4;
  opts.seed0 = 42;
  opts.threads = 2;
  const core::CampaignResult res = core::RunCampaign(cfg, opts);
  ASSERT_GT(res.detected, 0);
  EXPECT_EQ(res.success.numer, 0);
  bool found = false;
  for (const auto& [reason, count] : res.failure_reasons) {
    if (reason == hv::FailureReason::kNoMechanism) {
      found = true;
      EXPECT_EQ(count, res.detected);
    }
  }
  EXPECT_TRUE(found);
  // And it serializes under the stable slug.
  EXPECT_NE(res.ToJson().find("\"no_mechanism\""), std::string::npos);
}

TEST(FailureReason, CampaignAggregatesPhaseLatencies) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.mechanism = core::Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kFailstop;
  core::CampaignOptions opts;
  opts.runs = 4;
  opts.seed0 = 7;
  opts.threads = 2;
  const core::CampaignResult res = core::RunCampaign(cfg, opts);
  ASSERT_GT(res.detected, 0);
  ASSERT_FALSE(res.phase_latency.empty());
  EXPECT_EQ(res.phase_latency.front().phase, "freeze");
  double phase_mean_sum = 0;
  for (const core::PhaseAggregate& p : res.phase_latency) {
    EXPECT_GT(p.samples, 0);
    phase_mean_sum += p.mean_ms;
  }
  EXPECT_GT(res.total_latency.samples, 0);
  // Phase means sum to the total mean when every run walks the same phases.
  EXPECT_NEAR(phase_mean_sum, res.total_latency.mean_ms, 0.5);
}

}  // namespace
}  // namespace nlh
