// End-to-end tests of the TargetSystem and campaign runner: the headline
// behaviors of the paper as single runs.
#include <gtest/gtest.h>
#include <cmath>

#include "core/campaign.h"
#include "core/target_system.h"

namespace nlh::core {
namespace {

TEST(TargetSystemTest, FaultFree3AppVmIsNonManifested) {
  RunConfig cfg;
  cfg.inject = false;
  cfg.seed = 12;
  TargetSystem sys(cfg);
  const RunResult r = sys.Run();
  EXPECT_EQ(r.outcome, OutcomeClass::kNonManifested);
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_FALSE(r.system_dead);
  EXPECT_TRUE(r.privvm_ok);
  EXPECT_EQ(r.AffectedVmCount(), 0);
}

TEST(TargetSystemTest, FailstopNiLiHypeRecoversIn22ms) {
  RunConfig cfg;
  cfg.mechanism = Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.seed = 12;
  TargetSystem sys(cfg);
  const RunResult r = sys.Run();
  EXPECT_EQ(r.outcome, OutcomeClass::kDetected);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(r.no_vm_failures);
  EXPECT_NEAR(sim::ToMillisF(r.first_recovery_latency), 22.0, 1.5);
  EXPECT_TRUE(r.vm3_attempted);
  EXPECT_TRUE(r.vm3_ok);
}

TEST(TargetSystemTest, FailstopReHypeRecoversIn713ms) {
  RunConfig cfg;
  cfg.mechanism = Mechanism::kReHype;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.seed = 12;
  TargetSystem sys(cfg);
  const RunResult r = sys.Run();
  EXPECT_TRUE(r.success);
  EXPECT_NEAR(sim::ToMillisF(r.first_recovery_latency), 713.0, 20.0);
}

TEST(TargetSystemTest, NoMechanismMeansTotalLoss) {
  RunConfig cfg;
  cfg.mechanism = Mechanism::kNone;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.seed = 12;
  TargetSystem sys(cfg);
  const RunResult r = sys.Run();
  EXPECT_TRUE(r.system_dead);
  EXPECT_FALSE(r.success);
  EXPECT_GT(r.AffectedVmCount(), 0);
}

TEST(TargetSystemTest, NetBenchServiceGapTracksRecoveryLatency) {
  RunConfig cfg = RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench);
  cfg.mechanism = Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.netbench_duration = sim::Milliseconds(2500);
  cfg.run_deadline = sim::Seconds(4);
  cfg.seed = 21;
  TargetSystem sys(cfg);
  const RunResult r = sys.Run();
  ASSERT_EQ(r.recoveries, 1);
  // The sender-observed interruption is the recovery latency plus a little
  // detection/drain noise (Section VII-B methodology).
  EXPECT_GE(r.net_max_gap, r.first_recovery_latency);
  EXPECT_LE(r.net_max_gap, r.first_recovery_latency + sim::Milliseconds(8));
}

TEST(TargetSystemTest, DeterministicForSeed) {
  for (inject::FaultType f :
       {inject::FaultType::kRegister, inject::FaultType::kCode}) {
    RunConfig cfg;
    cfg.fault = f;
    cfg.seed = 77;
    TargetSystem a(cfg), b(cfg);
    const RunResult ra = a.Run();
    const RunResult rb = b.Run();
    EXPECT_EQ(ra.outcome, rb.outcome);
    EXPECT_EQ(ra.success, rb.success);
    EXPECT_EQ(ra.recoveries, rb.recoveries);
    EXPECT_EQ(ra.first_recovery_latency, rb.first_recovery_latency);
  }
}

TEST(TargetSystemTest, Vm3NotAttemptedWithoutDetection) {
  RunConfig cfg;
  cfg.inject = false;
  cfg.seed = 5;
  TargetSystem sys(cfg);
  const RunResult r = sys.Run();
  EXPECT_FALSE(r.vm3_attempted);
}

TEST(CampaignTest, ProportionMath) {
  Proportion p;
  p.numer = 95;
  p.denom = 100;
  EXPECT_DOUBLE_EQ(p.Value(), 0.95);
  EXPECT_NEAR(p.HalfWidth95(), 1.96 * std::sqrt(0.95 * 0.05 / 100), 1e-9);
  EXPECT_EQ(Proportion{}.Value(), 0.0);
}

TEST(CampaignTest, AggregatesAndIsDeterministic) {
  RunConfig cfg = RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.fault = inject::FaultType::kFailstop;
  CampaignOptions opts;
  opts.runs = 10;
  opts.seed0 = 42;
  opts.threads = 2;
  const CampaignResult a = RunCampaign(cfg, opts);
  const CampaignResult b = RunCampaign(cfg, opts);
  EXPECT_EQ(a.runs, 10);
  EXPECT_EQ(a.detected, 10);  // failstop always detected
  EXPECT_EQ(a.success.numer, b.success.numer);
  EXPECT_EQ(a.non_manifested, b.non_manifested);
}

TEST(CampaignTest, RegisterFaultsMostlyNonManifested) {
  RunConfig cfg;
  cfg.fault = inject::FaultType::kRegister;
  CampaignOptions opts;
  opts.runs = 60;
  opts.seed0 = 500;
  const CampaignResult r = RunCampaign(cfg, opts);
  EXPECT_GT(r.NonManifestedRate(), 0.6);  // paper: 74.8%
  EXPECT_LT(r.DetectedRate(), 0.35);      // paper: 19.6%
}

}  // namespace
}  // namespace nlh::core
