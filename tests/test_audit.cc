// Adversarial tests for the state-audit engine (audit/): every invariant
// the auditor checks gets a test that plants the exact corruption and
// asserts the auditor reports it — and a healthy platform reports nothing.
// Also covers the recovery-path regressions (what NiLiHype/ReHype do and do
// not repair shows up as audit findings) and campaign determinism with the
// audit columns enabled.
#include <gtest/gtest.h>

#include <string>

#include "audit/snapshot.h"
#include "audit/state_auditor.h"
#include "core/campaign.h"
#include "core/target_system.h"
#include "hv/hypervisor.h"
#include "hv/sched_ops.h"
#include "inject/injector.h"
#include "recovery/nilihype.h"
#include "recovery/rehype.h"
#include "sim/rng.h"

namespace nlh {
namespace {

class AuditTest : public ::testing::Test {
 protected:
  AuditTest() : platform_(MakeCfg(), 1), hv_(platform_, hv::HvConfig{}) {
    hv_.Boot();
    dom_ = hv_.CreateDomainDirect("app", false, 1, 32);
    hv_.StartDomain(dom_);
    vcpu_ = hv_.FindDomain(dom_)->vcpus.front();
  }

  static hw::PlatformConfig MakeCfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 4;
    cfg.memory_gib = 8;
    return cfg;
  }

  audit::AuditReport Sweep() {
    audit::StateAuditor auditor(hv_);
    return auditor.Audit();
  }

  hw::Platform platform_;
  hv::Hypervisor hv_;
  hv::DomainId dom_;
  hv::VcpuId vcpu_;
};

// --- Baseline ---------------------------------------------------------------

TEST_F(AuditTest, HealthyPlatformClean) {
  const audit::AuditReport r = Sweep();
  for (const audit::AuditFinding& f : r.findings) {
    ADD_FAILURE() << "unexpected finding " << f.invariant << ": " << f.detail;
  }
  EXPECT_TRUE(r.clean());
  EXPECT_EQ(r.CorruptionCount(), 0);
  EXPECT_GT(r.modeled_cost, 0);
}

TEST_F(AuditTest, SweepBumpsMetricsAndTrace) {
  Sweep();
  Sweep();
  EXPECT_EQ(hv_.metrics().GetCounter("audit.sweeps").value(), 2u);
}

// --- Frame table ------------------------------------------------------------

TEST_F(AuditTest, DetectsInconsistentFrameDescriptor) {
  // Validated bit on a non-page-table frame: the exact inconsistency the
  // recovery frame scan exists to repair.
  hv_.frames().mutable_desc(hv_.FindDomain(dom_)->first_frame).validated = true;
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("frame.descriptor_consistent"));
  EXPECT_EQ(r.CountFor(audit::AuditSubsystem::kFrameTable), 1);
  EXPECT_EQ(r.findings.front().severity, audit::AuditSeverity::kFatal);
}

TEST_F(AuditTest, DetectsUseCountLeakAndUnderflow) {
  const hv::FrameNumber base = hv_.FindDomain(dom_)->first_frame;
  hv_.frames().mutable_desc(base).use_count += 2;      // leaked references
  hv_.frames().mutable_desc(base + 1).use_count -= 1;  // dropped reference
  const audit::AuditReport r = Sweep();
  EXPECT_EQ(r.CountFor(audit::AuditSubsystem::kFrameTable), 2);
  EXPECT_TRUE(r.HasInvariant("frame.use_count_referential"));
}

TEST_F(AuditTest, UseCountToleratesPinnedRepairSlack) {
  // A pinned page table repaired by the scan holds use_count >= 1 whether
  // or not the pin reference survived: the validated bit widens the
  // acceptable range by one instead of forcing a false positive.
  const hv::FrameNumber f = hv_.FindDomain(dom_)->first_frame;
  hv_.frames().ValidatePageTable(f);  // type=kPageTable, validated, use=1
  EXPECT_TRUE(Sweep().clean());
  hv_.frames().GetPage(f);  // the pin reference itself (use=2)
  EXPECT_TRUE(Sweep().clean());
  hv_.frames().GetPage(f);  // one more is a real leak (use=3)
  EXPECT_TRUE(Sweep().HasInvariant("frame.use_count_referential"));
}

TEST_F(AuditTest, DetectsOrphanedFrameOwner) {
  hv_.frames().mutable_desc(hv_.FindDomain(dom_)->first_frame).owner = 999;
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("frame.orphaned_owner"));
}

TEST_F(AuditTest, DetectsAllocAccountingDrift) {
  // A stray retype-to-free desynchronizes the allocated counter from the
  // descriptor census.
  hv::PageFrameDescriptor& d =
      hv_.frames().mutable_desc(hv_.FindDomain(dom_)->first_frame);
  d = hv::PageFrameDescriptor{};
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("frame.alloc_accounting"));
}

// --- Heap -------------------------------------------------------------------

TEST_F(AuditTest, DetectsFreeListCorruptionBothFlavors) {
  hv_.heap().CorruptFreeList(/*fatal=*/true);
  audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.free_list"));
  EXPECT_EQ(r.findings.front().severity, audit::AuditSeverity::kFatal);

  hv_.heap().RecreateFreeList();
  EXPECT_TRUE(Sweep().clean());

  hv_.heap().CorruptFreeList(/*fatal=*/false);  // cycle flavor
  r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.free_list"));
}

TEST_F(AuditTest, DetectsDoubleOwnership) {
  // Shift one object's recorded extent: it now overlaps its neighbor.
  hv_.heap().CorruptObjectExtent(hv_.FindDomain(dom_)->struct_obj);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.double_ownership"));
}

TEST_F(AuditTest, DetectsExtentOutsideHeap) {
  // Absorb all remaining free pages into one object, then shift its extent:
  // with nothing after it, the damage is an out-of-bounds extent instead of
  // an overlap.
  const hv::HeapObjectId last =
      hv_.heap().Alloc("scratch", hv_.heap().free_pages());
  hv_.heap().CorruptObjectExtent(last);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.extent_bounds"));
  EXPECT_FALSE(r.HasInvariant("heap.double_ownership"));
}

TEST_F(AuditTest, DetectsAccountingCounterDrift) {
  hv_.heap().CorruptAccounting();
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.accounting"));
}

TEST_F(AuditTest, DetectsRetypedHeapFrame) {
  hv_.frames().mutable_desc(hv_.heap().heap_base()).type =
      hv::FrameType::kDomainPage;
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.frame_type"));
}

TEST_F(AuditTest, DetectsLeakedDomainObject) {
  // A domain-tagged allocation no domain references: no recovery mechanism
  // will ever free it.
  hv_.heap().Alloc("domain:ghost", 1);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("heap.leaked_object"));
  // Non-domain scratch allocations are not leaks in the closed world.
  EXPECT_EQ(r.CountFor(audit::AuditSubsystem::kHeap), 1);
}

// --- Timers -----------------------------------------------------------------

TEST_F(AuditTest, DetectsNegativeDeadline) {
  hv_.timers(1).CorruptEntry(0, /*push_out=*/false);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("timer.deadline_negative"));
}

TEST_F(AuditTest, DetectsPushedOutDeadlineAndBrokenHeapOrder) {
  // Pushing the root to the far future silently loses the event AND breaks
  // the min-heap property for its children.
  hv_.timers(0).CorruptEntry(0, /*push_out=*/true);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("timer.deadline_horizon"));
  EXPECT_TRUE(r.HasInvariant("timer.heap_order"));
}

TEST_F(AuditTest, DetectsRecurringTimerWithoutPeriod) {
  hv::SoftTimer t;
  t.name = "broken_recurring";
  t.deadline = hv_.Now() + sim::Milliseconds(1);
  t.period = 0;
  t.is_system_recurring = true;
  hv_.timers(0).Insert(std::move(t));
  EXPECT_TRUE(Sweep().HasInvariant("timer.recurring_period"));
}

TEST_F(AuditTest, DetectsDanglingVcpuTimer) {
  hv::SoftTimer t;
  t.name = "vtimer:99";
  t.deadline = hv_.Now() + sim::Milliseconds(1);
  hv_.timers(0).Insert(std::move(t));
  EXPECT_TRUE(Sweep().HasInvariant("timer.dangling_vcpu"));
}

TEST_F(AuditTest, DetectsLostRecurringEvents) {
  hv_.timers(2).RemoveByName("watchdog_tick");
  ASSERT_TRUE(hv_.sched_tick_enabled(1));  // started with the domain
  hv_.timers(1).RemoveByName("sched_tick");
  const audit::AuditReport r = Sweep();
  EXPECT_EQ(r.CountFor(audit::AuditSubsystem::kTimer), 2);
  EXPECT_TRUE(r.HasInvariant("timer.recurring_missing"));
}

// --- Scheduler --------------------------------------------------------------

TEST_F(AuditTest, DetectsRunqueueLinkCorruption) {
  hv_.percpu(1).rq_len += 1;
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("sched.runqueue_links"));
}

TEST_F(AuditTest, DetectsSchedMetadataDisagreement) {
  hv_.vcpu(vcpu_).is_current = true;  // no per-CPU curr claims it
  EXPECT_TRUE(Sweep().HasInvariant("sched.metadata"));
}

TEST_F(AuditTest, DetectsRunnableVcpuOnNoRunqueue) {
  hv::RunqueueRemove(hv_.percpu(1), hv_.vcpus(), vcpu_);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("sched.runnable_unreachable"));
}

// --- Locks ------------------------------------------------------------------

TEST_F(AuditTest, DetectsHeldStaticLock) {
  hv_.domlist_lock().Acquire(2);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("lock.static_held"));
  EXPECT_EQ(r.findings.front().severity, audit::AuditSeverity::kFatal);
}

TEST_F(AuditTest, DetectsHeldHeapLock) {
  hv_.heap().LockOf(hv_.FindDomain(dom_)->struct_obj)->Acquire(1);
  EXPECT_TRUE(Sweep().HasInvariant("lock.heap_held"));
}

// --- Event channels ---------------------------------------------------------

TEST_F(AuditTest, DetectsChannelToNonexistentDomain) {
  hv::EventChannel& ch = hv_.FindDomain(dom_)->evtchn.At(5);
  ch.state = hv::ChannelState::kInterdomain;
  ch.remote_domain = 77;
  ch.remote_port = 3;
  ch.notify_vcpu = vcpu_;
  EXPECT_TRUE(Sweep().HasInvariant("evtchn.closure"));
}

TEST_F(AuditTest, DetectsHalfOpenInterdomainChannel) {
  const hv::DomainId peer = hv_.CreateDomainDirect("peer", false, 2, 16);
  hv::EventChannel& ch = hv_.FindDomain(dom_)->evtchn.At(5);
  ch.state = hv::ChannelState::kInterdomain;
  ch.remote_domain = peer;
  ch.remote_port = 7;  // closed on the peer side
  ch.notify_vcpu = vcpu_;
  EXPECT_TRUE(Sweep().HasInvariant("evtchn.closure"));

  // Close the loop properly: finding disappears.
  hv::EventChannel& rch = hv_.FindDomain(peer)->evtchn.At(7);
  rch.state = hv::ChannelState::kInterdomain;
  rch.remote_domain = dom_;
  rch.remote_port = 5;
  rch.notify_vcpu = hv_.FindDomain(peer)->vcpus.front();
  EXPECT_TRUE(Sweep().clean());
}

TEST_F(AuditTest, DetectsForeignNotifyVcpu) {
  // Port 0 is the domain's timer virq; point its upcall at a vCPU the
  // domain does not own.
  hv_.FindDomain(dom_)->evtchn.At(0).notify_vcpu = 55;
  EXPECT_TRUE(Sweep().HasInvariant("evtchn.notify_vcpu"));
}

TEST_F(AuditTest, DetectsPendingEventOnClosedPort) {
  hv_.vcpu(vcpu_).pending_events = 1ULL << 9;
  EXPECT_TRUE(Sweep().HasInvariant("evtchn.pending_closed"));
}

// --- Grant tables -----------------------------------------------------------

TEST_F(AuditTest, DetectsBadGrantMapCount) {
  hv_.FindDomain(dom_)->grants.At(3).map_count = -1;
  EXPECT_TRUE(Sweep().HasInvariant("grant.map_count"));
}

TEST_F(AuditTest, DetectsGrantToNonexistentDomain) {
  hv::Domain* d = hv_.FindDomain(dom_);
  d->grants.Grant(99, d->first_frame);
  EXPECT_TRUE(Sweep().HasInvariant("grant.grantee_exists"));
}

TEST_F(AuditTest, DetectsGrantOfForeignFrame) {
  // Granting a hypervisor heap frame the domain does not own.
  hv_.FindDomain(dom_)->grants.Grant(dom_, hv_.heap().heap_base());
  EXPECT_TRUE(Sweep().HasInvariant("grant.frame_owner"));
}

// --- Per-CPU ----------------------------------------------------------------

TEST_F(AuditTest, DetectsStrandedIrqCount) {
  hv_.percpu(3).local_irq_count = 2;
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("percpu.irq_count"));
  EXPECT_EQ(r.findings.front().severity, audit::AuditSeverity::kFatal);
}

// --- Statics ----------------------------------------------------------------

TEST_F(AuditTest, DetectsCorruptedStatic) {
  hv_.statics().Corrupt(hv::StaticVar::kSchedOpsPtr);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("static.corrupted"));
  EXPECT_EQ(r.CorruptionCount(), 1);
}

TEST_F(AuditTest, BenignStaticCorruptionIsInfoOnly) {
  hv_.statics().Corrupt(hv::StaticVar::kConsoleState);
  const audit::AuditReport r = Sweep();
  EXPECT_TRUE(r.HasInvariant("static.corrupted"));
  EXPECT_FALSE(r.clean());
  EXPECT_EQ(r.CorruptionCount(), 0);  // info findings do not dirty a run
}

// --- Differential mode ------------------------------------------------------

TEST_F(AuditTest, DiffReportsHeapGrowthAsInfo) {
  const audit::GoldenSnapshot snap = audit::GoldenSnapshot::Capture(hv_);
  hv_.heap().Alloc("scratch", 1);
  audit::StateAuditor auditor(hv_);
  const audit::AuditReport r = auditor.Audit(snap);
  EXPECT_TRUE(r.HasInvariant("diff.heap_objects"));
  EXPECT_EQ(r.CorruptionCount(), 0);
}

TEST_F(AuditTest, DiffReportsVanishedDomain) {
  const hv::DomainId peer = hv_.CreateDomainDirect("peer", false, 2, 16);
  const audit::GoldenSnapshot snap = audit::GoldenSnapshot::Capture(hv_);
  hv_.domains().erase(peer);
  audit::StateAuditor auditor(hv_);
  const audit::AuditReport r = auditor.Audit(snap);
  EXPECT_TRUE(r.HasInvariant("diff.domain_vanished"));
  // Erasing the map entry also stranded its heap objects: the leak census
  // sees them without any diff support.
  EXPECT_TRUE(r.HasInvariant("heap.leaked_object"));
}

// --- Against the real injector ----------------------------------------------

// The injector's own corruption vectors (the ones campaigns use) must be
// visible to the auditor: plant each hypervisor-visible target through the
// production mutation code and require a non-clean report.
TEST_F(AuditTest, InjectorCorruptionsAreVisible) {
  const inject::CorruptionTarget always_dirty[] = {
      inject::CorruptionTarget::kFrameDescriptor,
      inject::CorruptionTarget::kHeapFreeList,
      inject::CorruptionTarget::kTimerHeapEntry,
  };
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    for (const inject::CorruptionTarget target : always_dirty) {
      hw::Platform platform(MakeCfg(), seed);
      hv::Hypervisor hv(platform, hv::HvConfig{});
      hv.Boot();
      const hv::DomainId d = hv.CreateDomainDirect("app", false, 1, 32);
      hv.StartDomain(d);
      sim::Rng rng(seed * 17);
      inject::ApplyCorruptionTo(hv, target, rng, inject::CorruptionHooks{});
      audit::StateAuditor auditor(hv);
      EXPECT_GT(auditor.Audit().CorruptionCount(), 0)
          << "target " << static_cast<int>(target) << " seed " << seed;
    }
  }
}

TEST_F(AuditTest, InjectedStaticCorruptionIsVisible) {
  // kStaticVar may pick the benign console state (info, not corruption),
  // so the requirement is a non-clean report rather than CorruptionCount.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng(seed);
    hw::Platform platform(MakeCfg(), seed);
    hv::Hypervisor hv(platform, hv::HvConfig{});
    hv.Boot();
    inject::ApplyCorruptionTo(hv, inject::CorruptionTarget::kStaticVar, rng,
                              inject::CorruptionHooks{});
    audit::StateAuditor auditor(hv);
    EXPECT_FALSE(auditor.Audit().clean()) << "seed " << seed;
  }
}

// --- Recovery-path regressions ----------------------------------------------

TEST_F(AuditTest, NiLiHypeRepairsFrameDescriptorsButNotCounters) {
  // Microreset's frame scan repairs descriptor-internal inconsistency; a
  // leaked reference count is invisible to it and survives as latent state.
  const hv::FrameNumber base = hv_.FindDomain(dom_)->first_frame;
  hv_.frames().mutable_desc(base).validated = true;   // scan repairs this
  hv_.frames().mutable_desc(base + 1).use_count += 2;  // this survives
  ASSERT_TRUE(Sweep().HasInvariant("frame.descriptor_consistent"));

  recovery::NiLiHype mech(hv_, recovery::EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);

  const audit::AuditReport r = Sweep();
  EXPECT_FALSE(r.HasInvariant("frame.descriptor_consistent"));
  EXPECT_TRUE(r.HasInvariant("frame.use_count_referential"));
}

TEST_F(AuditTest, NiLiHypeLeavesStaticCorruptionLatent) {
  hv_.statics().Corrupt(hv::StaticVar::kTscKhz);
  recovery::NiLiHype mech(hv_, recovery::EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);
  // Microreset reuses the static segment in place: still corrupted.
  EXPECT_TRUE(Sweep().HasInvariant("static.corrupted"));
}

TEST_F(AuditTest, ReHypeRepairsFreeListAndNonPreservedStatics) {
  hv_.heap().CorruptFreeList(/*fatal=*/true);
  hv_.statics().Corrupt(hv::StaticVar::kTscKhz);  // not preserved by reboot
  ASSERT_TRUE(hv_.statics().RebootRepairs(hv::StaticVar::kTscKhz));

  recovery::ReHype mech(hv_, recovery::EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);

  const audit::AuditReport r = Sweep();
  EXPECT_FALSE(r.HasInvariant("heap.free_list"));
  EXPECT_FALSE(r.HasInvariant("static.corrupted"));
}

TEST_F(AuditTest, RecoveryEndsLockAndIrqClean) {
  hv_.domlist_lock().Acquire(2);
  hv_.heap().LockOf(hv_.FindDomain(dom_)->struct_obj)->Acquire(1);
  hv_.percpu(2).local_irq_count = 1;

  recovery::NiLiHype mech(hv_, recovery::EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);
  // The lock/irq audit passes run only at quiescent points: drive the event
  // queue past the scheduled un-freeze first.
  platform_.queue().RunUntil(hv_.Now() + sim::Seconds(2));
  ASSERT_FALSE(hv_.frozen());

  const audit::AuditReport r = Sweep();
  EXPECT_EQ(r.CountFor(audit::AuditSubsystem::kLocks), 0);
  EXPECT_EQ(r.CountFor(audit::AuditSubsystem::kPerCpu), 0);
}

// --- End-to-end: audited runs and campaigns ---------------------------------

TEST(AuditRun, FailstopRecoveryIsAuditClean) {
  // Failstop faults corrupt nothing: every successful recovery must leave
  // the hypervisor with zero latent-corruption findings.
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
    cfg.mechanism = core::Mechanism::kNiLiHype;
    cfg.fault = inject::FaultType::kFailstop;
    cfg.audit = true;
    cfg.seed = seed;
    core::TargetSystem sys(cfg);
    const core::RunResult r = sys.Run();
    ASSERT_TRUE(r.audited);
    if (r.success) {
      EXPECT_TRUE(r.audit_clean) << "seed " << seed;
      EXPECT_FALSE(r.latent_corruption);
    }
  }
}

TEST(AuditCampaign, ResultIsThreadCountInvariant) {
  // The campaign aggregate — including the audit columns — must be
  // byte-identical whether runs execute on one worker or eight.
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.mechanism = core::Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kCode;
  cfg.audit = true;

  core::CampaignOptions opts;
  opts.runs = 12;
  opts.seed0 = 7000;
  opts.threads = 1;
  const std::string serial = core::RunCampaign(cfg, opts).ToJson();
  opts.threads = 8;
  const std::string parallel = core::RunCampaign(cfg, opts).ToJson();
  EXPECT_EQ(serial, parallel);
}

TEST(AuditCampaign, AuditColumnsCloseOverSuccesses) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.mechanism = core::Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kCode;
  cfg.audit = true;
  core::CampaignOptions opts;
  opts.runs = 30;
  opts.seed0 = 4200;
  const core::CampaignResult res = core::RunCampaign(cfg, opts);
  // Every audited success is exactly one of audit-clean / latent.
  EXPECT_EQ(res.audit_clean.denom, res.latent_corruption.denom);
  EXPECT_EQ(res.audit_clean.numer + res.latent_corruption.numer,
            res.audit_clean.denom);
  // The JSON carries the audit split.
  const std::string json = res.ToJson();
  EXPECT_NE(json.find("\"audit_clean\""), std::string::npos);
  EXPECT_NE(json.find("\"latent_corruption\""), std::string::npos);
  EXPECT_NE(json.find("\"audit_findings_by_subsystem\""), std::string::npos);
}

}  // namespace
}  // namespace nlh
