// Tests for the recovery mechanisms (recovery/): NiLiHype microreset,
// ReHype microreboot, shared steps, latency model, enhancement presets.
#include <gtest/gtest.h>

#include "hv/hypervisor.h"
#include "recovery/manager.h"
#include "recovery/nilihype.h"
#include "recovery/rehype.h"

namespace nlh::recovery {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : platform_(MakeCfg(), 1), hv_(platform_, hv::HvConfig{}) {
    hv_.Boot();
    dom_ = hv_.CreateDomainDirect("app", false, 1, 32);
    hv_.StartDomain(dom_);
    vcpu_ = hv_.FindDomain(dom_)->vcpus.front();
  }

  static hw::PlatformConfig MakeCfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 4;
    cfg.memory_gib = 8;  // the paper's calibration point
    return cfg;
  }

  hw::Platform platform_;
  hv::Hypervisor hv_;
  hv::DomainId dom_;
  hv::VcpuId vcpu_;
};

TEST_F(RecoveryTest, EnhancementPresets) {
  const EnhancementSet none = EnhancementSet::None();
  EXPECT_FALSE(none.hypercall_retry);
  EXPECT_FALSE(none.clear_irq_count);

  const EnhancementSet row1 = EnhancementSet::TableISimple(1);
  EXPECT_TRUE(row1.clear_irq_count);
  EXPECT_FALSE(row1.hypercall_retry);

  const EnhancementSet row2 = EnhancementSet::TableISimple(2);
  EXPECT_TRUE(row2.hypercall_retry);
  EXPECT_TRUE(row2.frame_table_scan);
  EXPECT_FALSE(row2.sched_metadata_repair);

  const EnhancementSet full = EnhancementSet::Full();
  EXPECT_TRUE(full.reactivate_recurring);

  const EnhancementSet port0 = EnhancementSet::ReHypeStage(0);
  EXPECT_TRUE(port0.hypercall_retry);   // base ReHype mechanism
  EXPECT_FALSE(port0.syscall_retry);    // added at stage 1 (Section IV)
  EXPECT_FALSE(port0.nonidem_mitigation);
  const EnhancementSet port2 = EnhancementSet::ReHypeStage(2);
  EXPECT_TRUE(port2.nonidem_mitigation);
}

TEST_F(RecoveryTest, NiLiHypeLatencyMatchesTableIII) {
  NiLiHype mech(hv_, EnhancementSet::Full());
  const RecoveryReport rep = mech.Recover(1, hv::DetectionKind::kPanic);
  // Table III: 22 ms total at 8 GB, dominated by the 21 ms frame scan.
  EXPECT_NEAR(sim::ToMillisF(rep.total()), 22.0, 1.0);
  sim::Duration scan = 0;
  for (const StepLatency& s : rep.steps) {
    if (s.name.find("page-frame") != std::string::npos) scan = s.latency;
  }
  EXPECT_NEAR(sim::ToMillisF(scan), 21.0, 0.5);
  // Everything else sums to ~1 ms.
  EXPECT_NEAR(sim::ToMillisF(rep.total() - scan), 1.0, 0.6);
}

TEST_F(RecoveryTest, ReHypeLatencyMatchesTableII) {
  ReHype mech(hv_, EnhancementSet::Full());
  const RecoveryReport rep = mech.Recover(1, hv::DetectionKind::kPanic);
  // Table II: 713 ms total at 8 GB.
  EXPECT_NEAR(sim::ToMillisF(rep.total()), 713.0, 15.0);
  // ReHype / NiLiHype latency ratio is "over a factor of 30" (abstract).
  NiLiHype nl(hv_, EnhancementSet::Full());
  // (fresh system for the second measurement)
  hw::Platform p2(MakeCfg(), 2);
  hv::Hypervisor hv2(p2, hv::HvConfig{});
  hv2.Boot();
  NiLiHype nl2(hv2, EnhancementSet::Full());
  const RecoveryReport rep2 = nl2.Recover(0, hv::DetectionKind::kPanic);
  EXPECT_GT(static_cast<double>(rep.total()) / rep2.total(), 30.0);
}

TEST_F(RecoveryTest, LatencyScalesWithMemory) {
  const LatencyModel model;
  const std::uint64_t frames8 = (8ULL << 30) / 4096;
  const std::uint64_t frames64 = (64ULL << 30) / 4096;
  EXPECT_NEAR(sim::ToMillisF(model.FrameScan(frames8)), 21.0, 0.5);
  EXPECT_NEAR(sim::ToMillisF(model.FrameScan(frames64)), 8 * 21.0, 4.0);
}

TEST_F(RecoveryTest, NiLiHypeClearsStrandedIrqCounts) {
  hv_.percpu(2).local_irq_count = 1;
  NiLiHype mech(hv_, EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(hv_.percpu(c).local_irq_count, 0);
}

TEST_F(RecoveryTest, BasicNiLiHypeLeavesIrqCountsStranded) {
  NiLiHype mech(hv_, EnhancementSet::None());
  mech.Recover(1, hv::DetectionKind::kPanic);
  // The freeze IPI incremented everyone else; basic microreset never
  // clears it — the mechanical reason Table I row "Basic" is 0%.
  EXPECT_GT(hv_.percpu(0).local_irq_count, 0);
}

TEST_F(RecoveryTest, NiLiHypeReleasesAllLocks) {
  hv_.domlist_lock().Acquire(2);
  hv_.heap().LockOf(hv_.FindDomain(dom_)->struct_obj)->Acquire(1);
  NiLiHype mech(hv_, EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);
  EXPECT_EQ(hv_.static_locks().HeldCount(), 0);
  EXPECT_EQ(hv_.heap().HeldLockCount(), 0);
}

TEST_F(RecoveryTest, NiLiHypeWithoutStaticUnlockLeavesStaticLocksHeld) {
  hv_.domlist_lock().Acquire(2);
  EnhancementSet enh = EnhancementSet::Full();
  enh.unlock_static_locks = false;
  NiLiHype mech(hv_, enh);
  mech.Recover(1, hv::DetectionKind::kPanic);
  EXPECT_TRUE(hv_.domlist_lock().held());
}

TEST_F(RecoveryTest, RetrySetupMarksInflightRequests) {
  hv::Vcpu& vc = hv_.vcpu(vcpu_);
  vc.inflight.active = true;
  vc.inflight.code = hv::HypercallCode::kPageTablePin;
  NiLiHype mech(hv_, EnhancementSet::Full());
  mech.Recover(1, hv::DetectionKind::kPanic);
  EXPECT_FALSE(vc.inflight.active);
  EXPECT_TRUE(vc.inflight.needs_retry);
  EXPECT_FALSE(vc.inflight.lost);
}

TEST_F(RecoveryTest, NoRetryEnhancementMarksRequestsLost) {
  hv::Vcpu& vc = hv_.vcpu(vcpu_);
  vc.inflight.active = true;
  EnhancementSet enh = EnhancementSet::Full();
  enh.hypercall_retry = false;
  enh.syscall_retry = false;
  NiLiHype mech(hv_, enh);
  mech.Recover(1, hv::DetectionKind::kPanic);
  EXPECT_FALSE(vc.inflight.needs_retry);
  EXPECT_TRUE(vc.inflight.lost);
}

TEST_F(RecoveryTest, UndoReplayOnlyWithMitigation) {
  hv::Vcpu& vc = hv_.vcpu(vcpu_);
  int undone = 0;
  vc.inflight.active = true;
  vc.inflight.undo.Record([&] { ++undone; });
  EnhancementSet enh = EnhancementSet::Full();
  enh.nonidem_mitigation = false;
  steps::SetupRequestRetries(hv_, enh);
  EXPECT_EQ(undone, 0);  // records dropped, not replayed

  vc.inflight.active = true;
  vc.inflight.undo.Record([&] { ++undone; });
  steps::SetupRequestRetries(hv_, EnhancementSet::Full());
  EXPECT_EQ(undone, 1);
}

TEST_F(RecoveryTest, BatchProgressResetWithoutFineGrainedRetry) {
  hv::Vcpu& vc = hv_.vcpu(vcpu_);
  vc.inflight.active = true;
  vc.inflight.multicall_progress = 3;
  EnhancementSet enh = EnhancementSet::Full();
  enh.batched_retry_fine = false;
  steps::SetupRequestRetries(hv_, enh);
  EXPECT_EQ(vc.inflight.multicall_progress, 0);
}

TEST_F(RecoveryTest, ReHypeRestoresNonPreservedStatics) {
  hv_.statics().Corrupt(hv::StaticVar::kTscKhz);        // reboot-repairable
  hv_.statics().Corrupt(hv::StaticVar::kDomainListHead);  // preserved
  ReHype mech(hv_, EnhancementSet::Full());
  mech.Recover(0, hv::DetectionKind::kPanic);
  EXPECT_FALSE(hv_.statics().corrupted(hv::StaticVar::kTscKhz));
  EXPECT_TRUE(hv_.statics().corrupted(hv::StaticVar::kDomainListHead));
}

TEST_F(RecoveryTest, NiLiHypeReusesCorruptStatics) {
  hv_.statics().Corrupt(hv::StaticVar::kTscKhz);
  NiLiHype mech(hv_, EnhancementSet::Full());
  mech.Recover(0, hv::DetectionKind::kPanic);
  EXPECT_TRUE(hv_.statics().corrupted(hv::StaticVar::kTscKhz));
}

TEST_F(RecoveryTest, ReHypeRecreatesCorruptHeapFreeList) {
  hv_.heap().CorruptFreeList(true);
  ReHype mech(hv_, EnhancementSet::Full());
  mech.Recover(0, hv::DetectionKind::kPanic);
  EXPECT_TRUE(hv_.heap().CheckFreeListIntegrity());
}

TEST_F(RecoveryTest, NiLiHypeKeepsCorruptHeapFreeList) {
  hv_.heap().CorruptFreeList(true);
  NiLiHype mech(hv_, EnhancementSet::Full());
  mech.Recover(0, hv::DetectionKind::kPanic);
  EXPECT_FALSE(hv_.heap().CheckFreeListIntegrity());
}

TEST_F(RecoveryTest, ReHypeHaltsAndResumesCpus) {
  ReHype mech(hv_, EnhancementSet::Full());
  const RecoveryReport rep = mech.Recover(1, hv::DetectionKind::kPanic);
  EXPECT_TRUE(platform_.cpu(0).halted());  // others halted during recovery
  EXPECT_FALSE(platform_.cpu(1).halted());
  platform_.queue().RunUntil(rep.resumed_at + sim::Milliseconds(1));
  EXPECT_FALSE(platform_.cpu(0).halted());
  EXPECT_FALSE(hv_.frozen());
}

TEST_F(RecoveryTest, CorruptedRecoveryPathGivesUp) {
  hv_.CorruptRecoveryPath();
  NiLiHype mech(hv_, EnhancementSet::Full());
  const RecoveryReport rep = mech.Recover(0, hv::DetectionKind::kPanic);
  EXPECT_TRUE(rep.gave_up);
  EXPECT_TRUE(hv_.dead());
}

TEST_F(RecoveryTest, ManagerEnforcesAttemptLimit) {
  auto mech = std::make_unique<NiLiHype>(hv_, EnhancementSet::Full());
  RecoveryManager mgr(hv_, std::move(mech), nullptr);
  mgr.set_max_attempts(2);
  mgr.Install();
  hv_.ReportError(0, hv::DetectionKind::kPanic, "one");
  platform_.queue().RunUntil(platform_.Now() + sim::Milliseconds(100));
  hv_.ReportError(0, hv::DetectionKind::kPanic, "two");
  platform_.queue().RunUntil(platform_.Now() + sim::Milliseconds(100));
  EXPECT_FALSE(hv_.dead());
  hv_.ReportError(0, hv::DetectionKind::kPanic, "three");
  EXPECT_TRUE(hv_.dead());
  EXPECT_EQ(mgr.reports().size(), 2u);
}

TEST_F(RecoveryTest, ReportTotalsSumSteps) {
  NiLiHype mech(hv_, EnhancementSet::Full());
  const RecoveryReport rep = mech.Recover(0, hv::DetectionKind::kHang);
  sim::Duration sum = 0;
  for (const auto& s : rep.steps) sum += s.latency;
  EXPECT_EQ(sum, rep.total());
  EXPECT_EQ(rep.resumed_at, rep.detected_at + rep.total());
  EXPECT_EQ(rep.kind, hv::DetectionKind::kHang);
}

}  // namespace
}  // namespace nlh::recovery
