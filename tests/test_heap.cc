// Unit tests for the hypervisor heap (hv/heap.h).
#include <gtest/gtest.h>

#include "hv/frame_table.h"
#include "hv/heap.h"
#include "hv/panic.h"

namespace nlh::hv {
namespace {

class HeapTest : public ::testing::Test {
 protected:
  HeapTest() : ft_(1024), heap_(ft_) { heap_.Init(256); }
  FrameTable ft_;
  HvHeap heap_;
};

TEST_F(HeapTest, InitTakesFramesFromFrameTable) {
  EXPECT_EQ(heap_.total_pages(), 256u);
  EXPECT_EQ(heap_.free_pages(), 256u);
  EXPECT_EQ(ft_.allocated_frames(), 256u);
}

TEST_F(HeapTest, AllocFreeAccounting) {
  const HeapObjectId a = heap_.Alloc("domain:test", 4);
  EXPECT_EQ(heap_.allocated_pages(), 4u);
  EXPECT_EQ(heap_.free_pages(), 252u);
  const HeapObjectId b = heap_.Alloc("vcpu", 2);
  EXPECT_EQ(heap_.num_objects(), 2u);
  heap_.Free(a);
  heap_.Free(b);
  EXPECT_EQ(heap_.allocated_pages(), 0u);
  EXPECT_EQ(heap_.free_pages(), 256u);
  EXPECT_TRUE(heap_.CheckFreeListIntegrity());
}

TEST_F(HeapTest, FreeUnknownObjectAsserts) {
  EXPECT_THROW(heap_.Free(999), HvPanic);
}

TEST_F(HeapTest, ExhaustionPanics) {
  heap_.Alloc("big", 256);
  EXPECT_THROW(heap_.Alloc("more", 1), HvPanic);
}

TEST_F(HeapTest, EmbeddedLockRegistration) {
  const HeapObjectId a = heap_.Alloc("domain:x", 1, /*with_lock=*/true);
  const HeapObjectId b = heap_.Alloc("plain", 1, /*with_lock=*/false);
  EXPECT_NE(heap_.LockOf(a), nullptr);
  EXPECT_EQ(heap_.LockOf(b), nullptr);

  heap_.LockOf(a)->Acquire(2);
  EXPECT_EQ(heap_.HeldLockCount(), 1);
  EXPECT_EQ(heap_.ReleaseAllLocks(), 1);
  EXPECT_EQ(heap_.HeldLockCount(), 0);
}

TEST_F(HeapTest, FatalFreeListCorruptionPanicsOnWalk) {
  // Shape the free list so a walk must traverse the corrupted link: the
  // head is a 1-page chunk, the big chunk sits behind the poisoned next.
  const HeapObjectId a = heap_.Alloc("a", 1);
  heap_.Alloc("b", 1);
  heap_.Free(a);
  heap_.CorruptFreeList(/*fatal=*/true);
  EXPECT_FALSE(heap_.CheckFreeListIntegrity());
  EXPECT_THROW(heap_.Alloc("y", 8), HvPanic);
}

TEST_F(HeapTest, CyclicFreeListCorruptionHangsOnWalk) {
  // Force a multi-chunk free list so the cycle is walkable, then ask for an
  // allocation larger than any chunk before the cycle point.
  const HeapObjectId a = heap_.Alloc("a", 1);
  heap_.Alloc("b", 1);
  heap_.Free(a);  // free list: [1-page chunk] -> [rest]
  heap_.CorruptFreeList(/*fatal=*/false);
  EXPECT_FALSE(heap_.CheckFreeListIntegrity());
  EXPECT_THROW(heap_.Alloc("big", 128), HvHang);
}

TEST_F(HeapTest, RecreateRepairsCorruption) {
  const HeapObjectId a = heap_.Alloc("keep1", 3);
  heap_.Alloc("keep2", 5);
  heap_.CorruptFreeList(/*fatal=*/true);
  EXPECT_FALSE(heap_.CheckFreeListIntegrity());

  heap_.RecreateFreeList();  // ReHype's "recreate the new heap"
  EXPECT_TRUE(heap_.CheckFreeListIntegrity());
  EXPECT_EQ(heap_.allocated_pages(), 8u);
  EXPECT_EQ(heap_.free_pages(), 248u);
  // Live objects preserved.
  EXPECT_NE(heap_.Find(a), nullptr);
  EXPECT_EQ(heap_.Find(a)->pages, 3u);
  // And the heap is usable again.
  const HeapObjectId c = heap_.Alloc("new", 4);
  EXPECT_NE(heap_.Find(c), nullptr);
}

TEST_F(HeapTest, RecreatePreservesAllObjects) {
  std::vector<HeapObjectId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(heap_.Alloc("obj", 2));
  heap_.Free(ids[3]);
  heap_.Free(ids[7]);
  heap_.RecreateFreeList();
  EXPECT_TRUE(heap_.CheckFreeListIntegrity());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i == 3 || i == 7) {
      EXPECT_EQ(heap_.Find(ids[i]), nullptr);
    } else {
      EXPECT_NE(heap_.Find(ids[i]), nullptr);
    }
  }
  EXPECT_EQ(heap_.allocated_pages(), 16u);
}

TEST_F(HeapTest, FragmentationAndCoalescingThroughRecreate) {
  // Allocate alternating objects, free half: fragmented free list.
  std::vector<HeapObjectId> ids;
  for (int i = 0; i < 20; ++i) ids.push_back(heap_.Alloc("frag", 4));
  for (int i = 0; i < 20; i += 2) heap_.Free(ids[static_cast<size_t>(i)]);
  EXPECT_TRUE(heap_.CheckFreeListIntegrity());
  // A 160-page run does not exist contiguously... but the simulator does not
  // model contiguity; a first-fit of 100 pages must still succeed from the
  // tail chunk.
  EXPECT_NO_THROW(heap_.Alloc("big", 100));
  EXPECT_TRUE(heap_.CheckFreeListIntegrity());
}

}  // namespace
}  // namespace nlh::hv
