// Unit & property tests for runqueue primitives and scheduling-metadata
// repair (hv/sched_ops.h) — the "Ensure consistency within scheduling
// metadata" enhancement of Section V-A.
#include <gtest/gtest.h>

#include "hv/panic.h"
#include "hv/sched_ops.h"
#include "sim/rng.h"

namespace nlh::hv {
namespace {

struct SchedFixture : ::testing::Test {
  SchedFixture() {
    for (int c = 0; c < 4; ++c) pcpus.emplace_back(c);
    for (VcpuId v = 0; v < 6; ++v) {
      Vcpu vc;
      vc.id = v;
      vc.domain = v;
      vc.pinned_cpu = v % 4;
      vc.state = VcpuState::kRunnable;
      vcpus.push_back(std::move(vc));
    }
  }
  PerCpuList pcpus;
  std::vector<Vcpu> vcpus;
};

TEST_F(SchedFixture, InsertPopFifo) {
  RunqueueInsert(pcpus[0], vcpus, 0);
  RunqueueInsert(pcpus[0], vcpus, 4);
  EXPECT_EQ(pcpus[0].rq_len, 2);
  EXPECT_TRUE(RunqueueValid(pcpus[0], vcpus));
  EXPECT_EQ(RunqueuePop(pcpus[0], vcpus), 0);
  EXPECT_EQ(RunqueuePop(pcpus[0], vcpus), 4);
  EXPECT_EQ(RunqueuePop(pcpus[0], vcpus), kInvalidVcpu);
  EXPECT_EQ(pcpus[0].rq_len, 0);
}

TEST_F(SchedFixture, DoubleInsertAsserts) {
  RunqueueInsert(pcpus[0], vcpus, 0);
  EXPECT_THROW(RunqueueInsert(pcpus[0], vcpus, 0), HvPanic);
}

TEST_F(SchedFixture, RemoveMiddleRelinksNeighbors) {
  RunqueueInsert(pcpus[0], vcpus, 0);
  RunqueueInsert(pcpus[0], vcpus, 4);
  RunqueueInsert(pcpus[0], vcpus, 5);
  RunqueueRemove(pcpus[0], vcpus, 4);
  EXPECT_TRUE(RunqueueValid(pcpus[0], vcpus));
  EXPECT_EQ(RunqueuePop(pcpus[0], vcpus), 0);
  EXPECT_EQ(RunqueuePop(pcpus[0], vcpus), 5);
}

TEST_F(SchedFixture, RemoveUnqueuedAsserts) {
  EXPECT_THROW(RunqueueRemove(pcpus[0], vcpus, 1), HvPanic);
}

TEST_F(SchedFixture, WildLinkDetectedOnWalkAndPop) {
  RunqueueInsert(pcpus[0], vcpus, 0);
  vcpus[0].rq_next = 999;  // stray write
  EXPECT_FALSE(RunqueueValid(pcpus[0], vcpus));
}

TEST_F(SchedFixture, ConsistencyDetectsCurrMismatch) {
  // CPU0 claims vcpu0 but vcpu0 doesn't agree.
  pcpus[0].curr = 0;
  vcpus[0].running_on = 2;
  vcpus[0].is_current = true;
  vcpus[0].state = VcpuState::kRunning;
  EXPECT_FALSE(SchedMetadataConsistent(pcpus, vcpus));
}

TEST_F(SchedFixture, ConsistencyDetectsRunningNowhere) {
  vcpus[3].state = VcpuState::kRunning;  // no CPU claims it
  EXPECT_FALSE(SchedMetadataConsistent(pcpus, vcpus));
}

TEST_F(SchedFixture, ConsistentConfigurationPasses) {
  pcpus[1].curr = 1;
  vcpus[1].running_on = 1;
  vcpus[1].is_current = true;
  vcpus[1].state = VcpuState::kRunning;
  RunqueueInsert(pcpus[2], vcpus, 2);
  EXPECT_TRUE(SchedMetadataConsistent(pcpus, vcpus));
}

TEST_F(SchedFixture, RepairUsesPerCpuAsTruth) {
  // Per-CPU says vcpu1 runs on CPU1; the per-vCPU copies disagree wildly.
  pcpus[1].curr = 1;
  vcpus[1].running_on = 3;
  vcpus[1].is_current = false;
  vcpus[1].state = VcpuState::kBlocked;
  RepairSchedMetadata(pcpus, vcpus);
  EXPECT_EQ(vcpus[1].running_on, 1);
  EXPECT_TRUE(vcpus[1].is_current);
  EXPECT_EQ(vcpus[1].state, VcpuState::kRunning);
  EXPECT_TRUE(SchedMetadataConsistent(pcpus, vcpus));
}

TEST_F(SchedFixture, RepairResolvesDuplicateClaims) {
  pcpus[0].curr = 1;
  pcpus[1].curr = 1;  // two CPUs claim the same vCPU (pinned to cpu1)
  RepairSchedMetadata(pcpus, vcpus);
  EXPECT_TRUE(SchedMetadataConsistent(pcpus, vcpus));
  EXPECT_EQ(pcpus[1].curr, 1);  // the pin breaks the tie
  EXPECT_EQ(pcpus[0].curr, kInvalidVcpu);
}

TEST_F(SchedFixture, RepairRequeuesOrphanedRunnables) {
  vcpus[2].state = VcpuState::kRunning;  // claims to run, nobody agrees
  RepairSchedMetadata(pcpus, vcpus);
  EXPECT_EQ(vcpus[2].state, VcpuState::kRunnable);
  EXPECT_TRUE(vcpus[2].rq_queued);
  EXPECT_TRUE(RunqueueValid(pcpus[2], vcpus));
}

TEST_F(SchedFixture, RepairReleasesSchedLocks) {
  pcpus[2].sched_lock.Acquire(2);
  RepairSchedMetadata(pcpus, vcpus);
  EXPECT_FALSE(pcpus[2].sched_lock.held());
}

TEST_F(SchedFixture, RepairSanitizesWildCurr) {
  pcpus[0].curr = 999;
  RepairSchedMetadata(pcpus, vcpus);
  EXPECT_EQ(pcpus[0].curr, kInvalidVcpu);
  EXPECT_TRUE(SchedMetadataConsistent(pcpus, vcpus));
}

// Property: ANY random scrambling of the scheduling metadata is repaired to
// a consistent state with valid runqueues — repair must be safe on
// arbitrarily mangled input (Section V-A).
class SchedRepairFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedRepairFuzz, RepairAlwaysConverges) {
  sim::Rng rng(GetParam());
  PerCpuList pcpus;
  for (int c = 0; c < 8; ++c) pcpus.emplace_back(c);
  std::vector<Vcpu> vcpus;
  for (VcpuId v = 0; v < 10; ++v) {
    Vcpu vc;
    vc.id = v;
    vc.pinned_cpu = static_cast<hw::CpuId>(v % 8);
    vc.state = VcpuState::kRunnable;
    vcpus.push_back(std::move(vc));
  }
  // Start from a sane state, then scramble everything.
  for (Vcpu& vc : vcpus) {
    if (rng.Chance(0.5)) RunqueueInsert(pcpus[static_cast<std::size_t>(vc.pinned_cpu)], vcpus, vc.id);
  }
  for (int i = 0; i < 50; ++i) {
    switch (rng.Index(6)) {
      case 0: pcpus[rng.Index(8)].curr = static_cast<VcpuId>(rng.Range(-2, 12)); break;
      case 1: vcpus[rng.Index(10)].running_on = static_cast<hw::CpuId>(rng.Range(-2, 10)); break;
      case 2: vcpus[rng.Index(10)].is_current ^= true; break;
      case 3: vcpus[rng.Index(10)].state = static_cast<VcpuState>(rng.Index(4)); break;
      case 4: vcpus[rng.Index(10)].rq_next = static_cast<VcpuId>(rng.Range(-1, 12)); break;
      case 5: if (rng.Chance(0.3)) pcpus[rng.Index(8)].sched_lock.ForceRelease(),
                  pcpus[rng.Index(8)].rq_head = static_cast<VcpuId>(rng.Range(-1, 12));
              break;
    }
  }
  RepairSchedMetadata(pcpus, vcpus);
  EXPECT_TRUE(SchedMetadataConsistent(pcpus, vcpus)) << "seed " << GetParam();
  for (const PerCpuData& pc : pcpus) {
    EXPECT_TRUE(RunqueueValid(pc, vcpus)) << "seed " << GetParam();
  }
  // Repair is idempotent.
  const int again = RepairSchedMetadata(pcpus, vcpus);
  EXPECT_EQ(again, 0) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedRepairFuzz, ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace nlh::hv
