// Unit & property tests for the frame table (hv/frame_table.h) — the
// structure whose consistency scan dominates NiLiHype's recovery latency.
#include <gtest/gtest.h>

#include "hv/frame_table.h"
#include "hv/panic.h"
#include "sim/rng.h"

namespace nlh::hv {
namespace {

TEST(FrameTableTest, AllocAndFree) {
  FrameTable ft(128);
  EXPECT_EQ(ft.free_frames(), 128u);
  const FrameNumber f = ft.Alloc(4, FrameType::kDomainPage, 1);
  EXPECT_EQ(ft.allocated_frames(), 4u);
  EXPECT_EQ(ft.desc(f).owner, 1);
  EXPECT_EQ(ft.desc(f).use_count, 1);
  ft.FreeRange(f, 4);
  EXPECT_EQ(ft.allocated_frames(), 0u);
  EXPECT_EQ(ft.desc(f).type, FrameType::kFree);
}

TEST(FrameTableTest, FreeListReuse) {
  FrameTable ft(8);
  const FrameNumber a = ft.Alloc(1, FrameType::kDomainPage, 0);
  ft.FreeOne(a);
  const FrameNumber b = ft.Alloc(1, FrameType::kDomainPage, 0);
  EXPECT_EQ(a, b);
}

TEST(FrameTableTest, DoubleFreeAsserts) {
  FrameTable ft(8);
  const FrameNumber f = ft.Alloc(1, FrameType::kDomainPage, 0);
  ft.FreeOne(f);
  EXPECT_THROW(ft.FreeOne(f), HvPanic);
}

TEST(FrameTableTest, ExhaustionPanics) {
  FrameTable ft(4);
  ft.Alloc(4, FrameType::kDomainPage, 0);
  EXPECT_THROW(ft.Alloc(1, FrameType::kDomainPage, 0), HvPanic);
}

TEST(FrameTableTest, RefCountUnderflowAsserts) {
  FrameTable ft(8);
  const FrameNumber f = ft.Alloc(1, FrameType::kDomainPage, 0);
  ft.PutPage(f);  // 1 -> 0
  EXPECT_THROW(ft.PutPage(f), HvPanic);
}

TEST(FrameTableTest, GetPageOnFreeFrameAsserts) {
  FrameTable ft(8);
  EXPECT_THROW(ft.GetPage(5), HvPanic);
}

TEST(FrameTableTest, PinUnpinLifecycle) {
  FrameTable ft(8);
  const FrameNumber f = ft.Alloc(1, FrameType::kDomainPage, 0);
  ft.GetPage(f);
  ft.ValidatePageTable(f);
  EXPECT_EQ(ft.desc(f).type, FrameType::kPageTable);
  EXPECT_TRUE(ft.desc(f).validated);
  // Double validation is the BUG_ON a retried non-idempotent pin trips.
  EXPECT_THROW(ft.ValidatePageTable(f), HvPanic);
  ft.InvalidatePageTable(f);
  ft.PutPage(f);
  EXPECT_EQ(ft.desc(f).type, FrameType::kDomainPage);
  EXPECT_FALSE(ft.desc(f).validated);
}

TEST(FrameTableTest, FreeingValidatedPageAsserts) {
  FrameTable ft(8);
  const FrameNumber f = ft.Alloc(1, FrameType::kDomainPage, 0);
  ft.ValidatePageTable(f);
  EXPECT_THROW(ft.FreeOne(f), HvPanic);
}

TEST(FrameTableTest, ConsistencyRules) {
  PageFrameDescriptor d;
  EXPECT_TRUE(FrameTable::Consistent(d));  // free, clean

  d.type = FrameType::kFree;
  d.use_count = 1;
  EXPECT_FALSE(FrameTable::Consistent(d));  // free with refs

  d = PageFrameDescriptor{};
  d.type = FrameType::kDomainPage;
  d.use_count = 0;
  EXPECT_TRUE(FrameTable::Consistent(d));  // unreferenced guest page is fine

  d.validated = true;
  EXPECT_FALSE(FrameTable::Consistent(d));  // validated but no refs

  d = PageFrameDescriptor{};
  d.type = FrameType::kPageTable;
  d.use_count = 1;
  d.validated = false;
  EXPECT_FALSE(FrameTable::Consistent(d));  // PT without validation bit

  d.validated = true;
  EXPECT_TRUE(FrameTable::Consistent(d));

  d = PageFrameDescriptor{};
  d.type = FrameType::kDomainPage;
  d.use_count = -2;
  EXPECT_FALSE(FrameTable::Consistent(d));  // negative count
}

TEST(FrameTableTest, ScanRepairsPartialPin) {
  FrameTable ft(16);
  const FrameNumber f = ft.Alloc(1, FrameType::kDomainPage, 0);
  // Simulate an abandoned pin retried without undo: double-increment then
  // validation bit set with inconsistent count.
  ft.mutable_desc(f).validated = true;
  ft.mutable_desc(f).use_count = 0;
  EXPECT_EQ(ft.CountInconsistent(), 1u);
  const FrameScanReport rep = ft.ScanAndRepair();
  EXPECT_EQ(rep.scanned, 16u);
  EXPECT_EQ(rep.repaired, 1u);
  EXPECT_EQ(ft.CountInconsistent(), 0u);
  // The validated bit was the trusted source.
  EXPECT_EQ(ft.desc(f).type, FrameType::kPageTable);
  EXPECT_GE(ft.desc(f).use_count, 1);
}

TEST(FrameTableTest, ScanIsIdempotent) {
  FrameTable ft(32);
  sim::Rng rng(5);
  ft.Alloc(16, FrameType::kDomainPage, 0);
  for (int i = 0; i < 8; ++i) {
    const FrameNumber f = ft.PickAllocatedFrame(rng);
    ft.mutable_desc(f).use_count -= 3;
  }
  ft.ScanAndRepair();
  const FrameScanReport second = ft.ScanAndRepair();
  EXPECT_EQ(second.repaired, 0u);
}

TEST(FrameTableTest, PickAllocatedReturnsAllocated) {
  FrameTable ft(64);
  sim::Rng rng(3);
  EXPECT_EQ(ft.PickAllocatedFrame(rng), kInvalidFrame);
  ft.Alloc(10, FrameType::kDomainPage, 2);
  for (int i = 0; i < 50; ++i) {
    const FrameNumber f = ft.PickAllocatedFrame(rng);
    ASSERT_NE(f, kInvalidFrame);
    EXPECT_NE(ft.desc(f).type, FrameType::kFree);
  }
}

// Property: for ANY random corruption pattern, ScanAndRepair leaves every
// descriptor consistent — the invariant NiLiHype's 21 ms step relies on.
class FrameScanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameScanFuzz, RepairAlwaysRestoresConsistency) {
  sim::Rng rng(GetParam());
  FrameTable ft(256);
  ft.Alloc(64, FrameType::kDomainPage, 0);
  ft.Alloc(32, FrameType::kXenHeap, kInvalidDomain);
  for (int i = 0; i < 16; ++i) {
    const FrameNumber f = ft.Alloc(1, FrameType::kDomainPage, 1);
    ft.ValidatePageTable(f);
  }
  // Arbitrary field scrambling.
  for (int i = 0; i < 40; ++i) {
    const FrameNumber f = rng.Index(256);
    PageFrameDescriptor& d = ft.mutable_desc(f);
    switch (rng.Index(4)) {
      case 0: d.validated = !d.validated; break;
      case 1: d.use_count += static_cast<std::int32_t>(rng.Range(-3, 3)); break;
      case 2: d.type = static_cast<FrameType>(rng.Index(4)); break;
      default: d.owner = static_cast<DomainId>(rng.Range(-1, 5)); break;
    }
  }
  ft.ScanAndRepair();
  EXPECT_EQ(ft.CountInconsistent(), 0u) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameScanFuzz, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace nlh::hv
