// Forensics battery: flight recorder rings + NLH_RECORD weave, the JSON
// parser and round-trips of every emitted artifact, the root-cause
// correlator, the cost-attribution profiler, dossier emission, and the
// byte-identical determinism of forensic replays.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/target_system.h"
#include "forensics/correlator.h"
#include "forensics/dossier.h"
#include "forensics/flight_recorder.h"
#include "forensics/profiler.h"
#include "forensics/record.h"
#include "hv/hypervisor.h"
#include "sim/json.h"
#include "sim/log.h"
#include "sim/metrics.h"
#include "sim/trace.h"

using namespace nlh;

namespace {

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorder, RecordsPerCpuAndGlobalRings) {
  forensics::FlightRecorder rec;
  sim::Time now = 100;
  rec.SetClock([&now] { return now; });
  rec.Enable(2, 8);

  rec.Record(forensics::EventKind::kIrqRaise, 0, 0x20);
  now = 200;
  rec.Record(forensics::EventKind::kIrqRaise, 1, 0x21);
  rec.Record(forensics::EventKind::kDeath, -1, 7, 0, "gone");

  const auto cpu0 = rec.SnapshotCpu(0);
  ASSERT_EQ(cpu0.size(), 1u);
  EXPECT_EQ(cpu0[0].at, 100);
  EXPECT_EQ(cpu0[0].arg0, 0x20u);
  EXPECT_EQ(cpu0[0].kind, forensics::EventKind::kIrqRaise);

  const auto global = rec.SnapshotCpu(-1);
  ASSERT_EQ(global.size(), 1u);
  EXPECT_EQ(global[0].detail, "gone");

  // Sequence numbers are global across rings.
  EXPECT_LT(cpu0[0].seq, rec.SnapshotCpu(1)[0].seq);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.SnapshotCpu(5).empty());  // out of range
}

TEST(FlightRecorder, RingWrapsKeepingNewestEvents) {
  forensics::FlightRecorder rec;
  rec.Enable(1, 4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.Record(forensics::EventKind::kSchedule, 0, i);
  }
  const auto events = rec.SnapshotCpu(0);
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, only the newest four survive.
  EXPECT_EQ(events.front().arg0, 6u);
  EXPECT_EQ(events.back().arg0, 9u);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(FlightRecorder, DetectionSnapshotFirstCaptureSticks) {
  forensics::FlightRecorder rec;
  rec.Enable(1);
  EXPECT_FALSE(rec.has_detection_snapshot());
  rec.SetDetectionSnapshot("{\"a\":1}");
  rec.SetDetectionSnapshot("{\"b\":2}");
  EXPECT_EQ(rec.detection_snapshot(), "{\"a\":1}");
}

TEST(FlightRecorder, ToJsonParsesAndCarriesStructure) {
  forensics::FlightRecorder rec;
  rec.Enable(2, 4);
  rec.Record(forensics::EventKind::kHypercallEnter, 0, 3, 0, "mmu_update");
  rec.Record(forensics::EventKind::kDetection, -1, 1, 2, "watchdog");
  rec.SetDetectionSnapshot("{\"regs\":{}}");

  sim::JsonValue doc;
  ASSERT_TRUE(sim::ParseJson(rec.ToJson(), &doc));
  ASSERT_TRUE(doc.IsObject());
  EXPECT_EQ(doc.Find("dropped")->number, 0.0);
  EXPECT_TRUE(doc.Find("detection_snapshot")->IsObject());
  // kDetection is a pinned kind: it appears in the pinned channel too.
  ASSERT_EQ(doc.Find("pinned")->items.size(), 1u);
  EXPECT_EQ(doc.Find("pinned")->items[0].Find("kind")->str, "detection");
  ASSERT_TRUE(doc.Find("per_cpu")->IsArray());
  EXPECT_EQ(doc.Find("per_cpu")->items.size(), 2u);
  const sim::JsonValue& ev = doc.Find("per_cpu")->items[0].items.at(0);
  EXPECT_EQ(ev.Find("kind")->str, "hypercall_enter");
  EXPECT_EQ(ev.Find("detail")->str, "mmu_update");
  ASSERT_EQ(doc.Find("global")->items.size(), 1u);
  EXPECT_EQ(doc.Find("global")->items[0].Find("kind")->str, "detection");
}

TEST(FlightRecorder, MacroRespectsCurrentRecorderAndEnableState) {
  // No recorder installed anywhere: must be a no-op, not a crash.
  forensics::SetCurrentRecorder(nullptr);
  NLH_RECORD(forensics::EventKind::kIpi, 0, 1);

  forensics::FlightRecorder rec;
  forensics::RecorderScope scope(&rec);
  // Installed but disabled: args must not be recorded.
  NLH_RECORD(forensics::EventKind::kIpi, 0, 1);
  EXPECT_EQ(rec.recorded(), 0u);

  rec.Enable(1);
  NLH_RECORD(forensics::EventKind::kIpi, 0, 1, 2, "zap");
  NLH_RECORD(forensics::EventKind::kIpi, 0);  // zero-arg variant compiles
#ifdef NLH_NO_FLIGHT_RECORDER
  EXPECT_EQ(rec.recorded(), 0u);
#else
  ASSERT_EQ(rec.recorded(), 2u);
  EXPECT_EQ(rec.SnapshotCpu(0)[0].detail, "zap");
#endif
}

TEST(FlightRecorder, ScopeToleratesNonLifoDestruction) {
  forensics::FlightRecorder a;
  forensics::FlightRecorder b;
  auto sa = std::make_unique<forensics::RecorderScope>(&a);
  auto sb = std::make_unique<forensics::RecorderScope>(&b);
  EXPECT_EQ(forensics::CurrentRecorder(), &b);
  sa.reset();  // destroyed out of order: b stays current
  EXPECT_EQ(forensics::CurrentRecorder(), &b);
  sb.reset();
  EXPECT_EQ(forensics::CurrentRecorder(), &a);
  forensics::SetCurrentRecorder(nullptr);
}

// --- NLH_RECORD weave (hypervisor hot paths) -------------------------------

TEST(FlightRecorderWeave, HypercallAndScheduleEventsAppear) {
  hw::PlatformConfig pcfg;
  pcfg.num_cpus = 2;
  pcfg.memory_gib = 1;
  hw::Platform platform(pcfg, 1);
  hv::Hypervisor hv(platform, hv::HvConfig{});
  hv.Boot();
  const hv::DomainId dom = hv.CreateDomainDirect("d", false, 1, 32);
  hv.StartDomain(dom);
  const hv::VcpuId vcpu = hv.FindDomain(dom)->vcpus.front();

  hv.flight_recorder().Enable(platform.num_cpus());
  hv::HypercallArgs args;
  args.arg0 = 5;
  args.arg1 = 1;
  hv.Hypercall(vcpu, hv::HypercallCode::kMmuUpdate, args);

  std::set<forensics::EventKind> kinds;
  for (int cpu = -1; cpu < platform.num_cpus(); ++cpu) {
    for (const forensics::FlightEvent& ev :
         hv.flight_recorder().SnapshotCpu(cpu)) {
      kinds.insert(ev.kind);
    }
  }
#ifdef NLH_NO_FLIGHT_RECORDER
  EXPECT_TRUE(kinds.empty());
#else
  EXPECT_TRUE(kinds.count(forensics::EventKind::kHypercallEnter));
  EXPECT_TRUE(kinds.count(forensics::EventKind::kHypercallExit));
  EXPECT_TRUE(kinds.count(forensics::EventKind::kLockAcquire));
  EXPECT_TRUE(kinds.count(forensics::EventKind::kLockRelease));
#endif
}

#ifndef NLH_NO_FLIGHT_RECORDER
TEST(FlightRecorderWeave, DetectedRunCapturesInjectionAndDetection) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.fault = inject::FaultType::kFailstop;
  // Find a detected run (failstop faults mostly manifest as panics).
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    cfg.seed = seed;
    core::TargetSystem sys(cfg);
    sys.EnableFlightRecorder();
    const core::RunResult r = sys.Run();
    if (!r.detected) continue;

    EXPECT_TRUE(r.injection_fired);
    EXPECT_GE(r.detection_latency, 0);
    EXPECT_NE(r.detection_class, forensics::DetectionClass::kNotApplicable);
    EXPECT_NE(r.detection_class, forensics::DetectionClass::kSilent);

    const forensics::FlightRecorder& rec = sys.hv().flight_recorder();
    EXPECT_TRUE(rec.has_detection_snapshot());
    sim::JsonValue snap;
    ASSERT_TRUE(sim::ParseJson(rec.detection_snapshot(), &snap));
    EXPECT_TRUE(snap.Find("per_cpu")->IsArray());

    // The forensic ground truth lives in the pinned channel: the run keeps
    // executing for seconds after recovery, so hot-path chatter wraps the
    // per-CPU rings long before the run ends.
    std::set<forensics::EventKind> kinds;
    for (const forensics::FlightEvent& ev : rec.pinned()) {
      kinds.insert(ev.kind);
    }
    EXPECT_TRUE(kinds.count(forensics::EventKind::kInjectionFired));
    EXPECT_TRUE(kinds.count(forensics::EventKind::kDetection));
    EXPECT_TRUE(kinds.count(forensics::EventKind::kRecoveryPhase));
    EXPECT_EQ(rec.pinned_dropped(), 0u);
    return;
  }
  FAIL() << "no detected run among seeds 1..32";
}
#endif

// --- JSON parser ------------------------------------------------------------

TEST(JsonParser, ParsesScalarsArraysObjects) {
  sim::JsonValue v;
  ASSERT_TRUE(sim::ParseJson("  {\"a\":[1,-2.5,true,false,null,\"x\\n\"]} ", &v));
  const sim::JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 6u);
  EXPECT_EQ(a->items[0].number, 1.0);
  EXPECT_EQ(a->items[1].number, -2.5);
  EXPECT_TRUE(a->items[2].boolean);
  EXPECT_FALSE(a->items[3].boolean);
  EXPECT_TRUE(a->items[4].IsNull());
  EXPECT_EQ(a->items[5].str, "x\n");
  EXPECT_EQ(v.Find("nope"), nullptr);
}

TEST(JsonParser, UnicodeEscapesAndExponents) {
  sim::JsonValue v;
  ASSERT_TRUE(sim::ParseJson("{\"s\":\"\\u0041\\u00e9\",\"n\":1.5e3}", &v));
  EXPECT_EQ(v.Find("s")->str, "A\xc3\xa9");
  EXPECT_EQ(v.Find("n")->number, 1500.0);
}

TEST(JsonParser, RejectsMalformedDocuments) {
  sim::JsonValue v;
  EXPECT_FALSE(sim::ParseJson("", &v));
  EXPECT_FALSE(sim::ParseJson("{", &v));
  EXPECT_FALSE(sim::ParseJson("[1,]", &v));
  EXPECT_FALSE(sim::ParseJson("{\"a\":1} trailing", &v));
  EXPECT_FALSE(sim::ParseJson("\"unterminated", &v));
  EXPECT_FALSE(sim::ParseJson("truth", &v));
  EXPECT_FALSE(sim::ParseJson("1.2.3", &v));
  EXPECT_FALSE(sim::ParseJson("{'a':1}", &v));
}

TEST(JsonParser, RoundTripsEmittedArtifacts) {
  // Chrome trace JSON.
  sim::Tracer tracer;
  tracer.Enable(16);
  const auto id = tracer.Begin("outer", 0, 100);
  tracer.Span("inner \"quoted\"", 0, 110, 150);
  tracer.End(id, 200);
  sim::JsonValue v;
  ASSERT_TRUE(sim::ParseJson(tracer.ToChromeJson(), &v));
  EXPECT_EQ(v.Find("traceEvents")->items.size(), 2u);

  // Metrics registry JSON.
  sim::MetricsRegistry reg;
  reg.GetCounter("a.count").Inc(3);
  reg.GetHistogram("a.ms").Observe(1.5);
  ASSERT_TRUE(sim::ParseJson(reg.ToJson(), &v));
  EXPECT_EQ(v.Find("counters")->Find("a.count")->number, 3.0);
  EXPECT_EQ(v.Find("histograms")->Find("a.ms")->Find("count")->number, 1.0);
}

// --- Histogram quantiles ----------------------------------------------------

TEST(HistogramQuantile, InterpolatesBetweenClosestRanks) {
  sim::Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  for (double v : {4.0, 1.0, 3.0, 2.0}) h.Observe(v);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 2.5);
  EXPECT_DOUBLE_EQ(h.Quantile(0.25), 1.75);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0 / 3.0), 2.0);  // exact rank, no fraction
}

// --- Correlator -------------------------------------------------------------

TEST(Correlator, ClassifiesAgainstGroundTruth) {
  using forensics::ClassifyDetection;
  using forensics::DetectionClass;
  using inject::Manifestation;
  const auto panic = hv::DetectionKind::kPanic;
  const auto hang = hv::DetectionKind::kHang;

  // Nothing fired.
  EXPECT_EQ(ClassifyDetection(false, Manifestation::kNone, false, panic, -1),
            DetectionClass::kNotApplicable);
  EXPECT_EQ(ClassifyDetection(false, Manifestation::kNone, true, panic, 0),
            DetectionClass::kMisdetected);

  // Fired, undetected.
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kNone, false, panic, -1),
            DetectionClass::kNotApplicable);
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kSdc, false, panic, -1),
            DetectionClass::kSilent);

  // Fired + detected: kind agreement and latency thresholds.
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kImmediatePanic, true,
                              panic, sim::Milliseconds(1)),
            DetectionClass::kPrompt);
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kDelayedPanic, true, panic,
                              sim::Milliseconds(11)),
            DetectionClass::kDetectedLate);
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kHang, true, hang,
                              sim::Milliseconds(400)),
            DetectionClass::kPrompt);
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kHang, true, hang,
                              sim::Milliseconds(600)),
            DetectionClass::kDetectedLate);
  // Wrong detector class, or a manifestation no detector should see.
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kDelayedPanic, true, hang,
                              sim::Milliseconds(1)),
            DetectionClass::kMisdetected);
  EXPECT_EQ(ClassifyDetection(true, Manifestation::kSdc, true, panic, 0),
            DetectionClass::kMisdetected);
}

// --- Profiler ---------------------------------------------------------------

TEST(Profiler, CollapsesSpansWithSelfTimeWeights) {
  std::vector<sim::TraceEvent> spans;
  auto add = [&](std::uint32_t id, std::uint32_t parent, sim::Time s,
                 sim::Time e, const std::string& name) {
    sim::TraceEvent ev;
    ev.id = id;
    ev.parent = parent;
    ev.start = s;
    ev.end = e;
    ev.name = name;
    spans.push_back(ev);
  };
  add(1, 0, 0, 100, "root");
  add(2, 1, 10, 30, "child a");   // space sanitized to '_'
  add(3, 1, 40, 50, "child;b");   // ';' sanitized (frame separator)
  // Self times: root = 100 - (20 + 10) = 70.
  EXPECT_EQ(forensics::CollapsedStackProfile(spans),
            "root 70\n"
            "root;child_a 20\n"
            "root;child_b 10\n");
  EXPECT_EQ(forensics::CollapsedStackProfile({}), "");
}

TEST(Profiler, OrphanParentsAndZeroSelfTimeSpans) {
  std::vector<sim::TraceEvent> spans;
  sim::TraceEvent a;
  a.id = 5;
  a.parent = 99;  // parent not in snapshot: treated as a root
  a.start = 0;
  a.end = 10;
  a.name = "lonely";
  spans.push_back(a);
  sim::TraceEvent b = a;
  b.id = 6;
  b.parent = 5;
  b.start = 0;
  b.end = 10;  // covers all of a: a's self time becomes 0 and is dropped
  b.name = "cover";
  spans.push_back(b);
  EXPECT_EQ(forensics::CollapsedStackProfile(spans), "lonely;cover 10\n");
}

// --- Logger filtering + hook ------------------------------------------------

TEST(Logger, ComponentLevelOverridesAndEventHook) {
  sim::Logger log(sim::LogLevel::kInfo);
  std::vector<std::string> sink;
  log.SetSink(&sink);
  log.SetComponentLevel("chatty", sim::LogLevel::kNone);
  log.SetComponentLevel("quiet", sim::LogLevel::kDebug);

  std::vector<std::string> hooked;
  log.SetEventHook([&](sim::LogLevel, sim::Time, const std::string& comp,
                       const std::string& msg) {
    hooked.push_back(comp + "/" + msg);
  });

  log.Log(sim::LogLevel::kInfo, 0, "chatty", "dropped");
  log.Log(sim::LogLevel::kDebug, 0, "other", "dropped (below global)");
  log.Log(sim::LogLevel::kDebug, 0, "quiet", "kept (component override)");
  log.Log(sim::LogLevel::kInfo, 0, "other", "kept");

  ASSERT_EQ(hooked.size(), 2u);
  EXPECT_EQ(hooked[0], "quiet/kept (component override)");
  EXPECT_EQ(hooked[1], "other/kept");
  EXPECT_EQ(sink.size(), 2u);  // hook fires for exactly the emitted lines

  log.ClearComponentLevels();
  log.Log(sim::LogLevel::kInfo, 0, "chatty", "audible again");
  EXPECT_EQ(sink.size(), 3u);
}

// --- Dossiers + replay determinism -----------------------------------------

TEST(Dossier, WorthinessFollowsFailureClasses) {
  core::RunResult r;
  EXPECT_FALSE(forensics::DossierWorthy(r));  // non-manifested
  r.outcome = core::OutcomeClass::kSdc;
  EXPECT_TRUE(forensics::DossierWorthy(r));
  r = {};
  r.outcome = core::OutcomeClass::kDetected;
  r.detected = true;
  r.success = true;
  EXPECT_FALSE(forensics::DossierWorthy(r));  // clean recovery
  r.success = false;
  EXPECT_TRUE(forensics::DossierWorthy(r));  // failed recovery
  r.success = true;
  r.latent_corruption = true;
  EXPECT_TRUE(forensics::DossierWorthy(r));  // latent corruption
}

TEST(Dossier, ReplayIsByteIdenticalAndParses) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.fault = inject::FaultType::kFailstop;

  const forensics::ReplayArtifacts a = forensics::ReplayRun(cfg, 7);
  const forensics::ReplayArtifacts b = forensics::ReplayRun(cfg, 7);
  EXPECT_EQ(a.dossier_json, b.dossier_json);  // golden determinism
  EXPECT_EQ(a.trace_json, b.trace_json);
  EXPECT_EQ(a.profile, b.profile);

  sim::JsonValue doc;
  ASSERT_TRUE(sim::ParseJson(a.dossier_json, &doc));
  EXPECT_EQ(doc.Find("schema")->str, "nlh-dossier-v1");
  EXPECT_EQ(doc.Find("run_id")->number, 7.0);
  EXPECT_EQ(doc.Find("config")->Find("seed")->number, 7.0);
  ASSERT_NE(doc.Find("result"), nullptr);
  EXPECT_EQ(doc.Find("result")->Find("outcome")->str,
            core::OutcomeClassName(a.result.outcome));
  ASSERT_NE(doc.Find("injection"), nullptr);
  ASSERT_NE(doc.Find("audit_findings"), nullptr);
  ASSERT_TRUE(doc.Find("recorder")->IsObject());
  EXPECT_TRUE(doc.Find("recorder")->Find("per_cpu")->IsArray());
  EXPECT_TRUE(doc.Find("trace")->Find("traceEvents")->IsArray());
  if (a.result.detected) {
    EXPECT_FALSE(doc.Find("detection")->IsNull());
#ifndef NLH_NO_FLIGHT_RECORDER
    EXPECT_TRUE(doc.Find("recorder")->Find("detection_snapshot")->IsObject());
#endif
  }
}

// --- Campaign detection statistics -----------------------------------------

TEST(CampaignForensics, DetectionSplitAndLatencyAggregatesInJson) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.fault = inject::FaultType::kRegister;  // mixed manifestations
  core::CampaignOptions opts;
  opts.runs = 24;
  opts.seed0 = 300;
  const core::CampaignResult res = core::RunCampaign(cfg, opts);

  // Every detected run lands in exactly one of prompt/late/misdetected.
  EXPECT_EQ(res.detected_prompt + res.detected_late + res.misdetected,
            res.detected);
  // SDC runs with a fired fault are silent (never detected).
  EXPECT_GE(res.silent, res.sdc);

  sim::JsonValue doc;
  ASSERT_TRUE(sim::ParseJson(res.ToJson(), &doc));
  const sim::JsonValue* det = doc.Find("detection");
  ASSERT_NE(det, nullptr);
  EXPECT_EQ(det->Find("prompt")->number, res.detected_prompt);
  EXPECT_EQ(det->Find("late")->number, res.detected_late);
  EXPECT_EQ(det->Find("misdetected")->number, res.misdetected);
  EXPECT_EQ(det->Find("silent")->number, res.silent);
  const sim::JsonValue* by_class = det->Find("latency_by_class");
  ASSERT_NE(by_class, nullptr);
  int total_samples = 0;
  for (const auto& [fault_class, agg] : by_class->fields) {
    EXPECT_FALSE(fault_class.empty());
    EXPECT_GE(agg.Find("max_ms")->number, agg.Find("p50_ms")->number);
    total_samples += static_cast<int>(agg.Find("samples")->number);
  }
  if (res.detected > 0) EXPECT_GT(total_samples, 0);
}

}  // namespace
