// Corpus regression runner: replays every committed reproducer in
// tests/corpus/ and asserts its recorded outcome byte-for-byte — the
// divergence kind and all three policy verdicts (policy results, audit
// finding slugs, latencies) must match exactly what the bundle recorded
// when it was shrunk. Any behavioral drift in the simulator, the recovery
// mechanisms, or the audit engine that touches a known divergence shows up
// here as a readable diff of canonical JSON.
//
// NLH_CORPUS_DIR is injected by CMake and points at the source-tree corpus.
#include <gtest/gtest.h>

#include <set>

#include "fuzz/corpus.h"
#include "fuzz/oracle.h"

namespace {

using namespace nlh;

std::vector<std::string> CorpusPaths() {
  return fuzz::ListCorpus(NLH_CORPUS_DIR);
}

TEST(CorpusShipment, ShipsAtLeastTenReproducers) {
  EXPECT_GE(CorpusPaths().size(), 10u)
      << "committed corpus under " << NLH_CORPUS_DIR << " shrank";
}

TEST(CorpusShipment, SpansAtLeastFourAuditSubsystems) {
  std::set<std::string> subsystems;
  for (const std::string& path : CorpusPaths()) {
    fuzz::LoadedReproducer rep;
    std::string err;
    ASSERT_TRUE(fuzz::LoadReproducer(path, &rep, &err)) << err;
    for (const std::string& v : rep.expected_verdicts) {
      sim::JsonValue doc;
      ASSERT_TRUE(sim::ParseJson(v, &doc));
      const sim::JsonValue* subs = doc.Find("latent_subsystems");
      ASSERT_NE(subs, nullptr);
      for (const sim::JsonValue& s : subs->items) subsystems.insert(s.str);
    }
  }
  EXPECT_GE(subsystems.size(), 4u)
      << "corpus reproducers cover too few audit subsystems";
}

TEST(CorpusRegression, EveryReproducerReplaysByteForByte) {
  const std::vector<std::string> paths = CorpusPaths();
  ASSERT_FALSE(paths.empty()) << "no corpus under " << NLH_CORPUS_DIR;
  for (const std::string& path : paths) {
    SCOPED_TRACE(path);
    fuzz::LoadedReproducer rep;
    std::string err;
    ASSERT_TRUE(fuzz::LoadReproducer(path, &rep, &err)) << err;

    const fuzz::OracleOutcome o = fuzz::EvaluateScenario(rep.scenario, 3);
    EXPECT_EQ(fuzz::DivergenceKindName(o.divergence),
              fuzz::DivergenceKindName(rep.divergence));
    for (int i = 0; i < fuzz::kNumPolicies; ++i) {
      sim::JsonValue doc;
      const std::string recomputed =
          o.verdicts[static_cast<std::size_t>(i)].ToJson();
      ASSERT_TRUE(sim::ParseJson(recomputed, &doc));
      EXPECT_EQ(sim::WriteJson(doc),
                rep.expected_verdicts[static_cast<std::size_t>(i)])
          << "verdict drift for "
          << core::MechanismName(fuzz::kPolicies[i]);
    }
  }
}

}  // namespace
