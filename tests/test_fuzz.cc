// Scenario-fuzzing engine tests: serialization round-trips, the
// differential oracle, end-to-end determinism (same master seed ->
// identical scenario stream, coverage map, and shrunk reproducers at any
// thread count), and the seeded self-check — a planted latent corruption
// the fuzzer must expose and shrink to a minimal reproducer.
#include <gtest/gtest.h>

#include "fuzz/engine.h"
#include "fuzz/generator.h"
#include "fuzz/shrinker.h"
#include "sim/rng.h"

namespace {

using namespace nlh;

// --- Scenario serialization -------------------------------------------------

TEST(Scenario, JsonRoundTripsExactlyAcrossGeneratedScenarios) {
  sim::Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const fuzz::Scenario s = fuzz::GenerateScenario(rng);
    const std::string json = s.ToJson();
    sim::JsonValue doc;
    ASSERT_TRUE(sim::ParseJson(json, &doc)) << json;
    fuzz::Scenario back;
    ASSERT_TRUE(fuzz::Scenario::FromJson(doc, &back)) << json;
    EXPECT_EQ(back.ToJson(), json);
    EXPECT_EQ(back.Fingerprint(), s.Fingerprint());
    EXPECT_EQ(back.PlanElementCount(), s.PlanElementCount());
  }
}

TEST(Scenario, FromJsonRejectsWrongSchemaAndMalformedFields) {
  fuzz::Scenario s;
  sim::JsonValue doc;
  fuzz::Scenario out;

  std::string json = s.ToJson();
  ASSERT_TRUE(sim::ParseJson(json, &doc));
  doc.fields[0].second.str = "nlh-scenario-v0";  // schema mismatch
  EXPECT_FALSE(fuzz::Scenario::FromJson(doc, &out));

  ASSERT_TRUE(sim::ParseJson(json, &doc));
  for (auto& [k, v] : doc.fields) {
    if (k == "fault") v.str = "Bogus";
  }
  EXPECT_FALSE(fuzz::Scenario::FromJson(doc, &out));

  ASSERT_TRUE(sim::ParseJson("{\"schema\":\"nlh-repro-v1\"}", &doc));
  EXPECT_FALSE(fuzz::Scenario::FromJson(doc, &out));
}

TEST(Scenario, SeedSurvivesHexRoundTripAboveDoublePrecision) {
  fuzz::Scenario s;
  s.seed = 0xfedcba9876543210ULL;  // not representable as a double
  sim::JsonValue doc;
  ASSERT_TRUE(sim::ParseJson(s.ToJson(), &doc));
  fuzz::Scenario back;
  ASSERT_TRUE(fuzz::Scenario::FromJson(doc, &back));
  EXPECT_EQ(back.seed, 0xfedcba9876543210ULL);
}

TEST(Scenario, PlanElementCountCountsEveryPlanElement) {
  fuzz::Scenario s;  // 1AppVM + fault
  EXPECT_EQ(s.PlanElementCount(), 2);
  s.plants.push_back({inject::CorruptionTarget::kTimerHeapEntry,
                      sim::Milliseconds(200)});
  EXPECT_EQ(s.PlanElementCount(), 3);
  s.setup = core::Setup::k3AppVM;
  s.vm3_at_start = true;
  s.share_cpu = true;
  s.hvm = true;
  s.trigger.kind = inject::TriggerKind::kGrantOp;
  EXPECT_EQ(s.PlanElementCount(), 8);
  s.inject = false;
  EXPECT_EQ(s.PlanElementCount(), 7);
}

// --- Verdict canonicalization ----------------------------------------------

TEST(Oracle, VerdictJsonIsAWriteJsonFixedPoint) {
  const fuzz::Scenario s;  // default failstop scenario
  const fuzz::OracleOutcome o = fuzz::EvaluateScenario(s, 2);
  for (const fuzz::PolicyVerdict& v : o.verdicts) {
    const std::string json = v.ToJson();
    sim::JsonValue doc;
    ASSERT_TRUE(sim::ParseJson(json, &doc)) << json;
    EXPECT_EQ(sim::WriteJson(doc), json);
  }
}

TEST(Oracle, ExecutionIdenticalUntilDetectionAcrossPolicies) {
  // Same seed, same injection plan: the injection record must agree across
  // all three policies (divergence is confined to the recovery path).
  fuzz::Scenario s;
  s.seed = 42;
  const fuzz::OracleOutcome o = fuzz::EvaluateScenario(s, 3);
  const fuzz::PolicyVerdict& nili = o.verdicts[0];
  const fuzz::PolicyVerdict& rehype = o.verdicts[1];
  const fuzz::PolicyVerdict& base = o.verdicts[2];
  EXPECT_EQ(nili.outcome, rehype.outcome);
  EXPECT_EQ(nili.outcome, base.outcome);
  EXPECT_EQ(nili.detected, rehype.detected);
  EXPECT_EQ(nili.detection_latency_ns, rehype.detection_latency_ns);
  // The baseline never recovers.
  EXPECT_EQ(base.recoveries, 0);
  if (base.detected) EXPECT_FALSE(base.success);
}

// --- Seeded self-check ------------------------------------------------------

// A silently planted corruption in reboot-repaired state (the timer heap)
// must split the differential oracle: NiLiHype's microreset preserves the
// damage as latent corruption, ReHype's reboot clears it. This is the
// planted "latent-corruption hook" acceptance check — the oracle must flag
// it, and the shrinker must reduce it to a <=3-element reproducer.
TEST(SelfCheck, PlantedTimerCorruptionSplitsOracleAndShrinksMinimal) {
  fuzz::Scenario s;
  s.seed = 5;
  s.setup = core::Setup::k1AppVM;
  s.inject = true;
  s.fault = inject::FaultType::kFailstop;
  s.inject_at_ns = sim::Milliseconds(400);
  s.plants.push_back({inject::CorruptionTarget::kTimerHeapEntry,
                      sim::Milliseconds(200)});
  ASSERT_EQ(s.PlanElementCount(), 3);

  const fuzz::OracleOutcome o = fuzz::EvaluateScenario(s, 3);
  ASSERT_NE(o.divergence, fuzz::DivergenceKind::kNone);
  // NiLiHype keeps the planted damage across recovery; ReHype reboots it
  // away.
  const fuzz::PolicyVerdict& nili = o.verdicts[0];
  const fuzz::PolicyVerdict& rehype = o.verdicts[1];
  EXPECT_FALSE(nili.audit_clean);
  EXPECT_FALSE(nili.latent_subsystems.empty());
  EXPECT_TRUE(rehype.audit_clean) << "reboot should clear the planted damage";

  const fuzz::ShrinkResult shrunk = fuzz::ShrinkScenario(
      s, o.divergence,
      [](const fuzz::Scenario& c) { return fuzz::EvaluateScenario(c, 3); },
      40);
  EXPECT_LE(shrunk.scenario.PlanElementCount(), 3);
  EXPECT_EQ(fuzz::EvaluateScenario(shrunk.scenario, 3).divergence,
            o.divergence);
}

// --- End-to-end determinism -------------------------------------------------

fuzz::FuzzOptions SmallCampaign(int threads) {
  fuzz::FuzzOptions opt;
  opt.master_seed = 21;
  opt.iterations = 6;
  opt.batch = 3;
  opt.threads = threads;
  opt.max_shrink_evals = 10;
  opt.max_corpus = 2;
  return opt;
}

std::string Digest(const fuzz::FuzzStats& stats) {
  std::string out = std::to_string(stats.scenarios) + "/" +
                    std::to_string(stats.divergent) + "/" +
                    std::to_string(stats.unique_divergent) + "/" +
                    std::to_string(stats.coverage) + "/" +
                    fuzz::HexU64(stats.coverage_hash);
  for (const fuzz::FuzzReproducer& r : stats.reproducers) {
    out += "|" + r.scenario.ToJson() + "@" +
           std::string(fuzz::DivergenceKindName(r.kind));
  }
  return out;
}

TEST(Fuzz, CampaignIsAPureFunctionOfTheMasterSeed) {
  const std::string a = Digest(fuzz::Fuzz(SmallCampaign(2)));
  const std::string b = Digest(fuzz::Fuzz(SmallCampaign(2)));
  EXPECT_EQ(a, b);
}

TEST(Fuzz, CampaignIsThreadCountInvariant) {
  const std::string t1 = Digest(fuzz::Fuzz(SmallCampaign(1)));
  const std::string t4 = Digest(fuzz::Fuzz(SmallCampaign(4)));
  const std::string t8 = Digest(fuzz::Fuzz(SmallCampaign(8)));
  EXPECT_EQ(t1, t4);
  EXPECT_EQ(t1, t8);
}

// Satellite of PR 4's RunArena recycling: a shrunk scenario's full
// reproducer bundle — verdicts plus the dossier-compatible replay section —
// must hash identically when its runs execute on 1, 4, or 8 campaign
// threads (worker arenas must leak no state between runs).
TEST(Fuzz, ReproducerBundleHashIsIdenticalAcrossCampaignThreadCounts) {
  fuzz::Scenario s;
  s.seed = 5;
  s.plants.push_back({inject::CorruptionTarget::kTimerHeapEntry,
                      sim::Milliseconds(200)});
  std::uint64_t hashes[3];
  int i = 0;
  for (const int threads : {1, 4, 8}) {
    const std::array<core::RunConfig, fuzz::kNumPolicies> cfgs =
        fuzz::OracleConfigs(s);
    const std::vector<core::RunResult> results =
        core::RunMany({cfgs.begin(), cfgs.end()}, threads);
    const fuzz::OracleOutcome o = fuzz::Judge(s, results.data());
    hashes[i++] = fuzz::FnvMix(fuzz::kFnvOffset,
                               fuzz::ReproducerJson(s, o, results.data()));
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// --- Corpus I/O -------------------------------------------------------------

TEST(Corpus, WriteLoadRoundTripAndTamperDetection) {
  fuzz::Scenario s;
  s.seed = 5;
  s.plants.push_back({inject::CorruptionTarget::kTimerHeapEntry,
                      sim::Milliseconds(200)});
  const std::array<core::RunConfig, fuzz::kNumPolicies> cfgs =
      fuzz::OracleConfigs(s);
  const std::vector<core::RunResult> results =
      core::RunMany({cfgs.begin(), cfgs.end()}, 2);
  const fuzz::OracleOutcome o = fuzz::Judge(s, results.data());
  ASSERT_NE(o.divergence, fuzz::DivergenceKind::kNone);

  const std::string dir =
      ::testing::TempDir() + "/nlh_corpus_roundtrip";
  const std::string path =
      fuzz::WriteReproducer(dir, s, o, results.data());
  ASSERT_FALSE(path.empty());

  fuzz::LoadedReproducer rep;
  std::string err;
  ASSERT_TRUE(fuzz::LoadReproducer(path, &rep, &err)) << err;
  EXPECT_EQ(rep.divergence, o.divergence);
  EXPECT_EQ(rep.scenario.ToJson(), s.ToJson());
  ASSERT_EQ(rep.expected_verdicts.size(),
            static_cast<std::size_t>(fuzz::kNumPolicies));
  for (int i = 0; i < fuzz::kNumPolicies; ++i) {
    sim::JsonValue doc;
    ASSERT_TRUE(sim::ParseJson(
        o.verdicts[static_cast<std::size_t>(i)].ToJson(), &doc));
    EXPECT_EQ(rep.expected_verdicts[static_cast<std::size_t>(i)],
              sim::WriteJson(doc));
  }

  EXPECT_FALSE(fuzz::LoadReproducer(dir + "/missing.json", &rep, &err));
  EXPECT_NE(err.find("unreadable"), std::string::npos);
}

}  // namespace
