// White-box tests of the PrivVM backend pipelines (block and net) and the
// toolstack, driven through a minimal hand-built system.
#include <gtest/gtest.h>

#include "guest/appvm.h"
#include "guest/devices.h"
#include "guest/privvm.h"
#include "hv/hypervisor.h"

namespace nlh::guest {
namespace {

class BackendTest : public ::testing::Test {
 protected:
  BackendTest() : platform_(Cfg(), 5), hv_(platform_, hv::HvConfig{}) {
    hv_.Boot();
    priv_id_ = hv_.CreateDomainDirect("dom0", true, 0, 64);
    privvm_ = std::make_unique<PrivVmKernel>(hv_, 9);
    privvm_->Bind(priv_id_, hv_.FindDomain(priv_id_)->vcpus.front());
    hv_.AttachGuest(priv_id_, privvm_.get());

    disk_ = std::make_unique<VirtualDisk>(platform_, 0);
    privvm_->AttachDisk(disk_.get());
    hv::Domain* priv = hv_.FindDomain(priv_id_);
    const hv::EventPort p = priv->evtchn.AllocUnbound(priv_id_, 0);
    hv_.BindDeviceVector(hw::vec::kBlk, priv_id_, p);

    app_id_ = hv_.CreateDomainDirect("app", false, 1, 64);
    app_ = std::make_unique<AppVmKernel>(hv_, "app", 10,
                                         BenchmarkKind::kBlkBench, 5);
    app_->Bind(app_id_, hv_.FindDomain(app_id_)->vcpus.front());
    hv_.AttachGuest(app_id_, app_.get());

    // Wire the block ring + ports.
    hv::Domain* ad = hv_.FindDomain(app_id_);
    const hv::EventPort p_app = ad->evtchn.AllocUnbound(priv_id_, ad->vcpus.front());
    const hv::EventPort p_priv = priv->evtchn.AllocUnbound(app_id_, 0);
    ad->evtchn.BindInterdomain(p_app, priv_id_, p_priv);
    priv->evtchn.BindInterdomain(p_priv, app_id_, p_app);
    app_->ConnectBlk(&ring_, p_app);
    privvm_->ConnectBlkFrontend(app_id_, &ring_, p_priv);

    hv_.StartDomain(priv_id_);
    hv_.StartDomain(app_id_);
  }

  static hw::PlatformConfig Cfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 2;
    cfg.memory_gib = 1;
    return cfg;
  }

  hw::Platform platform_;
  hv::Hypervisor hv_;
  hv::DomainId priv_id_ = hv::kInvalidDomain;
  hv::DomainId app_id_ = hv::kInvalidDomain;
  std::unique_ptr<PrivVmKernel> privvm_;
  std::unique_ptr<AppVmKernel> app_;
  std::unique_ptr<VirtualDisk> disk_;
  BlkRing ring_;
};

TEST_F(BackendTest, EndToEndBlkFileCycle) {
  platform_.queue().RunUntil(sim::Seconds(1));
  EXPECT_TRUE(app_->BenchmarkDone());
  EXPECT_FALSE(app_->Affected());
  // 5 files x (4 writes + 4 reads) I/Os served.
  EXPECT_EQ(privvm_->ios_served(), 5u * 8u);
  // Every grant was revoked (no leaks) and refcounts balanced.
  EXPECT_EQ(hv_.FindDomain(app_id_)->grants.MappedCount(), 0);
  EXPECT_EQ(hv_.frames().CountInconsistent(), 0u);
  EXPECT_EQ(hv_.heap().HeldLockCount(), 0);
}

TEST_F(BackendTest, DuplicatedGrantCopyFlagsIoError) {
  // Advance event by event until a grant is in flight but not yet copied,
  // then force a duplicated transfer on it, as a retried un-enhanced
  // grant_copy would.
  hv::Domain* ad = hv_.FindDomain(app_id_);
  bool bumped = false;
  while (!bumped && !platform_.queue().Empty() &&
         platform_.Now() < sim::Milliseconds(500)) {
    platform_.queue().RunOne();
    for (hv::GrantRef r = 0; r < hv::kGrantTableSize && !bumped; ++r) {
      hv::GrantEntry& e = ad->grants.At(r);
      if (e.in_use && e.map_count > 0 && e.xfer_count == 0) {
        ++e.xfer_count;
        bumped = true;
      }
    }
  }
  ASSERT_TRUE(bumped);
  platform_.queue().RunUntil(sim::Seconds(1));
  EXPECT_GT(app_->io_errors(), 0);
  EXPECT_TRUE(app_->Affected());
}

TEST_F(BackendTest, ToolstackCreateDeliversRunningDomain) {
  bool created = false;
  hv::DomainId created_id = hv::kInvalidDomain;
  privvm_->SetVmFactory([&](hv::DomainId id) { created_id = id; });
  privvm_->RequestCreateVm(1, 32, [&](hv::DomainId) { created = true; });
  platform_.queue().RunUntil(sim::Milliseconds(100));
  EXPECT_TRUE(created);
  ASSERT_NE(created_id, hv::kInvalidDomain);
  hv::Domain* nd = hv_.FindDomain(created_id);
  ASSERT_NE(nd, nullptr);
  EXPECT_EQ(nd->lifecycle, hv::DomainLifecycle::kRunning);
}

TEST_F(BackendTest, CorruptedPrivVmStopsServingIo) {
  privvm_->CorruptKernelState();
  platform_.queue().RunUntil(sim::Seconds(1));
  EXPECT_TRUE(privvm_->crashed());
  EXPECT_FALSE(app_->BenchmarkDone());
  EXPECT_EQ(privvm_->ios_served(), 0u);
}

TEST_F(BackendTest, PhysdevRebalanceRunsPeriodically) {
  // 512 backend ops trigger an IRQ rebalance (the rarely-used un-enhanced
  // physdev path). 5 files = 40 I/Os won't reach it; run a longer workload.
  platform_.queue().RunUntil(sim::Seconds(1));
  const std::uint64_t before = hv_.stats().hypercalls;
  EXPECT_GT(before, 0u);  // sanity: the system did work
  // The route must be unmasked in steady state (rebalance completes).
  for (auto& [v, b] : hv_.device_bindings()) {
    EXPECT_FALSE(b.masked);
  }
}

}  // namespace
}  // namespace nlh::guest
