// Unit tests for the discrete-event core (sim/).
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace nlh::sim {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(1), 1000LL * 1000 * 1000);
  EXPECT_EQ(ToMillis(Milliseconds(22)), 22);
  EXPECT_DOUBLE_EQ(ToMillisF(Microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToSecondsF(Milliseconds(250)), 0.25);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAfter(30, [&] { order.push_back(3); });
  q.ScheduleAfter(10, [&] { order.push_back(1); });
  q.ScheduleAfter(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  const EventId a = q.ScheduleAfter(10, [&] { ++ran; });
  q.ScheduleAfter(20, [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));  // double-cancel is a no-op
  q.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, CancelInvalidIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEvent));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&] { ++ran; });
  q.ScheduleAt(20, [&] { ++ran; });
  q.ScheduleAt(30, [&] { ++ran; });
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.Now(), 20);
  q.RunAll();
  EXPECT_EQ(ran, 3);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) q.ScheduleAfter(10, recur);
  };
  q.ScheduleAfter(10, recur);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.Now(), 50);
}

TEST(EventQueueTest, ScheduleInPastClampsToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunOne();
  Time when = -1;
  q.ScheduleAt(50, [&] { when = q.Now(); });  // in the past
  q.RunOne();
  EXPECT_EQ(when, 100);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  const EventId a = q.ScheduleAfter(10, [] {});
  q.ScheduleAfter(20, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.ScheduleAt(10, [] {});
  q.ScheduleAt(25, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 25);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.U64(), b.U64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.U64() == b.U64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, RangeIsInclusiveAndBounded) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
  // Degenerate single-value range.
  EXPECT_EQ(r.Range(3, 3), 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, FlipRandomBitFlipsExactlyOne) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = r.U64();
    const std::uint64_t f = r.FlipRandomBit(v);
    EXPECT_EQ(__builtin_popcountll(v ^ f), 1);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The fork must not replay the parent stream.
  Rng b(21);
  b.U64();  // advance like the fork did
  EXPECT_NE(child.U64(), b.U64());
}

// Parameterized determinism sweep: any seed produces a reproducible stream.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, StreamReproducible) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(a.U64(), b.U64()) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xffffffffULL,
                                           ~0ULL, 0xdeadbeefULL));

}  // namespace
}  // namespace nlh::sim
