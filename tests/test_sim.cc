// Unit tests for the discrete-event core (sim/).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/small_fn.h"
#include "sim/time.h"

namespace nlh::sim {
namespace {

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(Microseconds(1), 1000);
  EXPECT_EQ(Milliseconds(1), 1000 * 1000);
  EXPECT_EQ(Seconds(1), 1000LL * 1000 * 1000);
  EXPECT_EQ(ToMillis(Milliseconds(22)), 22);
  EXPECT_DOUBLE_EQ(ToMillisF(Microseconds(1500)), 1.5);
  EXPECT_DOUBLE_EQ(ToSecondsF(Milliseconds(250)), 0.25);
}

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAfter(30, [&] { order.push_back(3); });
  q.ScheduleAfter(10, [&] { order.push_back(1); });
  q.ScheduleAfter(20, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 30);
}

TEST(EventQueueTest, FifoAmongEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  const EventId a = q.ScheduleAfter(10, [&] { ++ran; });
  q.ScheduleAfter(20, [&] { ++ran; });
  EXPECT_TRUE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(a));  // double-cancel is a no-op
  q.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, CancelInvalidIsNoop) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEvent));
  EXPECT_FALSE(q.Cancel(12345));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int ran = 0;
  q.ScheduleAt(10, [&] { ++ran; });
  q.ScheduleAt(20, [&] { ++ran; });
  q.ScheduleAt(30, [&] { ++ran; });
  q.RunUntil(20);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(q.Now(), 20);
  q.RunAll();
  EXPECT_EQ(ran, 3);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recur = [&] {
    if (++depth < 5) q.ScheduleAfter(10, recur);
  };
  q.ScheduleAfter(10, recur);
  q.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.Now(), 50);
}

TEST(EventQueueTest, ScheduleInPastClampsToNow) {
  EventQueue q;
  q.ScheduleAt(100, [] {});
  q.RunOne();
  Time when = -1;
  q.ScheduleAt(50, [&] { when = q.Now(); });  // in the past
  q.RunOne();
  EXPECT_EQ(when, 100);
}

TEST(EventQueueTest, PendingCountTracksLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  const EventId a = q.ScheduleAfter(10, [] {});
  q.ScheduleAfter(20, [] {});
  EXPECT_EQ(q.PendingCount(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.PendingCount(), 1u);
  q.RunAll();
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId a = q.ScheduleAt(10, [] {});
  q.ScheduleAt(25, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.NextTime(), 25);
}

TEST(EventQueueTest, CancelAfterFireIsNoop) {
  EventQueue q;
  int ran = 0;
  const EventId a = q.ScheduleAfter(10, [&] { ++ran; });
  EXPECT_TRUE(q.RunOne());
  EXPECT_EQ(ran, 1);
  // The event already fired: its id is stale and cancelling it must not
  // disturb anything scheduled later.
  int later = 0;
  q.ScheduleAfter(10, [&] { ++later; });
  EXPECT_FALSE(q.Cancel(a));
  q.RunAll();
  EXPECT_EQ(later, 1);
}

TEST(EventQueueTest, StaleIdNeverCancelsRecycledSlot) {
  EventQueue q;
  const EventId a = q.ScheduleAfter(10, [] {});
  EXPECT_TRUE(q.Cancel(a));
  // The freed slot is recycled by the next schedule; the old id carries the
  // old generation and must not cancel the new occupant.
  int ran = 0;
  const EventId b = q.ScheduleAfter(20, [&] { ++ran; });
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_NE(a, b);
  q.RunAll();
  EXPECT_EQ(ran, 1);
}

TEST(EventQueueTest, FifoSurvivesInterleavedCancels) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(q.ScheduleAt(100, [&order, i] { order.push_back(i); }));
  }
  // Cancel every third event; the survivors must still run in schedule
  // order even though cancellation recycles their pool slots.
  for (int i = 0; i < 12; i += 3) {
    EXPECT_TRUE(q.Cancel(ids[static_cast<std::size_t>(i)]));
  }
  // New same-timestamp events (reusing freed slots) run after survivors.
  q.ScheduleAt(100, [&order] { order.push_back(100); });
  q.ScheduleAt(100, [&order] { order.push_back(101); });
  q.RunAll();
  EXPECT_EQ(order,
            (std::vector<int>{1, 2, 4, 5, 7, 8, 10, 11, 100, 101}));
}

TEST(EventQueueTest, CancelThenRescheduleLikeApicOneShot) {
  // The APIC timer pattern: Program() cancels the pending fire event and
  // schedules a new one; only the latest programming may fire.
  EventQueue q;
  std::vector<Time> fired;
  EventId pending = kInvalidEvent;
  auto program = [&](Time deadline) {
    q.Cancel(pending);
    pending = q.ScheduleAt(deadline, [&] { fired.push_back(q.Now()); });
  };
  program(100);
  program(50);   // reprogram earlier
  program(200);  // reprogram later
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<Time>{200}));
  // Reprogramming after the fire starts a fresh cycle.
  program(300);
  q.RunAll();
  EXPECT_EQ(fired, (std::vector<Time>{200, 300}));
}

TEST(EventQueueTest, NoCallbackCopiesOnHotPath) {
  // Schedule/pop must move the callback, never copy it (the pre-pool
  // implementation copied the std::function out of the heap on every pop).
  struct CopyCounter {
    int* copies;
    int* runs;
    CopyCounter(int* c, int* r) : copies(c), runs(r) {}
    CopyCounter(const CopyCounter& o) : copies(o.copies), runs(o.runs) {
      ++*copies;
    }
    CopyCounter(CopyCounter&& o) noexcept : copies(o.copies), runs(o.runs) {}
    void operator()() const { ++*runs; }
  };
  int copies = 0, runs = 0;
  EventQueue q;
  for (int i = 0; i < 64; ++i) {
    q.ScheduleAfter(i, CopyCounter(&copies, &runs));
  }
  q.RunAll();
  EXPECT_EQ(runs, 64);
  EXPECT_EQ(copies, 0);
}

TEST(EventQueueTest, StorageRecyclingPreservesBehavior) {
  // Releasing a queue's buffers and adopting them into a new queue must not
  // leak callbacks or change scheduling behavior (core::RunArena pattern).
  EventQueue::Storage storage;
  for (int round = 0; round < 3; ++round) {
    EventQueue q(std::move(storage));
    std::vector<int> order;
    EventId cancelled = kInvalidEvent;
    for (int i = 0; i < 32; ++i) {
      const EventId id =
          q.ScheduleAfter(10 * (i % 7), [&order, i] { order.push_back(i); });
      if (i == 13) cancelled = id;
    }
    q.Cancel(cancelled);
    q.RunAll();
    EXPECT_EQ(order.size(), 31u) << "round " << round;
    storage = q.ReleaseStorage();
  }
  EXPECT_GT(storage.slots.capacity(), 0u);
}

TEST(EventQueueTest, AdoptStorageAfterUseIsNoop) {
  EventQueue donor;
  donor.ScheduleAfter(1, [] {});
  EventQueue::Storage s = donor.ReleaseStorage();

  EventQueue q;
  int ran = 0;
  q.ScheduleAfter(5, [&] { ++ran; });
  q.AdoptStorage(std::move(s));  // too late: must not drop the pending event
  q.RunAll();
  EXPECT_EQ(ran, 1);
}

// Randomized property test: the pooled 4-ary-heap queue must execute the
// exact sequence a reference model (ordered multimap + cancellation set)
// prescribes, under a random mix of schedules and cancels.
TEST(EventQueueTest, RandomizedAgainstReferenceModel) {
  Rng rng(0xc0ffee);
  EventQueue q;

  // Reference model: events keyed by (when, schedule order).
  std::map<std::pair<Time, std::uint64_t>, int> model;
  std::set<int> model_cancelled;
  std::map<std::uint64_t, std::pair<EventId, std::pair<Time, std::uint64_t>>>
      live;  // schedule order -> (queue id, model key)
  std::uint64_t next_tag = 0;
  std::vector<int> got;

  auto schedule = [&](Time when, int payload) {
    const std::uint64_t tag = next_tag++;
    const EventId id = q.ScheduleAt(when, [&got, payload] {
      got.push_back(payload);
    });
    const std::pair<Time, std::uint64_t> key{when < q.Now() ? q.Now() : when,
                                             tag};
    model.emplace(key, payload);
    live.emplace(tag, std::make_pair(id, key));
  };

  for (int step = 0; step < 2000; ++step) {
    const double roll = rng.Uniform();
    if (roll < 0.55 || live.empty()) {
      schedule(q.Now() + static_cast<Time>(rng.Range(0, 50)),
               static_cast<int>(step));
    } else if (roll < 0.75) {
      // Cancel a random live event; queue and model must agree it existed.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Index(live.size())));
      EXPECT_TRUE(q.Cancel(it->second.first));
      model.erase(it->second.second);
      live.erase(it);
    } else {
      // Run one event; expected payload is the model's earliest entry.
      if (!model.empty()) {
        const int expect = model.begin()->second;
        live.erase(model.begin()->first.second);
        model.erase(model.begin());
        ASSERT_TRUE(q.RunOne());
        ASSERT_EQ(got.back(), expect) << "step " << step;
      }
    }
  }
  // Drain: remaining events run in model order.
  while (!model.empty()) {
    const int expect = model.begin()->second;
    model.erase(model.begin());
    ASSERT_TRUE(q.RunOne());
    ASSERT_EQ(got.back(), expect);
  }
  EXPECT_FALSE(q.RunOne());
  EXPECT_TRUE(q.Empty());
}

TEST(SmallFnTest, InlineAndHeapCallablesWork) {
  // Small capture: stored inline; big capture: heap fallback. Both must
  // survive moves and run exactly once.
  int hits = 0;
  SmallFn small([&hits] { ++hits; });
  SmallFn moved = std::move(small);
  EXPECT_FALSE(static_cast<bool>(small));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(hits, 1);

  struct Big {
    char pad[128] = {};
    int* out;
    explicit Big(int* o) : out(o) {}
    void operator()() const { ++*out; }
  };
  SmallFn big{Big(&hits)};
  SmallFn big_moved = std::move(big);
  big_moved();
  EXPECT_EQ(hits, 2);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.U64(), b.U64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.U64() == b.U64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, RangeIsInclusiveAndBounded) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.Range(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
  // Degenerate single-value range.
  EXPECT_EQ(r.Range(3, 3), 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng r(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.Chance(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, FlipRandomBitFlipsExactlyOne) {
  Rng r(13);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = r.U64();
    const std::uint64_t f = r.FlipRandomBit(v);
    EXPECT_EQ(__builtin_popcountll(v ^ f), 1);
  }
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  // The fork must not replay the parent stream.
  Rng b(21);
  b.U64();  // advance like the fork did
  EXPECT_NE(child.U64(), b.U64());
}

// Parameterized determinism sweep: any seed produces a reproducible stream.
class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, StreamReproducible) {
  Rng a(GetParam()), b(GetParam());
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(a.U64(), b.U64()) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xffffffffULL,
                                           ~0ULL, 0xdeadbeefULL));

}  // namespace
}  // namespace nlh::sim
