// Tests for the future-work extensions (Section IX): shared-CPU scheduling
// and the Memory fault type.
#include <gtest/gtest.h>

#include "core/target_system.h"

namespace nlh {
namespace {

TEST(SharedCpuTest, TwoVcpusTimeSliceOneCpu) {
  core::RunConfig cfg;
  cfg.inject = false;
  cfg.share_cpu = true;
  cfg.unixbench_iterations = 8000;
  cfg.netbench_duration = sim::Milliseconds(1200);
  cfg.run_deadline = sim::Seconds(5);
  cfg.seed = 31;
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();
  EXPECT_EQ(r.outcome, core::OutcomeClass::kNonManifested);
  // Both made progress on one CPU.
  EXPECT_TRUE(sys.appvms()[0]->BenchmarkDone());
  EXPECT_GT(sys.appvms()[1]->packets_handled(), 500u);
  // Both vCPUs pinned to CPU 1.
  EXPECT_EQ(sys.hv().vcpu(sys.appvms()[0]->vcpu_id()).pinned_cpu, 1);
  EXPECT_EQ(sys.hv().vcpu(sys.appvms()[1]->vcpu_id()).pinned_cpu, 1);
  // The scheduler did real time slicing (context switches beyond ticks).
  EXPECT_GT(sys.hv().stats().schedules, 1000u);
}

TEST(SharedCpuTest, RecoveryWorksWithPopulatedRunqueues) {
  core::RunConfig cfg;
  cfg.mechanism = core::Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.share_cpu = true;
  cfg.seed = 33;
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();
  EXPECT_EQ(r.outcome, core::OutcomeClass::kDetected);
  EXPECT_TRUE(r.success) << r.failure_detail;
}

TEST(MemoryFaultTest, OutcomeMixSkewsTowardSdc) {
  int nonman = 0, sdc = 0, detected = 0;
  const int kRuns = 80;
  for (int i = 0; i < kRuns; ++i) {
    core::RunConfig cfg;
    cfg.fault = inject::FaultType::kMemory;
    cfg.seed = 600 + static_cast<std::uint64_t>(i);
    core::TargetSystem sys(cfg);
    switch (sys.Run().outcome) {
      case core::OutcomeClass::kNonManifested: ++nonman; break;
      case core::OutcomeClass::kSdc: ++sdc; break;
      case core::OutcomeClass::kDetected: ++detected; break;
    }
  }
  // Memory faults: ~55/15/30 by calibration; SDC share clearly above the
  // register-fault 5.6%.
  EXPECT_GT(sdc, kRuns / 12);
  EXPECT_GT(nonman, kRuns / 3);
  EXPECT_GT(detected, kRuns / 8);
}

TEST(MemoryFaultTest, DetectedMemoryFaultsAreRecoverable) {
  int detected = 0, success = 0;
  for (int i = 0; i < 60; ++i) {
    core::RunConfig cfg;
    cfg.mechanism = core::Mechanism::kNiLiHype;
    cfg.fault = inject::FaultType::kMemory;
    cfg.seed = 700 + static_cast<std::uint64_t>(i);
    core::TargetSystem sys(cfg);
    const core::RunResult r = sys.Run();
    if (r.outcome == core::OutcomeClass::kDetected) {
      ++detected;
      success += r.success ? 1 : 0;
    }
  }
  ASSERT_GT(detected, 5);
  EXPECT_GT(static_cast<double>(success) / detected, 0.6);
}

}  // namespace
}  // namespace nlh
