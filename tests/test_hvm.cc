// Tests for the HVM guest extension: VM-exit handling, architectural
// retry across recovery, refcount balance, and PV-vs-HVM recovery parity.
#include <gtest/gtest.h>

#include "core/target_system.h"

namespace nlh {
namespace {

TEST(HvmTest, VmExitHandlesEptViolationAndReclaim) {
  hw::PlatformConfig pcfg;
  pcfg.num_cpus = 2;
  pcfg.memory_gib = 1;
  hw::Platform platform(pcfg, 1);
  hv::Hypervisor hv(platform, hv::HvConfig{});
  hv.Boot();
  const hv::DomainId dom = hv.CreateDomainDirect("hvm", false, 1, 32);
  hv.StartDomain(dom);
  const hv::VcpuId v = hv.FindDomain(dom)->vcpus.front();

  const hv::FrameNumber f = hv.FindDomain(dom)->first_frame + 5;
  const std::int32_t before = hv.frames().desc(f).use_count;
  hv.VmExit(v, hv::VmExitReason::kEptViolation, 5);
  EXPECT_EQ(hv.frames().desc(f).use_count, before + 1);
  hv.VmExit(v, hv::VmExitReason::kEptReclaim, 5);
  EXPECT_EQ(hv.frames().desc(f).use_count, before);
  EXPECT_FALSE(hv.vcpu(v).inflight.active);
  EXPECT_EQ(hv.heap().HeldLockCount(), 0);
  hv.VmExit(v, hv::VmExitReason::kCpuid, 0);
  EXPECT_EQ(hv.frames().CountInconsistent(), 0u);
}

TEST(HvmTest, AbandonedVmExitRetriedEvenWithoutRetryEnhancement) {
  hw::PlatformConfig pcfg;
  pcfg.num_cpus = 2;
  pcfg.memory_gib = 1;
  hw::Platform platform(pcfg, 1);
  hv::Hypervisor hv(platform, hv::HvConfig{});
  hv.Boot();
  const hv::DomainId dom = hv.CreateDomainDirect("hvm", false, 1, 32);
  hv.StartDomain(dom);
  hv::Vcpu& vc = hv.vcpu(hv.FindDomain(dom)->vcpus.front());

  // Simulate an abandoned-in-flight VM exit.
  vc.inflight.active = true;
  vc.inflight.is_vmexit = true;
  vc.inflight.vmexit_reason = static_cast<int>(hv::VmExitReason::kEptViolation);
  vc.inflight.vmexit_arg = 3;

  recovery::EnhancementSet enh = recovery::EnhancementSet::Full();
  enh.hypercall_retry = false;  // PV retry disabled...
  enh.syscall_retry = false;
  recovery::steps::SetupRequestRetries(hv, enh);
  // ...but the hardware re-delivers the exit regardless.
  EXPECT_TRUE(vc.inflight.needs_retry);
  EXPECT_FALSE(vc.inflight.lost);
}

TEST(HvmTest, HvmUnixBenchCompletesFaultFree) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.inject = false;
  cfg.appvm_mode = guest::VirtMode::kHVM;
  cfg.unixbench_iterations = 8000;
  cfg.seed = 51;
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();
  EXPECT_EQ(r.outcome, core::OutcomeClass::kNonManifested);
  EXPECT_TRUE(sys.appvms().front()->BenchmarkDone());
  // HVM guests do not forward syscalls through the hypervisor.
  EXPECT_EQ(sys.hv().stats().syscall_forwards, 0u);
  // All EPT references balanced out.
  EXPECT_EQ(sys.hv().frames().CountInconsistent(), 0u);
}

TEST(HvmTest, RecoveryRateComparableToPv) {
  // Section VI-A: "fault injection results obtained with AppVM supported by
  // full hardware virtualization are very similar to those obtained with
  // paravirtualized AppVMs."
  int pv_succ = 0, hvm_succ = 0, n = 40;
  for (int i = 0; i < n; ++i) {
    for (const guest::VirtMode mode :
         {guest::VirtMode::kPV, guest::VirtMode::kHVM}) {
      core::RunConfig cfg;
      cfg.mechanism = core::Mechanism::kNiLiHype;
      cfg.fault = inject::FaultType::kFailstop;
      cfg.appvm_mode = mode;
      cfg.seed = 8000 + static_cast<std::uint64_t>(i);
      core::TargetSystem sys(cfg);
      const core::RunResult r = sys.Run();
      if (r.success) {
        (mode == guest::VirtMode::kPV ? pv_succ : hvm_succ) += 1;
      }
    }
  }
  EXPECT_GT(pv_succ, n * 3 / 4);
  EXPECT_GT(hvm_succ, n * 3 / 4);
  EXPECT_NEAR(pv_succ, hvm_succ, n / 5.0);
}

}  // namespace
}  // namespace nlh
