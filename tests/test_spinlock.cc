// Unit tests for spinlocks, the static-lock registry and the static data
// segment (hv/spinlock.h, hv/static_data.h).
#include <gtest/gtest.h>

#include "hv/panic.h"
#include "hv/spinlock.h"
#include "hv/static_data.h"

namespace nlh::hv {
namespace {

TEST(SpinLockTest, AcquireRelease) {
  SpinLock l("test");
  EXPECT_FALSE(l.held());
  l.Acquire(2);
  EXPECT_TRUE(l.held());
  EXPECT_EQ(l.holder(), 2);
  l.Release(2);
  EXPECT_FALSE(l.held());
  EXPECT_EQ(l.acquisitions(), 1u);
}

TEST(SpinLockTest, SecondAcquireHangs) {
  // A lock stranded by an abandoned thread makes the next acquirer spin
  // forever — modeled as HvHang, visible only to the NMI watchdog.
  SpinLock l("stranded");
  l.Acquire(0);
  EXPECT_THROW(l.Acquire(1), HvHang);
  EXPECT_THROW(l.Acquire(0), HvHang);  // even the same CPU (self-deadlock)
}

TEST(SpinLockTest, ReleaseByNonHolderAsserts) {
  SpinLock l("x");
  l.Acquire(0);
  EXPECT_THROW(l.Release(1), HvPanic);
}

TEST(SpinLockTest, ForceReleaseIgnoresHolder) {
  SpinLock l("x");
  l.Acquire(3);
  l.ForceRelease();
  EXPECT_FALSE(l.held());
  l.Acquire(1);  // usable again
  EXPECT_EQ(l.holder(), 1);
}

TEST(StaticLockRegistryTest, ForceReleaseAllCountsHeld) {
  SpinLock a("a"), b("b"), c("c");
  StaticLockRegistry reg;
  reg.Register(&a);
  reg.Register(&b);
  reg.Register(&c);
  a.Acquire(0);
  c.Acquire(1);
  EXPECT_EQ(reg.HeldCount(), 2);
  EXPECT_EQ(reg.ForceReleaseAll(), 2);
  EXPECT_EQ(reg.HeldCount(), 0);
  EXPECT_EQ(reg.ForceReleaseAll(), 0);  // idempotent
}

TEST(LockGuardTest, ReleasesOnScopeExit) {
  SpinLock l("g");
  {
    LockGuard guard(l, 0);
    EXPECT_TRUE(l.held());
  }
  EXPECT_FALSE(l.held());
}

TEST(LockGuardTest, LeakKeepsHeld) {
  SpinLock l("g");
  {
    LockGuard guard(l, 0);
    guard.Leak();  // abandoned-thread semantics
  }
  EXPECT_TRUE(l.held());
}

TEST(StaticDataTest, CleanUseIsSilent) {
  StaticDataSegment s;
  for (int i = 0; i < kNumStaticVars; ++i) {
    EXPECT_NO_THROW(s.Use(static_cast<StaticVar>(i)));
  }
  EXPECT_EQ(s.CorruptedCount(), 0);
}

TEST(StaticDataTest, CorruptPointerLikeVarPanicsOnUse) {
  StaticDataSegment s;
  s.Corrupt(StaticVar::kSchedOpsPtr);
  EXPECT_THROW(s.Use(StaticVar::kSchedOpsPtr), HvPanic);
}

TEST(StaticDataTest, CorruptTimeStateHangsOnUse) {
  StaticDataSegment s;
  s.Corrupt(StaticVar::kTscKhz);
  EXPECT_THROW(s.Use(StaticVar::kTscKhz), HvHang);
}

TEST(StaticDataTest, BenignVarToleratesCorruption) {
  StaticDataSegment s;
  s.Corrupt(StaticVar::kConsoleState);
  EXPECT_NO_THROW(s.Use(StaticVar::kConsoleState));
  EXPECT_EQ(s.CorruptedCount(), 1);
}

TEST(StaticDataTest, RebootRestoresOnlyNonPreserved) {
  StaticDataSegment s;
  // Non-preserved: re-derived by a fresh boot.
  s.Corrupt(StaticVar::kTscKhz);
  s.Corrupt(StaticVar::kIrqDescTable);
  // Preserved: carries live-VM information, reboot copies it back as-is.
  s.Corrupt(StaticVar::kDomainListHead);
  EXPECT_EQ(s.CorruptedCount(), 3);

  s.RebootRestore();  // ReHype's boot + preserved-subset copy-back
  EXPECT_FALSE(s.corrupted(StaticVar::kTscKhz));
  EXPECT_FALSE(s.corrupted(StaticVar::kIrqDescTable));
  EXPECT_TRUE(s.corrupted(StaticVar::kDomainListHead));
}

TEST(StaticDataTest, RepairabilityMatchesPreservation) {
  StaticDataSegment s;
  EXPECT_FALSE(s.RebootRepairs(StaticVar::kDomainListHead));
  EXPECT_FALSE(s.RebootRepairs(StaticVar::kFrameTableBase));
  EXPECT_FALSE(s.RebootRepairs(StaticVar::kHeapMetadataPtr));
  EXPECT_FALSE(s.RebootRepairs(StaticVar::kEvtchnBucketPtr));
  EXPECT_TRUE(s.RebootRepairs(StaticVar::kTscKhz));
  EXPECT_TRUE(s.RebootRepairs(StaticVar::kSchedOpsPtr));
  EXPECT_TRUE(s.RebootRepairs(StaticVar::kIoApicRoute));
}

TEST(StaticDataTest, ResetAllClearsEverything) {
  StaticDataSegment s;
  s.Corrupt(StaticVar::kDomainListHead);
  s.Corrupt(StaticVar::kTscKhz);
  s.ResetAll();
  EXPECT_EQ(s.CorruptedCount(), 0);
}

}  // namespace
}  // namespace nlh::hv
