// Tests for the hang detector (detect/) and the fault injector (inject/).
#include <gtest/gtest.h>

#include "detect/hang_detector.h"
#include "hv/hypervisor.h"
#include "inject/injector.h"

namespace nlh {
namespace {

class DetectInjectTest : public ::testing::Test {
 protected:
  DetectInjectTest() : platform_(MakeCfg(), 1), hv_(platform_, hv::HvConfig{}) {
    hv_.Boot();
  }
  static hw::PlatformConfig MakeCfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 2;
    cfg.memory_gib = 1;
    return cfg;
  }
  hw::Platform platform_;
  hv::Hypervisor hv_;
};

TEST_F(DetectInjectTest, HangDetectedWithinThreeNmiPeriods) {
  detect::HangDetector det(hv_);
  det.Install();
  std::vector<std::pair<hw::CpuId, sim::Time>> detections;
  hv_.SetErrorHandler([&](const hv::DetectionEvent& ev) {
    EXPECT_EQ(ev.kind, hv::DetectionKind::kHang);
    EXPECT_EQ(ev.code, hv::FailureCode::kWatchdogStall);
    detections.push_back({ev.cpu, platform_.Now()});
  });
  // Hang CPU 1: its watchdog_tick stops incrementing because its timer
  // interrupts are no longer processed. Model by removing the tick.
  const sim::Time hang_at = sim::Milliseconds(500);
  platform_.queue().ScheduleAt(hang_at, [&] {
    hv_.timers(1).RemoveByName("watchdog_tick");
  });
  platform_.queue().RunUntil(sim::Seconds(1));
  ASSERT_FALSE(detections.empty());
  EXPECT_EQ(detections[0].first, 1);
  // Detection latency is bounded by ~3 x 100 ms plus phase (Section VI-B).
  EXPECT_LE(detections[0].second - hang_at, sim::Milliseconds(450));
  EXPECT_GE(detections[0].second - hang_at, sim::Milliseconds(150));
}

TEST_F(DetectInjectTest, HealthyCpusNeverTripTheDetector) {
  detect::HangDetector det(hv_);
  det.Install();
  int detections = 0;
  hv_.SetErrorHandler([&](const hv::DetectionEvent&) { ++detections; });
  // Drive the platform; CPUs are idle but their timer ticks still run via
  // the normal interrupt path (idle wakeups).
  platform_.queue().RunUntil(sim::Seconds(2));
  EXPECT_EQ(detections, 0);
}

TEST_F(DetectInjectTest, ResetAllForgetsFrozenInterval) {
  detect::HangDetector det(hv_);
  det.Install();
  int detections = 0;
  hv_.SetErrorHandler([&](const hv::DetectionEvent&) { ++detections; });
  // Simulate a recovery-like freeze: counters do not advance for 400 ms,
  // but OnNmi is suppressed (frozen) and the detector is reset afterwards.
  platform_.queue().ScheduleAt(sim::Milliseconds(300), [&] {
    hv_.FreezeForRecovery(0);
  });
  platform_.queue().ScheduleAt(sim::Milliseconds(700), [&] {
    // resume + reset, as RecoveryManager does
    hv_.ResumeAfterRecovery(platform_.Now(), true);
    det.ResetAll();
    for (auto& pc : hv_.percpu()) pc.local_irq_count = 0;
  });
  platform_.queue().RunUntil(sim::Seconds(2));
  EXPECT_EQ(detections, 0);
}

// ---------------------------------------------------------------------------

struct InjectorFixture : DetectInjectTest {
  InjectorFixture() {
    dom_ = hv_.CreateDomainDirect("app", false, 1, 16);
    hv_.StartDomain(dom_);
    vcpu_ = hv_.FindDomain(dom_)->vcpus.front();
  }
  // Drives a steady stream of hypervisor instruction retirement so the
  // injector's second-level trigger has something to count.
  void RetireInstructions(sim::Time until, std::uint64_t per_ms = 10000) {
    std::function<void()> tick = [&, per_ms] {
      if (platform_.Now() >= until) return;
      try {
        platform_.cpu(1).RetireHvInstructions(per_ms);
        platform_.OnHvStep(platform_.cpu(1), per_ms);
      } catch (const hv::HvPanic& p) {
        hv_.ReportError(1, hv::DetectionKind::kPanic, p.what());
        return;
      } catch (const hv::HvHang&) {
        platform_.cpu(1).set_hung(true);
        return;
      }
      platform_.queue().ScheduleAfter(sim::Milliseconds(1), tick);
    };
    platform_.queue().ScheduleAfter(sim::Milliseconds(1), tick);
    platform_.queue().RunUntil(until);
  }
  hv::DomainId dom_;
  hv::VcpuId vcpu_;
};

TEST_F(InjectorFixture, FailstopFiresAfterBothTriggers) {
  std::vector<std::string> errors;
  hv_.SetErrorHandler([&](const hv::DetectionEvent& ev) {
    errors.push_back(ev.detail);
  });
  inject::FaultInjector inj(hv_, {}, 7);
  inject::InjectionPlan plan;
  plan.type = inject::FaultType::kFailstop;
  plan.first_trigger = sim::Milliseconds(100);
  plan.second_trigger_instructions = 15000;
  inj.Arm(plan);

  RetireInstructions(sim::Milliseconds(300));
  ASSERT_TRUE(inj.record().fired);
  // Fired after the timer AND after ~15000 further instructions (1.5 ms of
  // retirement in this fixture).
  EXPECT_GE(inj.record().fired_at, sim::Milliseconds(101));
  EXPECT_LE(inj.record().fired_at, sim::Milliseconds(105));
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("failstop"), std::string::npos);
  EXPECT_EQ(inj.record().manifestation, inject::Manifestation::kImmediatePanic);
}

TEST_F(InjectorFixture, NoFireBeforeFirstTrigger) {
  inject::FaultInjector inj(hv_, {}, 7);
  inject::InjectionPlan plan;
  plan.type = inject::FaultType::kFailstop;
  plan.first_trigger = sim::Milliseconds(500);
  plan.second_trigger_instructions = 0;
  inj.Arm(plan);
  RetireInstructions(sim::Milliseconds(400));
  EXPECT_FALSE(inj.record().fired);
}

TEST_F(InjectorFixture, RegisterOutcomeMixMatchesCalibration) {
  // Statistical check of the Section VII-A fit: across many injections the
  // outcome classes land near 74.8 / 5.6 / 19.6 (+-5%).
  int none = 0, sdc = 0, detected = 0;
  const int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    inject::CorruptionHooks hooks;  // no-op hooks
    inject::FaultInjector inj(hv_, hooks, 1000 + static_cast<std::uint64_t>(i));
    inject::InjectionPlan plan;
    plan.type = inject::FaultType::kRegister;
    plan.first_trigger = 0;
    plan.second_trigger_instructions = 0;
    inj.Arm(plan);
    platform_.queue().RunUntil(platform_.Now());  // process the arm event
    try {
      platform_.OnHvStep(platform_.cpu(1), 1);
      // For delayed faults, keep retiring until the countdown elapses.
      for (int k = 0; k < 300 && !platform_.cpu(1).hung(); ++k) {
        platform_.OnHvStep(platform_.cpu(1), 1000);
      }
    } catch (const hv::HvPanic&) {
    } catch (const hv::HvHang&) {
      platform_.cpu(1).set_hung(false);
    }
    switch (inj.record().manifestation) {
      case inject::Manifestation::kNone: ++none; break;
      case inject::Manifestation::kSdc: ++sdc; break;
      default: ++detected; break;
    }
    platform_.ClearHvStepHook();
  }
  EXPECT_NEAR(none / double(kTrials), 0.748, 0.06);
  EXPECT_NEAR(sdc / double(kTrials), 0.056, 0.04);
  EXPECT_NEAR(detected / double(kTrials), 0.196, 0.06);
}

TEST_F(InjectorFixture, CorruptionsMutateRealState) {
  inject::CorruptionHooks hooks;
  bool privvm_hit = false;
  hooks.corrupt_privvm = [&] { privvm_hit = true; };
  inject::FaultInjector inj(hv_, hooks, 3);
  // Directly apply every corruption target through the injector's machinery
  // via repeated delayed-fault firings is awkward; instead check a couple of
  // state-level effects exposed by the hypervisor accessors after firing
  // code faults until a delayed one lands.
  int tries = 0;
  while (tries++ < 200) {
    inject::FaultInjector one(hv_, hooks, 5000 + static_cast<std::uint64_t>(tries));
    inject::InjectionPlan plan;
    plan.type = inject::FaultType::kCode;
    plan.first_trigger = 0;
    plan.second_trigger_instructions = 0;
    one.Arm(plan);
    platform_.queue().RunUntil(platform_.Now());
    try {
      platform_.OnHvStep(platform_.cpu(1), 1);
    } catch (...) {
    }
    platform_.ClearHvStepHook();
    if (one.record().manifestation == inject::Manifestation::kDelayedPanic &&
        !one.record().corruptions.empty()) {
      break;  // at least one delayed corruption was applied
    }
  }
  EXPECT_LT(tries, 200);
}

}  // namespace
}  // namespace nlh
