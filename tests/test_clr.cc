// Tests for the CLR-generality study (src/clr/): microreset applied to a
// component that is neither a kernel nor a hypervisor.
#include <gtest/gtest.h>

#include <map>

#include "clr/kv_recovery.h"
#include "clr/kv_service.h"

namespace nlh::clr {
namespace {

Request Put(std::uint64_t id, std::uint64_t key, std::uint64_t value) {
  return Request{id, RequestKind::kPut, key, value};
}
Request Get(std::uint64_t id, std::uint64_t key) {
  return Request{id, RequestKind::kGet, key, 0};
}
Request Del(std::uint64_t id, std::uint64_t key) {
  return Request{id, RequestKind::kDelete, key, 0};
}

class KvTest : public ::testing::Test {
 protected:
  KvTest() : svc_(queue_, 1) {}
  void Drain(int ticks = 200) {
    for (int i = 0; i < ticks; ++i) svc_.Tick();
  }
  sim::EventQueue queue_;
  KvService svc_;
};

TEST_F(KvTest, BasicPutGetDelete) {
  svc_.Submit(Put(1, 10, 111));
  svc_.Submit(Put(2, 74, 222));  // same bucket as 10 (74 % 64 == 10)
  Drain();
  svc_.Submit(Get(3, 10));
  svc_.Submit(Get(4, 74));
  svc_.Submit(Get(5, 99));
  Drain();
  std::map<std::uint64_t, Response> resp;
  Response r;
  while (svc_.PopResponse(&r)) resp[r.id] = r;
  EXPECT_TRUE(resp[3].ok);
  EXPECT_EQ(resp[3].value, 111u);
  EXPECT_TRUE(resp[4].ok);
  EXPECT_EQ(resp[4].value, 222u);
  EXPECT_FALSE(resp[5].ok);
  EXPECT_TRUE(svc_.IndexIntact());

  svc_.Submit(Del(6, 10));
  Drain();
  svc_.Submit(Get(7, 10));
  Drain();
  while (svc_.PopResponse(&r)) resp[r.id] = r;
  EXPECT_FALSE(resp[7].ok);
}

TEST_F(KvTest, CorruptChainPanicsOnWalk) {
  svc_.Submit(Put(1, 5, 50));
  Drain();
  svc_.CorruptBucketChain(5);
  EXPECT_FALSE(svc_.IndexIntact());
  svc_.Submit(Get(2, 5));
  EXPECT_THROW(Drain(), ServicePanic);
}

TEST_F(KvTest, StrandedLockDeadlocks) {
  svc_.StrandWorkerLock(0, 7);
  svc_.Submit(Put(1, 7, 70));
  // Ordinary contention spins; a stranded lock trips the watchdog bound.
  EXPECT_THROW(Drain(KvService::kLockWatchdogTicks + 50), ServicePanic);
}

TEST_F(KvTest, RestartRebuildsFromJournal) {
  for (std::uint64_t k = 0; k < 30; ++k) svc_.Submit(Put(k, k, k * 10));
  Drain();
  svc_.CorruptBucketChain(3);
  svc_.StrandWorkerLock(1, 9);
  const KvRecoveryReport rep = KvRestart::Recover(svc_);
  EXPECT_GT(rep.locks_released, 0);
  EXPECT_TRUE(svc_.IndexIntact());
  // Data survived the rebuild.
  svc_.Submit(Get(100, 17));
  Drain();
  Response r;
  bool found = false;
  while (svc_.PopResponse(&r)) {
    if (r.id == 100) {
      found = true;
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.value, 170u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(KvTest, MicroresetRepairsInPlace) {
  for (std::uint64_t k = 0; k < 30; ++k) svc_.Submit(Put(k, k, k * 10));
  Drain();
  svc_.CorruptBucketChain(3);
  svc_.StrandWorkerLock(1, 9);
  const KvRecoveryReport rep = KvMicroreset::Recover(svc_);
  EXPECT_GT(rep.locks_released, 0);
  EXPECT_TRUE(svc_.IndexIntact());
  EXPECT_LT(rep.latency, sim::Milliseconds(1));
  svc_.Submit(Get(100, 3));
  Drain();
  Response r;
  bool found = false;
  while (svc_.PopResponse(&r)) {
    if (r.id == 100) {
      found = true;
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.value, 30u);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(KvTest, MicroresetRollsForwardJournaledInflight) {
  // Drive a worker to the journaled-but-not-applied point, then recover.
  svc_.Submit(Put(1, 42, 4200));
  svc_.Tick();  // validate+lock
  svc_.Tick();  // walk
  svc_.Tick();  // journal append
  EXPECT_EQ(svc_.journal_size(), 1u);
  EXPECT_TRUE(svc_.workers()[0].journaled);

  KvMicroreset::Recover(svc_);
  // The journaled put must be visible without re-running the request.
  svc_.Submit(Get(2, 42));
  Drain();
  Response r;
  bool saw_ack = false, saw_get = false;
  while (svc_.PopResponse(&r)) {
    if (r.id == 1) saw_ack = true;
    if (r.id == 2) {
      saw_get = true;
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.value, 4200u);
    }
  }
  EXPECT_TRUE(saw_ack);
  EXPECT_TRUE(saw_get);
}

TEST_F(KvTest, NotYetJournaledRequestsAreRequeuedAndRerun) {
  svc_.Submit(Put(1, 9, 90));
  svc_.Tick();  // validate+lock only — nothing journaled yet
  EXPECT_FALSE(svc_.workers()[0].journaled);
  const KvRecoveryReport rep = KvMicroreset::Recover(svc_);
  EXPECT_EQ(rep.requests_requeued, 1);
  Drain();
  svc_.Submit(Get(2, 9));
  Drain();
  Response r;
  bool ok = false;
  while (svc_.PopResponse(&r)) {
    if (r.id == 2 && r.ok && r.value == 90) ok = true;
  }
  EXPECT_TRUE(ok);
}

TEST_F(KvTest, RestartLatencyGrowsWithJournalMicroresetDoesNot) {
  for (std::uint64_t k = 0; k < 2000; ++k) {
    svc_.Submit(Put(k, k % 500, k));
  }
  Drain(4000);
  const KvRecoveryReport restart = KvRestart::Recover(svc_);
  const KvRecoveryReport reset = KvMicroreset::Recover(svc_);
  EXPECT_GT(restart.latency, sim::Milliseconds(40));
  EXPECT_LT(reset.latency, sim::Milliseconds(1));
  EXPECT_GT(restart.latency, reset.latency * 30);  // the paper's >30x, again
}

// Property sweep: random workloads + random damage; both mechanisms must
// restore integrity and preserve all journaled data.
class KvRecoveryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KvRecoveryFuzz, BothMechanismsRestoreIntegrity) {
  sim::Rng rng(GetParam());
  for (int mech = 0; mech < 2; ++mech) {
    sim::EventQueue queue;
    KvService svc(queue, GetParam());
    std::uint64_t id = 1;
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t key = rng.Range(0, 300);
      switch (rng.Index(3)) {
        case 0: svc.Submit(Put(id++, key, key * 7)); break;
        case 1: svc.Submit(Get(id++, key)); break;
        default: svc.Submit(Del(id++, key)); break;
      }
    }
    // Random partial drain so some workers are mid-request.
    for (int t = 0; t < static_cast<int>(rng.Range(50, 400)); ++t) svc.Tick();
    // Random damage.
    if (rng.Chance(0.7)) svc.CorruptBucketChain(rng.Index(64));
    if (rng.Chance(0.7)) {
      svc.StrandWorkerLock(static_cast<int>(rng.Index(4)), static_cast<int>(rng.Index(64)));
    }
    if (mech == 0) {
      KvMicroreset::Recover(svc);
    } else {
      KvRestart::Recover(svc);
    }
    EXPECT_TRUE(svc.IndexIntact()) << "mech " << mech << " seed " << GetParam();
    // Service still works.
    svc.Submit(Put(id, 1, 11));
    for (int t = 0; t < 50; ++t) svc.Tick();
    EXPECT_GT(svc.acked(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvRecoveryFuzz,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace nlh::clr
