// A command-line fault-injection campaign tool — the equivalent of the
// paper's Campaign Agent (Section VI-C, Figure 1). Runs N independent
// injection runs of a chosen configuration and prints the aggregate
// statistics with 95% confidence intervals.
//
// Usage:
//   campaign_tool [--mech=nilihype|rehype|none] [--fault=failstop|register|code]
//                 [--setup=1appvm|3appvm] [--bench=unix|blk|net]
//                 [--runs=N] [--seed=N] [--verbose]
//                 [--audit] [--audit-out=FILE.json]
//                 [--trace-out=FILE.json] [--metrics-out=FILE.json]
//                 [--dossier-dir=DIR] [--replay=RUN_ID]
//                 [--profile-out=FILE.folded]
//
// --audit runs the state auditor at the end of every run (differential
// against a pre-injection golden snapshot) and splits the success rate into
// audit-clean vs latent-corruption. --audit-out additionally replays seed0
// and writes its full finding list as JSON (implies --audit).
// --trace-out replays the campaign's first run (seed0) with span tracing
// enabled and writes a Chrome trace_event JSON (load in chrome://tracing or
// Perfetto). --metrics-out writes the campaign aggregate plus the replayed
// run's metrics registry as JSON.
//
// Forensics:
// --dossier-dir=DIR  after the campaign, deterministically replay every
//                    non-successful run (failed recovery, SDC, or latent
//                    corruption when --audit) with the flight recorder and
//                    tracer on, and write one dossier per run to
//                    DIR/run_<run_id>.json (run_id == the run's seed; the
//                    directory is created if missing).
// --replay=RUN_ID    skip the campaign and replay that one run with full
//                    telemetry (kTrace logging to stderr); writes its
//                    dossier to --dossier-dir (default "dossiers") and, with
//                    --profile-out, a flamegraph.pl-compatible
//                    collapsed-stack profile of the simulated time.
// --profile-out=F    write the collapsed-stack profile of the replayed run
//                    (with --replay, or of the seed0 replay otherwise).
// Fuzzing (src/fuzz/):
// --fuzz=N           run the scenario fuzzer for N scenarios (each evaluated
//                    under NiLiHype, ReHype, and the no-recovery baseline by
//                    the differential oracle); divergent scenarios are
//                    shrunk to minimal reproducers.
// --fuzz-seed=S      master seed of the fuzzing campaign (default 1; the
//                    whole campaign is a pure function of it).
// --threads=N        worker threads for campaigns and fuzzing (0 = auto).
// --corpus=DIR       with --fuzz: write shrunk reproducers here. Without
//                    --fuzz: corpus regression mode — replay every
//                    reproducer in DIR and verify its recorded verdicts
//                    byte-for-byte (exit 1 on any mismatch).
// --shrink=FILE      re-shrink the scenario of an existing reproducer
//                    bundle and report the minimal form (useful after
//                    simulator changes).
// --shrink-evals=N   oracle-evaluation budget per shrink (default 64).
// --max-corpus=N     cap on reproducers emitted per fuzz run (default 16).
// --replay also accepts a reproducer path: --replay=FILE.json re-evaluates
// that scenario and prints the per-policy verdicts.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/target_system.h"
#include "forensics/dossier.h"
#include "forensics/profiler.h"
#include "fuzz/engine.h"
#include "fuzz/shrinker.h"
#include "sim/json.h"

using namespace nlh;

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

void Usage() {
  std::printf(
      "usage: campaign_tool [options]\n"
      "  campaign: [--mech=nilihype|rehype|none] [--fault=failstop|register|code]\n"
      "            [--setup=1appvm|3appvm] [--bench=unix|blk|net] [--runs=N]\n"
      "            [--seed=N] [--threads=N] [--audit] [--audit-out=FILE.json]\n"
      "            [--trace-out=FILE.json] [--metrics-out=FILE.json]\n"
      "            [--dossier-dir=DIR] [--profile-out=FILE.folded] [--verbose]\n"
      "  replay:   --replay=RUN_ID | --replay=REPRO.json\n"
      "  fuzzing:  --fuzz=N [--fuzz-seed=S] [--threads=N] [--corpus=DIR]\n"
      "            [--shrink-evals=N] [--max-corpus=N]\n"
      "  corpus:   --corpus=DIR  (without --fuzz: replay every reproducer in\n"
      "            DIR and verify its recorded verdicts byte-for-byte)\n"
      "  shrink:   --shrink=REPRO.json [--shrink-evals=N]\n"
      "see the header comment of examples/campaign_tool.cpp for details\n");
}

bool AllDigits(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
  }
  return true;
}

void PrintVerdicts(const fuzz::OracleOutcome& o) {
  for (const fuzz::PolicyVerdict& v : o.verdicts) {
    std::printf("  %-9s %s%s%s\n", core::MechanismName(v.mechanism),
                core::OutcomeClassName(v.outcome),
                v.detected ? (v.success ? " recovered" : " recovery-failed")
                           : "",
                v.latent_corruption ? " +latent-corruption" : "");
  }
  std::printf("divergence: %s%s%s\n",
              fuzz::DivergenceKindName(o.divergence),
              o.detail.empty() ? "" : " — ", o.detail.c_str());
}

// Corpus regression mode: replay every reproducer, byte-compare verdicts.
int RunCorpusCheck(const std::string& dir, int threads) {
  const std::vector<std::string> paths = fuzz::ListCorpus(dir);
  std::printf("corpus check: %zu reproducer(s) under %s\n", paths.size(),
              dir.c_str());
  int failures = 0;
  for (const std::string& path : paths) {
    fuzz::LoadedReproducer rep;
    std::string err;
    if (!fuzz::LoadReproducer(path, &rep, &err)) {
      std::printf("  LOAD-FAIL %s (%s)\n", path.c_str(), err.c_str());
      ++failures;
      continue;
    }
    const fuzz::OracleOutcome o = fuzz::EvaluateScenario(rep.scenario, threads);
    bool ok = o.divergence == rep.divergence;
    for (int i = 0; ok && i < fuzz::kNumPolicies; ++i) {
      sim::JsonValue doc;
      if (!sim::ParseJson(o.verdicts[static_cast<std::size_t>(i)].ToJson(),
                          &doc) ||
          sim::WriteJson(doc) !=
              rep.expected_verdicts[static_cast<std::size_t>(i)]) {
        ok = false;
      }
    }
    std::printf("  %-8s %s\n", ok ? "OK" : "MISMATCH", path.c_str());
    if (!ok) ++failures;
  }
  if (failures > 0) {
    std::printf("corpus check FAILED: %d of %zu reproducer(s)\n", failures,
                paths.size());
    return 1;
  }
  std::printf("corpus check passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::RunConfig cfg;
  core::CampaignOptions opts;
  opts.runs = 200;
  bool verbose = false;
  guest::BenchmarkKind bench = guest::BenchmarkKind::kUnixBench;
  bool one_appvm = false;
  std::string trace_out;
  std::string metrics_out;
  std::string audit_out;
  std::string dossier_dir;
  std::string profile_out;
  bool replay_mode = false;
  std::uint64_t replay_id = 0;
  std::string replay_path;   // --replay=<reproducer.json>
  int fuzz_iterations = 0;   // --fuzz=N (0 = fuzzing off)
  std::uint64_t fuzz_seed = 1;
  std::string corpus_dir;
  std::string shrink_path;
  int shrink_evals = 64;
  int max_corpus = 16;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--mech=", 0) == 0) {
      const std::string m = val("--mech=");
      cfg.mechanism = m == "rehype" ? core::Mechanism::kReHype
                      : m == "none" ? core::Mechanism::kNone
                                    : core::Mechanism::kNiLiHype;
    } else if (arg.rfind("--fault=", 0) == 0) {
      const std::string f = val("--fault=");
      cfg.fault = f == "register" ? inject::FaultType::kRegister
                  : f == "code"   ? inject::FaultType::kCode
                                  : inject::FaultType::kFailstop;
    } else if (arg.rfind("--setup=", 0) == 0) {
      one_appvm = std::string(val("--setup=")) == "1appvm";
    } else if (arg.rfind("--bench=", 0) == 0) {
      const std::string b = val("--bench=");
      bench = b == "blk"   ? guest::BenchmarkKind::kBlkBench
              : b == "net" ? guest::BenchmarkKind::kNetBench
                           : guest::BenchmarkKind::kUnixBench;
    } else if (arg.rfind("--runs=", 0) == 0) {
      opts.runs = std::atoi(val("--runs="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed0 = static_cast<std::uint64_t>(std::atoll(val("--seed=")));
    } else if (arg == "--audit") {
      cfg.audit = true;
    } else if (arg.rfind("--audit-out=", 0) == 0) {
      audit_out = val("--audit-out=");
      cfg.audit = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = val("--trace-out=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = val("--metrics-out=");
    } else if (arg.rfind("--dossier-dir=", 0) == 0) {
      dossier_dir = val("--dossier-dir=");
    } else if (arg.rfind("--replay=", 0) == 0) {
      const std::string what = val("--replay=");
      if (AllDigits(what)) {
        replay_mode = true;
        replay_id = static_cast<std::uint64_t>(std::atoll(what.c_str()));
      } else {
        replay_path = what;
      }
    } else if (arg.rfind("--profile-out=", 0) == 0) {
      profile_out = val("--profile-out=");
    } else if (arg.rfind("--threads=", 0) == 0) {
      opts.threads = std::atoi(val("--threads="));
    } else if (arg.rfind("--fuzz=", 0) == 0) {
      fuzz_iterations = std::atoi(val("--fuzz="));
    } else if (arg.rfind("--fuzz-seed=", 0) == 0) {
      fuzz_seed = static_cast<std::uint64_t>(std::atoll(val("--fuzz-seed=")));
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = val("--corpus=");
    } else if (arg.rfind("--shrink=", 0) == 0) {
      shrink_path = val("--shrink=");
    } else if (arg.rfind("--shrink-evals=", 0) == 0) {
      shrink_evals = std::atoi(val("--shrink-evals="));
    } else if (arg.rfind("--max-corpus=", 0) == 0) {
      max_corpus = std::atoi(val("--max-corpus="));
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::printf("unknown flag %s\n", arg.c_str());
      Usage();
      return 2;
    }
  }

  // --- Fuzzing / corpus / reproducer modes (src/fuzz/) ----------------------
  if (!replay_path.empty()) {
    fuzz::LoadedReproducer rep;
    std::string err;
    if (!fuzz::LoadReproducer(replay_path, &rep, &err)) {
      std::printf("cannot replay %s: %s\n", replay_path.c_str(), err.c_str());
      Usage();
      return 2;
    }
    std::printf("replaying reproducer %s (%s, %d plan elements)\n",
                replay_path.c_str(), fuzz::DivergenceKindName(rep.divergence),
                rep.scenario.PlanElementCount());
    const fuzz::OracleOutcome o =
        fuzz::EvaluateScenario(rep.scenario, opts.threads);
    PrintVerdicts(o);
    return o.divergence == rep.divergence ? 0 : 1;
  }
  if (!shrink_path.empty()) {
    fuzz::LoadedReproducer rep;
    std::string err;
    if (!fuzz::LoadReproducer(shrink_path, &rep, &err)) {
      std::printf("cannot shrink %s: %s\n", shrink_path.c_str(), err.c_str());
      Usage();
      return 2;
    }
    const fuzz::OracleOutcome before =
        fuzz::EvaluateScenario(rep.scenario, opts.threads);
    if (before.divergence != rep.divergence) {
      std::printf("scenario no longer shows %s (now %s) — nothing to shrink\n",
                  fuzz::DivergenceKindName(rep.divergence),
                  fuzz::DivergenceKindName(before.divergence));
      return 1;
    }
    const fuzz::ShrinkResult shrunk = fuzz::ShrinkScenario(
        rep.scenario, rep.divergence,
        [&opts](const fuzz::Scenario& s) {
          return fuzz::EvaluateScenario(s, opts.threads);
        },
        shrink_evals);
    std::printf("shrunk to %d plan element(s) in %d eval(s):\n%s\n",
                shrunk.scenario.PlanElementCount(), shrunk.evals,
                shrunk.scenario.ToJson().c_str());
    return 0;
  }
  if (fuzz_iterations > 0) {
    fuzz::FuzzOptions fopts;
    fopts.master_seed = fuzz_seed;
    fopts.iterations = fuzz_iterations;
    fopts.threads = opts.threads;
    fopts.max_shrink_evals = shrink_evals;
    fopts.max_corpus = max_corpus;
    fopts.corpus_dir = corpus_dir;
    fopts.on_progress = [](const std::string& line) {
      std::printf("  %s\n", line.c_str());
    };
    std::printf("fuzzing: %d scenarios (master seed %llu)\n", fuzz_iterations,
                static_cast<unsigned long long>(fuzz_seed));
    const fuzz::FuzzStats stats = fuzz::Fuzz(fopts);
    std::printf(
        "\nfuzzing done: %d scenarios, coverage %zu (hash %016llx), "
        "%d divergent (%d unique), %zu reproducer(s), %d shrink eval(s)\n",
        stats.scenarios, stats.coverage,
        static_cast<unsigned long long>(stats.coverage_hash), stats.divergent,
        stats.unique_divergent, stats.reproducers.size(), stats.shrink_evals);
    return 0;
  }
  if (!corpus_dir.empty()) {
    if (!std::filesystem::is_directory(corpus_dir)) {
      std::printf("corpus directory %s does not exist\n", corpus_dir.c_str());
      Usage();
      return 2;
    }
    return RunCorpusCheck(corpus_dir, opts.threads);
  }

  if (one_appvm) {
    const core::Mechanism mech = cfg.mechanism;
    const inject::FaultType fault = cfg.fault;
    const bool audit = cfg.audit;
    cfg = core::RunConfig::OneAppVm(bench);
    cfg.mechanism = mech;
    cfg.fault = fault;
    cfg.audit = audit;
  }

  if (replay_mode) {
    // Forensic replay of one run: same config, seed == run_id, recorder +
    // tracer on, kTrace logging to stderr. Deterministic, so this is the
    // exact execution the campaign saw.
    std::printf("replaying run %llu (%s, %s faults, %s) with full telemetry\n",
                static_cast<unsigned long long>(replay_id),
                core::MechanismName(cfg.mechanism),
                inject::FaultTypeName(cfg.fault),
                one_appvm ? "1AppVM" : "3AppVM");
    forensics::ReplayOptions ropts;
    ropts.log_level = sim::LogLevel::kTrace;
    const forensics::ReplayArtifacts art =
        forensics::ReplayRun(cfg, replay_id, ropts);
    const core::RunResult& r = art.result;
    std::printf("\noutcome: %s%s\n", core::OutcomeClassName(r.outcome),
                r.outcome == core::OutcomeClass::kDetected
                    ? (r.success ? " (recovered)" : " (recovery FAILED)")
                    : "");
    if (r.detected) {
      std::printf("detection: %s/%s on cpu%d (%s, class=%s)\n",
                  hv::DetectionKindName(r.detection.kind),
                  hv::FailureCodeName(r.detection.code), r.detection.cpu,
                  r.detection.detail.c_str(),
                  forensics::DetectionClassName(r.detection_class));
    }
    if (!r.success && r.failure_reason != hv::FailureReason::kNone) {
      std::printf("failure: %s (%s)\n", hv::FailureReasonName(r.failure_reason),
                  r.failure_detail.c_str());
    }
    // Written with default options (log level kNone), so the dossier is
    // byte-identical to the one a campaign --dossier-dir pass emits: the
    // stderr log level above must not perturb the artifact.
    const std::string dir = dossier_dir.empty() ? "dossiers" : dossier_dir;
    const std::string path = forensics::WriteDossier(cfg, replay_id, dir);
    if (path.empty()) {
      std::printf("cannot write dossier under %s\n", dir.c_str());
      return 1;
    }
    std::printf("dossier written to %s\n", path.c_str());
    if (!profile_out.empty()) {
      if (!WriteFile(profile_out, art.profile)) return 1;
      std::printf("collapsed-stack profile written to %s\n",
                  profile_out.c_str());
    }
    return 0;
  }

  std::printf("campaign: %s, %s faults, %s, %d runs (seed0=%llu)\n",
              core::MechanismName(cfg.mechanism),
              inject::FaultTypeName(cfg.fault),
              one_appvm ? "1AppVM" : "3AppVM", opts.runs,
              static_cast<unsigned long long>(opts.seed0));

  // Run ids (== seeds) of runs that deserve a failure dossier, collected as
  // the campaign goes (on_run is called under a lock).
  std::vector<std::uint64_t> dossier_runs;
  if (verbose || !dossier_dir.empty()) {
    opts.on_run = [&](int i, const core::RunResult& r) {
      if (verbose) {
        std::printf("  run %4d: %-14s %s%s\n", i,
                    core::OutcomeClassName(r.outcome),
                    r.outcome == core::OutcomeClass::kDetected
                        ? (r.success ? "recovered" : "FAILED: ")
                        : "",
                    r.success ? "" : r.failure_detail.c_str());
      }
      if (!dossier_dir.empty() && forensics::DossierWorthy(r)) {
        dossier_runs.push_back(opts.seed0 + static_cast<std::uint64_t>(i));
      }
    };
  }

  const core::CampaignResult res = core::RunCampaign(cfg, opts);
  std::printf("\noutcomes: %.1f%% non-manifested, %.1f%% SDC, %.1f%% detected\n",
              res.NonManifestedRate() * 100, res.SdcRate() * 100,
              res.DetectedRate() * 100);
  std::printf("successful recovery rate: %s\n", res.success.ToString().c_str());
  std::printf("no-VM-failures (noVMF):   %s\n",
              res.no_vm_failures.ToString().c_str());
  if (cfg.audit) {
    std::printf("audit-clean successes:    %s\n",
                res.audit_clean.ToString().c_str());
    std::printf("latent corruption:        %s\n",
                res.latent_corruption.ToString().c_str());
    if (!res.audit_findings_by_subsystem.empty()) {
      std::printf("audit findings by subsystem:\n");
      for (const auto& [subsystem, count] : res.audit_findings_by_subsystem) {
        std::printf("  %4d  %s\n", count, subsystem.c_str());
      }
    }
  }
  if (!res.failure_reasons.empty()) {
    std::printf("failure causes:\n");
    for (const auto& [reason, count] : res.failure_reasons) {
      std::printf("  %4d  %s\n", count, hv::FailureReasonName(reason));
    }
  }
  if (!res.phase_latency.empty()) {
    std::printf("recovery phase latency (detected runs, ms):\n");
    for (const core::PhaseAggregate& p : res.phase_latency) {
      std::printf("  %-26s mean %8.3f  p99 %8.3f  (n=%d)\n", p.phase.c_str(),
                  p.mean_ms, p.p99_ms, p.samples);
    }
    std::printf("  %-26s mean %8.3f  p99 %8.3f  (n=%d)\n", "total",
                res.total_latency.mean_ms, res.total_latency.p99_ms,
                res.total_latency.samples);
  }

  if (!res.detection_latency_by_class.empty()) {
    std::printf(
        "detection: %d prompt, %d late, %d misdetected, %d silent\n",
        res.detected_prompt, res.detected_late, res.misdetected, res.silent);
    std::printf("detection latency by fault class (ms):\n");
    for (const core::DetectionLatencyAggregate& a :
         res.detection_latency_by_class) {
      std::printf("  %-16s mean %8.3f  p50 %8.3f  p99 %8.3f  max %8.3f (n=%d)\n",
                  a.fault_class.c_str(), a.mean_ms, a.p50_ms, a.p99_ms,
                  a.max_ms, a.samples);
    }
  }

  // Emit one failure dossier per non-successful run, in run order, by
  // deterministic replay (see --dossier-dir above).
  if (!dossier_dir.empty()) {
    std::sort(dossier_runs.begin(), dossier_runs.end());
    int written = 0;
    for (std::uint64_t run_id : dossier_runs) {
      const std::string path =
          forensics::WriteDossier(cfg, run_id, dossier_dir);
      if (path.empty()) {
        std::printf("cannot write dossier for run %llu under %s\n",
                    static_cast<unsigned long long>(run_id),
                    dossier_dir.c_str());
        return 1;
      }
      ++written;
    }
    std::printf("%d failure dossier%s written to %s/\n", written,
                written == 1 ? "" : "s", dossier_dir.c_str());
  }

  // Replay the first run with tracing enabled for the trace/metrics
  // artifacts: campaigns run many hypervisors in parallel, so per-run
  // telemetry comes from a deterministic replay of seed0.
  if (!trace_out.empty() || !metrics_out.empty() || !audit_out.empty() ||
      !profile_out.empty()) {
    core::RunConfig rcfg = cfg;
    rcfg.seed = opts.seed0;
    core::TargetSystem sys(rcfg);
    sys.EnableTracing();
    const core::RunResult replay = sys.Run();
    if (!audit_out.empty()) {
      std::string json =
          "{\"campaign\":" + res.ToJson() +
          ",\"replay_seed0_audit\":{\"audit_clean\":" +
          (replay.audit_clean ? "true" : "false") +
          ",\"latent_corruption\":" +
          (replay.latent_corruption ? "true" : "false") +
          ",\"modeled_cost_us\":" +
          std::to_string(sim::ToMicros(replay.audit_report.modeled_cost)) +
          ",\"findings\":" + replay.audit_report.ToJson() + "}}";
      if (!WriteFile(audit_out, json)) return 1;
      std::printf("audit report written to %s\n", audit_out.c_str());
    }
    if (!trace_out.empty()) {
      if (!WriteFile(trace_out, sys.hv().tracer().ToChromeJson())) return 1;
      std::printf("trace (%zu spans) written to %s\n",
                  sys.hv().tracer().Snapshot().size(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::string json = "{\"campaign\":" + res.ToJson() +
                         ",\"replay_seed0_metrics\":" +
                         sys.hv().metrics().ToJson() + "}";
      if (!WriteFile(metrics_out, json)) return 1;
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    if (!profile_out.empty()) {
      const std::string profile =
          forensics::CollapsedStackProfile(sys.hv().tracer().Snapshot());
      if (!WriteFile(profile_out, profile)) return 1;
      std::printf("collapsed-stack profile written to %s\n",
                  profile_out.c_str());
    }
  }
  return 0;
}
