// A command-line fault-injection campaign tool — the equivalent of the
// paper's Campaign Agent (Section VI-C, Figure 1). Runs N independent
// injection runs of a chosen configuration and prints the aggregate
// statistics with 95% confidence intervals.
//
// Usage:
//   campaign_tool [--mech=nilihype|rehype|none] [--fault=failstop|register|code]
//                 [--setup=1appvm|3appvm] [--bench=unix|blk|net]
//                 [--runs=N] [--seed=N] [--verbose]
//                 [--audit] [--audit-out=FILE.json]
//                 [--trace-out=FILE.json] [--metrics-out=FILE.json]
//
// --audit runs the state auditor at the end of every run (differential
// against a pre-injection golden snapshot) and splits the success rate into
// audit-clean vs latent-corruption. --audit-out additionally replays seed0
// and writes its full finding list as JSON (implies --audit).
// --trace-out replays the campaign's first run (seed0) with span tracing
// enabled and writes a Chrome trace_event JSON (load in chrome://tracing or
// Perfetto). --metrics-out writes the campaign aggregate plus the replayed
// run's metrics registry as JSON.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/campaign.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::printf("cannot write %s\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  core::RunConfig cfg;
  core::CampaignOptions opts;
  opts.runs = 200;
  bool verbose = false;
  guest::BenchmarkKind bench = guest::BenchmarkKind::kUnixBench;
  bool one_appvm = false;
  std::string trace_out;
  std::string metrics_out;
  std::string audit_out;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      return arg.c_str() + std::strlen(prefix);
    };
    if (arg.rfind("--mech=", 0) == 0) {
      const std::string m = val("--mech=");
      cfg.mechanism = m == "rehype" ? core::Mechanism::kReHype
                      : m == "none" ? core::Mechanism::kNone
                                    : core::Mechanism::kNiLiHype;
    } else if (arg.rfind("--fault=", 0) == 0) {
      const std::string f = val("--fault=");
      cfg.fault = f == "register" ? inject::FaultType::kRegister
                  : f == "code"   ? inject::FaultType::kCode
                                  : inject::FaultType::kFailstop;
    } else if (arg.rfind("--setup=", 0) == 0) {
      one_appvm = std::string(val("--setup=")) == "1appvm";
    } else if (arg.rfind("--bench=", 0) == 0) {
      const std::string b = val("--bench=");
      bench = b == "blk"   ? guest::BenchmarkKind::kBlkBench
              : b == "net" ? guest::BenchmarkKind::kNetBench
                           : guest::BenchmarkKind::kUnixBench;
    } else if (arg.rfind("--runs=", 0) == 0) {
      opts.runs = std::atoi(val("--runs="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      opts.seed0 = static_cast<std::uint64_t>(std::atoll(val("--seed=")));
    } else if (arg == "--audit") {
      cfg.audit = true;
    } else if (arg.rfind("--audit-out=", 0) == 0) {
      audit_out = val("--audit-out=");
      cfg.audit = true;
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_out = val("--trace-out=");
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out = val("--metrics-out=");
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      std::printf("unknown flag %s (see header comment)\n", arg.c_str());
      return 2;
    }
  }

  if (one_appvm) {
    const core::Mechanism mech = cfg.mechanism;
    const inject::FaultType fault = cfg.fault;
    const bool audit = cfg.audit;
    cfg = core::RunConfig::OneAppVm(bench);
    cfg.mechanism = mech;
    cfg.fault = fault;
    cfg.audit = audit;
  }

  std::printf("campaign: %s, %s faults, %s, %d runs (seed0=%llu)\n",
              core::MechanismName(cfg.mechanism),
              inject::FaultTypeName(cfg.fault),
              one_appvm ? "1AppVM" : "3AppVM", opts.runs,
              static_cast<unsigned long long>(opts.seed0));

  if (verbose) {
    opts.on_run = [](int i, const core::RunResult& r) {
      std::printf("  run %4d: %-14s %s%s\n", i,
                  core::OutcomeClassName(r.outcome),
                  r.outcome == core::OutcomeClass::kDetected
                      ? (r.success ? "recovered" : "FAILED: ")
                      : "",
                  r.success ? "" : r.failure_detail.c_str());
    };
  }

  const core::CampaignResult res = core::RunCampaign(cfg, opts);
  std::printf("\noutcomes: %.1f%% non-manifested, %.1f%% SDC, %.1f%% detected\n",
              res.NonManifestedRate() * 100, res.SdcRate() * 100,
              res.DetectedRate() * 100);
  std::printf("successful recovery rate: %s\n", res.success.ToString().c_str());
  std::printf("no-VM-failures (noVMF):   %s\n",
              res.no_vm_failures.ToString().c_str());
  if (cfg.audit) {
    std::printf("audit-clean successes:    %s\n",
                res.audit_clean.ToString().c_str());
    std::printf("latent corruption:        %s\n",
                res.latent_corruption.ToString().c_str());
    if (!res.audit_findings_by_subsystem.empty()) {
      std::printf("audit findings by subsystem:\n");
      for (const auto& [subsystem, count] : res.audit_findings_by_subsystem) {
        std::printf("  %4d  %s\n", count, subsystem.c_str());
      }
    }
  }
  if (!res.failure_reasons.empty()) {
    std::printf("failure causes:\n");
    for (const auto& [reason, count] : res.failure_reasons) {
      std::printf("  %4d  %s\n", count, hv::FailureReasonName(reason));
    }
  }
  if (!res.phase_latency.empty()) {
    std::printf("recovery phase latency (detected runs, ms):\n");
    for (const core::PhaseAggregate& p : res.phase_latency) {
      std::printf("  %-26s mean %8.3f  p99 %8.3f  (n=%d)\n", p.phase.c_str(),
                  p.mean_ms, p.p99_ms, p.samples);
    }
    std::printf("  %-26s mean %8.3f  p99 %8.3f  (n=%d)\n", "total",
                res.total_latency.mean_ms, res.total_latency.p99_ms,
                res.total_latency.samples);
  }

  // Replay the first run with tracing enabled for the trace/metrics
  // artifacts: campaigns run many hypervisors in parallel, so per-run
  // telemetry comes from a deterministic replay of seed0.
  if (!trace_out.empty() || !metrics_out.empty() || !audit_out.empty()) {
    core::RunConfig rcfg = cfg;
    rcfg.seed = opts.seed0;
    core::TargetSystem sys(rcfg);
    sys.EnableTracing();
    const core::RunResult replay = sys.Run();
    if (!audit_out.empty()) {
      std::string json =
          "{\"campaign\":" + res.ToJson() +
          ",\"replay_seed0_audit\":{\"audit_clean\":" +
          (replay.audit_clean ? "true" : "false") +
          ",\"latent_corruption\":" +
          (replay.latent_corruption ? "true" : "false") +
          ",\"modeled_cost_us\":" +
          std::to_string(sim::ToMicros(replay.audit_report.modeled_cost)) +
          ",\"findings\":" + replay.audit_report.ToJson() + "}}";
      if (!WriteFile(audit_out, json)) return 1;
      std::printf("audit report written to %s\n", audit_out.c_str());
    }
    if (!trace_out.empty()) {
      if (!WriteFile(trace_out, sys.hv().tracer().ToChromeJson())) return 1;
      std::printf("trace (%zu spans) written to %s\n",
                  sys.hv().tracer().Snapshot().size(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      std::string json = "{\"campaign\":" + res.ToJson() +
                         ",\"replay_seed0_metrics\":" +
                         sys.hv().metrics().ToJson() + "}";
      if (!WriteFile(metrics_out, json)) return 1;
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
