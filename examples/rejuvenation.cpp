// Proactive rejuvenation vs reactive recovery (related-work discussion,
// Section VIII / RootHammer): microreboot can be used PROACTIVELY to
// rejuvenate a healthy hypervisor (rebuilding its heap and timer state
// from scratch), while microreset is "not useful for rejuvenation" because
// it reuses almost the entire hypervisor state in place.
//
// This example demonstrates that property mechanically: we age the
// hypervisor heap (fragmentation + a corrupted free-list link that has not
// yet been exercised, i.e. latent damage), then trigger each mechanism
// proactively and check whether the latent damage is gone afterwards.
#include <cstdio>

#include "hv/hypervisor.h"
#include "recovery/nilihype.h"
#include "recovery/rehype.h"

using namespace nlh;

namespace {

hw::PlatformConfig Cfg() {
  hw::PlatformConfig cfg;
  cfg.num_cpus = 4;
  return cfg;
}

template <typename Mechanism>
void Rejuvenate(const char* label) {
  hw::Platform platform(Cfg(), 77);
  hv::Hypervisor hv(platform, hv::HvConfig{});
  hv.Boot();
  const hv::DomainId dom = hv.CreateDomainDirect("app", false, 1, 64);
  hv.StartDomain(dom);

  // Age the system: churn the heap into fragmentation and plant latent
  // free-list damage (the kind rejuvenation is meant to flush out before
  // it bites).
  std::vector<hv::HeapObjectId> objs;
  for (int i = 0; i < 40; ++i) objs.push_back(hv.heap().Alloc("churn", 2));
  for (std::size_t i = 0; i < objs.size(); i += 2) hv.heap().Free(objs[i]);
  hv.heap().CorruptFreeList(/*fatal=*/true);
  hv.timers(1).CorruptEntry(0, /*push_out=*/true);  // latent lost timer

  std::printf("%-24s before: free-list %s\n", label,
              hv.heap().CheckFreeListIntegrity() ? "intact" : "DAMAGED");

  Mechanism mech(hv, recovery::EnhancementSet::Full());
  const recovery::RecoveryReport rep = mech.Recover(0, hv::DetectionKind::kPanic);
  platform.queue().RunUntil(rep.resumed_at + sim::Milliseconds(10));

  std::printf("%-24s after:  free-list %s   (pause: %.1f ms)\n\n", label,
              hv.heap().CheckFreeListIntegrity() ? "intact" : "still damaged",
              sim::ToMillisF(rep.total()));
}

}  // namespace

int main() {
  std::printf(
      "Proactive rejuvenation: flushing latent state damage (Section VIII)\n\n");
  Rejuvenate<recovery::ReHype>("ReHype (microreboot):");
  Rejuvenate<recovery::NiLiHype>("NiLiHype (microreset):");
  std::printf(
      "Microreboot rebuilds the heap and timer subsystem from scratch, so a\n"
      "proactive reboot flushes latent damage — at a 713 ms pause.\n"
      "Microreset reuses the state in place: great for 22 ms *recovery*,\n"
      "useless for *rejuvenation* — exactly the paper's positioning.\n");
  return 0;
}
