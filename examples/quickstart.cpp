// Quickstart: boot a simulated virtualized host, inject one failstop fault
// into the hypervisor, recover with NiLiHype (microreset), and report what
// happened.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/campaign.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

void PrintResult(const char* label, const core::RunResult& r) {
  std::printf("--- %s ---\n", label);
  std::printf("  outcome:            %s\n", core::OutcomeClassName(r.outcome));
  std::printf("  recoveries:         %d\n", r.recoveries);
  if (r.recoveries > 0) {
    std::printf("  recovery latency:   %.2f ms\n",
                sim::ToMillisF(r.first_recovery_latency));
  }
  for (const auto& vm : r.vms) {
    std::printf("  VM %-10s        %s%s\n", vm.name.c_str(),
                vm.affected ? "AFFECTED: " : "ok",
                vm.affected ? vm.why.c_str() : "");
  }
  std::printf("  PrivVM:             %s\n", r.privvm_ok ? "ok" : "FAILED");
  if (r.vm3_attempted) {
    std::printf("  post-recovery VM3:  %s\n",
                r.vm3_ok ? "created, BlkBench passed" : "FAILED");
  }
  if (r.detected) {
    std::printf("  recovery success:   %s%s%s\n", r.success ? "YES" : "NO",
                r.success ? "" : " — ",
                r.success ? "" : r.failure_detail.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("NiLiHype quickstart — microreset-based hypervisor recovery\n\n");

  // 1. A fault-free run: everything should complete and nothing trigger.
  {
    core::RunConfig cfg;
    cfg.inject = false;
    cfg.seed = 7;
    core::TargetSystem sys(cfg);
    PrintResult("fault-free 3AppVM run", sys.Run());
  }

  // 2. A failstop fault recovered by NiLiHype, with the run timeline.
  {
    core::RunConfig cfg;
    cfg.mechanism = core::Mechanism::kNiLiHype;
    cfg.fault = inject::FaultType::kFailstop;
    cfg.seed = 7;
    core::TargetSystem sys(cfg);
    sys.EnableTimeline();
    PrintResult("failstop fault + NiLiHype (microreset)", sys.Run());
    std::printf("run timeline:\n");
    sys.timeline().Print();
    std::printf("\n");
  }

  // 3. The same fault recovered by ReHype (microreboot): same outcome, but
  //    look at the latency.
  {
    core::RunConfig cfg;
    cfg.mechanism = core::Mechanism::kReHype;
    cfg.fault = inject::FaultType::kFailstop;
    cfg.seed = 7;
    core::TargetSystem sys(cfg);
    PrintResult("failstop fault + ReHype (microreboot)", sys.Run());
  }

  // 4. No recovery mechanism at all.
  {
    core::RunConfig cfg;
    cfg.mechanism = core::Mechanism::kNone;
    cfg.fault = inject::FaultType::kFailstop;
    cfg.seed = 7;
    core::TargetSystem sys(cfg);
    PrintResult("failstop fault, no recovery", sys.Run());
  }
  return 0;
}
