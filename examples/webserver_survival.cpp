// Client-observed availability of a network service across hypervisor
// failures — the deployment argument of the abstract: with NiLiHype's 22 ms
// recovery, "service interruption is negligible in most deployment
// scenarios", while microreboot-scale recovery is very visible.
//
// Uses the packaged TargetSystem with the NetBench workload (a 1 kHz
// request/response client on another host) and reports what the CLIENT sees
// under each recovery mechanism.
#include <cstdio>

#include "core/target_system.h"

using namespace nlh;

namespace {

void Serve(const char* label, core::Mechanism mech) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench);
  cfg.mechanism = mech;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.netbench_duration = sim::Milliseconds(2800);
  cfg.run_deadline = sim::Seconds(5);
  cfg.seed = 99;
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();
  const guest::NetPeer* peer = sys.net_peer();

  const double served =
      100.0 * static_cast<double>(peer->received()) / peer->sent();
  std::printf("%-24s requests answered: %5.1f%%   worst gap: ", label, served);
  if (sys.hv().dead()) {
    std::printf("service never came back (host dead)\n");
    return;
  }
  std::printf("%7.1f ms", sim::ToMillisF(r.net_max_gap));
  if (r.recoveries > 0) {
    std::printf("   (recovery: %.1f ms)",
                sim::ToMillisF(r.first_recovery_latency));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "Web-service availability across one hypervisor fault\n"
      "(client pings at 1 kHz from another host; Section VII-B methodology)\n\n");
  Serve("no recovery:", core::Mechanism::kNone);
  Serve("ReHype (microreboot):", core::Mechanism::kReHype);
  Serve("NiLiHype (microreset):", core::Mechanism::kNiLiHype);
  std::printf(
      "\nA 22 ms pause loses ~22 requests of ~2800 (<1%%) — beneath most\n"
      "clients' timeout thresholds. The 713 ms microreboot pause is very\n"
      "visible; no recovery loses the host entirely.\n");
  return 0;
}
