// The paper's motivating deployment (Section I): running BOTH replicas of a
// replicated service on the SAME host is attractive (performance, placement
// flexibility) but only sane if a hypervisor failure does not take down
// both replicas at once.
//
// This example composes the library's lower-level APIs directly — platform,
// hypervisor, guests, injector, recovery — instead of using the packaged
// core::TargetSystem, and compares the fate of two colocated replicas under
// a hypervisor failstop fault with and without NiLiHype.
#include <cstdio>

#include "detect/hang_detector.h"
#include "guest/appvm.h"
#include "hv/hypervisor.h"
#include "inject/injector.h"
#include "recovery/manager.h"
#include "recovery/nilihype.h"

using namespace nlh;

namespace {

struct Host {
  explicit Host(bool with_recovery) : platform(Config(), 2024),
                                      hv(platform, hv::HvConfig{}),
                                      hang(hv) {
    hv.Boot();
    hang.Install();
    if (with_recovery) {
      manager = std::make_unique<recovery::RecoveryManager>(
          hv, std::make_unique<recovery::NiLiHype>(
                  hv, recovery::EnhancementSet::Full()),
          &hang);
      manager->Install();
    }
    // Two replicas of the same service, pinned to different CPUs.
    for (int i = 0; i < 2; ++i) {
      const hv::DomainId dom = hv.CreateDomainDirect(
          "replica" + std::to_string(i), false, /*cpu=*/1 + i, 64);
      replicas[i] = std::make_unique<guest::AppVmKernel>(
          hv, "replica" + std::to_string(i), 100 + static_cast<unsigned>(i),
          guest::BenchmarkKind::kUnixBench, /*iterations=*/15000);
      replicas[i]->Bind(dom, hv.FindDomain(dom)->vcpus.front());
      hv.AttachGuest(dom, replicas[i].get());
      hv.StartDomain(dom);
    }
  }

  static hw::PlatformConfig Config() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 4;
    return cfg;
  }

  void InjectHypervisorFault(sim::Time at) {
    injector = std::make_unique<inject::FaultInjector>(hv,
                                                       inject::CorruptionHooks{},
                                                       7);
    inject::InjectionPlan plan;
    plan.type = inject::FaultType::kFailstop;
    plan.first_trigger = at;
    plan.second_trigger_instructions = 5000;
    injector->Arm(plan);
  }

  int SurvivingReplicas() const {
    int n = 0;
    for (const auto& r : replicas) {
      if (r && !r->Affected() && r->BenchmarkDone()) ++n;
    }
    return n;
  }

  hw::Platform platform;
  hv::Hypervisor hv;
  detect::HangDetector hang;
  std::unique_ptr<recovery::RecoveryManager> manager;
  std::unique_ptr<inject::FaultInjector> injector;
  std::unique_ptr<guest::AppVmKernel> replicas[2];
};

void RunHost(const char* label, bool with_recovery) {
  Host host(with_recovery);
  host.InjectHypervisorFault(sim::Milliseconds(300));
  host.platform.queue().RunUntil(sim::Seconds(4));
  std::printf("%-28s surviving replicas: %d/2", label,
              host.SurvivingReplicas());
  if (host.manager && !host.manager->reports().empty()) {
    std::printf("   (service pause: %.1f ms)",
                sim::ToMillisF(host.manager->reports().front().total()));
  }
  if (host.hv.dead()) std::printf("   [host dead: %s]",
                                  host.hv.death_reason().c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Colocated VM replicas vs hypervisor failure (Section I)\n\n");
  RunHost("no recovery mechanism:", false);
  RunHost("NiLiHype (microreset):", true);
  std::printf(
      "\nWith microreset recovery, a single transient hypervisor fault no\n"
      "longer takes out both replicas — colocated replication becomes an\n"
      "attractive design point (22 ms pause instead of losing the host).\n");
  return 0;
}
