// State-audit subsystem: sweep cost and the audit-refined success split.
//
// Two questions the audit engine must answer cheaply:
//   1. What does a full sweep cost (modeled simulated time) as the platform
//      grows — and how does that compare to the recovery mechanisms it
//      complements (NiLiHype ~22 ms, ReHype ~713 ms at 8 GB)?
//   2. How does the behavioral "successful recovery" rate of Figure 2
//      decompose into audit-clean vs latent-corruption once every
//      successful run is swept against its pre-injection golden snapshot?
#include "audit/state_auditor.h"
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

void SweepCostRows() {
  std::printf("\nfull-sweep modeled cost vs platform population\n");
  std::printf("%-28s %10s %12s\n", "platform", "findings", "cost (us)");
  for (const int domains : {1, 4, 16}) {
    hw::PlatformConfig pc;
    pc.num_cpus = 8;
    pc.memory_gib = 8;
    hw::Platform platform(pc, 1);
    hv::Hypervisor hv(platform, hv::HvConfig{});
    hv.Boot();
    for (int d = 0; d < domains; ++d) {
      const hv::DomainId id = hv.CreateDomainDirect(
          "vm" + std::to_string(d), false, 1 + d % 7, 32);
      hv.StartDomain(id);
    }
    audit::StateAuditor auditor(hv);
    const audit::AuditReport r = auditor.Audit();
    char label[64];
    std::snprintf(label, sizeof(label), "8 cpu / %2d domains", domains);
    std::printf("%-28s %10zu %12.1f\n", label, r.findings.size(),
                sim::ToMicros(r.modeled_cost) * 1.0);
  }
}

void AuditedCampaignRow(const char* name, core::Mechanism mech,
                        inject::FaultType fault,
                        const core::CampaignOptions& opts) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
  cfg.mechanism = mech;
  cfg.fault = fault;
  cfg.audit = true;
  const core::CampaignResult res = core::RunCampaign(cfg, opts);
  std::printf("%-22s %18s %18s %18s\n", name, res.success.ToString().c_str(),
              res.audit_clean.ToString().c_str(),
              res.latent_corruption.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("State-audit overhead and audit-refined success rates",
                     "the latent-corruption analysis (Sections VII-A/VII-B)");

  SweepCostRows();

  const core::CampaignOptions opts = args.MakeOptions(150, 1000);
  std::printf("\naudit-refined recovery rates (%d runs per cell)\n", opts.runs);
  std::printf("%-22s %18s %18s %18s\n", "cell", "success",
              "audit-clean", "latent");
  AuditedCampaignRow("nilihype/failstop", core::Mechanism::kNiLiHype,
                     inject::FaultType::kFailstop, opts);
  AuditedCampaignRow("nilihype/code", core::Mechanism::kNiLiHype,
                     inject::FaultType::kCode, opts);
  AuditedCampaignRow("rehype/code", core::Mechanism::kReHype,
                     inject::FaultType::kCode, opts);
  return 0;
}
