// Section IX's open question, answered experimentally: is microreset
// applicable to components other than OS kernels and hypervisors?
//
// Target component: an in-memory key-value service (src/clr/) with worker
// threads, a hash index, a write-ahead journal and internal locks. We
// inject faults at random request-processing steps (abandonment, stranded
// locks, index-linkage corruption), recover with restart (microreboot
// analogue) vs microreset, and measure recovery rate and latency — the same
// methodology as the hypervisor study, one level up the stack.
#include <cstdio>
#include <map>

#include "bench/bench_util.h"
#include "clr/kv_recovery.h"
#include "clr/kv_service.h"
#include "sim/rng.h"

using namespace nlh;

namespace {

struct CellResult {
  int runs = 0;
  int recovered = 0;
  sim::Duration total_latency = 0;
};

// One injection run against the KV service.
bool RunOnce(std::uint64_t seed, bool use_microreset, sim::Duration* latency) {
  sim::EventQueue queue;
  clr::KvService svc(queue, seed);
  sim::Rng rng(seed ^ 0xfeed);

  std::uint64_t id = 1;
  std::map<std::uint64_t, std::uint64_t> model;  // journaled truth
  auto submit_batch = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = rng.Range(0, 400);
      switch (rng.Index(3)) {
        case 0:
          svc.Submit({id++, clr::RequestKind::kPut, key, key * 3});
          break;
        case 1:
          svc.Submit({id++, clr::RequestKind::kGet, key, 0});
          break;
        default:
          svc.Submit({id++, clr::RequestKind::kDelete, key, 0});
          break;
      }
    }
  };

  submit_batch(300);
  // Arm a step-counting trigger, like the hypervisor injector.
  const int fire_after = static_cast<int>(rng.Range(50, 800));
  int steps = 0;
  bool fired = false;
  svc.SetStepHook([&] {
    if (fired || ++steps < fire_after) return;
    fired = true;
    // Manifestation: abandonment plus, sometimes, real corruption — of the
    // index linkage (both mechanisms can repair it) or of stored data
    // (only a journal replay reconstructs the truth).
    if (rng.Chance(0.35)) svc.CorruptBucketChain(rng.Index(64));
    if (rng.Chance(0.25)) svc.CorruptEntryValue(rng.Index(256));
    throw clr::ServicePanic("injected fault");
  });

  bool detected = false;
  try {
    for (int t = 0; t < 2000 && !fired; ++t) svc.Tick();
  } catch (const clr::ServicePanic&) {
    detected = true;
  }
  svc.SetStepHook(nullptr);
  if (!detected) return true;  // nothing to recover (idle tail)

  const clr::KvRecoveryReport rep = use_microreset
                                        ? clr::KvMicroreset::Recover(svc)
                                        : clr::KvRestart::Recover(svc);
  *latency = rep.latency;

  // Post-recovery: the service must be intact, finish the workload plus a
  // fresh batch, and serve data matching the journaled truth.
  if (!svc.IndexIntact()) return false;
  submit_batch(100);
  try {
    for (int t = 0; t < 4000 && (svc.pending() > 0); ++t) svc.Tick();
  } catch (const clr::ServicePanic&) {
    return false;
  }
  if (svc.pending() != 0) return false;
  // Let the last in-flight requests complete, then discard their
  // responses so the probe below starts clean.
  try {
    for (int t = 0; t < 50; ++t) svc.Tick();
  } catch (const clr::ServicePanic&) {
    return false;
  }
  clr::Response drain;
  while (svc.PopResponse(&drain)) {
  }
  sim::EventQueue q2;
  clr::KvService golden(q2, 1);
  svc.CopyJournalTo(&golden);
  golden.RebuildIndexFromJournal();
  for (std::uint64_t key = 0; key < 400; key += 7) {
    svc.Submit({id, clr::RequestKind::kGet, key, 0});
    golden.Submit({id, clr::RequestKind::kGet, key, 0});
    ++id;
  }
  for (int t = 0; t < 500; ++t) {
    svc.Tick();
    golden.Tick();
  }
  clr::Response a, b;
  while (svc.PopResponse(&a) && golden.PopResponse(&b)) {
    if (a.id != b.id || a.ok != b.ok || (a.ok && a.value != b.value)) {
      return false;  // recovered state diverges from the journaled truth
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader(
      "Microreset beyond hypervisors: an in-memory KV service",
      "Section IX (future work)");

  const int runs = args.runs > 0 ? args.runs : (args.full ? 2000 : 500);
  std::printf("%-28s %10s %14s %16s\n", "mechanism", "runs", "recovery rate",
              "mean latency");
  for (const bool microreset : {false, true}) {
    CellResult cell;
    for (int i = 0; i < runs; ++i) {
      sim::Duration latency = 0;
      cell.runs++;
      if (RunOnce(args.seed + static_cast<std::uint64_t>(i), microreset,
                  &latency)) {
        cell.recovered++;
      }
      cell.total_latency += latency;
    }
    core::Proportion p;
    p.numer = cell.recovered;
    p.denom = cell.runs;
    std::printf("%-28s %10d %14s %13.2f ms\n",
                microreset ? "microreset (roll-forward)" : "restart (replay)",
                cell.runs, p.ToString().c_str(),
                sim::ToMillisF(cell.total_latency / cell.runs));
  }
  std::printf(
      "\nThe paper's hypervisor result generalizes: for a request-processing\n"
      "component with a durable commit boundary, microreset matches restart's\n"
      "recovery rate at a small fraction of its latency — and the latency gap\n"
      "widens with state size (restart replays the journal; microreset only\n"
      "scans linkage).\n");
  return 0;
}
