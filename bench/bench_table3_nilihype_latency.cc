// Table III: NiLiHype recovery latency breakdown (22 ms total at 8 GB:
// 21 ms page-frame descriptor scan + ~1 ms everything else), measured as in
// Section VII-B via the service interruption of NetBench, plus the
// memory-size scaling discussed there ("the latency ... is proportional to
// the size of the host memory").
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

core::RunConfig NetBench1AppVm(std::uint64_t mem_gib, std::uint64_t seed) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench);
  cfg.mechanism = core::Mechanism::kNiLiHype;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.platform.memory_gib = mem_gib;
  cfg.netbench_duration = sim::Milliseconds(2500);
  cfg.run_deadline = sim::Seconds(5);
  cfg.seed = seed;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("NiLiHype (microreset) recovery latency breakdown",
                     "Table III");

  core::TargetSystem sys(NetBench1AppVm(8, 2024));
  const core::RunResult r = sys.Run();
  if (sys.recovery_manager()->reports().empty()) {
    std::printf("no recovery occurred (unexpected)\n");
    return 1;
  }
  const recovery::RecoveryReport& rep = sys.recovery_manager()->reports().front();
  std::printf("%-62s %10s\n", "Operation", "Time");
  for (const auto& step : rep.steps) {
    std::printf("  %-60s %8.2fms\n", step.name.c_str(),
                sim::ToMillisF(step.latency));
  }
  std::printf("  %-60s %8.2fms   (paper: 22ms)\n", "Total",
              sim::ToMillisF(rep.total()));
  std::printf("\nService interruption at the NetBench sender: %.1fms"
              " (paper: 22ms, ReHype/NiLiHype latency ratio > 30x)\n",
              sim::ToMillisF(r.net_max_gap));

  // Repeatability (the paper saw <1 ms variation over five repeats).
  std::printf("\nRepeatability over 5 runs (total recovery latency):\n  ");
  for (std::uint64_t s = 1; s <= 5; ++s) {
    core::TargetSystem rep_sys(NetBench1AppVm(8, 3000 + s));
    (void)rep_sys.Run();
    if (!rep_sys.recovery_manager()->reports().empty()) {
      std::printf("%.2fms  ",
                  sim::ToMillisF(
                      rep_sys.recovery_manager()->reports().front().total()));
    }
  }
  std::printf("\n");

  std::printf("\nMemory-size scaling (Section VII-B: scan latency is"
              " proportional to host memory):\n");
  std::printf("  %-10s %12s\n", "Memory", "Latency");
  for (std::uint64_t gib : {4ULL, 8ULL, 16ULL, 32ULL, 64ULL, 128ULL}) {
    core::TargetSystem s(NetBench1AppVm(gib, 2024));
    (void)s.Run();
    if (s.recovery_manager()->reports().empty()) continue;
    std::printf("  %4llu GiB   %9.2fms%s\n",
                static_cast<unsigned long long>(gib),
                sim::ToMillisF(s.recovery_manager()->reports().front().total()),
                gib == 8 ? "   <- paper calibration point" : "");
  }
  return 0;
}
