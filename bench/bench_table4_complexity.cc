// Table IV: implementation complexity — lines of code added/modified for
// each mechanism, split into (1) code that executes during normal operation
// and (2) code that executes only during recovery.
//
// For this reproduction the equivalent measurement is the line counts of
// our own modules, categorized the same way. The paper's observations to
// reproduce: NiLiHype needs slightly LESS normal-operation code than ReHype
// (no IO-APIC shadowing / boot-option logging), and substantially less
// recovery-only code (no state preservation & re-integration machinery);
// NiLiHype totals < 2200 lines against the stock hypervisor.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#ifndef NLH_SOURCE_DIR
#define NLH_SOURCE_DIR "."
#endif

namespace {

// cloc-style count: non-blank, non-pure-comment lines.
int CountLoc(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  int loc = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::size_t i = line.find_first_not_of(" \t");
    if (i == std::string::npos) continue;
    if (line.compare(i, 2, "//") == 0) continue;
    ++loc;
  }
  return loc;
}

int CountAll(const std::vector<std::string>& files) {
  int total = 0;
  for (const std::string& f : files) {
    total += CountLoc(std::string(NLH_SOURCE_DIR) + "/" + f);
  }
  return total;
}

}  // namespace

int main() {
  std::printf(
      "==============================================================\n"
      "Implementation complexity (LOC added/modified vs. stock)\n"
      "(reproduces Table IV of \"Fast Hypervisor Recovery Without Reboot\","
      " DSN 2018)\n"
      "==============================================================\n");

  // Category (1): support code active during NORMAL operation. Shared by
  // both mechanisms: the undo log, retry bookkeeping in the in-flight
  // request, and the logging hooks in the operation context.
  const int shared_normal = CountAll({
      "src/hv/undo_log.h",       // write-ahead logging (Section IV)
      "src/hv/op_context.h",     // LogUndo / batch-completion hooks
  });
  // ReHype-only normal-operation code: IO-APIC shadowing & boot-option
  // logging (approximated by its hooks; the paper reports a small delta).
  const int rehype_extra_normal = 24;  // ShadowIoApicWrite sites + option

  // Category (2): recovery-only code.
  const int shared_recovery = CountAll({
      "src/recovery/recovery_common.h",
      "src/recovery/recovery_common.cc",
      "src/recovery/enhancements.h",
      "src/recovery/latency_model.h",
      "src/recovery/manager.h",
  });
  const int nilihype_recovery = CountAll({
      "src/recovery/nilihype.h",
      "src/recovery/nilihype.cc",
      "src/hv/sched_ops.cc",  // metadata repair (recovery-only entry)
  });
  const int rehype_recovery = CountAll({
      "src/recovery/rehype.h",
      "src/recovery/rehype.cc",
      "src/hv/sched_ops.cc",
      // Reboot-path state preservation / re-integration lives in the
      // subsystems' reboot entry points:
      "src/hv/static_data.cc",   // preserve/copy-back of the static segment
  });
  // ReHype additionally owns the heap re-creation and timer rebuild paths.
  const int rehype_reintegration = CountAll({"src/hv/heap.cc"}) / 2;

  const int nl_normal = shared_normal;
  const int rh_normal = shared_normal + rehype_extra_normal;
  const int nl_recovery = shared_recovery + nilihype_recovery;
  const int rh_recovery = shared_recovery + rehype_recovery + rehype_reintegration;

  std::printf("%-34s %10s %10s\n", "", "NiLiHype", "ReHype");
  std::printf("%-34s %10d %10d\n", "Normal-operation code (LOC)", nl_normal,
              rh_normal);
  std::printf("%-34s %10d %10d\n", "Recovery-only code (LOC)", nl_recovery,
              rh_recovery);
  std::printf("%-34s %10d %10d\n", "Total", nl_normal + nl_recovery,
              rh_normal + rh_recovery);

  std::printf(
      "\nPaper properties: NiLiHype needs slightly less normal-operation\n"
      "code than ReHype (no IO-APIC/boot-option logging) and much less\n"
      "recovery-only code (no preserve/re-integrate machinery): %s / %s\n",
      nl_normal <= rh_normal ? "OK" : "MISMATCH",
      nl_recovery < rh_recovery ? "OK" : "MISMATCH");
  std::printf("Paper absolute anchor: NiLiHype total < 2200 LOC: %s (%d)\n",
              (nl_normal + nl_recovery) < 2200 ? "OK" : "MISMATCH",
              nl_normal + nl_recovery);
  return 0;
}
