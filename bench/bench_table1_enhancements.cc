// Table I: successful recovery rate of NiLiHype as the Section V-A
// enhancements are added cumulatively. Setup: 1AppVM, failstop faults
// (Section V-B / VI-A); success = no VM affected.
//
// Paper values: Basic 0%, +Clear IRQ count 16.0±2.3%, +ReHype mechanisms
// 51.8±3.1%, +sched-metadata consistency 82.2±2.4%, +reprogram hardware
// timer 95.0±1.4%, +unlock static locks 96.1±1.2%, +reactivate recurring
// timer events (final).
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("NiLiHype incremental enhancements — recovery rate",
                     "Table I");

  static const char* kRows[] = {
      "Basic (discard all execution threads)",
      "+ Clear IRQ count",
      "+ Enhanced with ReHype mechanisms",
      "+ Ensure consistency within scheduling metadata",
      "+ Reprogram hardware timer",
      "+ Unlock static locks",
      "+ Reactivate recurring timer events",
  };
  static const char* kPaper[] = {"0%",     "16.0%", "51.8%", "82.2%",
                                 "95.0%", "96.1%", "~96%"};

  std::printf("%-50s %-16s %-8s\n", "Mechanism (cumulative)", "Measured",
              "Paper");
  for (int row = 0; row <= 6; ++row) {
    core::RunConfig base =
        core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench);
    base.mechanism = core::Mechanism::kNiLiHype;
    base.enhancements = recovery::EnhancementSet::TableISimple(row);
    base.fault = inject::FaultType::kFailstop;

    // The paper's 1AppVM development runs used the simple workloads
    // (UnixBench or BlkBench); alternate between them across the campaign.
    core::CampaignOptions opts = args.MakeOptions(400, 1000);
    core::CampaignResult agg;
    {
      core::RunConfig cfg_a = base;
      cfg_a.bench_1appvm = guest::BenchmarkKind::kUnixBench;
      core::CampaignOptions oa = opts;
      oa.runs = opts.runs / 2;
      core::CampaignResult ra = core::RunCampaign(cfg_a, oa);

      core::RunConfig cfg_b =
          core::RunConfig::OneAppVm(guest::BenchmarkKind::kBlkBench);
      cfg_b.mechanism = base.mechanism;
      cfg_b.enhancements = base.enhancements;
      cfg_b.fault = base.fault;
      core::CampaignOptions ob = opts;
      ob.runs = opts.runs - oa.runs;
      ob.seed0 = opts.seed0 + 500000;
      core::CampaignResult rb = core::RunCampaign(cfg_b, ob);

      agg.runs = ra.runs + rb.runs;
      agg.detected = ra.detected + rb.detected;
      agg.success.numer = ra.success.numer + rb.success.numer;
      agg.success.denom = ra.success.denom + rb.success.denom;
    }
    std::printf("%-50s %-16s %-8s\n", kRows[row],
                agg.success.ToString().c_str(), kPaper[row]);
  }
  return 0;
}
