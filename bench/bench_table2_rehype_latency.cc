// Table II: ReHype recovery latency breakdown (713 ms total at 8 GB).
//
// Runs a NetBench 1AppVM system on the (simulated) bare hardware, injects a
// failstop fault, recovers with ReHype, and prints the per-step latency the
// recovery mechanism recorded, plus the service interruption observed by
// the external NetBench sender — the same measurement methodology as
// Section VII-B. A second sweep shows how the memory-proportional steps
// scale with host memory size.
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

core::RunConfig NetBench1AppVm(core::Mechanism mech, std::uint64_t mem_gib) {
  core::RunConfig cfg = core::RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench);
  cfg.mechanism = mech;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.platform.memory_gib = mem_gib;
  cfg.netbench_duration = sim::Milliseconds(2500);
  cfg.run_deadline = sim::Seconds(5);
  cfg.seed = 2024;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("ReHype (microreboot) recovery latency breakdown",
                     "Table II");

  core::RunConfig cfg = NetBench1AppVm(core::Mechanism::kReHype, 8);
  core::TargetSystem sys(cfg);
  const core::RunResult r = sys.Run();

  if (sys.recovery_manager()->reports().empty()) {
    std::printf("no recovery occurred (unexpected)\n");
    return 1;
  }
  const recovery::RecoveryReport& rep = sys.recovery_manager()->reports().front();
  std::printf("%-62s %10s\n", "Operation", "Time");
  for (const auto& step : rep.steps) {
    std::printf("  %-60s %7.1fms\n", step.name.c_str(),
                sim::ToMillisF(step.latency));
  }
  std::printf("  %-60s %7.1fms   (paper: 713ms)\n", "Total",
              sim::ToMillisF(rep.total()));
  std::printf("\nService interruption at the NetBench sender: %.1fms\n",
              sim::ToMillisF(r.net_max_gap));

  std::printf("\nMemory-size scaling of the total recovery latency:\n");
  std::printf("  %-10s %12s\n", "Memory", "Latency");
  for (std::uint64_t gib : {4ULL, 8ULL, 16ULL, 32ULL, 64ULL}) {
    core::RunConfig c = NetBench1AppVm(core::Mechanism::kReHype, gib);
    core::TargetSystem s(c);
    (void)s.Run();
    if (s.recovery_manager()->reports().empty()) continue;
    std::printf("  %4llu GiB   %9.1fms%s\n",
                static_cast<unsigned long long>(gib),
                sim::ToMillisF(s.recovery_manager()->reports().front().total()),
                gib == 8 ? "   <- paper calibration point" : "");
  }
  return 0;
}
