// Section VII-A injection-outcome breakdown: for each fault type, the
// fraction of injections that are non-manifested, silent data corruption
// (SDC), and detected.
//
// Paper: Register 74.8% / 5.6% / 19.6%; Code 35.0% / 12.1% / 52.9%;
// Failstop 0% / 0% / 100%.
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Fault-injection outcome breakdown (3AppVM)",
                     "Section VII-A");

  std::printf("%-10s %6s %18s %10s %12s\n", "Fault", "runs", "non-manifested",
              "SDC", "detected");
  struct Row {
    inject::FaultType fault;
    const char* paper;
  };
  const Row rows[] = {
      {inject::FaultType::kFailstop, "paper:   0.0%   0.0% 100.0%"},
      {inject::FaultType::kRegister, "paper:  74.8%   5.6%  19.6%"},
      {inject::FaultType::kCode, "paper:  35.0%  12.1%  52.9%"},
  };
  for (const Row& row : rows) {
    core::RunConfig cfg;
    cfg.setup = core::Setup::k3AppVM;
    cfg.mechanism = core::Mechanism::kNiLiHype;
    cfg.fault = row.fault;
    core::CampaignOptions opts = args.MakeOptions(600, 2000);
    const core::CampaignResult r = core::RunCampaign(cfg, opts);
    std::printf("%-10s %6d %17.1f%% %9.1f%% %11.1f%%   %s\n",
                inject::FaultTypeName(row.fault), r.runs,
                r.NonManifestedRate() * 100, r.SdcRate() * 100,
                r.DetectedRate() * 100, row.paper);
  }
  return 0;
}
