// Google-benchmark microbenchmarks of the hot simulator paths: hypercall
// dispatch with and without undo logging, the scheduler, the frame scan,
// and metadata repair. These bound the wall-clock cost of campaigns and
// quantify the per-operation cost of the recovery-support code.
#include <benchmark/benchmark.h>

#include "hv/hypervisor.h"
#include "recovery/nilihype.h"

using namespace nlh;

namespace {

struct World {
  World() : platform(Cfg(), 1), hv(platform, hv::HvConfig{}) {
    hv.Boot();
    dom = hv.CreateDomainDirect("bench", false, 1, 32);
    hv.StartDomain(dom);
    vcpu = hv.FindDomain(dom)->vcpus.front();
    hv::OpContext ctx(platform, platform.cpu(1), hv.options(),
                      hv::HvContextKind::kSchedule, nullptr, nullptr);
    hv.Schedule(ctx, 1);
  }
  static hw::PlatformConfig Cfg() {
    hw::PlatformConfig cfg;
    cfg.num_cpus = 2;
    cfg.memory_gib = 1;
    return cfg;
  }
  hw::Platform platform;
  hv::Hypervisor hv;
  hv::DomainId dom;
  hv::VcpuId vcpu;
};

void BM_HypercallMmuUpdate(benchmark::State& state) {
  World w;
  w.hv.options().undo_logging = state.range(0) != 0;
  hv::HypercallArgs a;
  bool map = true;
  for (auto _ : state) {
    a.arg0 = 5;
    a.arg1 = map ? 1 : 0;
    benchmark::DoNotOptimize(
        w.hv.Hypercall(w.vcpu, hv::HypercallCode::kMmuUpdate, a));
    map = !map;
  }
}
BENCHMARK(BM_HypercallMmuUpdate)->Arg(0)->Arg(1);

// Flight-recorder cost on the hypercall hot path: Arg(0) recorder off (the
// campaign configuration — one disabled-recorder branch per NLH_RECORD
// site), Arg(1) recorder on (the forensic-replay configuration, full ring
// writes). With -DNLH_FLIGHT_RECORDER=OFF both match the pre-recorder
// baseline exactly: the macro compiles to ((void)0).
void BM_HypercallRecorder(benchmark::State& state) {
  World w;
  if (state.range(0) != 0) {
    w.hv.flight_recorder().Enable(w.platform.num_cpus());
  } else {
    w.hv.flight_recorder().Disable();
  }
  hv::HypercallArgs a;
  bool map = true;
  for (auto _ : state) {
    a.arg0 = 5;
    a.arg1 = map ? 1 : 0;
    benchmark::DoNotOptimize(
        w.hv.Hypercall(w.vcpu, hv::HypercallCode::kMmuUpdate, a));
    map = !map;
  }
}
BENCHMARK(BM_HypercallRecorder)->Arg(0)->Arg(1);

void BM_HypercallMulticall4(benchmark::State& state) {
  World w;
  hv::HypercallArgs a;
  for (int i = 0; i < 4; ++i) {
    hv::MulticallEntry e;
    e.code = hv::HypercallCode::kMmuUpdate;
    e.arg0 = static_cast<std::uint64_t>(i);
    e.arg1 = 1;
    a.batch.push_back(e);
  }
  hv::HypercallArgs un = a;
  for (auto& e : un.batch) e.arg1 = 0;
  bool map = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        w.hv.Hypercall(w.vcpu, hv::HypercallCode::kMulticall, map ? a : un));
    map = !map;
  }
}
BENCHMARK(BM_HypercallMulticall4);

void BM_Schedule(benchmark::State& state) {
  World w;
  for (auto _ : state) {
    hv::OpContext ctx(w.platform, w.platform.cpu(1), w.hv.options(),
                      hv::HvContextKind::kSchedule, nullptr, nullptr);
    benchmark::DoNotOptimize(w.hv.Schedule(ctx, 1));
  }
}
BENCHMARK(BM_Schedule);

void BM_FrameScan(benchmark::State& state) {
  hv::FrameTable ft(static_cast<std::uint64_t>(state.range(0)));
  ft.Alloc(static_cast<std::uint64_t>(state.range(0)) / 2,
           hv::FrameType::kDomainPage, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ft.ScanAndRepair());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FrameScan)->Arg(1 << 12)->Arg(1 << 14)->Arg(1 << 16);

void BM_SchedMetadataRepair(benchmark::State& state) {
  hv::PerCpuList pcpus;
  for (int c = 0; c < 8; ++c) pcpus.emplace_back(c);
  std::vector<hv::Vcpu> vcpus;
  for (hv::VcpuId v = 0; v < 16; ++v) {
    hv::Vcpu vc;
    vc.id = v;
    vc.pinned_cpu = v % 8;
    vc.state = hv::VcpuState::kRunnable;
    vcpus.push_back(std::move(vc));
  }
  for (auto _ : state) {
    pcpus[3].curr = 5;  // something to fix every round
    benchmark::DoNotOptimize(hv::RepairSchedMetadata(pcpus, vcpus));
  }
}
BENCHMARK(BM_SchedMetadataRepair);

void BM_NiLiHypeRecoverySteps(benchmark::State& state) {
  // Wall-clock cost of executing the whole microreset step sequence (the
  // *simulated* latency is Table III; this is host time per recovery).
  for (auto _ : state) {
    state.PauseTiming();
    World w;
    recovery::NiLiHype mech(w.hv, recovery::EnhancementSet::Full());
    state.ResumeTiming();
    benchmark::DoNotOptimize(mech.Recover(0, hv::DetectionKind::kPanic));
  }
}
BENCHMARK(BM_NiLiHypeRecoverySteps)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
