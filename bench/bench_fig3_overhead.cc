// Figure 3: hypervisor processing overhead during normal operation.
//
// Methodology (Section VII-C): for a fixed workload, count unhalted cycles
// spent executing hypervisor code, and report the percent increase of
// NiLiHype over stock Xen. NiLiHype* is NiLiHype without the undo logging
// that mitigates non-idempotent hypercall retry (the dominant overhead
// source). ReHype's overhead is expected to match NiLiHype's (its logging
// is almost identical, plus small IO-APIC shadowing).
//
// The paper's stated properties: most of the overhead is the logging; the
// worst case is the I/O-heavy workload; in terms of TOTAL CPU cycles the
// impact stays under 1% because <5% of cycles run hypervisor code.
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

struct Measurement {
  std::uint64_t hv_cycles = 0;
  std::uint64_t total_cycles = 0;
};

Measurement Measure(const core::RunConfig& base, bool undo_logging,
                    bool batch_logging, bool ioapic_shadow) {
  core::RunConfig cfg = base;
  cfg.inject = false;
  cfg.seed = 424242;
  core::TargetSystem sys(cfg);
  // Override the runtime options after construction (MakeHvConfig derives
  // them from the enhancement set).
  sys.hv().options().undo_logging = undo_logging;
  sys.hv().options().batch_completion_logging = batch_logging;
  sys.hv().options().rehype_ioapic_shadow = ioapic_shadow;
  const core::RunResult r = sys.Run();
  return {r.hv_cycles, r.total_cycles};
}

void Row(const char* name, const core::RunConfig& cfg) {
  const Measurement stock = Measure(cfg, false, false, false);
  const Measurement nlh_full = Measure(cfg, true, true, false);
  const Measurement nlh_star = Measure(cfg, false, true, false);
  const Measurement rehype = Measure(cfg, true, true, true);

  auto pct = [&](const Measurement& m) {
    return 100.0 * (static_cast<double>(m.hv_cycles) / stock.hv_cycles - 1.0);
  };
  const double hv_share =
      100.0 * static_cast<double>(stock.hv_cycles) / stock.total_cycles;
  const double total_impact =
      100.0 *
      (static_cast<double>(nlh_full.hv_cycles) - stock.hv_cycles) /
      stock.total_cycles;
  std::printf("%-10s %9.2f%% %11.2f%% %9.2f%% %12.1f%% %13.3f%%\n", name,
              pct(nlh_full), pct(nlh_star), pct(rehype), hv_share,
              total_impact);
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader(
      "Hypervisor processing overhead in normal operation", "Figure 3");
  std::printf("%-10s %10s %12s %10s %13s %14s\n", "Workload", "NiLiHype",
              "NiLiHype*", "ReHype", "hv cycle", "total-cycle");
  std::printf("%-10s %10s %12s %10s %13s %14s\n", "", "", "(no undo log)", "",
              "share", "impact");

  Row("BlkBench", core::RunConfig::OneAppVm(guest::BenchmarkKind::kBlkBench));
  Row("UnixBench", core::RunConfig::OneAppVm(guest::BenchmarkKind::kUnixBench));
  Row("NetBench", core::RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench));
  {
    // The modified 3AppVM setup: all three AppVMs run from the start
    // (Section VII-C); approximated by the standard 3AppVM system plus an
    // immediately-created BlkBench VM.
    core::RunConfig three;
    three.vm3_at_start = true;  // all three AppVMs run from the start
    Row("3AppVM", three);
  }

  std::printf(
      "\nPaper properties reproduced: overhead dominated by the undo\n"
      "logging (NiLiHype >> NiLiHype*); ReHype ~= NiLiHype; hypervisor\n"
      "cycle share < 5%% so the total-cycle impact stays < 1%%\n"
      "(Section VII-C).\n");
  return 0;
}
