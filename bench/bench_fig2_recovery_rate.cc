// Figure 2: successful recovery rate (Success and noVMF) of NiLiHype vs
// ReHype with the 3AppVM setup, for Failstop, Register and Code faults.
//
// The paper injected 1000 Failstop, 5000 Register and 2000 Code faults per
// mechanism (95% CI within ±2%); pass --full for those counts. Expected
// shape (Sections I, VII-A): NiLiHype within ~2% of ReHype overall,
// essentially identical on Failstop (no state corruption), a small ReHype
// edge on Register/Code (reboot re-initializes some corrupted state), Code
// lowest for both (longest detection latency -> most propagation); NiLiHype
// >88% Success and >83% noVMF everywhere.
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader(
      "Successful recovery rate, NiLiHype vs ReHype (3AppVM setup)",
      "Figure 2");

  struct Cell {
    inject::FaultType fault;
    int def_runs;
    int full_runs;
  };
  const Cell cells[] = {
      {inject::FaultType::kFailstop, 300, 1000},
      {inject::FaultType::kRegister, 1200, 5000},
      {inject::FaultType::kCode, 600, 2000},
  };

  std::printf("%-10s %-10s %6s %9s   %-16s %-16s\n", "Fault", "Mechanism",
              "runs", "detected", "Success", "noVMF");
  for (const Cell& cell : cells) {
    for (core::Mechanism mech :
         {core::Mechanism::kNiLiHype, core::Mechanism::kReHype}) {
      core::RunConfig cfg;
      cfg.setup = core::Setup::k3AppVM;
      cfg.mechanism = mech;
      cfg.fault = cell.fault;
      core::CampaignOptions opts =
          args.MakeOptions(cell.def_runs, cell.full_runs);
      const core::CampaignResult r = core::RunCampaign(cfg, opts);
      std::printf("%-10s %-10s %6d %9d   %-16s %-16s\n",
                  inject::FaultTypeName(cell.fault),
                  core::MechanismName(mech), r.runs, r.detected,
                  r.success.ToString().c_str(),
                  r.no_vm_failures.ToString().c_str());
    }
  }
  std::printf(
      "\nPaper anchors: Failstop essentially identical; Register: ReHype 35\n"
      "vs NiLiHype 54 recovery failures out of ~980 recoveries (96.4%% vs\n"
      "94.5%%); overall NiLiHype >88%% Success, >83%% noVMF; ReHype >90%%.\n");
  return 0;
}
