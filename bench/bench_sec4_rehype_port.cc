// Section IV: the ReHype porting/enhancement narrative.
//
// The paper ports ReHype from Xen 3.3/x86-32 to Xen 4.3/x86-64 and reports
// 1AppVM failstop recovery rates of: initial port 65%; + syscall retry,
// fine-granularity batched retry, and FS/GS saving 84%; + non-idempotent
// hypercall mitigation (undo logging + reordering) 96%.
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("ReHype port enhancement stages (1AppVM, failstop)",
                     "Section IV");

  static const char* kStages[] = {
      "Initial x86-64/Xen-4 port (base ReHype mechanisms)",
      "+ syscall retry, fine-grained batched retry, save FS/GS",
      "+ non-idempotent hypercall mitigation (logging/reorder)",
  };
  static const char* kPaper[] = {"65%", "84%", "96%"};

  std::printf("%-56s %-16s %-6s\n", "Stage", "Measured", "Paper");
  for (int stage = 0; stage <= 2; ++stage) {
    core::CampaignOptions opts = args.MakeOptions(300, 1000);
    int succ = 0, det = 0;
    for (int half = 0; half < 2; ++half) {
      core::RunConfig cfg = core::RunConfig::OneAppVm(
          half == 0 ? guest::BenchmarkKind::kUnixBench
                    : guest::BenchmarkKind::kBlkBench);
      cfg.mechanism = core::Mechanism::kReHype;
      cfg.enhancements = recovery::EnhancementSet::ReHypeStage(stage);
      cfg.fault = inject::FaultType::kFailstop;
      core::CampaignOptions o = opts;
      o.runs = opts.runs / 2;
      o.seed0 = opts.seed0 + static_cast<std::uint64_t>(half) * 100000;
      const core::CampaignResult r = core::RunCampaign(cfg, o);
      succ += r.success.numer;
      det += r.success.denom;
    }
    core::Proportion p;
    p.numer = succ;
    p.denom = det;
    std::printf("%-56s %-16s %-6s\n", kStages[stage], p.ToString().c_str(),
                kPaper[stage]);
  }
  return 0;
}
