// Machine-readable recovery phase breakdown (the Table II / Table III row
// structure as JSON): one traced replay per mechanism plus a small campaign
// per mechanism for mean/p99 per-phase aggregates.
//
// Usage: bench_phase_breakdown [--out=FILE.json] [--runs=N] [--seed=N]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/campaign.h"
#include "core/target_system.h"
#include "sim/json.h"

using namespace nlh;

namespace {

core::RunConfig Config(core::Mechanism mech, std::uint64_t seed) {
  core::RunConfig cfg =
      core::RunConfig::OneAppVm(guest::BenchmarkKind::kNetBench);
  cfg.mechanism = mech;
  cfg.fault = inject::FaultType::kFailstop;
  cfg.platform.memory_gib = 8;  // the paper's calibration point
  cfg.netbench_duration = sim::Milliseconds(2500);
  cfg.run_deadline = sim::Seconds(5);
  cfg.seed = seed;
  return cfg;
}

// One mechanism's JSON object: per-phase rows from a traced single run,
// plus campaign mean/p99 aggregates.
std::string MechanismJson(core::Mechanism mech, int runs,
                          std::uint64_t seed0) {
  core::TargetSystem sys(Config(mech, seed0));
  sys.EnableTracing();
  const core::RunResult r = sys.Run();

  std::string out = "{\"mechanism\":";
  out += sim::JsonStr(core::MechanismName(mech));
  out += ",\"single_run\":{\"phases\":[";
  double total_ms = 0;
  for (std::size_t i = 0; i < r.recovery_phases.size(); ++i) {
    const core::PhaseLatency& p = r.recovery_phases[i];
    if (i) out += ",";
    const double ms = sim::ToMillisF(p.latency);
    total_ms += ms;
    out += "{\"phase\":" + sim::JsonStr(p.phase) +
           ",\"label\":" + sim::JsonStr(p.label) +
           ",\"ms\":" + sim::JsonNum(ms, 6) + "}";
  }
  out += "],\"total_ms\":" + sim::JsonNum(total_ms, 6);
  out += ",\"trace_spans\":" +
         std::to_string(sys.hv().tracer().Snapshot().size()) + "}";

  core::CampaignOptions opts;
  opts.runs = runs;
  opts.seed0 = seed0;
  const core::CampaignResult agg = core::RunCampaign(Config(mech, 0), opts);
  out += ",\"campaign\":" + agg.ToJson();
  out += "}";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  int runs = 20;
  std::uint64_t seed0 = 2024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(std::strlen("--out="));
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::atoi(arg.c_str() + std::strlen("--runs="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed0 = static_cast<std::uint64_t>(
          std::atoll(arg.c_str() + std::strlen("--seed=")));
    } else {
      std::printf("unknown flag %s (see header comment)\n", arg.c_str());
      return 2;
    }
  }

  std::string json = "{\"bench\":\"phase_breakdown\",\"memory_gib\":8,";
  json += "\"mechanisms\":[";
  json += MechanismJson(core::Mechanism::kNiLiHype, runs, seed0);
  json += ",";
  json += MechanismJson(core::Mechanism::kReHype, runs, seed0);
  json += "]}";

  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
  } else {
    std::ofstream f(out_path);
    if (!f) {
      std::printf("cannot write %s\n", out_path.c_str());
      return 1;
    }
    f << json;
    std::printf("phase breakdown written to %s\n", out_path.c_str());
  }
  return 0;
}
