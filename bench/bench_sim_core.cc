// Simulation-core throughput harness: the wall-clock speed of the three
// measured hot paths that bound fault-injection campaign throughput —
//   events/sec          raw EventQueue schedule/cancel/run mix
//   hypercalls/sec      full hypercall dispatch on a booted hypervisor
//   campaign runs/sec   end-to-end TargetSystem runs on the default
//                       8-CPU / 3AppVM / failstop configuration
//
// Emits BENCH_simcore.json (--out) and optionally gates against a committed
// baseline (--baseline): each metric is first normalized by `calib_mops`, a
// fixed integer workload measured on the same machine in the same process,
// so the gate compares *machine-relative* throughput and survives runner
// speed differences. A metric more than --gate-pct (default 15) slower than
// the baseline fails the run (exit 1).
//
// Flags: --out=FILE --baseline=FILE --gate-pct=P --runs=N --threads=N
//        --seed=N --quick
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/campaign.h"
#include "core/config.h"
#include "hv/hypervisor.h"
#include "hw/platform.h"
#include "sim/event_queue.h"
#include "sim/json.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Fixed integer workload used to normalize the throughput metrics across
// machines: xorshift64* over a constant iteration count.
double CalibMops() {
  constexpr std::uint64_t kIters = 1u << 26;
  std::uint64_t x = 0x9e3779b97f4a7c15ULL;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIters; ++i) {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x *= 0x2545f4914f6cdd1dULL;
  }
  const double secs = SecondsSince(t0);
  // Keep the final state observable so the loop cannot be elided.
  if (x == 0) std::fprintf(stderr, "calib degenerate\n");
  return static_cast<double>(kIters) / secs / 1e6;
}

// EventQueue mix modeled on what a run does: a population of recurring
// self-rescheduling events (timer ticks, run-slice kicks) plus a
// cancel/reschedule churn lane (APIC one-shot reprogramming).
double EventsPerSec(std::uint64_t target_events) {
  nlh::sim::EventQueue q;
  std::uint64_t executed = 0;

  constexpr int kChains = 64;
  struct Chain {
    nlh::sim::EventQueue* q;
    std::uint64_t* executed;
    nlh::sim::EventId* victim;
    int idx;
    void operator()() const {
      ++*executed;
      const nlh::sim::Duration step = 1 + (idx * 7) % 13;
      q->ScheduleAfter(step, *this);
      // Churn lane: cancel the previous one-shot and arm a new one, like an
      // APIC reprogram. Roughly one cancel per four chain firings.
      if ((idx & 3) == 0) {
        q->Cancel(*victim);
        *victim = q->ScheduleAfter(5, [executed = executed] { ++*executed; });
      }
    }
  };
  std::vector<nlh::sim::EventId> victims(kChains, nlh::sim::kInvalidEvent);
  const auto t0 = Clock::now();
  for (int i = 0; i < kChains; ++i) {
    q.ScheduleAfter(1 + i % 17, Chain{&q, &executed, &victims[i], i});
  }
  while (executed < target_events) {
    if (!q.RunOne()) break;
  }
  const double secs = SecondsSince(t0);
  return static_cast<double>(executed) / secs;
}

// Hypercall dispatch on a booted 2-CPU hypervisor (the bench_micro_hvops
// world): alternating mmu_update map/unmap, the workhorse of UnixBench.
double HypercallsPerSec(std::uint64_t target_calls) {
  nlh::hw::PlatformConfig pcfg;
  pcfg.num_cpus = 2;
  pcfg.memory_gib = 1;
  nlh::hw::Platform platform(pcfg, /*seed=*/1);
  nlh::hv::Hypervisor hv(platform, nlh::hv::HvConfig{});
  hv.Boot();
  const nlh::hv::DomainId dom = hv.CreateDomainDirect("bench", false, 1, 32);
  hv.StartDomain(dom);
  const nlh::hv::VcpuId vcpu = hv.FindDomain(dom)->vcpus.front();
  {
    nlh::hv::OpContext ctx(platform, platform.cpu(1), hv.options(),
                           nlh::hv::HvContextKind::kSchedule, nullptr, nullptr);
    hv.Schedule(ctx, 1);
  }
  nlh::hv::HypercallArgs a;
  bool map = true;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < target_calls; ++i) {
    a.arg0 = 5;
    a.arg1 = map ? 1 : 0;
    hv.Hypercall(vcpu, nlh::hv::HypercallCode::kMmuUpdate, a);
    map = !map;
  }
  const double secs = SecondsSince(t0);
  return static_cast<double>(target_calls) / secs;
}

// End-to-end campaign throughput on the paper-default target system.
double CampaignRunsPerSec(int runs, int threads, std::uint64_t seed0) {
  nlh::core::RunConfig cfg;  // 8 CPUs, 3AppVM, NiLiHype, failstop
  nlh::core::CampaignOptions opt;
  opt.runs = runs;
  opt.threads = threads;
  opt.seed0 = seed0;
  const auto t0 = Clock::now();
  const nlh::core::CampaignResult res = nlh::core::RunCampaign(cfg, opt);
  const double secs = SecondsSince(t0);
  if (res.runs != runs) std::fprintf(stderr, "campaign run count mismatch\n");
  return static_cast<double>(runs) / secs;
}

struct Metrics {
  double calib_mops = 0;
  double events_per_sec = 0;
  double hypercalls_per_sec = 0;
  double campaign_runs_per_sec = 0;
};

std::string ToJson(const Metrics& m, int runs, int threads, bool quick) {
  std::string out = "{";
  out += "\"bench\":\"sim_core\",\"schema\":1";
  out += ",\"config\":{\"campaign_runs\":" + std::to_string(runs) +
         ",\"threads\":" + std::to_string(threads) +
         ",\"quick\":" + (quick ? std::string("true") : std::string("false")) +
         "}";
  out += ",\"calib_mops\":" + nlh::sim::JsonNum(m.calib_mops, 3);
  out += ",\"events_per_sec\":" + nlh::sim::JsonNum(m.events_per_sec, 1);
  out += ",\"hypercalls_per_sec\":" + nlh::sim::JsonNum(m.hypercalls_per_sec, 1);
  out +=
      ",\"campaign_runs_per_sec\":" + nlh::sim::JsonNum(m.campaign_runs_per_sec, 4);
  out += "}";
  return out;
}

bool LoadBaseline(const std::string& path, Metrics* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  nlh::sim::JsonValue v;
  if (!nlh::sim::ParseJson(ss.str(), &v) || !v.IsObject()) return false;
  auto num = [&](const char* key, double* dst) {
    const nlh::sim::JsonValue* f = v.Find(key);
    if (f == nullptr || f->type != nlh::sim::JsonValue::Type::kNumber) {
      return false;
    }
    *dst = f->number;
    return true;
  };
  return num("calib_mops", &out->calib_mops) &&
         num("events_per_sec", &out->events_per_sec) &&
         num("hypercalls_per_sec", &out->hypercalls_per_sec) &&
         num("campaign_runs_per_sec", &out->campaign_runs_per_sec);
}

// Compares machine-normalized throughput against the baseline. Returns the
// number of gate failures.
int Gate(const Metrics& cur, const Metrics& base, double pct) {
  struct Row {
    const char* name;
    double cur, base;
  };
  const Row rows[] = {
      {"events_per_sec", cur.events_per_sec, base.events_per_sec},
      {"hypercalls_per_sec", cur.hypercalls_per_sec, base.hypercalls_per_sec},
      {"campaign_runs_per_sec", cur.campaign_runs_per_sec,
       base.campaign_runs_per_sec},
  };
  int failures = 0;
  std::printf("\nregression gate (±%.0f%%, normalized by calib_mops):\n", pct);
  for (const Row& r : rows) {
    if (r.base <= 0 || base.calib_mops <= 0 || cur.calib_mops <= 0) {
      std::printf("  %-24s SKIP (no baseline)\n", r.name);
      continue;
    }
    const double norm_cur = r.cur / cur.calib_mops;
    const double norm_base = r.base / base.calib_mops;
    const double ratio = norm_cur / norm_base;
    const bool fail = ratio < 1.0 - pct / 100.0;
    std::printf("  %-24s %10.1f vs %10.1f  (normalized x%.3f)%s\n", r.name,
                r.cur, r.base, ratio,
                fail ? "  REGRESSION"
                     : (ratio > 1.0 + pct / 100.0 ? "  (faster; consider "
                                                    "refreshing baseline)"
                                                  : ""));
    failures += fail ? 1 : 0;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_path;
  double gate_pct = 15.0;
  int runs = 0;
  int threads = 0;
  std::uint64_t seed = 1000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--baseline=", 11) == 0) {
      baseline_path = arg + 11;
    } else if (std::strncmp(arg, "--gate-pct=", 11) == 0) {
      gate_pct = std::atof(arg + 11);
    } else if (std::strncmp(arg, "--runs=", 7) == 0) {
      runs = std::atoi(arg + 7);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "flags: --out=FILE --baseline=FILE --gate-pct=P --runs=N "
          "--threads=N --seed=N --quick\n");
      return 0;
    }
  }
  if (runs == 0) runs = quick ? 8 : 48;

  nlh::bench::PrintHeader("Simulation-core throughput (bench_sim_core)",
                          "the campaign engine underlying Sections VI-VII");

  Metrics m;
  m.calib_mops = CalibMops();
  std::printf("calib                 %10.1f Mops\n", m.calib_mops);
  m.events_per_sec = EventsPerSec(quick ? 2'000'000ULL : 10'000'000ULL);
  std::printf("events/sec            %10.0f\n", m.events_per_sec);
  m.hypercalls_per_sec = HypercallsPerSec(quick ? 200'000ULL : 1'000'000ULL);
  std::printf("hypercalls/sec        %10.0f\n", m.hypercalls_per_sec);
  m.campaign_runs_per_sec = CampaignRunsPerSec(runs, threads, seed);
  std::printf("campaign runs/sec     %10.3f  (%d runs)\n",
              m.campaign_runs_per_sec, runs);

  const std::string json = ToJson(m, runs, threads, quick);
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json << "\n";
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::printf("%s\n", json.c_str());
  }

  if (!baseline_path.empty()) {
    Metrics base;
    if (!LoadBaseline(baseline_path, &base)) {
      std::fprintf(stderr, "cannot load baseline %s\n", baseline_path.c_str());
      return 2;
    }
    const int failures = Gate(m, base, gate_pct);
    if (failures > 0) {
      std::fprintf(stderr, "%d metric(s) regressed beyond %.0f%%\n", failures,
                   gate_pct);
      return 1;
    }
  }
  return 0;
}
