// Ablation bench for design choices DESIGN.md calls out, beyond the paper's
// own Table I ladder:
//
//  A. Full NiLiHype minus ONE enhancement at a time (which single mechanism
//     carries how much of the recovery rate on corrupting faults).
//  B. The undo-logging trade-off the paper quantifies in Section VII-C:
//     turning logging off saves overhead but costs ~12% recovery rate.
//  C. Recovery-attempt budget: how often a second recovery attempt rescues
//     a run (the paper implicitly allows re-detection).
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

namespace {

core::Proportion MixedCampaign(const core::RunConfig& base,
                               const core::CampaignOptions& opts) {
  core::Proportion agg;
  for (int half = 0; half < 2; ++half) {
    core::RunConfig cfg = base;
    cfg.setup = core::Setup::k1AppVM;
    cfg.bench_1appvm = half == 0 ? guest::BenchmarkKind::kUnixBench
                                 : guest::BenchmarkKind::kBlkBench;
    core::RunConfig tmpl = core::RunConfig::OneAppVm(cfg.bench_1appvm);
    cfg.unixbench_iterations = tmpl.unixbench_iterations;
    cfg.blkbench_files = tmpl.blkbench_files;
    cfg.netbench_duration = tmpl.netbench_duration;
    cfg.inject_window_start = tmpl.inject_window_start;
    cfg.inject_window_end = tmpl.inject_window_end;
    cfg.run_deadline = tmpl.run_deadline;
    core::CampaignOptions o = opts;
    o.runs = opts.runs / 2;
    o.seed0 = opts.seed0 + static_cast<std::uint64_t>(half) * 100000;
    const core::CampaignResult r = core::RunCampaign(cfg, o);
    agg.numer += r.success.numer;
    agg.denom += r.success.denom;
  }
  return agg;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Design-choice ablations (beyond Table I)",
                     "DESIGN.md section 4 / Sections V+VII");
  const core::CampaignOptions opts = args.MakeOptions(200, 600);

  // --- A: leave-one-out over the NiLiHype enhancement set ------------------
  struct Knob {
    const char* name;
    bool recovery::EnhancementSet::*flag;
  };
  const Knob knobs[] = {
      {"hypercall retry", &recovery::EnhancementSet::hypercall_retry},
      {"syscall retry", &recovery::EnhancementSet::syscall_retry},
      {"fine-grained batched retry", &recovery::EnhancementSet::batched_retry_fine},
      {"save FS/GS", &recovery::EnhancementSet::save_fs_gs},
      {"non-idempotent mitigation", &recovery::EnhancementSet::nonidem_mitigation},
      {"release heap locks", &recovery::EnhancementSet::release_heap_locks},
      {"ack interrupts", &recovery::EnhancementSet::ack_interrupts},
      {"frame-table scan", &recovery::EnhancementSet::frame_table_scan},
      {"clear IRQ count", &recovery::EnhancementSet::clear_irq_count},
      {"sched metadata repair", &recovery::EnhancementSet::sched_metadata_repair},
      {"reprogram APIC timer", &recovery::EnhancementSet::reprogram_apic},
      {"unlock static locks", &recovery::EnhancementSet::unlock_static_locks},
      {"reactivate recurring events", &recovery::EnhancementSet::reactivate_recurring},
  };

  std::printf("\nA. NiLiHype, failstop 1AppVM, leave-one-out:\n");
  {
    core::RunConfig base;
    base.mechanism = core::Mechanism::kNiLiHype;
    base.fault = inject::FaultType::kFailstop;
    std::printf("   %-34s %s\n", "(full enhancement set)",
                MixedCampaign(base, opts).ToString().c_str());
    for (const Knob& k : knobs) {
      core::RunConfig cfg = base;
      cfg.enhancements = recovery::EnhancementSet::Full();
      cfg.enhancements.*(k.flag) = false;
      std::printf("   minus %-28s %s\n", k.name,
                  MixedCampaign(cfg, opts).ToString().c_str());
    }
  }

  // --- B: the logging trade-off (Section VII-C) ------------------------------
  std::printf("\nB. Undo-logging trade-off (NiLiHype vs NiLiHype*):\n");
  {
    core::RunConfig with;
    with.mechanism = core::Mechanism::kNiLiHype;
    with.fault = inject::FaultType::kFailstop;
    core::RunConfig without = with;
    without.enhancements.nonidem_mitigation = false;
    const core::Proportion a = MixedCampaign(with, opts);
    const core::Proportion b = MixedCampaign(without, opts);
    std::printf("   logging on:  %s\n", a.ToString().c_str());
    std::printf("   logging off: %s   (paper: ~12%% lower)\n",
                b.ToString().c_str());
  }

  // --- C: recovery-latency mitigations (Section VII-B) -----------------------
  std::printf("\nC. NiLiHype latency mitigations (Section VII-B), failstop:\n");
  {
    struct Variant {
      const char* name;
      bool scan;
      int parallelism;
    };
    const Variant variants[] = {
        {"baseline (sequential scan)", true, 1},
        {"parallel scan, 8 cores", true, 8},
        {"skip frame scan entirely", false, 1},
    };
    for (const Variant& v : variants) {
      core::RunConfig cfg;
      cfg.mechanism = core::Mechanism::kNiLiHype;
      cfg.fault = inject::FaultType::kFailstop;
      cfg.enhancements.frame_table_scan = v.scan;
      cfg.latency_model.frame_scan_parallelism = v.parallelism;
      cfg.seed = 1;
      core::TargetSystem one(cfg);
      const core::RunResult single = one.Run();
      const core::CampaignResult r = core::RunCampaign(cfg, opts);
      std::printf("   %-30s latency %7.2f ms   success %s\n", v.name,
                  sim::ToMillisF(single.first_recovery_latency),
                  r.success.ToString().c_str());
    }
    std::printf("   (paper: skipping the scan cuts latency to ~1 ms but"
                " costs ~4%% recovery rate)\n");
  }
  return 0;
}
