// Shared helpers for the experiment-reproduction benches.
//
// Every bench binary regenerates one table or figure from the paper and
// prints the same rows/series. Common flags:
//   --runs=N     runs per campaign cell (default: reduced counts; the paper
//                used 1000-5000 per fault type)
//   --full       use the paper's injection counts (Section VII-A)
//   --threads=N  worker threads (default: all cores)
//   --seed=N     base seed
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/campaign.h"

namespace nlh::bench {

struct BenchArgs {
  int runs = 0;       // 0 = per-bench default
  bool full = false;
  int threads = 0;
  std::uint64_t seed = 1000;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--runs=", 7) == 0) {
        a.runs = std::atoi(arg + 7);
      } else if (std::strcmp(arg, "--full") == 0) {
        a.full = true;
      } else if (std::strncmp(arg, "--threads=", 10) == 0) {
        a.threads = std::atoi(arg + 10);
      } else if (std::strncmp(arg, "--seed=", 7) == 0) {
        a.seed = static_cast<std::uint64_t>(std::atoll(arg + 7));
      } else if (std::strcmp(arg, "--help") == 0) {
        std::printf(
            "flags: --runs=N --full --threads=N --seed=N\n");
        std::exit(0);
      }
    }
    return a;
  }

  core::CampaignOptions MakeOptions(int default_runs, int full_runs) const {
    core::CampaignOptions o;
    o.runs = runs > 0 ? runs : (full ? full_runs : default_runs);
    o.threads = threads;
    o.seed0 = seed;
    return o;
  }
};

inline void PrintHeader(const char* what, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", what);
  std::printf("(reproduces %s of \"Fast Hypervisor Recovery Without Reboot\","
              " DSN 2018)\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace nlh::bench
