// Extensions from the paper's future-work list (Section IX):
//
//  1. "More complex configurations that include multiple vCPUs per CPU":
//     both initial AppVMs share one physical CPU and time-slice through the
//     scheduler. Recovery must now cope with a runqueue that actually holds
//     waiting vCPUs at detection time.
//  2. "Evaluate NiLiHype's effectiveness under additional fault types":
//     a Memory fault type (bit flip directly in hypervisor data memory,
//     no register/PC involvement — skews toward SDC and delayed detection).
#include "bench/bench_util.h"
#include "core/target_system.h"

using namespace nlh;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::PrintHeader("Future-work extensions", "Section IX");

  std::printf("\n1. Multiple vCPUs per physical CPU (3AppVM, both initial\n"
              "   AppVMs share CPU 1):\n");
  std::printf("   %-12s %-10s %-18s %-16s\n", "config", "mechanism",
              "Success", "noVMF");
  for (const bool share : {false, true}) {
    for (const core::Mechanism mech :
         {core::Mechanism::kNiLiHype, core::Mechanism::kReHype}) {
      core::RunConfig cfg;
      cfg.mechanism = mech;
      cfg.fault = inject::FaultType::kFailstop;
      cfg.share_cpu = share;
      const core::CampaignResult r =
          core::RunCampaign(cfg, args.MakeOptions(150, 500));
      std::printf("   %-12s %-10s %-18s %-16s\n",
                  share ? "shared-CPU" : "dedicated", core::MechanismName(mech),
                  r.success.ToString().c_str(),
                  r.no_vm_failures.ToString().c_str());
    }
  }

  std::printf("\n2. Additional fault type: Memory (hypervisor data bit flip):\n");
  std::printf("   %-10s %6s %16s %8s %10s   %-16s\n", "mechanism", "runs",
              "non-manifested", "SDC", "detected", "Success");
  for (const core::Mechanism mech :
       {core::Mechanism::kNiLiHype, core::Mechanism::kReHype}) {
    core::RunConfig cfg;
    cfg.mechanism = mech;
    cfg.fault = inject::FaultType::kMemory;
    const core::CampaignResult r =
        core::RunCampaign(cfg, args.MakeOptions(400, 1500));
    std::printf("   %-10s %6d %15.1f%% %7.1f%% %9.1f%%   %-16s\n",
                core::MechanismName(mech), r.runs,
                r.NonManifestedRate() * 100, r.SdcRate() * 100,
                r.DetectedRate() * 100, r.success.ToString().c_str());
  }
  std::printf("\n3. HVM AppVMs (Section VI-A: results closely match PV):\n");
  std::printf("   %-8s %-10s %-18s %-16s\n", "mode", "mechanism", "Success",
              "noVMF");
  for (const guest::VirtMode mode : {guest::VirtMode::kPV, guest::VirtMode::kHVM}) {
    for (const core::Mechanism mech :
         {core::Mechanism::kNiLiHype, core::Mechanism::kReHype}) {
      core::RunConfig cfg;
      cfg.mechanism = mech;
      cfg.fault = inject::FaultType::kFailstop;
      cfg.appvm_mode = mode;
      const core::CampaignResult r =
          core::RunCampaign(cfg, args.MakeOptions(150, 500));
      std::printf("   %-8s %-10s %-18s %-16s\n",
                  mode == guest::VirtMode::kPV ? "PV" : "HVM",
                  core::MechanismName(mech), r.success.ToString().c_str(),
                  r.no_vm_failures.ToString().c_str());
    }
  }

  std::printf(
      "\nExpected shape: shared-CPU recovery rates close to dedicated\n"
      "(the metadata repair rebuilds runqueues wholesale); Memory faults\n"
      "show more SDC and a ReHype edge similar to Code faults (pure state\n"
      "corruption is exactly what a reboot repairs best).\n");
  return 0;
}
